//! Quickstart: run a node-aware all-to-all on the threaded runtime, verify
//! the transpose, then predict the same exchange on a simulated 32-node
//! Sapphire Rapids machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use alltoall_suite::algos::{
    A2AContext, AlgoSchedule, ExchangeKind, MultileaderNodeAwareAlltoall, NodeAwareAlltoall,
    SystemMpiAlltoall,
};
use alltoall_suite::netsim::{models, simulate, SimOptions};
use alltoall_suite::runtime::ThreadWorld;
use alltoall_suite::sched::{check_alltoall_rbuf, fill_alltoall_sbuf};
use alltoall_suite::topo::{presets, Machine, ProcGrid};

fn main() {
    // ---- 1. Real execution on threads -----------------------------------
    // A miniature many-core machine: 2 nodes x 2 sockets x 2 NUMA x 2 cores.
    let grid = ProcGrid::new(Machine::custom("mini", 2, 2, 2, 2));
    let n = grid.world_size();
    let s = 64u64; // bytes per rank pair
    println!("running node-aware all-to-all on {n} threads ({s} B blocks)...");

    let algo = NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise);
    let gref = &grid;
    let algo_ref = &algo;
    ThreadWorld::run(n, move |comm| {
        let total = (n as u64 * s) as usize;
        let mut sbuf = vec![0u8; total];
        let mut rbuf = vec![0u8; total];
        fill_alltoall_sbuf(comm.rank(), n, s, &mut sbuf);
        comm.alltoall(algo_ref, gref, s, &sbuf, &mut rbuf)
            .unwrap_or_else(|e| panic!("rank {}: {e}", comm.rank()));
        check_alltoall_rbuf(comm.rank(), n, s, &rbuf)
            .unwrap_or_else(|e| panic!("rank {}: {e}", comm.rank()));
    });
    println!("  every rank received the exact transpose — PASS");

    // ---- 2. Simulated 32-node Dane --------------------------------------
    let dane = ProcGrid::new(presets::dane(32));
    let model = models::dane();
    println!(
        "\nsimulating on Dane: {} nodes x {} ppn = {} ranks, 4 B blocks",
        dane.machine().nodes,
        dane.machine().ppn(),
        dane.world_size()
    );
    for (name, algo) in [
        (
            "system MPI ",
            Box::new(SystemMpiAlltoall::default())
                as Box<dyn alltoall_suite::algos::AlltoallAlgorithm>,
        ),
        (
            "node-aware ",
            Box::new(NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise)),
        ),
        (
            "ml+na(ppl=4)",
            Box::new(MultileaderNodeAwareAlltoall::new(4, ExchangeKind::Pairwise)),
        ),
    ] {
        let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(dane.clone(), 4));
        let rep = simulate(&sched, &dane, &model, &SimOptions::default()).expect("simulate");
        println!("  {name}  -> {:>10.1} us", rep.total_us);
    }
    println!("\n(see `repro all` for the full figure reproduction)");
}
