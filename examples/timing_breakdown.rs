//! Per-phase timing breakdowns, like the paper's Figures 13–16: where does
//! the time go inside hierarchical, node-aware, and multi-leader
//! node-aware all-to-alls as the message size grows?
//!
//! ```text
//! cargo run --release --example timing_breakdown [nodes]
//! ```

use alltoall_suite::algos::{
    A2AContext, AlgoSchedule, AlltoallAlgorithm, ExchangeKind, HierarchicalAlltoall,
    MultileaderNodeAwareAlltoall, NodeAwareAlltoall,
};
use alltoall_suite::netsim::{models, simulate, SimOptions};
use alltoall_suite::topo::{Machine, ProcGrid};

fn breakdown(algo: &dyn AlltoallAlgorithm, grid: &ProcGrid, sizes: &[u64]) {
    let model = models::dane();
    let phases = algo.phase_names();
    println!("\n== {} ==", algo.name());
    print!("{:>8}", "bytes");
    for p in &phases {
        print!(" {:>12}", p);
    }
    println!(" {:>12}", "total");
    for &s in sizes {
        let sched = AlgoSchedule::new(algo, A2AContext::new(grid.clone(), s));
        let rep = simulate(&sched, grid, &model, &SimOptions::default()).expect("simulate");
        print!("{s:>8}");
        for p in &phases {
            print!(" {:>12.1}", rep.phase_leader(p).unwrap_or(0.0));
        }
        println!(" {:>12.1}", rep.total_us);
    }
}

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .map_or(8, |a| a.parse().expect("nodes"));
    let grid = ProcGrid::new(Machine::custom("dane", nodes, 2, 4, 4)); // 32 ppn
    println!(
        "phase breakdowns (µs, leader view) on {} nodes x {} ppn",
        nodes,
        grid.machine().ppn()
    );
    let sizes = [4u64, 64, 1024, 4096];
    let ppn = grid.machine().ppn();

    breakdown(
        &HierarchicalAlltoall::new(ppn, ExchangeKind::Pairwise),
        &grid,
        &sizes,
    );
    breakdown(
        &NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise),
        &grid,
        &sizes,
    );
    breakdown(
        &NodeAwareAlltoall::locality_aware(4, ExchangeKind::Pairwise),
        &grid,
        &sizes,
    );
    breakdown(
        &MultileaderNodeAwareAlltoall::new(4, ExchangeKind::Pairwise),
        &grid,
        &sizes,
    );

    println!(
        "\nPaper's observations to look for: inter-node dominates the\n\
         node-aware exchange at every size; the hierarchical gather takes\n\
         over from inter-node as sizes grow; locality-aware trades a small\n\
         inter-node increase for a smaller intra-node phase."
    );
}
