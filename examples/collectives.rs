//! Beyond all-to-all: the locality-aware recipe applied to allgather and
//! broadcast (the paper's §5 extension), run for real on the threaded
//! runtime and compared in the simulator.
//!
//! ```text
//! cargo run --release --example collectives
//! ```

use alltoall_suite::algos::collectives::*;
use alltoall_suite::algos::A2AContext;
use alltoall_suite::netsim::{models, simulate, SimOptions};
use alltoall_suite::runtime::ThreadWorld;
use alltoall_suite::sched::pattern_byte;
use alltoall_suite::topo::{presets, Machine, ProcGrid};

fn main() {
    // ---- Real execution on threads --------------------------------------
    let grid = ProcGrid::new(Machine::custom("mini", 2, 2, 1, 3)); // 12 ranks
    let n = grid.world_size();
    let s = 32u64;
    println!("threaded allgather + bcast on {n} ranks:");

    let ag = LocalityAwareAllgather::new(3);
    let g = &grid;
    let agr = &ag;
    ThreadWorld::run(n, move |comm| {
        // Allgather: everyone contributes s bytes.
        let mut contrib = vec![0u8; s as usize];
        for k in 0..s {
            contrib[k as usize] = pattern_byte(comm.rank(), comm.rank(), k);
        }
        let mut all = vec![0u8; (n as u64 * s) as usize];
        comm.allgather(agr, g, s, &contrib, &mut all)
            .unwrap_or_else(|e| panic!("{e}"));
        alltoall_suite::sched::check_allgather_rbuf(comm.rank(), n, s, &all)
            .unwrap_or_else(|e| panic!("{e}"));

        // Broadcast: rank 4 shares a payload.
        let payload: Vec<u8> = (0..200u32).map(|i| (i * 13) as u8).collect();
        let mut out = vec![0u8; payload.len()];
        let mine = (comm.rank() == 4).then_some(payload.as_slice());
        comm.bcast(&HierarchicalBcast, g, 4, mine, &mut out)
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(out, payload, "rank {}", comm.rank());
    });
    println!("  allgather + hierarchical bcast verified — PASS");

    // ---- Simulated comparison at scale ----------------------------------
    let dane = ProcGrid::new(presets::dane(16)); // 1792 ranks
    let model = models::dane();
    let s = 256u64;
    println!(
        "\nsimulated allgather on Dane ({} ranks, {s} B contributions):",
        dane.world_size()
    );
    let algos: Vec<(&str, Box<dyn AllgatherAlgorithm>)> = vec![
        ("ring", Box::new(RingAllgather)),
        ("bruck", Box::new(BruckAllgather)),
        ("locality(ppg=4)", Box::new(LocalityAwareAllgather::new(4))),
        (
            "node-aware(ppg=112)",
            Box::new(LocalityAwareAllgather::new(112)),
        ),
    ];
    for (name, algo) in &algos {
        let sched = AllgatherSchedule::new(algo.as_ref(), A2AContext::new(dane.clone(), s));
        let rep = simulate(&sched, &dane, &model, &SimOptions::default()).expect("simulate");
        println!("  {name:<22} {:>12.1} us", rep.total_us);
    }

    println!("\nsimulated 1 MiB broadcast from rank 0:");
    for (name, algo) in [
        ("linear", Box::new(LinearBcast) as Box<dyn BcastAlgorithm>),
        ("binomial", Box::new(BinomialBcast)),
        ("hierarchical", Box::new(HierarchicalBcast)),
    ] {
        let sched = BcastSchedule::new(algo.as_ref(), A2AContext::new(dane.clone(), 1 << 20), 0);
        let rep = simulate(&sched, &dane, &model, &SimOptions::default()).expect("simulate");
        println!("  {name:<22} {:>12.1} us", rep.total_us);
    }
    println!("\nThe hierarchy pays off exactly as it does for all-to-all:");
    println!("fewer network messages per node, local traffic on fast paths.");
}
