//! Dynamic algorithm selection (the paper's §5 future work): sweep the
//! candidate algorithms through the simulator on a chosen machine, print
//! the per-size winner, and compare with the static `SelectorTable`
//! heuristic shipped in `a2a-core`.
//!
//! ```text
//! cargo run --release --example algorithm_selector [nodes] [machine]
//! ```

use alltoall_suite::algos::{
    select_algorithm, A2AContext, AlgoSchedule, AlltoallAlgorithm, ExchangeKind,
    HierarchicalAlltoall, MultileaderNodeAwareAlltoall, NodeAwareAlltoall, SelectorTable,
    SystemMpiAlltoall,
};
use alltoall_suite::netsim::{models, simulate, SimOptions};
use alltoall_suite::topo::{Machine, ProcGrid};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nodes: usize = args.first().map_or(8, |a| a.parse().expect("nodes"));
    let machine = args.get(1).map_or("dane", |s| s.as_str());

    // Scaled-down node keeps the sweep fast; hierarchy matches the preset.
    let grid = ProcGrid::new(match machine {
        "tuolumne" => Machine::custom("tuolumne", nodes, 4, 1, 8),
        other => Machine::custom(other, nodes, 2, 4, 4),
    });
    let model = models::for_machine(machine);
    let ppn = grid.machine().ppn();
    println!(
        "machine={machine} nodes={nodes} ppn={ppn} ranks={}",
        grid.world_size()
    );

    let candidates: Vec<(String, Box<dyn AlltoallAlgorithm>)> = vec![
        ("system-mpi".into(), Box::new(SystemMpiAlltoall::default())),
        (
            "hierarchical".into(),
            Box::new(HierarchicalAlltoall::new(ppn, ExchangeKind::Pairwise)),
        ),
        (
            "multileader(4)".into(),
            Box::new(HierarchicalAlltoall::new(4, ExchangeKind::Pairwise)),
        ),
        (
            "node-aware".into(),
            Box::new(NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise)),
        ),
        (
            "locality-aware(4)".into(),
            Box::new(NodeAwareAlltoall::locality_aware(4, ExchangeKind::Pairwise)),
        ),
        (
            "ml+node-aware(4)".into(),
            Box::new(MultileaderNodeAwareAlltoall::new(4, ExchangeKind::Pairwise)),
        ),
    ];

    let table = SelectorTable::default();
    println!(
        "\n{:>8} {:>12} {:>22} {:>26}",
        "bytes", "best us", "simulated winner", "static selector picks"
    );
    for s in [4u64, 16, 64, 256, 1024, 4096, 16384] {
        let mut best: Option<(&str, f64)> = None;
        for (name, algo) in &candidates {
            let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(grid.clone(), s));
            let us = simulate(&sched, &grid, &model, &SimOptions::default())
                .expect("simulate")
                .total_us;
            if best.is_none() || us < best.unwrap().1 {
                best = Some((name, us));
            }
        }
        let (winner, us) = best.unwrap();
        let pick = select_algorithm(&table, ppn, s).name();
        println!("{s:>8} {us:>12.1} {winner:>22} {pick:>26}");
    }
    println!(
        "\nThe static table encodes the paper's Dane findings; the simulated\n\
         sweep is how you would retune it for a new machine."
    );
}
