//! Distributed dense matrix transpose — the second workload the paper's
//! introduction motivates. An `N x N` matrix of `f64` is row-block
//! distributed; one all-to-all plus local repacks yields the column-block
//! (transposed) distribution. Compares two algorithms on the threaded
//! runtime and verifies the result exactly.
//!
//! ```text
//! cargo run --release --example matrix_transpose
//! ```

use std::time::Instant;

use alltoall_suite::algos::{
    AlltoallAlgorithm, ExchangeKind, MultileaderNodeAwareAlltoall, PairwiseAlltoall,
};
use alltoall_suite::runtime::{ThreadComm, ThreadWorld};
use alltoall_suite::topo::{Machine, ProcGrid};

/// Transpose a row-block-distributed `n x n` matrix: returns my row block
/// of the transposed matrix.
fn transpose_block(
    comm: &ThreadComm,
    grid: &ProcGrid,
    algo: &dyn AlltoallAlgorithm,
    mine: &[f64],
    n: usize,
) -> Vec<f64> {
    let p = grid.world_size();
    let rb = n / p;
    let blk = rb * rb; // elements exchanged per rank pair
    let mut sbuf = vec![0u8; blk * 8 * p];
    for q in 0..p {
        for a in 0..rb {
            for b in 0..rb {
                let v = mine[a * n + q * rb + b];
                let off = (q * blk + a * rb + b) * 8;
                sbuf[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
        }
    }
    let mut rbuf = vec![0u8; blk * 8 * p];
    comm.alltoall(algo, grid, (blk * 8) as u64, &sbuf, &mut rbuf)
        .unwrap_or_else(|e| panic!("rank {}: {e}", comm.rank()));
    let mut out = vec![0.0f64; rb * n];
    for j in 0..p {
        for a in 0..rb {
            for b in 0..rb {
                let off = (j * blk + a * rb + b) * 8;
                let v = f64::from_le_bytes(rbuf[off..off + 8].try_into().unwrap());
                // Source element (row j*rb + a, col me*rb + b) of the
                // original lands at my row b, column j*rb + a.
                out[b * n + j * rb + a] = v;
            }
        }
    }
    out
}

fn element(i: usize, j: usize) -> f64 {
    (i * 131 + j * 17) as f64 * 0.25
}

fn run_with(algo: &dyn AlltoallAlgorithm, label: &str, grid: &ProcGrid, n: usize) {
    let p = grid.world_size();
    let rb = n / p;
    let start = Instant::now();
    let blocks: Vec<Vec<f64>> = ThreadWorld::run(p, move |comm| {
        let me = comm.rank() as usize;
        // My rows of A: A[i][j] = element(i, j).
        let mine: Vec<f64> = (0..rb * n)
            .map(|idx| element(me * rb + idx / n, idx % n))
            .collect();
        transpose_block(comm, grid, algo, &mine, n)
    });
    let elapsed = start.elapsed();
    // Verify: block r holds rows [r*rb, (r+1)*rb) of A^T.
    for (r, block) in blocks.iter().enumerate() {
        for a in 0..rb {
            for j in 0..n {
                let got = block[a * n + j];
                let want = element(j, r * rb + a); // A^T[i][j] = A[j][i]
                assert_eq!(got, want, "rank {r} row {a} col {j}");
            }
        }
    }
    println!("  {label:<22} {n}x{n} transpose verified in {elapsed:.2?}");
}

fn main() {
    let grid = ProcGrid::new(Machine::custom("mini", 2, 2, 2, 2)); // 16 ranks
    let n = 256usize;
    println!(
        "distributed matrix transpose on {} ranks:",
        grid.world_size()
    );
    run_with(&PairwiseAlltoall, "pairwise", &grid, n);
    run_with(
        &MultileaderNodeAwareAlltoall::new(4, ExchangeKind::Pairwise),
        "ml+node-aware(ppl=4)",
        &grid,
        n,
    );
    println!("PASS");
}
