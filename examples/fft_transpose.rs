//! Distributed FFT via all-to-all transposes — the paper's headline
//! motivation ("performant all-to-all collective operations in MPI are
//! critical to fast Fourier transforms").
//!
//! Implements Bailey's four-step FFT of `N = R*C` points across `P` ranks:
//!
//! 1. distributed transpose (all-to-all) so each rank owns columns,
//! 2. local length-`R` FFTs + twiddle factors,
//! 3. distributed transpose back,
//! 4. local length-`C` FFTs.
//!
//! The result is checked element-wise against a naive O(N^2) DFT.
//!
//! ```text
//! cargo run --release --example fft_transpose
//! ```

use alltoall_suite::algos::{AlltoallAlgorithm, ExchangeKind, NodeAwareAlltoall};
use alltoall_suite::runtime::{ThreadComm, ThreadWorld};
use alltoall_suite::topo::{Machine, ProcGrid};

/// Complex number, kept dependency-free.
#[derive(Debug, Clone, Copy, PartialEq)]
struct C64 {
    re: f64,
    im: f64,
}

impl C64 {
    const ZERO: C64 = C64 { re: 0.0, im: 0.0 };

    fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// `e^{-2 pi i k / n}` — the DFT root of unity.
    fn root(k: usize, n: usize) -> Self {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
        C64::new(ang.cos(), ang.sin())
    }

    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }

    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    fn dist(self, o: C64) -> f64 {
        ((self.re - o.re).powi(2) + (self.im - o.im).powi(2)).sqrt()
    }

    fn to_bytes(self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&self.re.to_le_bytes());
        b[8..].copy_from_slice(&self.im.to_le_bytes());
        b
    }

    fn from_bytes(b: &[u8]) -> Self {
        C64::new(
            f64::from_le_bytes(b[..8].try_into().unwrap()),
            f64::from_le_bytes(b[8..16].try_into().unwrap()),
        )
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT (`n` a power of two).
fn fft(a: &mut [C64]) {
    let n = a.len();
    assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            a.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let w = C64::root(1, len);
        for start in (0..n).step_by(len) {
            let mut cur = C64::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = a[start + k];
                let v = a[start + k + len / 2].mul(cur);
                a[start + k] = u.add(v);
                a[start + k + len / 2] = u.sub(v);
                cur = cur.mul(w);
            }
        }
        len <<= 1;
    }
}

/// Naive O(N^2) DFT, the oracle.
fn dft(x: &[C64]) -> Vec<C64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            x.iter().enumerate().fold(C64::ZERO, |acc, (i, &v)| {
                acc.add(v.mul(C64::root(i * k, n)))
            })
        })
        .collect()
}

/// Distributed transpose of an `rows x cols` complex matrix, row-block
/// distributed over `p` ranks, into a `cols x rows` row-block distribution.
fn transpose(
    comm: &ThreadComm,
    grid: &ProcGrid,
    algo: &dyn AlltoallAlgorithm,
    mine: &[C64],
    rows: usize,
    cols: usize,
) -> Vec<C64> {
    let p = grid.world_size();
    let rb = rows / p; // my row count
    let cb = cols / p; // my column count after the transpose
    let blk = rb * cb; // elements per rank pair
    let mut sbuf = vec![0u8; blk * 16 * p];
    // Pack: destination q gets my rows x its column block.
    for q in 0..p {
        for a in 0..rb {
            for b in 0..cb {
                let v = mine[a * cols + q * cb + b];
                let off = (q * blk + a * cb + b) * 16;
                sbuf[off..off + 16].copy_from_slice(&v.to_bytes());
            }
        }
    }
    let mut rbuf = vec![0u8; blk * 16 * p];
    comm.alltoall(algo, grid, (blk * 16) as u64, &sbuf, &mut rbuf)
        .unwrap_or_else(|e| panic!("rank {}: {e}", comm.rank()));
    // Unpack: from source j, element (a, b) lands at transposed[b][j*rb + a].
    let mut out = vec![C64::ZERO; cb * rows];
    for j in 0..p {
        for a in 0..rb {
            for b in 0..cb {
                let off = (j * blk + a * cb + b) * 16;
                out[b * rows + j * rb + a] = C64::from_bytes(&rbuf[off..off + 16]);
            }
        }
    }
    out
}

fn main() {
    // 8 ranks on a 2-node machine; N = 1024 points as a 32 x 32 matrix.
    let grid = ProcGrid::new(Machine::custom("mini", 2, 2, 1, 2));
    let p = grid.world_size();
    let (r, c) = (32usize, 32usize);
    let n = r * c;
    assert_eq!(r % p, 0);
    assert_eq!(c % p, 0);

    // Input signal: a couple of tones plus a ramp.
    let input: Vec<C64> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            C64::new(
                (2.0 * std::f64::consts::PI * 7.0 * t).sin()
                    + 0.5 * (2.0 * std::f64::consts::PI * 42.0 * t).cos(),
                0.1 * t,
            )
        })
        .collect();

    println!("distributed 4-step FFT: N={n} as {r}x{c}, {p} ranks");
    let algo = NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise);
    let gref = &grid;
    let aref = &algo;
    let iref = &input;

    let pieces: Vec<Vec<C64>> = ThreadWorld::run(p, move |comm| {
        let me = comm.rank() as usize;
        let rb = r / p;
        // My row block of the R x C matrix (n = n1*C + n2).
        let mine: Vec<C64> = iref[me * rb * c..(me + 1) * rb * c].to_vec();

        // Step 1: transpose so I own columns (length-R vectors).
        let mut cols_mine = transpose(comm, gref, aref, &mine, r, c);

        // Step 2: length-R FFT per owned column + twiddle W_N^{n2*k1}.
        let cb = c / p;
        for bc in 0..cb {
            let n2 = me * cb + bc;
            let col = &mut cols_mine[bc * r..(bc + 1) * r];
            fft(col);
            for (k1, v) in col.iter_mut().enumerate() {
                *v = v.mul(C64::root(n2 * k1, n));
            }
        }

        // Step 3: transpose back — now rows are k1, columns n2.
        let rows_mine = transpose(comm, gref, aref, &cols_mine, c, r);

        // Step 4: length-C FFT per owned k1-row.
        let mut out = rows_mine;
        for a in 0..r / p {
            fft(&mut out[a * c..(a + 1) * c]);
        }
        // out[a][k2] = X[k2*R + k1] for k1 = me*rb + a.
        out
    });

    // Reassemble X and compare against the naive DFT.
    let expect = dft(&input);
    let rb = r / p;
    let mut worst = 0.0f64;
    for (me, piece) in pieces.iter().enumerate() {
        for a in 0..rb {
            let k1 = me * rb + a;
            for k2 in 0..c {
                let got = piece[a * c + k2];
                let want = expect[k2 * r + k1];
                worst = worst.max(got.dist(want));
            }
        }
    }
    println!("max |X_fft - X_dft| = {worst:.3e}");
    assert!(worst < 1e-6, "FFT mismatch: {worst}");
    println!("distributed FFT matches the naive DFT — PASS");
}
