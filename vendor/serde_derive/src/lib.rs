//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-tree serde
//! stand-in.
//!
//! `syn`/`quote` are unavailable in this hermetic workspace, so the input is
//! parsed directly from the `proc_macro` token stream and the impl is emitted
//! as source text. Only the shapes this workspace actually derives are
//! supported — named-field structs and enums of unit / named-field variants,
//! no generics — anything else produces a compile error naming the
//! limitation.
//!
//! Supported attribute: `#[serde(default)]` on a struct field (missing field
//! deserializes via `Default::default()`). Other `#[serde(...)]` attributes
//! are rejected rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    /// `#[serde(default)]`: missing field deserializes to `Default::default()`.
    default: bool,
}

struct Variant {
    name: String,
    /// `None` for a unit variant, field list for a named-field variant.
    fields: Option<Vec<Field>>,
}

enum Shape {
    Struct(Vec<Field>),
    /// Tuple struct with this many fields (newtype when 1).
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let (name, shape) = match parse(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            let escaped = msg.replace('\\', "\\\\").replace('"', "\\\"");
            return format!("::std::compile_error!(\"{escaped}\");")
                .parse()
                .expect("compile_error tokens");
        }
    };
    let body = match (which, &shape) {
        (Trait::Serialize, Shape::Struct(fields)) => gen_struct_ser(&name, fields),
        (Trait::Serialize, Shape::TupleStruct(n)) => gen_tuple_ser(&name, *n),
        (Trait::Serialize, Shape::Enum(variants)) => gen_enum_ser(&name, variants),
        (Trait::Deserialize, Shape::Struct(fields)) => gen_struct_de(&name, fields),
        (Trait::Deserialize, Shape::TupleStruct(n)) => gen_tuple_de(&name, *n),
        (Trait::Deserialize, Shape::Enum(variants)) => gen_enum_de(&name, variants),
    };
    body.parse().expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs(&tokens, &mut i)?;
    skip_visibility(&tokens, &mut i);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive: generic type `{name}` is not supported"
        ));
    }

    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => match kw.as_str() {
            "struct" => Shape::Struct(parse_fields(g.stream())?),
            "enum" => Shape::Enum(parse_variants(g.stream())?),
            other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && kw == "struct" => {
            Shape::TupleStruct(count_tuple_fields(g.stream()))
        }
        _ => {
            return Err(format!(
                "serde stand-in derive: `{name}` must be a braced {kw} or tuple struct"
            ))
        }
    };
    Ok((name, shape))
}

/// Skip attributes; returns the `serde(...)` attribute arguments seen, as
/// flat identifier strings (e.g. `["default"]`).
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<String>, String> {
    let mut serde_args = Vec::new();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        let group = match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g.stream(),
            other => return Err(format!("malformed attribute: {other:?}")),
        };
        *i += 1;
        let inner: Vec<TokenTree> = group.into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                match inner.get(1) {
                    Some(TokenTree::Group(args)) if args.delimiter() == Delimiter::Parenthesis => {
                        for tt in args.stream() {
                            match tt {
                                TokenTree::Ident(arg) => serde_args.push(arg.to_string()),
                                TokenTree::Punct(ref p) if p.as_char() == ',' => {}
                                other => {
                                    return Err(format!(
                                        "unsupported serde attribute token: {other}"
                                    ))
                                }
                            }
                        }
                    }
                    other => return Err(format!("malformed serde attribute: {other:?}")),
                }
            }
        }
    }
    Ok(serde_args)
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    take_attrs(tokens, i).map(drop)
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // `pub(crate)`, `pub(super)`, ...
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let serde_args = take_attrs(&tokens, &mut i)?;
        let mut default = false;
        for arg in serde_args {
            match arg.as_str() {
                "default" => default = true,
                other => {
                    return Err(format!(
                        "serde stand-in derive: unsupported attribute `#[serde({other})]`"
                    ))
                }
            }
        }
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        // Consume the type: everything until a comma outside angle brackets.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Number of fields in a tuple-struct body (top-level commas + trailing
/// element, angle-bracket aware).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut fields = 0;
    let mut angle_depth = 0i32;
    let mut in_field = false;
    for tt in body {
        match tt {
            TokenTree::Punct(ref p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(ref p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(ref p) if p.as_char() == ',' && angle_depth == 0 => {
                in_field = false;
            }
            _ => {
                if !in_field {
                    fields += 1;
                    in_field = true;
                }
            }
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Variant attributes (e.g. `#[default]`) carry no serde meaning here.
        let serde_args = take_attrs(&tokens, &mut i)?;
        if !serde_args.is_empty() {
            return Err(
                "serde stand-in derive: serde attributes on enum variants unsupported".into(),
            );
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_fields(g.stream())?;
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde stand-in derive: tuple variant `{name}` unsupported (use named fields)"
                ))
            }
            _ => None,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => return Err(format!("expected `,` after variant, found {other:?}")),
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------------

const IMPL_HEADER: &str = "#[automatically_derived]\n#[allow(clippy::all, clippy::pedantic)]\n";

fn ser_fields(receiver: &str, fields: &[Field]) -> String {
    let mut out = String::from("{ let mut fields: ::std::vec::Vec<(::std::string::String, serde::Value)> = ::std::vec::Vec::new();\n");
    for f in fields {
        out.push_str(&format!(
            "fields.push((::std::string::String::from(\"{n}\"), serde::Serialize::serialize({receiver}{n})));\n",
            n = f.name
        ));
    }
    out.push_str("serde::Value::Object(fields) }");
    out
}

fn gen_struct_ser(name: &str, fields: &[Field]) -> String {
    format!(
        "{IMPL_HEADER}impl serde::Serialize for {name} {{\n\
         fn serialize(&self) -> serde::Value {}\n}}",
        ser_fields("&self.", fields)
    )
}

fn gen_struct_de(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    for f in fields {
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(serde::Error::custom(\
                 \"{name}: missing field `{n}`\"))",
                n = f.name
            )
        };
        body.push_str(&format!(
            "{n}: match serde::get_field(obj, \"{n}\") {{\n\
             ::std::option::Option::Some(v) => serde::Deserialize::deserialize(v)?,\n\
             ::std::option::Option::None => {missing},\n}},\n",
            n = f.name
        ));
    }
    format!(
        "{IMPL_HEADER}impl serde::Deserialize for {name} {{\n\
         fn deserialize(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
         let obj = v.as_object().ok_or_else(|| serde::Error::custom(\"{name}: expected object\"))?;\n\
         ::std::result::Result::Ok({name} {{\n{body}}})\n}}\n}}"
    )
}

fn gen_tuple_ser(name: &str, n: usize) -> String {
    let body = if n == 1 {
        // Newtype: serialize transparently as the inner value (serde's
        // newtype-struct convention).
        "serde::Serialize::serialize(&self.0)".to_string()
    } else {
        let items: Vec<String> = (0..n)
            .map(|i| format!("serde::Serialize::serialize(&self.{i})"))
            .collect();
        format!("serde::Value::Array(vec![{}])", items.join(", "))
    };
    format!(
        "{IMPL_HEADER}impl serde::Serialize for {name} {{\n\
         fn serialize(&self) -> serde::Value {{ {body} }}\n}}"
    )
}

fn gen_tuple_de(name: &str, n: usize) -> String {
    let body = if n == 1 {
        format!("::std::result::Result::Ok({name}(serde::Deserialize::deserialize(v)?))")
    } else {
        let items: Vec<String> = (0..n)
            .map(|i| format!("serde::Deserialize::deserialize(&items[{i}])?"))
            .collect();
        format!(
            "let items = v.as_array().ok_or_else(|| \
             serde::Error::custom(\"{name}: expected array\"))?;\n\
             if items.len() != {n} {{\n\
             return ::std::result::Result::Err(serde::Error::custom(\
             \"{name}: expected {n} elements\"));\n}}\n\
             ::std::result::Result::Ok({name}({items}))",
            items = items.join(", ")
        )
    };
    format!(
        "{IMPL_HEADER}impl serde::Deserialize for {name} {{\n\
         fn deserialize(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
         {body}\n}}\n}}"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        match &v.fields {
            None => arms.push_str(&format!(
                "{name}::{v} => serde::Value::Str(::std::string::String::from(\"{v}\")),\n",
                v = v.name
            )),
            Some(fields) => {
                let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                arms.push_str(&format!(
                    "{name}::{v} {{ {binds} }} => {{\n\
                     let inner = {ser};\n\
                     serde::Value::Object(vec![(::std::string::String::from(\"{v}\"), inner)])\n}}\n",
                    v = v.name,
                    binds = bindings.join(", "),
                    ser = ser_fields("", fields)
                ));
            }
        }
    }
    format!(
        "{IMPL_HEADER}impl serde::Serialize for {name} {{\n\
         fn serialize(&self) -> serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        match &v.fields {
            None => unit_arms.push_str(&format!(
                "\"{v}\" => return ::std::result::Result::Ok({name}::{v}),\n",
                v = v.name
            )),
            Some(fields) => {
                let mut body = String::new();
                for f in fields {
                    let missing = if f.default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return ::std::result::Result::Err(serde::Error::custom(\
                             \"{name}::{v}: missing field `{n}`\"))",
                            v = v.name,
                            n = f.name
                        )
                    };
                    body.push_str(&format!(
                        "{n}: match serde::get_field(obj, \"{n}\") {{\n\
                         ::std::option::Option::Some(fv) => serde::Deserialize::deserialize(fv)?,\n\
                         ::std::option::Option::None => {missing},\n}},\n",
                        n = f.name
                    ));
                }
                tagged_arms.push_str(&format!(
                    "\"{v}\" => {{\n\
                     let obj = inner.as_object().ok_or_else(|| \
                     serde::Error::custom(\"{name}::{v}: expected object\"))?;\n\
                     return ::std::result::Result::Ok({name}::{v} {{\n{body}}});\n}}\n",
                    v = v.name
                ));
            }
        }
    }
    format!(
        "{IMPL_HEADER}impl serde::Deserialize for {name} {{\n\
         fn deserialize(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
         if let ::std::option::Option::Some(s) = v.as_str() {{\n\
         match s {{\n{unit_arms}\
         _ => return ::std::result::Result::Err(serde::Error::custom(\
         ::std::format!(\"{name}: unknown variant `{{s}}`\"))),\n}}\n}}\n\
         if let ::std::option::Option::Some(fields) = v.as_object() {{\n\
         if fields.len() == 1 {{\n\
         let (tag, inner) = &fields[0];\n\
         let _ = inner;\n\
         match tag.as_str() {{\n{tagged_arms}\
         _ => {{}}\n}}\n}}\n}}\n\
         ::std::result::Result::Err(serde::Error::custom(\
         ::std::format!(\"{name}: unrecognized value {{v:?}}\")))\n}}\n}}"
    )
}
