//! Hermetic in-tree stand-in for `serde_json`, matching the call sites this
//! workspace uses: [`to_string`], [`to_string_pretty`], and [`from_str`],
//! over the in-tree serde stand-in's [`Value`] model.
//!
//! Output conventions follow real `serde_json` where observable: two-space
//! pretty indentation, minimal string escapes, non-finite floats emitted as
//! `null`.

pub use serde::Value;
use serde::{Deserialize, Error, Serialize};

/// Compact JSON encoding of any `Serialize` type.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Pretty JSON encoding (two-space indent) of any `Serialize` type.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::deserialize(&parse_value(s)?)
}

/// Parse JSON text into a raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), items.len(), indent, depth, |o, x, d| {
                write_value(o, x, indent, d)
            })
        }
        Value::Object(fields) => {
            write_seq(
                out,
                fields.iter(),
                fields.len(),
                indent,
                depth,
                |o, (k, x), d| {
                    write_string(o, k);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    write_value(o, x, indent, d);
                },
            );
        }
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) where
    I::Item: IsObjectEntry,
{
    let (open, close) = if I::Item::IS_ENTRY {
        ('{', '}')
    } else {
        ('[', ']')
    };
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

/// Picks `{}` vs `[]` delimiters for [`write_seq`] at compile time.
trait IsObjectEntry {
    const IS_ENTRY: bool;
}

impl IsObjectEntry for &Value {
    const IS_ENTRY: bool = false;
}

impl IsObjectEntry for &(String, Value) {
    const IS_ENTRY: bool = true;
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` on f64 prints the shortest text that round-trips; integral values
    // get an explicit `.0` so the value re-parses as a float.
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: peek for a `\uXXXX` low half.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| {
                                Error::custom(format!("bad \\u escape at byte {}", self.pos))
                            })?);
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 character (input is a &str, so
                    // char boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::custom("bad utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits after `\u`; leaves `pos` on the final digit.
    fn hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::custom("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    struct Point {
        label: String,
        xy: Vec<(f64, f64)>,
        count: u64,
    }

    #[test]
    fn pretty_output_shape() {
        let p = Point {
            label: "a/b \"q\"".into(),
            xy: vec![(4.0, 10.25)],
            count: 3,
        };
        let s = to_string_pretty(&p).unwrap();
        assert!(s.contains("\"label\": \"a/b \\\"q\\\"\""));
        assert!(s.contains("  \"count\": 3"));
        assert!(
            s.contains("4.0"),
            "integral floats keep a decimal point: {s}"
        );
        assert!(s.ends_with('}'));
    }

    #[test]
    fn roundtrip_through_text() {
        let p = Point {
            label: "série\n".into(),
            xy: vec![(1.5, -2.0), (0.0, 1e-3)],
            count: u64::MAX,
        };
        let compact: Point = from_str(&to_string(&p).unwrap()).unwrap();
        assert_eq!(compact, p);
        let pretty: Point = from_str(&to_string_pretty(&p).unwrap()).unwrap();
        assert_eq!(pretty, p);
    }

    #[test]
    fn parses_standard_json() {
        let v = parse_value(r#"{"a": [1, -2, 3.5, true, null], "b": {"c": "A😀"}}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr[0], Value::U64(1));
        assert_eq!(arr[1], Value::I64(-2));
        assert_eq!(arr[2], Value::F64(3.5));
        assert_eq!(arr[3], Value::Bool(true));
        assert_eq!(arr[4], Value::Null);
        let inner = obj[1].1.as_object().unwrap();
        assert_eq!(inner[0].1.as_str(), Some("A😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_value("{\"a\": }").is_err());
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value("nul").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        write_value(&mut out, &Value::F64(f64::NAN), None, 0);
        assert_eq!(out, "null");
    }
}
