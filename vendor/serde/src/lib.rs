//! Hermetic in-tree stand-in for `serde`.
//!
//! The real `serde` cannot be fetched in this build environment (no registry
//! access), and the workspace only needs a narrow slice of it: derived
//! `Serialize`/`Deserialize` on plain structs and enums, consumed by the
//! in-tree `serde_json` for figure/result emission. This crate provides that
//! slice with the same surface syntax — `use serde::{Serialize, Deserialize}`
//! plus `#[derive(Serialize, Deserialize)]` and `#[serde(default)]` — over a
//! simple self-describing [`Value`] data model instead of serde's
//! visitor-based core.
//!
//! Supported derive input shapes (everything this workspace uses):
//! * structs with named fields (any visibility),
//! * enums with unit variants and named-field variants (externally tagged,
//!   matching serde's default representation),
//! * the `#[serde(default)]` field attribute.

// Derive-generated code names this crate by its public name (`serde::...`),
// which inside the crate itself needs an explicit self-alias.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree: the intermediate form every `Serialize` impl
/// produces and every `Deserialize` impl consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (all unsigned sources, plus non-negative `i64`).
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Field order is preserved (unlike a map), so emitted JSON is stable.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Numeric coercion: any integer widens losslessly enough for the float
    /// fields used here (microsecond timings, byte counts).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::U64(u) => Some(*u as f64),
            Value::I64(i) => Some(*i as f64),
            _ => None,
        }
    }
}

/// Ordered-object field lookup (derive-generated code calls this).
pub fn get_field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialization/deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(u).map_err(|_| {
                    Error::custom(format!("{u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::U64(i as u64)
                } else {
                    Value::I64(i)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N} elements, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$i.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected tuple array, got {v:?}")))?;
                let want = 0 $(+ { let _ = stringify!($t); 1 })+;
                if items.len() != want {
                    return Err(Error::custom(format!(
                        "expected tuple of {want}, got {}",
                        items.len()
                    )));
                }
                Ok(($($t::deserialize(&items[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&42u32.serialize()), Ok(42));
        assert_eq!(i64::deserialize(&(-7i64).serialize()), Ok(-7));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(String::deserialize(&"hi".serialize()), Ok("hi".to_string()));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
    }

    #[test]
    fn integers_coerce_across_signedness() {
        // A non-negative i64 serializes as U64 and deserializes back.
        assert_eq!(i64::deserialize(&Value::U64(5)), Ok(5));
        assert_eq!(u64::deserialize(&Value::I64(5)), Ok(5));
        assert!(u64::deserialize(&Value::I64(-5)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        assert_eq!(Vec::<(f64, f64)>::deserialize(&v.serialize()), Ok(v));
        let a = [1u64, 2, 3];
        assert_eq!(<[u64; 3]>::deserialize(&a.serialize()), Ok(a));
        assert!(<[u64; 4]>::deserialize(&a.serialize()).is_err());
        assert_eq!(Option::<u32>::deserialize(&Value::Null), Ok(None));
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Inner {
        x: u64,
        label: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Outer {
        inner: Inner,
        points: Vec<(f64, f64)>,
        #[serde(default)]
        flag: bool,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Unit,
        Other,
        Tagged { batch: usize, deep: Inner },
    }

    #[test]
    fn derived_struct_roundtrips() {
        let o = Outer {
            inner: Inner {
                x: 9,
                label: "L".into(),
            },
            points: vec![(1.0, 2.0)],
            flag: true,
        };
        assert_eq!(Outer::deserialize(&o.serialize()), Ok(o));
    }

    #[test]
    fn derived_default_field_may_be_missing() {
        let o = Outer {
            inner: Inner {
                x: 1,
                label: String::new(),
            },
            points: vec![],
            flag: true,
        };
        let v = o.serialize();
        let Value::Object(mut fields) = v else {
            panic!("expected object")
        };
        fields.retain(|(k, _)| k != "flag");
        let back = Outer::deserialize(&Value::Object(fields)).unwrap();
        assert!(!back.flag, "missing #[serde(default)] field defaults");
    }

    #[test]
    fn derived_enum_roundtrips() {
        for k in [
            Kind::Unit,
            Kind::Other,
            Kind::Tagged {
                batch: 3,
                deep: Inner {
                    x: 2,
                    label: "d".into(),
                },
            },
        ] {
            assert_eq!(Kind::deserialize(&k.serialize()), Ok(k));
        }
        // Unit variants use serde's externally-tagged string form.
        assert_eq!(Kind::Unit.serialize(), Value::Str("Unit".into()));
    }

    #[test]
    fn derived_enum_rejects_unknown_variant() {
        assert!(Kind::deserialize(&Value::Str("Nope".into())).is_err());
    }
}
