//! Umbrella crate for the all-to-all suite: re-exports every workspace
//! crate under one name so examples and integration tests can depend on a
//! single package.
//!
//! * [`topo`] — machine shapes, rank mapping, communicator algebra.
//! * [`sched`] — the communication-schedule IR, validator, and data executor.
//! * [`algos`] — the all-to-all algorithms (the paper's contribution).
//! * [`netsim`] — the deterministic discrete-event network simulator.
//! * [`runtime`] — the threaded mini-MPI runtime with real data movement.
//! * [`faults`] — seeded deterministic fault injection shared by all three
//!   executors.
//! * [`lint`] — the static schedule analyzer (deadlock, buffer-race,
//!   determinism, and resource-pressure lints).
//! * [`service`] — the long-running collective service (schedule cache,
//!   job admission and batching, per-tenant isolation).
//!
//! See `README.md` for a tour and `DESIGN.md` for the architecture.

pub use a2a_core as algos;
pub use a2a_faults as faults;
pub use a2a_lint as lint;
pub use a2a_netsim as netsim;
pub use a2a_runtime as runtime;
pub use a2a_sched as sched;
pub use a2a_service as service;
pub use a2a_topo as topo;
