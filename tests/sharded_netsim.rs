//! Sharded-engine equivalence: the parallel conservative engine must
//! produce **byte-identical** reports to the sequential engine for any
//! worker count, across the paper's algorithm roster and machine shapes —
//! and stay identical (with zero causality violations) when the lookahead
//! horizon is shrunk to a sliver of its safe value.

use a2a_core::{
    A2AContext, AlgoSchedule, AlltoallAlgorithm, BruckAlltoall, ExchangeKind, HierarchicalAlltoall,
    MpichShmAlltoall, MultileaderNodeAwareAlltoall, NodeAwareAlltoall, NonblockingAlltoall,
    PairwiseAlltoall,
};
use a2a_netsim::{
    models, simulate, simulate_perturbed, simulate_sharded_perturbed, simulate_sharded_stats,
    Perturb, ShardOptions, SimOptions, SimReport,
};
use a2a_topo::{presets, Machine, ProcGrid};

/// The eight-algorithm roster of the paper's evaluation, with group sizes
/// that divide every test machine's ppn.
fn roster(ppn: usize) -> Vec<(&'static str, Box<dyn AlltoallAlgorithm>)> {
    vec![
        ("pairwise", Box::new(PairwiseAlltoall)),
        ("nonblocking", Box::new(NonblockingAlltoall)),
        ("bruck", Box::new(BruckAlltoall)),
        (
            "hierarchical",
            Box::new(HierarchicalAlltoall::new(ppn, ExchangeKind::Nonblocking)),
        ),
        (
            "node-aware",
            Box::new(NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise)),
        ),
        (
            "locality-aware",
            Box::new(NodeAwareAlltoall::locality_aware(4, ExchangeKind::Pairwise)),
        ),
        (
            "ml-node-aware",
            Box::new(MultileaderNodeAwareAlltoall::new(4, ExchangeKind::Pairwise)),
        ),
        ("mpich-shm", Box::new(MpichShmAlltoall::default())),
    ]
}

/// Four machine shapes: the generic scaled many-core preset, scaled Dane
/// (2 sockets x 4 NUMA), scaled Tuolumne (4 APUs), and a flat node with no
/// intra-node hierarchy.
fn grids() -> Vec<(&'static str, ProcGrid)> {
    vec![
        ("many-core", ProcGrid::new(presets::scaled_many_core(4, 1))),
        (
            "dane-scaled",
            ProcGrid::new(Machine::custom("dane", 4, 2, 4, 2)),
        ),
        (
            "tuolumne-scaled",
            ProcGrid::new(Machine::custom("tuolumne", 3, 4, 1, 2)),
        ),
        ("flat", ProcGrid::new(Machine::custom("flat", 8, 1, 1, 4))),
    ]
}

fn assert_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(
        a.total_us.to_bits(),
        b.total_us.to_bits(),
        "{what}: total_us diverged ({} vs {})",
        a.total_us,
        b.total_us
    );
    assert_eq!(
        a.rank_finish.len(),
        b.rank_finish.len(),
        "{what}: rank count"
    );
    for (r, (x, y)) in a.rank_finish.iter().zip(&b.rank_finish).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: rank {r} finish time");
    }
    for (i, (x, y)) in a.phase_max_us.iter().zip(&b.phase_max_us).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: phase {i} max");
    }
    for (i, (x, y)) in a.phase_mean_us.iter().zip(&b.phase_mean_us).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: phase {i} mean");
    }
    assert_eq!(a.msgs_per_level, b.msgs_per_level, "{what}: msgs_per_level");
    assert_eq!(
        a.bytes_per_level, b.bytes_per_level,
        "{what}: bytes_per_level"
    );
}

/// Core identity sweep: roster x machine shapes x worker counts 1/2/4/8,
/// one eager and one rendezvous block size.
#[test]
fn sharded_byte_identical_across_roster_and_topologies() {
    let model = models::dane();
    let opts = SimOptions::default();
    for (gname, grid) in grids() {
        let ppn = grid.machine().ppn();
        for (aname, algo) in roster(ppn) {
            for bytes in [256u64, 4096] {
                let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(grid.clone(), bytes));
                let seq = simulate(&sched, &grid, &model, &opts)
                    .unwrap_or_else(|e| panic!("{gname}/{aname}/{bytes}: {e}"));
                for workers in [1usize, 2, 4, 8] {
                    let sh = simulate_sharded_perturbed(
                        &sched,
                        &grid,
                        &model,
                        &opts,
                        &Perturb::default(),
                        &ShardOptions::with_workers(workers),
                    )
                    .unwrap_or_else(|e| panic!("{gname}/{aname}/{bytes} x{workers}: {e}"));
                    assert_identical(&seq, &sh, &format!("{gname}/{aname}/{bytes} x{workers}"));
                }
            }
        }
    }
}

/// Identity must survive jitter and perturbations: the noise streams are
/// per-rank functions of the seed, not of the thread interleaving.
#[test]
fn sharded_byte_identical_under_jitter_and_faults() {
    let model = models::dane();
    let grid = ProcGrid::new(presets::scaled_many_core(4, 1));
    let opts = SimOptions {
        jitter: 0.05,
        seed: 0xA2A,
    };
    let perturb = Perturb {
        rank_slowdown: vec![1.0, 6.0, 1.0, 1.0, 2.0],
        link_multiplier: vec![(0, 2, 4.0), (3, 1, 2.5)],
    };
    for (aname, algo) in roster(grid.machine().ppn()) {
        let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(grid.clone(), 1024));
        let seq = simulate_perturbed(&sched, &grid, &model, &opts, &perturb)
            .unwrap_or_else(|e| panic!("{aname}: {e}"));
        for workers in [2usize, 4, 8] {
            let sh = simulate_sharded_perturbed(
                &sched,
                &grid,
                &model,
                &opts,
                &perturb,
                &ShardOptions::with_workers(workers),
            )
            .unwrap_or_else(|e| panic!("{aname} x{workers}: {e}"));
            assert_identical(&seq, &sh, &format!("{aname} x{workers} jittered"));
        }
    }
}

/// Lookahead safety: shrinking the horizon to 5% of the safe floor forces
/// the workers to synchronize far more often, but must never reorder
/// events (zero causality violations) or change a single output bit.
#[test]
fn tight_lookahead_never_violates_causality() {
    let model = models::dane();
    let grid = ProcGrid::new(presets::scaled_many_core(4, 1));
    let opts = SimOptions::default();
    for (aname, algo) in roster(grid.machine().ppn()) {
        for bytes in [256u64, 4096] {
            let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(grid.clone(), bytes));
            let seq = simulate(&sched, &grid, &model, &opts)
                .unwrap_or_else(|e| panic!("{aname}/{bytes}: {e}"));
            let (sh, stats) = simulate_sharded_stats(
                &sched,
                &grid,
                &model,
                &opts,
                &Perturb::default(),
                &ShardOptions {
                    workers: 4,
                    lookahead_scale: 0.05,
                },
            )
            .unwrap_or_else(|e| panic!("{aname}/{bytes} tight: {e}"));
            assert_eq!(
                stats.causality_violations, 0,
                "{aname}/{bytes}: horizon unsound at minimum lookahead"
            );
            assert_eq!(stats.shards, 4, "{aname}/{bytes}: expected 4 shards");
            assert!(stats.cross_events > 0, "{aname}/{bytes}: no cross traffic");
            assert_identical(&seq, &sh, &format!("{aname}/{bytes} tight lookahead"));
        }
    }
}
