//! Properties of the discrete-event simulator across algorithms: it must
//! be deterministic, respect analytic lower bounds, behave monotonically
//! in message size and node count, and account phases consistently.

use alltoall_suite::algos::*;
use alltoall_suite::netsim::{analytic, models, simulate, simulate_min_of, SimOptions, SimReport};
use alltoall_suite::sched::validate;
use alltoall_suite::topo::{presets, ProcGrid};

fn roster() -> Vec<Box<dyn AlltoallAlgorithm>> {
    vec![
        Box::new(PairwiseAlltoall),
        Box::new(NonblockingAlltoall),
        Box::new(BruckAlltoall),
        Box::new(BatchedAlltoall::new(4)),
        Box::new(HierarchicalAlltoall::new(8, ExchangeKind::Pairwise)),
        Box::new(HierarchicalAlltoall::new(4, ExchangeKind::Nonblocking)),
        Box::new(NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise)),
        Box::new(NodeAwareAlltoall::locality_aware(4, ExchangeKind::Pairwise)),
        Box::new(MultileaderNodeAwareAlltoall::new(4, ExchangeKind::Pairwise)),
        Box::new(MpichShmAlltoall::default()),
        Box::new(SystemMpiAlltoall::default()),
    ]
}

fn grid(nodes: usize) -> ProcGrid {
    ProcGrid::new(presets::scaled_many_core(nodes, 1)) // 8 ppn
}

fn sim(algo: &dyn AlltoallAlgorithm, grid: &ProcGrid, s: u64) -> SimReport {
    let sched = AlgoSchedule::new(algo, A2AContext::new(grid.clone(), s));
    simulate(&sched, grid, &models::dane(), &SimOptions::default())
        .unwrap_or_else(|e| panic!("{}: {e}", algo.name()))
}

#[test]
fn simulation_is_deterministic_for_all_algorithms() {
    let g = grid(4);
    for algo in roster() {
        let a = sim(algo.as_ref(), &g, 64);
        let b = sim(algo.as_ref(), &g, 64);
        assert_eq!(a.total_us, b.total_us, "{}", algo.name());
        assert_eq!(a.rank_finish, b.rank_finish, "{}", algo.name());
    }
}

#[test]
fn time_is_monotone_in_block_size() {
    let g = grid(4);
    for algo in roster() {
        let mut prev = 0.0;
        for s in [4u64, 64, 1024, 8192] {
            let t = sim(algo.as_ref(), &g, s).total_us;
            assert!(
                t >= prev,
                "{}: time decreased from {prev} to {t} at s={s}",
                algo.name()
            );
            prev = t;
        }
    }
}

#[test]
fn time_grows_with_node_count() {
    // Fixed block size: more nodes means more total data per rank.
    for algo in roster() {
        let t2 = sim(algo.as_ref(), &grid(2), 256).total_us;
        let t8 = sim(algo.as_ref(), &grid(8), 256).total_us;
        assert!(
            t8 > t2,
            "{}: {t8} at 8 nodes not above {t2} at 2 nodes",
            algo.name()
        );
    }
}

#[test]
fn simulated_time_at_least_analytic_lower_bound() {
    let g = grid(4);
    let model = models::dane();
    for algo in roster() {
        for s in [8u64, 512, 4096] {
            let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(g.clone(), s));
            let stats = validate(&sched, &g).unwrap();
            let bound = analytic::lower_bound_from_stats(&stats, &g, &model);
            let t = sim(algo.as_ref(), &g, s).total_us;
            assert!(
                t >= bound * 0.999,
                "{} s={s}: {t} below bound {bound}",
                algo.name()
            );
        }
    }
}

#[test]
fn phase_times_sum_close_to_rank_finish() {
    // Per-rank phase times partition the rank's elapsed time, so the
    // phase means must sum to the mean finish.
    let g = grid(4);
    for algo in roster() {
        let rep = sim(algo.as_ref(), &g, 256);
        let mean_finish = rep.rank_finish.iter().sum::<f64>() / rep.rank_finish.len() as f64;
        let phase_sum: f64 = rep.phase_mean_us.iter().sum();
        assert!(
            (phase_sum - mean_finish).abs() < 1e-6 * mean_finish.max(1.0),
            "{}: phases sum {phase_sum} vs mean finish {mean_finish}",
            algo.name()
        );
    }
}

#[test]
fn min_of_runs_is_no_worse_than_any_single_seed() {
    let g = grid(2);
    let model = models::dane();
    let algo = NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise);
    let sched = AlgoSchedule::new(&algo, A2AContext::new(g.clone(), 128));
    let min3 = simulate_min_of(&sched, &g, &model, 3, 7).unwrap().total_us;
    for i in 0..3u64 {
        let one = simulate(
            &sched,
            &g,
            &model,
            &SimOptions {
                jitter: 0.05,
                seed: 7 + i,
            },
        )
        .unwrap()
        .total_us;
        assert!(min3 <= one + 1e-9);
    }
}

#[test]
fn faster_network_is_faster_collective() {
    // Tuolumne's Slingshot model should beat Dane's Omni-Path on the same
    // schedule and machine shape.
    let g = grid(4);
    let algo = NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise);
    let sched = AlgoSchedule::new(&algo, A2AContext::new(g.clone(), 2048));
    let dane = simulate(&sched, &g, &models::dane(), &SimOptions::default())
        .unwrap()
        .total_us;
    let tuo = simulate(&sched, &g, &models::tuolumne(), &SimOptions::default())
        .unwrap()
        .total_us;
    assert!(
        tuo < dane,
        "slingshot {tuo} not faster than omni-path {dane}"
    );
}

#[test]
fn engine_traffic_counters_agree_with_static_validator() {
    // Two independent implementations of the same accounting — the DES
    // transport layer and the static validator — must agree exactly.
    let g = grid(4);
    for algo in roster() {
        let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(g.clone(), 128));
        let stats = validate(&sched, &g).unwrap();
        let rep = sim(algo.as_ref(), &g, 128);
        assert_eq!(
            rep.msgs_per_level,
            stats.msgs,
            "{}: message counts disagree",
            algo.name()
        );
        assert_eq!(
            rep.bytes_per_level,
            stats.bytes,
            "{}: byte counts disagree",
            algo.name()
        );
    }
}

#[test]
fn internode_phase_dominates_node_aware_at_all_sizes() {
    // The paper's Figure 14/15 conclusion.
    let g = grid(8);
    let algo = NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise);
    for s in [4u64, 256, 4096] {
        let rep = sim(&algo, &g, s);
        let inter = rep.phase("inter-a2a").unwrap();
        let intra = rep.phase("intra-a2a").unwrap();
        assert!(
            inter > intra,
            "s={s}: inter {inter} not above intra {intra}"
        );
    }
}
