//! End-to-end runtime tests: the threaded mini-MPI must agree byte-for-byte
//! with the sequential data executor for every algorithm, and its
//! point-to-point layer must behave like MPI.

use alltoall_suite::algos::*;
use alltoall_suite::runtime::ThreadWorld;
use alltoall_suite::sched::{fill_alltoall_sbuf, run_and_verify, ScheduleSource};
use alltoall_suite::topo::{Machine, ProcGrid};

fn thread_outputs(algo: &dyn AlltoallAlgorithm, grid: &ProcGrid, s: u64) -> Vec<Vec<u8>> {
    let n = grid.world_size();
    let total = (n as u64 * s) as usize;
    ThreadWorld::run(n, move |comm| {
        let mut sbuf = vec![0u8; total];
        let mut rbuf = vec![0u8; total];
        fill_alltoall_sbuf(comm.rank(), n, s, &mut sbuf);
        comm.alltoall(algo, grid, s, &sbuf, &mut rbuf).unwrap();
        rbuf
    })
}

#[test]
fn runtime_matches_data_executor_exactly() {
    let grid = ProcGrid::new(Machine::custom("e2e", 2, 2, 1, 3)); // 12 ranks
    let s = 16u64;
    let algos: Vec<Box<dyn AlltoallAlgorithm>> = vec![
        Box::new(PairwiseAlltoall),
        Box::new(BruckAlltoall),
        Box::new(HierarchicalAlltoall::new(3, ExchangeKind::Nonblocking)),
        Box::new(NodeAwareAlltoall::locality_aware(2, ExchangeKind::Pairwise)),
        Box::new(MultileaderNodeAwareAlltoall::new(2, ExchangeKind::Bruck)),
        Box::new(MpichShmAlltoall::default()),
    ];
    for algo in &algos {
        let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(grid.clone(), s));
        let exec = run_and_verify(&sched, s).unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        let threads = thread_outputs(algo.as_ref(), &grid, s);
        for (r, (a, b)) in exec.rbufs.iter().zip(&threads).enumerate() {
            assert_eq!(a, b, "{} rank {r} differs between executors", algo.name());
        }
    }
}

#[test]
fn runtime_handles_byte_sized_blocks() {
    let grid = ProcGrid::new(Machine::custom("e2e", 2, 1, 1, 2));
    let out = thread_outputs(&PairwiseAlltoall, &grid, 1);
    assert!(out.iter().all(|b| b.len() == 4));
}

#[test]
fn repeated_collectives_on_one_world() {
    // Tags must not leak between successive collectives.
    let grid = ProcGrid::new(Machine::custom("e2e", 2, 1, 1, 2));
    let g = &grid;
    let n = grid.world_size();
    ThreadWorld::run(n, move |comm| {
        for round in 0..5u64 {
            let s = 8 + round; // varying block size each round
            let total = (n as u64 * s) as usize;
            let mut sbuf = vec![0u8; total];
            let mut rbuf = vec![0u8; total];
            fill_alltoall_sbuf(comm.rank(), n, s, &mut sbuf);
            comm.alltoall(
                &NodeAwareAlltoall::node_aware(ExchangeKind::Nonblocking),
                g,
                s,
                &sbuf,
                &mut rbuf,
            )
            .unwrap();
            alltoall_suite::sched::check_alltoall_rbuf(comm.rank(), n, s, &rbuf)
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            comm.barrier().unwrap();
        }
    });
}

#[test]
fn mixed_algorithms_in_sequence() {
    // Different algorithms back-to-back on the same world must not
    // interfere (distinct tag spaces per phase, all messages drained).
    let grid = ProcGrid::new(Machine::custom("e2e", 2, 2, 1, 2)); // 8 ranks
    let g = &grid;
    let n = grid.world_size();
    ThreadWorld::run(n, move |comm| {
        let algos: Vec<Box<dyn AlltoallAlgorithm>> = vec![
            Box::new(BruckAlltoall),
            Box::new(MultileaderNodeAwareAlltoall::new(2, ExchangeKind::Pairwise)),
            Box::new(SystemMpiAlltoall::default()),
        ];
        let s = 8u64;
        let total = (n as u64 * s) as usize;
        for algo in &algos {
            let mut sbuf = vec![0u8; total];
            let mut rbuf = vec![0u8; total];
            fill_alltoall_sbuf(comm.rank(), n, s, &mut sbuf);
            comm.alltoall(algo.as_ref(), g, s, &sbuf, &mut rbuf)
                .unwrap();
            alltoall_suite::sched::check_alltoall_rbuf(comm.rank(), n, s, &rbuf)
                .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        }
    });
}

#[test]
fn schedule_source_adapter_is_consistent() {
    // AlgoSchedule must report buffers/programs consistent with the trait
    // methods it wraps (guards against adapter drift).
    let grid = ProcGrid::new(Machine::custom("e2e", 2, 1, 1, 3));
    let ctx = A2AContext::new(grid, 8);
    let algo = NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise);
    let sched = AlgoSchedule::new(&algo, ctx.clone());
    assert_eq!(sched.nranks(), ctx.n());
    for r in 0..ctx.n() as u32 {
        assert_eq!(sched.buffers(r), algo.buffers(&ctx, r));
        assert_eq!(sched.build_rank(r), algo.build_rank(&ctx, r));
    }
    assert_eq!(sched.phase_names(), algo.phase_names());
}
