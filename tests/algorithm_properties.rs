//! Randomized property tests: random machine shapes, group sizes, and block
//! sizes must always yield (a) structurally valid schedules and (b) exact
//! transposes, for every algorithm family.
//!
//! Ported from proptest to the in-tree seeded runner (`a2a-testutil`): every
//! suite runs 64 generated cases (the proptest versions ran 48) and a failure
//! prints the case seed plus the generated parameters, with the environment
//! settings to replay exactly that case.

use a2a_testutil::{run_cases, Rng};
use alltoall_suite::algos::*;
use alltoall_suite::sched::{run_and_verify, validate};
use alltoall_suite::topo::{Machine, ProcGrid};

const CASES: usize = 64;

/// Random small machine: up to ~48 ranks so the data executor stays fast.
fn arb_machine(rng: &mut Rng) -> ProcGrid {
    let nodes = rng.range_usize(1, 5);
    let sockets = rng.range_usize(1, 3);
    let numa = rng.range_usize(1, 3);
    let cores = rng.range_usize(1, 4);
    ProcGrid::new(Machine::custom("prop", nodes, sockets, numa, cores))
}

fn arb_inner(rng: &mut Rng) -> ExchangeKind {
    match rng.range_usize(0, 4) {
        0 => ExchangeKind::Pairwise,
        1 => ExchangeKind::Nonblocking,
        2 => ExchangeKind::Bruck,
        _ => ExchangeKind::Batched {
            batch: rng.range_usize(1, 6),
        },
    }
}

fn check(algo: &dyn AlltoallAlgorithm, grid: &ProcGrid, s: u64) -> Result<(), String> {
    let sched = AlgoSchedule::new(algo, A2AContext::new(grid.clone(), s));
    validate(&sched, grid).map_err(|e| format!("{} invalid: {e}", algo.name()))?;
    run_and_verify(&sched, s).map_err(|e| format!("{} wrong: {e}", algo.name()))?;
    Ok(())
}

#[test]
fn flat_exchanges_always_transpose() {
    run_cases(
        "flat_exchanges_always_transpose",
        CASES,
        |rng| (arb_machine(rng), arb_inner(rng), rng.range_u64(1, 40)),
        |(grid, inner, s)| match *inner {
            ExchangeKind::Pairwise => check(&PairwiseAlltoall, grid, *s),
            ExchangeKind::Nonblocking => check(&NonblockingAlltoall, grid, *s),
            ExchangeKind::Bruck => check(&BruckAlltoall, grid, *s),
            ExchangeKind::Batched { batch } => check(&BatchedAlltoall::new(batch), grid, *s),
        },
    );
}

#[test]
fn hierarchical_always_transposes() {
    run_cases(
        "hierarchical_always_transposes",
        CASES,
        |rng| {
            let grid = arb_machine(rng);
            let ppl = rng.divisor_of(grid.machine().ppn());
            (grid, ppl, arb_inner(rng), rng.range_u64(1, 24))
        },
        |(grid, ppl, inner, s)| check(&HierarchicalAlltoall::new(*ppl, *inner), grid, *s),
    );
}

#[test]
fn locality_aware_always_transposes() {
    run_cases(
        "locality_aware_always_transposes",
        CASES,
        |rng| {
            let grid = arb_machine(rng);
            let ppg = rng.divisor_of(grid.machine().ppn());
            (grid, ppg, arb_inner(rng), rng.range_u64(1, 24))
        },
        |(grid, ppg, inner, s)| check(&NodeAwareAlltoall::locality_aware(*ppg, *inner), grid, *s),
    );
}

#[test]
fn mlna_always_transposes() {
    run_cases(
        "mlna_always_transposes",
        CASES,
        |rng| {
            let grid = arb_machine(rng);
            let ppl = rng.divisor_of(grid.machine().ppn());
            (grid, ppl, arb_inner(rng), rng.range_u64(1, 24))
        },
        |(grid, ppl, inner, s)| check(&MultileaderNodeAwareAlltoall::new(*ppl, *inner), grid, *s),
    );
}

#[test]
fn mpich_shm_always_transposes() {
    run_cases(
        "mpich_shm_always_transposes",
        CASES,
        |rng| (arb_machine(rng), arb_inner(rng), rng.range_u64(1, 24)),
        |(grid, inner, s)| check(&MpichShmAlltoall::new(*inner), grid, *s),
    );
}

#[test]
fn binomial_trees_always_transpose() {
    run_cases(
        "binomial_trees_always_transpose",
        CASES,
        |rng| {
            let grid = arb_machine(rng);
            let ppl = rng.divisor_of(grid.machine().ppn());
            (grid, ppl, rng.range_u64(1, 16))
        },
        |(grid, ppl, s)| {
            check(
                &HierarchicalAlltoall::new(*ppl, ExchangeKind::Pairwise)
                    .with_gather(GatherKind::Binomial),
                grid,
                *s,
            )?;
            check(
                &MultileaderNodeAwareAlltoall::new(*ppl, ExchangeKind::Pairwise)
                    .with_gather(GatherKind::Binomial),
                grid,
                *s,
            )
        },
    );
}

#[test]
fn network_volume_is_exactly_minimal_for_aggregators() {
    run_cases(
        "network_volume_is_exactly_minimal_for_aggregators",
        CASES,
        |rng| {
            let grid = arb_machine(rng);
            let group = rng.divisor_of(grid.machine().ppn());
            (grid, group, rng.range_u64(1, 16))
        },
        |(grid, group, s)| {
            let m = grid.machine();
            let min = (m.nodes * (m.nodes - 1)) as u64 * (m.ppn() * m.ppn()) as u64 * s;
            for algo in [
                Box::new(NodeAwareAlltoall::locality_aware(
                    *group,
                    ExchangeKind::Pairwise,
                )) as Box<dyn AlltoallAlgorithm>,
                Box::new(MultileaderNodeAwareAlltoall::new(
                    *group,
                    ExchangeKind::Pairwise,
                )),
                Box::new(HierarchicalAlltoall::new(*group, ExchangeKind::Pairwise)),
            ] {
                let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(grid.clone(), *s));
                let st = validate(&sched, grid).map_err(|e| format!("{}: {e}", algo.name()))?;
                if st.inter_node_bytes() != min {
                    return Err(format!(
                        "{}: inter-node bytes {} != minimal {min}",
                        algo.name(),
                        st.inter_node_bytes()
                    ));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn bruck_handles_any_world_size() {
    run_cases(
        "bruck_handles_any_world_size",
        CASES,
        |rng| (rng.range_usize(1, 40), rng.range_u64(1, 16)),
        |(m, s)| {
            let grid = ProcGrid::new(Machine::custom("flat", *m, 1, 1, 1));
            check(&BruckAlltoall, &grid, *s)
        },
    );
}
