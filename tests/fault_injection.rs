//! Fault-injection properties across the executors: a seeded [`FaultPlan`]
//! either recovers transparently (the collective is still an exact
//! transpose) or fails loudly with a typed error naming the injected
//! fault; the watchdog fires within its deadline naming every blocked
//! rank; and the whole pipeline is deterministic for a fixed seed.

use std::sync::Arc;
use std::time::{Duration, Instant};

use alltoall_suite::algos::{
    A2AContext, AlgoSchedule, AlltoallAlgorithm, BruckAlltoall, ExchangeKind, HierarchicalAlltoall,
    MpichShmAlltoall, MultileaderNodeAwareAlltoall, NodeAwareAlltoall, PairwiseAlltoall,
};
use alltoall_suite::faults::{FaultPlan, FaultSpec};
use alltoall_suite::runtime::{
    BlockedKind, ParallelExecutor, RuntimeError, ThreadWorld, WorldOptions,
};
use alltoall_suite::sched::{
    check_alltoall_rbuf, fill_alltoall_sbuf, DataExecutor, ExecError, ScheduleSource,
};
use alltoall_suite::topo::{Machine, ProcGrid};

/// 8 ranks over 2 nodes: faults cross both the intra- and inter-node paths.
fn grid8() -> ProcGrid {
    ProcGrid::new(Machine::custom("chaos", 2, 2, 1, 2))
}

fn algos() -> Vec<Box<dyn AlltoallAlgorithm>> {
    vec![
        Box::new(PairwiseAlltoall),
        Box::new(BruckAlltoall),
        Box::new(HierarchicalAlltoall::new(2, ExchangeKind::Nonblocking)),
        Box::new(NodeAwareAlltoall::locality_aware(2, ExchangeKind::Pairwise)),
        Box::new(MultileaderNodeAwareAlltoall::new(2, ExchangeKind::Bruck)),
        Box::new(MpichShmAlltoall::default()),
    ]
}

/// Run `algo` on the threaded runtime under `opts`, returning each rank's
/// receive buffer.
fn run_faulty(
    algo: &dyn AlltoallAlgorithm,
    grid: &ProcGrid,
    s: u64,
    opts: WorldOptions,
) -> Result<Vec<Vec<u8>>, RuntimeError> {
    let n = grid.world_size();
    let total = (n as u64 * s) as usize;
    ThreadWorld::run_with(n, opts, move |comm| {
        let mut sbuf = vec![0u8; total];
        let mut rbuf = vec![0u8; total];
        fill_alltoall_sbuf(comm.rank(), n, s, &mut sbuf);
        comm.alltoall(algo, grid, s, &sbuf, &mut rbuf)?;
        Ok(rbuf)
    })
}

#[test]
fn retransmit_recovers_injected_faults_for_every_algorithm() {
    // Drops, duplicates, and corruption at once: the ack window must hide
    // all of it — every algorithm still produces the exact transpose.
    let grid = grid8();
    let n = grid.world_size();
    let s = 16u64;
    let spec = FaultSpec::none()
        .with_drop(0.15)
        .with_duplicate(0.05)
        .with_corrupt(0.05);
    for seed in [1u64, 0xBAD5EED, 0xFA11] {
        let plan = Arc::new(FaultPlan::new(seed, n, spec));
        for algo in algos() {
            let opts = WorldOptions::default().with_faults(plan.clone());
            let rbufs = run_faulty(algo.as_ref(), &grid, s, opts)
                .unwrap_or_else(|e| panic!("{} seed {seed:#x}: {e}", algo.name()));
            for (r, rbuf) in rbufs.iter().enumerate() {
                check_alltoall_rbuf(r as u32, n, s, rbuf)
                    .unwrap_or_else(|e| panic!("{} seed {seed:#x} rank {r}: {e}", algo.name()));
            }
        }
    }
}

#[test]
fn parallel_mode_recovers_chaos_and_matches_sequential_bytes() {
    // The parallel rank scheduler under the same chaos seeds: retransmit
    // must hide every injected drop/duplicate/corruption, and the
    // recovered output must be byte-identical to the sequential data
    // executor's — for every algorithm, every seed, and an uneven worker
    // split (3 workers over 8 ranks).
    let grid = grid8();
    let n = grid.world_size();
    let s = 16u64;
    let spec = FaultSpec::none()
        .with_drop(0.15)
        .with_duplicate(0.05)
        .with_corrupt(0.05);
    for seed in [1u64, 0xBAD5EED, 0xFA11] {
        let plan = Arc::new(FaultPlan::new(seed, n, spec));
        for algo in algos() {
            let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(grid.clone(), s));
            let fill = |r: u32, b: &mut [u8]| fill_alltoall_sbuf(r, n, s, b);
            let sequential = DataExecutor::run(&sched, fill)
                .unwrap_or_else(|e| panic!("{} sequential: {e}", algo.name()));
            let opts = WorldOptions::default().with_faults(plan.clone());
            let parallel = ParallelExecutor::run_with(&sched, opts, 3, fill)
                .unwrap_or_else(|e| panic!("{} seed {seed:#x}: {e}", algo.name()));
            assert_eq!(
                parallel.rbufs,
                sequential.rbufs,
                "{} seed {seed:#x}: parallel-under-chaos vs sequential bytes",
                algo.name()
            );
            for (r, rbuf) in parallel.rbufs.iter().enumerate() {
                check_alltoall_rbuf(r as u32, n, s, rbuf)
                    .unwrap_or_else(|e| panic!("{} seed {seed:#x} rank {r}: {e}", algo.name()));
            }
        }
    }
}

#[test]
fn parallel_mode_without_retransmit_names_the_injected_fault() {
    let grid = grid8();
    let n = grid.world_size();
    let s = 16u64;
    let plan = Arc::new(FaultPlan::new(3, n, FaultSpec::drops(1.0)));
    let opts = WorldOptions::default()
        .with_faults(plan)
        .with_max_retransmits(0);
    let sched = AlgoSchedule::new(&PairwiseAlltoall, A2AContext::new(grid, s));
    let err = ParallelExecutor::run_with(&sched, opts, 2, |r, b| fill_alltoall_sbuf(r, n, s, b))
        .expect_err("every message dropped and no retransmit: must fail");
    match err {
        RuntimeError::MessageDropped { from, to, .. } => {
            assert!(from < n as u32 && to < n as u32, "{from} -> {to}");
            assert_ne!(from, to, "self-sends bypass the fault layer");
        }
        other => panic!("expected MessageDropped, got {other}"),
    }
}

#[test]
fn parallel_mode_dead_rank_fails_before_execution() {
    let grid = grid8();
    let n = grid.world_size();
    let s = 8u64;
    let spec = FaultSpec::none().with_dead(1.0, 1);
    let plan = Arc::new(FaultPlan::new(11, n, spec));
    let victim = plan.dead_ranks()[0];
    let opts = WorldOptions::default().with_faults(plan.clone());
    let sched = AlgoSchedule::new(&BruckAlltoall, A2AContext::new(grid, s));
    let err = ParallelExecutor::run_with(&sched, opts, 2, |r, b| fill_alltoall_sbuf(r, n, s, b))
        .expect_err("a dead rank must fail the collective");
    assert_eq!(err, RuntimeError::DeadRank { rank: victim });
}

#[test]
fn without_retransmit_the_error_names_the_injected_fault() {
    let grid = grid8();
    let n = grid.world_size();
    let plan = Arc::new(FaultPlan::new(3, n, FaultSpec::drops(1.0)));
    let opts = WorldOptions::default()
        .with_faults(plan)
        .with_max_retransmits(0);
    let err = run_faulty(&PairwiseAlltoall, &grid, 16, opts)
        .expect_err("every message dropped and no retransmit: must fail");
    match err {
        RuntimeError::MessageDropped { from, to, tag, .. } => {
            assert!(from < n as u32 && to < n as u32, "{from} -> {to}");
            assert_ne!(from, to, "self-sends bypass the fault layer");
            let _ = tag; // present in the error: replayable coordinates
        }
        other => panic!("expected MessageDropped, got {other}"),
    }
}

#[test]
fn watchdog_names_every_blocked_rank_on_a_hung_schedule() {
    // Deliberate deadlock on 8 ranks: half wait for messages nobody sends,
    // half park at a barrier that can never complete. The watchdog must
    // fire within its deadline and the error must say, per rank, what it
    // was blocked on.
    let deadline = Duration::from_millis(300);
    let opts = WorldOptions::default().with_watchdog(deadline);
    let start = Instant::now();
    let err = ThreadWorld::run_with(8, opts, |comm| {
        let me = comm.rank();
        if me < 4 {
            let mut buf = [0u8; 4];
            comm.recv((me + 1) % 8, 99, &mut buf)?;
        } else {
            comm.barrier()?;
        }
        Ok(())
    })
    .expect_err("the schedule is hung by construction");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "watchdog took {elapsed:?} for a {deadline:?} deadline"
    );
    match err {
        RuntimeError::WatchdogTimeout {
            deadline: d,
            blocked,
        } => {
            assert_eq!(d, deadline);
            let mut ranks: Vec<u32> = blocked.iter().map(|b| b.rank).collect();
            ranks.sort_unstable();
            assert_eq!(ranks, (0..8).collect::<Vec<_>>(), "all 8 ranks diagnosed");
            for b in &blocked {
                match b.kind {
                    BlockedKind::Recv { peer, tag } => {
                        assert!(b.rank < 4, "only ranks 0..4 recv");
                        assert_eq!(peer, (b.rank + 1) % 8);
                        assert_eq!(tag, 99);
                    }
                    BlockedKind::Barrier => assert!(b.rank >= 4, "only ranks 4..8 barrier"),
                }
            }
        }
        other => panic!("expected WatchdogTimeout, got {other}"),
    }
}

#[test]
fn dead_rank_fails_the_collective_on_every_rank() {
    let n = 4usize;
    let spec = FaultSpec::none().with_dead(1.0, 1);
    let plan = Arc::new(FaultPlan::new(11, n, spec));
    let victim = plan.dead_ranks()[0];
    let opts = WorldOptions::default().with_faults(plan.clone());
    let err = ThreadWorld::run_with(n, opts, |comm| comm.barrier())
        .expect_err("a dead rank must fail the world");
    assert_eq!(err, RuntimeError::DeadRank { rank: victim });
}

#[test]
fn data_executor_detects_what_the_plan_injects() {
    // The sequential executor shares the same FaultInjector: total drop
    // probability must surface as a FaultInjected error that names the
    // drops, not as a silent wrong answer.
    let grid = grid8();
    let n = grid.world_size();
    let s = 8u64;
    let sched = AlgoSchedule::new(&PairwiseAlltoall, A2AContext::new(grid, s));
    let plan = FaultPlan::new(7, n, FaultSpec::drops(1.0));
    let err = DataExecutor::run_with_faults(&sched, |r, b| fill_alltoall_sbuf(r, n, s, b), &plan)
        .expect_err("all messages dropped: the transpose cannot complete");
    match err {
        ExecError::FaultInjected { dropped, .. } => assert!(dropped > 0, "drops counted"),
        other => panic!("expected FaultInjected, got {other}"),
    }
}

#[test]
fn clean_plan_matches_plain_execution_byte_for_byte() {
    let grid = grid8();
    let n = grid.world_size();
    let s = 8u64;
    let sched = AlgoSchedule::new(&BruckAlltoall, A2AContext::new(grid, s));
    let plan = FaultPlan::new(9, n, FaultSpec::none());
    let plain =
        DataExecutor::run(&sched, |r, b| fill_alltoall_sbuf(r, n, s, b)).expect("plain run");
    let (faulty, stats) =
        DataExecutor::run_with_faults(&sched, |r, b| fill_alltoall_sbuf(r, n, s, b), &plan)
            .expect("clean injector run");
    assert!(!stats.any(), "a FaultSpec::none() plan injects nothing");
    assert_eq!(plain.rbufs, faulty.rbufs);
}

#[test]
fn fault_pipeline_is_deterministic_for_a_seed() {
    // Same seed, same schedule => identical fault fates and identical
    // bytes, run after run (the fate of a message is a pure hash of its
    // coordinates, never of thread interleaving).
    let grid = grid8();
    let n = grid.world_size();
    let s = 8u64;
    let sched = AlgoSchedule::new(&BruckAlltoall, A2AContext::new(grid.clone(), s));
    let plan = FaultPlan::new(0xD1CE, n, FaultSpec::chaos_light());
    let run = || {
        DataExecutor::run_with_faults(&sched, |r, b| fill_alltoall_sbuf(r, n, s, b), &plan)
            .map(|(res, stats)| (res.rbufs, stats))
            .map_err(|e| e.to_string())
    };
    assert_eq!(run(), run());

    // And the rank-level fates are reproducible from the seed alone.
    let again = FaultPlan::new(0xD1CE, n, FaultSpec::chaos_light());
    assert_eq!(plan.stragglers(), again.stragglers());
    assert_eq!(plan.dead_ranks(), again.dead_ranks());
    assert_eq!(
        plan.degraded_links(sched.nranks()),
        again.degraded_links(sched.nranks())
    );
}
