//! End-to-end tests of the long-running collective service: multi-tenant
//! isolation under injected faults, and byte-identity of batched service
//! execution against standalone per-job runs for the whole roster.

use std::sync::Arc;

use alltoall_suite::algos::{
    A2AContext, AlgoSchedule, AlltoallAlgorithm, BruckAlltoall, ExchangeKind, HierarchicalAlltoall,
    MpichShmAlltoall, MultileaderNodeAwareAlltoall, NodeAwareAlltoall, NonblockingAlltoall,
    PairwiseAlltoall,
};
use alltoall_suite::faults::{FaultPlan, FaultSpec};
use alltoall_suite::sched::{fill_alltoall_sbuf, DataExecutor};
use alltoall_suite::service::{BreakerConfig, JobError, JobSpec, Service, ServiceConfig};
use alltoall_suite::topo::{Machine, ProcGrid};

fn grid() -> ProcGrid {
    ProcGrid::new(Machine::custom("bench", 2, 2, 1, 2))
}

fn roster() -> Vec<Box<dyn AlltoallAlgorithm>> {
    vec![
        Box::new(PairwiseAlltoall),
        Box::new(NonblockingAlltoall),
        Box::new(BruckAlltoall),
        Box::new(HierarchicalAlltoall::new(4, ExchangeKind::Nonblocking)),
        Box::new(NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise)),
        Box::new(NodeAwareAlltoall::locality_aware(2, ExchangeKind::Pairwise)),
        Box::new(MultileaderNodeAwareAlltoall::new(2, ExchangeKind::Pairwise)),
        Box::new(MpichShmAlltoall::default()),
    ]
}

/// One chaos drill: tenant A's fault fails only A's jobs; tenant B's
/// concurrent jobs all complete. A *permanent* fault (dead rank) opens
/// A's circuit breaker — follow-ups fail fast with the root cause until
/// an explicit reset. A *transient* fault (message drops) is retried to
/// exhaustion and, as a lone failure below the breaker's sample floor,
/// leaves A open for business.
fn tenant_isolation_drill(workers: usize, spec: FaultSpec, expect_dead: bool) {
    const A: u32 = 1;
    const B: u32 = 2;
    let g = grid();
    let svc = Service::new(ServiceConfig {
        workers,
        // A cooldown no test can outlive: breaker denials below must not
        // turn into half-open probes on a slow CI machine.
        breaker: BreakerConfig {
            cooldown: std::time::Duration::from_secs(600),
            ..BreakerConfig::default()
        },
        ..Default::default()
    });
    let plan = Arc::new(FaultPlan::new(7, g.world_size(), spec));

    // Interleave B's clean traffic around A's faulted job so both tenants
    // are genuinely concurrent in the queue and on the pool.
    let b_before: Vec<_> = (0..10)
        .map(|_| svc.submit(&PairwiseAlltoall, &g, JobSpec::new(B, 64)))
        .collect();
    let poisoned = svc.submit(
        &PairwiseAlltoall,
        &g,
        JobSpec::new(A, 64).with_faults(Arc::clone(&plan)),
    );
    let b_after: Vec<_> = (0..10)
        .map(|_| svc.submit(&PairwiseAlltoall, &g, JobSpec::new(B, 64)))
        .collect();

    let err = poisoned
        .wait()
        .expect_err("faulted job must fail the collective");
    if expect_dead {
        assert!(
            matches!(err, JobError::DeadRank { .. }),
            "workers={workers}: expected DeadRank, got {err:?}"
        );
    } else {
        assert!(
            matches!(err, JobError::Exec(_)),
            "workers={workers}: expected Exec, got {err:?}"
        );
    }

    // Every one of B's 20 jobs completes despite A's failure.
    for h in b_before.iter().chain(&b_after) {
        h.wait()
            .unwrap_or_else(|e| panic!("workers={workers}: tenant B job failed: {e}"));
    }

    if expect_dead {
        // Permanent failure: A's breaker is open — later jobs fail fast
        // carrying the root cause.
        for _ in 0..3 {
            match svc
                .submit(&PairwiseAlltoall, &g, JobSpec::new(A, 64))
                .wait()
            {
                Err(JobError::TenantAborted { tenant, first }) => {
                    assert_eq!(tenant, A);
                    assert!(
                        matches!(*first, JobError::DeadRank { .. }),
                        "workers={workers}: latched cause {first:?}"
                    );
                }
                other => panic!("workers={workers}: expected TenantAborted, got {other:?}"),
            }
        }
        // B keeps working, and A recovers once its breaker is reset.
        svc.submit(&PairwiseAlltoall, &g, JobSpec::new(B, 64))
            .wait()
            .unwrap();
        svc.reset_tenant(A);
        svc.submit(&PairwiseAlltoall, &g, JobSpec::new(A, 64))
            .wait()
            .unwrap();
        let stats = svc.stats();
        assert_eq!(
            stats.jobs_failed, 4,
            "workers={workers}: 1 faulted + 3 breaker-denied"
        );
        assert_eq!(stats.jobs_ok, 22, "workers={workers}");
        assert_eq!(stats.robustness.breaker_denied, 3, "workers={workers}");
        assert_eq!(
            stats.robustness.retries, 0,
            "workers={workers}: permanent, never retried"
        );
    } else {
        // Transient failure: the poisoned job was retried to exhaustion
        // (each reroll of a p=1.0 drop plan fails again), and its single
        // final failure sits below the breaker's sample floor — A stays
        // open for business with no reset.
        for _ in 0..3 {
            svc.submit(&PairwiseAlltoall, &g, JobSpec::new(A, 64))
                .wait()
                .unwrap_or_else(|e| {
                    panic!("workers={workers}: transient fault must not latch A: {e}")
                });
        }
        svc.submit(&PairwiseAlltoall, &g, JobSpec::new(B, 64))
            .wait()
            .unwrap();
        let stats = svc.stats();
        assert_eq!(
            stats.jobs_failed, 1,
            "workers={workers}: only the faulted job"
        );
        assert_eq!(stats.jobs_ok, 24, "workers={workers}");
        assert_eq!(
            stats.robustness.retries, 2,
            "workers={workers}: 3 attempts = 2 scheduled retries"
        );
        assert_eq!(stats.robustness.breaker_denied, 0, "workers={workers}");
    }
}

#[test]
fn dead_rank_in_tenant_a_spares_tenant_b() {
    for workers in [1usize, 2, 4] {
        tenant_isolation_drill(workers, FaultSpec::none().with_dead(1.0, 1), true);
    }
}

#[test]
fn dropped_messages_in_tenant_a_spare_tenant_b() {
    // The sequential engine has no retransmit layer, so a 100% drop rate
    // deterministically fails the collective with an executor error.
    for workers in [1usize, 2, 4] {
        tenant_isolation_drill(workers, FaultSpec::drops(1.0), false);
    }
}

#[test]
fn batched_multi_tenant_service_matches_per_job_execution() {
    // The acceptance criterion through the public API: for every roster
    // algorithm, a burst of jobs from several tenants — whatever batches
    // the pool forms — returns receive buffers byte-identical to a
    // standalone single-job run, and identical digests across all jobs.
    let g = grid();
    let n = g.world_size();
    let svc = Service::new(ServiceConfig {
        workers: 4,
        ..Default::default()
    });
    for algo in roster() {
        let bytes = 64;
        let oracle = DataExecutor::run(
            &AlgoSchedule::new(algo.as_ref(), A2AContext::new(g.clone(), bytes)),
            |r, buf| fill_alltoall_sbuf(r, n, bytes, buf),
        )
        .unwrap();
        let handles: Vec<_> = (0..12)
            .map(|i| {
                svc.submit(
                    algo.as_ref(),
                    &g,
                    JobSpec::new(i % 3, bytes).with_return_data(true),
                )
            })
            .collect();
        let mut digests = Vec::new();
        for h in &handles {
            let out = h.wait().unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
            assert_eq!(
                out.rbufs.as_ref().unwrap(),
                &oracle.rbufs,
                "{}: service output differs from standalone run",
                algo.name()
            );
            digests.push(out.digest);
        }
        digests.dedup();
        assert_eq!(digests.len(), 1, "{}: digests diverged", algo.name());
    }
    let stats = svc.stats();
    assert_eq!(stats.jobs_ok, 8 * 12);
    assert_eq!(stats.jobs_failed, 0);
    // Eight distinct cache keys, compiled exactly once each.
    assert_eq!(stats.cache.compiled, 8);
}
