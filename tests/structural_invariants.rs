//! Structural invariants the paper's analysis relies on, checked from
//! static schedule statistics (no execution): message counts, who touches
//! the network, and byte conservation.

use alltoall_suite::algos::*;
use alltoall_suite::sched::{validate, ScheduleStats};
use alltoall_suite::topo::{Machine, ProcGrid};

fn stats(algo: &dyn AlltoallAlgorithm, grid: &ProcGrid, s: u64) -> ScheduleStats {
    let sched = AlgoSchedule::new(algo, A2AContext::new(grid.clone(), s));
    validate(&sched, grid).unwrap_or_else(|e| panic!("{}: {e}", algo.name()))
}

fn grid() -> ProcGrid {
    // 4 nodes x (2 sockets x 2 NUMA x 2 cores) = 8 ppn, 32 ranks.
    ProcGrid::new(Machine::custom("inv", 4, 2, 2, 2))
}

/// Minimum bytes that must cross the network in any all-to-all: every
/// (src, dst) pair on different nodes contributes `s`.
fn min_internode_bytes(grid: &ProcGrid, s: u64) -> u64 {
    let nodes = grid.machine().nodes as u64;
    let ppn = grid.machine().ppn() as u64;
    nodes * (nodes - 1) * ppn * ppn * s
}

#[test]
fn direct_exchange_message_counts() {
    let g = grid();
    let n = g.world_size();
    let st = stats(&PairwiseAlltoall, &g, 8);
    let total: usize = st.msgs.iter().sum();
    assert_eq!(total, n * (n - 1));
    assert_eq!(st.max_sends_per_rank, n - 1);
    assert_eq!(st.inter_node_bytes(), min_internode_bytes(&g, 8));
}

#[test]
fn bruck_message_count_is_log_rounds() {
    let g = grid(); // 32 ranks
    let st = stats(&BruckAlltoall, &g, 8);
    assert_eq!(st.max_sends_per_rank, 5); // log2(32)
    let total: usize = st.msgs.iter().sum();
    assert_eq!(total, 32 * 5);
    // Bruck inflates network volume (blocks travel multiple hops).
    assert!(st.inter_node_bytes() > min_internode_bytes(&g, 8));
}

#[test]
fn hierarchical_internode_messages_scale_with_leaders() {
    let g = grid();
    let nodes = 4usize;
    for ppl in [2usize, 4, 8] {
        let leaders_per_node = 8 / ppl;
        let st = stats(
            &HierarchicalAlltoall::new(ppl, ExchangeKind::Pairwise),
            &g,
            8,
        );
        // Each leader messages every leader on every other node.
        let expect = nodes * leaders_per_node * (nodes - 1) * leaders_per_node;
        assert_eq!(st.inter_node_msgs(), expect, "ppl={ppl}");
        // Aggregation keeps network volume minimal.
        assert_eq!(
            st.inter_node_bytes(),
            min_internode_bytes(&g, 8),
            "ppl={ppl}"
        );
    }
}

#[test]
fn node_aware_internode_messages_are_one_per_rank_per_node() {
    let g = grid();
    let st = stats(
        &NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise),
        &g,
        8,
    );
    assert_eq!(st.max_internode_sends_per_rank, 3); // nodes - 1
    assert_eq!(st.inter_node_msgs(), 32 * 3);
    assert_eq!(st.inter_node_bytes(), min_internode_bytes(&g, 8));
}

#[test]
fn locality_aware_trades_intra_for_inter_messages() {
    let g = grid();
    let n = g.world_size();
    let ppn = g.machine().ppn();
    let mut prev_inter = stats(
        &NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise),
        &g,
        8,
    )
    .inter_node_msgs();
    for ppg in [4usize, 2, 1] {
        let la = stats(
            &NodeAwareAlltoall::locality_aware(ppg, ExchangeKind::Pairwise),
            &g,
            8,
        );
        // Per rank: (ppg-1) intra-region messages plus one message to each
        // same-node region with the same offset — the redistribution
        // shrinks with ppg while cross-region messaging grows, some of it
        // staying on-node. The exact count pins both effects down.
        let expect_intra = n * ((ppg - 1) + (ppn / ppg - 1));
        assert_eq!(la.intra_node_msgs(), expect_intra, "ppg={ppg}");
        // Network messaging strictly grows as groups shrink.
        assert!(la.inter_node_msgs() > prev_inter, "ppg={ppg}");
        assert_eq!(la.inter_node_bytes(), min_internode_bytes(&g, 8));
        prev_inter = la.inter_node_msgs();
    }
}

#[test]
fn mlna_internode_count_beats_multileader() {
    // The novel algorithm's design goal (paper §3.3): leaders exchange one
    // message per remote node rather than one per remote leader.
    let g = grid();
    for ppl in [2usize, 4] {
        let leaders = 4 * (8 / ppl);
        let mlna = stats(
            &MultileaderNodeAwareAlltoall::new(ppl, ExchangeKind::Pairwise),
            &g,
            8,
        );
        let ml = stats(
            &HierarchicalAlltoall::new(ppl, ExchangeKind::Pairwise),
            &g,
            8,
        );
        assert_eq!(mlna.inter_node_msgs(), leaders * 3, "ppl={ppl}");
        assert!(mlna.inter_node_msgs() < ml.inter_node_msgs(), "ppl={ppl}");
        assert_eq!(mlna.inter_node_bytes(), min_internode_bytes(&g, 8));
    }
}

#[test]
fn aggregation_families_never_inflate_network_bytes() {
    let g = grid();
    let algos: Vec<Box<dyn AlltoallAlgorithm>> = vec![
        Box::new(HierarchicalAlltoall::new(8, ExchangeKind::Pairwise)),
        Box::new(HierarchicalAlltoall::new(2, ExchangeKind::Nonblocking)),
        Box::new(NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise)),
        Box::new(NodeAwareAlltoall::locality_aware(2, ExchangeKind::Pairwise)),
        Box::new(MultileaderNodeAwareAlltoall::new(2, ExchangeKind::Pairwise)),
        Box::new(MpichShmAlltoall::default()),
    ];
    for a in &algos {
        let st = stats(a.as_ref(), &g, 16);
        assert_eq!(
            st.inter_node_bytes(),
            min_internode_bytes(&g, 16),
            "{} inflates network traffic",
            a.name()
        );
    }
}

#[test]
fn hierarchy_members_send_nothing_internode() {
    let g = grid();
    let c = A2AContext::new(g.clone(), 8);
    for ppl in [2usize, 4, 8] {
        let algo = HierarchicalAlltoall::new(ppl, ExchangeKind::Pairwise);
        for rank in 0..g.world_size() as u32 {
            if g.subset_offset(rank, ppl) != 0 {
                let prog = algo.build_rank(&c, rank);
                assert_eq!(prog.send_count(), 1, "member {rank} gather send only");
            }
        }
    }
}

#[test]
fn nonblocking_posts_everything_before_waiting() {
    let g = grid();
    let c = A2AContext::new(g.clone(), 8);
    let prog = NonblockingAlltoall.build_rank(&c, 0);
    use alltoall_suite::sched::Op;
    let first_wait = prog
        .ops
        .iter()
        .position(|t| matches!(t.op, Op::WaitAll { .. }))
        .unwrap();
    let sends_before: usize = prog.ops[..first_wait]
        .iter()
        .filter(|t| matches!(t.op, Op::Isend { .. }))
        .count();
    assert_eq!(sends_before, g.world_size() - 1);
    // Pairwise interleaves waits.
    let pw = PairwiseAlltoall.build_rank(&c, 0);
    let pw_first_wait = pw
        .ops
        .iter()
        .position(|t| matches!(t.op, Op::WaitAll { .. }))
        .unwrap();
    assert!(pw_first_wait < 4);
}
