//! The static analyzer, end to end: the algorithm roster must come back
//! completely clean on every topology preset, every lint code must be
//! demonstrable on a hand-built bad schedule, and seeded mutations of
//! known-good schedules must always be flagged with the expected code.

use a2a_testutil::{FixedSchedule, Mutation, Rng};
use alltoall_suite::algos::*;
use alltoall_suite::lint::{lint_schedule, Code, LintConfig, LintReport};
use alltoall_suite::sched::{
    Block, Bytes, Phase, ProgBuilder, RankProgram, ScheduleSource, RBUF, SBUF,
};
use alltoall_suite::topo::{Machine, ProcGrid};

/// The paper's eight-algorithm roster (group sizes divide every preset's
/// ppn below).
fn roster() -> Vec<Box<dyn AlltoallAlgorithm>> {
    vec![
        Box::new(PairwiseAlltoall),
        Box::new(NonblockingAlltoall),
        Box::new(BruckAlltoall),
        Box::new(HierarchicalAlltoall::new(4, ExchangeKind::Nonblocking)),
        Box::new(NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise)),
        Box::new(NodeAwareAlltoall::locality_aware(2, ExchangeKind::Pairwise)),
        Box::new(MultileaderNodeAwareAlltoall::new(2, ExchangeKind::Pairwise)),
        Box::new(MpichShmAlltoall::default()),
    ]
}

/// Topology presets: flat bench grid, the scaled dane/amber shape, and the
/// scaled tuolumne shape (matching the `repro lint` sweep).
fn presets() -> Vec<ProcGrid> {
    vec![
        ProcGrid::new(Machine::custom("bench", 2, 2, 1, 2)),
        ProcGrid::new(Machine::custom("dane", 2, 2, 4, 4)),
        ProcGrid::new(Machine::custom("tuolumne", 2, 4, 1, 8)),
    ]
}

fn lint_fixed(f: &FixedSchedule, cfg: &LintConfig) -> LintReport {
    let grid = ProcGrid::new(Machine::custom("t", 1, 1, 1, f.nranks()));
    lint_schedule("fixed", f, &grid, cfg)
}

fn fixed(progs: Vec<RankProgram>, bufsize: Bytes) -> FixedSchedule {
    let n = progs.len();
    FixedSchedule {
        progs,
        buffers: vec![vec![bufsize, bufsize]; n],
        phase_names: vec!["all"],
    }
}

// ---------------------------------------------------------------- clean bill

#[test]
fn roster_is_clean_on_every_preset() {
    let cfg = LintConfig::default();
    for grid in presets() {
        for algo in roster() {
            for bytes in [4u64, 256, 4096] {
                let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(grid.clone(), bytes));
                let report = lint_schedule(
                    format!("{} block={bytes}", algo.name()),
                    &sched,
                    &grid,
                    &cfg,
                );
                assert!(
                    report.is_clean(),
                    "{} on {} ranks, block {bytes}:\n{}",
                    algo.name(),
                    grid.world_size(),
                    report.render_text()
                );
            }
        }
    }
}

// ------------------------------------------------- one bad schedule per code

#[test]
fn a2a000_flags_malformed_schedule() {
    let mut b = ProgBuilder::new(Phase(0));
    b.send(1, Block::new(SBUF, 0, 8), 0); // no matching receive
    let r = lint_fixed(
        &fixed(vec![b.finish(), RankProgram::default()], 8),
        &LintConfig::default(),
    );
    assert!(r.has(Code::Malformed), "{}", r.render_text());
    assert_eq!(r.errors(), 1);
}

#[test]
fn a2a001_flags_head_to_head_blocking_sends() {
    let progs = (0..2u32)
        .map(|me| {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            b.send(peer, Block::new(SBUF, 0, 8), 0);
            b.recv(peer, Block::new(RBUF, 0, 8), 0);
            b.finish()
        })
        .collect();
    let r = lint_fixed(&fixed(progs, 8), &LintConfig::default());
    assert!(r.has(Code::Deadlock), "{}", r.render_text());
    let d = r.diags.iter().find(|d| d.code == Code::Deadlock).unwrap();
    assert!(!d.notes.is_empty(), "cycle chain is rendered");
}

#[test]
fn a2a002_flags_write_into_pending_send_source() {
    let mut b0 = ProgBuilder::new(Phase(0));
    let s = b0.isend(1, Block::new(SBUF, 0, 8), 0);
    b0.copy(Block::new(RBUF, 0, 8), Block::new(SBUF, 0, 8));
    b0.waitall(s, 1);
    let mut b1 = ProgBuilder::new(Phase(0));
    b1.recv(0, Block::new(RBUF, 0, 8), 0);
    let r = lint_fixed(
        &fixed(vec![b0.finish(), b1.finish()], 8),
        &LintConfig::default(),
    );
    assert!(r.has(Code::UnstableSend), "{}", r.render_text());
}

#[test]
fn a2a003_flags_overlapping_pending_receives() {
    let mut b0 = ProgBuilder::new(Phase(0));
    let first = b0.irecv(1, Block::new(RBUF, 0, 8), 0);
    b0.irecv(1, Block::new(RBUF, 4, 8), 1);
    b0.waitall(first, 2);
    let mut b1 = ProgBuilder::new(Phase(0));
    b1.send(0, Block::new(SBUF, 0, 8), 0);
    b1.send(0, Block::new(SBUF, 0, 8), 1);
    let r = lint_fixed(
        &fixed(vec![b0.finish(), b1.finish()], 16),
        &LintConfig::default(),
    );
    assert!(r.has(Code::RecvRace), "{}", r.render_text());
}

#[test]
fn a2a004_flags_concurrent_same_channel_messages() {
    let mut b0 = ProgBuilder::new(Phase(0));
    let s = b0.isend(1, Block::new(SBUF, 0, 4), 9);
    b0.isend(1, Block::new(SBUF, 4, 4), 9);
    b0.waitall(s, 2);
    let mut b1 = ProgBuilder::new(Phase(0));
    let rr = b1.irecv(0, Block::new(RBUF, 0, 4), 9);
    b1.irecv(0, Block::new(RBUF, 4, 4), 9);
    b1.waitall(rr, 2);
    let r = lint_fixed(
        &fixed(vec![b0.finish(), b1.finish()], 8),
        &LintConfig::default(),
    );
    assert!(r.has(Code::ChannelOrder), "{}", r.render_text());
    assert_eq!(r.errors(), 0, "FIFO reliance is a warning, not an error");
}

#[test]
fn a2a005_flags_send_window_pressure() {
    let n = 6u32;
    let mut b0 = ProgBuilder::new(Phase(0));
    let first = b0.req_mark();
    for k in 0..n {
        b0.isend(1, Block::new(SBUF, k as Bytes * 4, 4), k);
    }
    b0.waitall(first, n);
    let mut b1 = ProgBuilder::new(Phase(0));
    let firstr = b1.req_mark();
    for k in 0..n {
        b1.irecv(0, Block::new(RBUF, k as Bytes * 4, 4), k);
    }
    b1.waitall(firstr, n);
    let f = fixed(vec![b0.finish(), b1.finish()], 24);
    let cfg = LintConfig {
        send_window: 4,
        ..Default::default()
    };
    let r = lint_fixed(&f, &cfg);
    assert!(r.has(Code::SendWindow), "{}", r.render_text());
    // The same burst sits inside the default window.
    let r = lint_fixed(&f, &LintConfig::default());
    assert!(r.is_clean(), "{}", r.render_text());
}

#[test]
fn a2a006_flags_read_of_pending_receive_destination() {
    let mut b0 = ProgBuilder::new(Phase(0));
    let rr = b0.irecv(1, Block::new(RBUF, 0, 8), 0);
    b0.copy(Block::new(RBUF, 0, 8), Block::new(SBUF, 0, 8));
    b0.waitall(rr, 1);
    let mut b1 = ProgBuilder::new(Phase(0));
    b1.send(0, Block::new(SBUF, 0, 8), 0);
    let r = lint_fixed(
        &fixed(vec![b0.finish(), b1.finish()], 8),
        &LintConfig::default(),
    );
    assert!(r.has(Code::UnstableRead), "{}", r.render_text());
}

// ------------------------------------------------------------ mutation suite

/// Bases rich enough that every mutation finds a site in at least one:
/// pairwise (sendrecv triples + copies), nonblocking (all requests posted
/// upfront), Bruck (copies + sendrecv rings).
fn mutation_bases() -> Vec<(String, FixedSchedule, ProcGrid)> {
    let grid = ProcGrid::new(Machine::custom("mut", 2, 1, 1, 2)); // 4 ranks
    let algos: Vec<Box<dyn AlltoallAlgorithm>> = vec![
        Box::new(PairwiseAlltoall),
        Box::new(NonblockingAlltoall),
        Box::new(BruckAlltoall),
    ];
    algos
        .into_iter()
        .map(|a| {
            let sched = AlgoSchedule::new(a.as_ref(), A2AContext::new(grid.clone(), 8));
            (a.name(), FixedSchedule::capture(&sched), grid.clone())
        })
        .collect()
}

#[test]
fn every_mutation_is_caught_with_its_expected_code() {
    let bases = mutation_bases();
    let cfg = LintConfig::default();
    for m in Mutation::ALL {
        let expected = m.expected_code();
        let mut applied = 0usize;
        for (name, base, grid) in &bases {
            for seed in 0..5u64 {
                let mut rng = Rng::new(0xA2A0 + seed);
                let Some(mutant) = m.apply(base, &mut rng) else {
                    continue;
                };
                applied += 1;
                let report =
                    lint_schedule(format!("{m} on {name} seed {seed}"), &mutant, grid, &cfg);
                assert!(
                    report.diags.iter().any(|d| d.code.as_str() == expected),
                    "{m} on {name} (seed {seed}) must be flagged {expected}, got:\n{}",
                    report.render_text()
                );
            }
        }
        assert!(
            applied > 0,
            "{m} never found an applicable site — silent pass"
        );
    }
}

#[test]
fn unmutated_bases_are_clean() {
    // The mutation suite proves nothing if the bases themselves are dirty.
    let cfg = LintConfig::default();
    for (name, base, grid) in &mutation_bases() {
        let report = lint_schedule(name.clone(), base, grid, &cfg);
        assert!(report.is_clean(), "{name}:\n{}", report.render_text());
    }
}

#[test]
fn mutants_fail_where_the_roster_passes_json_roundtrip() {
    // The JSON rendering carries the mutant's code (what CI archives).
    let bases = mutation_bases();
    let (_, base, grid) = &bases[0];
    let mut rng = Rng::new(1);
    let mutant = Mutation::SequentializeSendrecv
        .apply(base, &mut rng)
        .expect("pairwise has sendrecv triples");
    let report = lint_schedule("mutant", &mutant, grid, &LintConfig::default());
    let json = report.render_json();
    assert!(json.contains("\"code\":\"A2A001\""), "{json}");
    assert!(report.errors() > 0);
}
