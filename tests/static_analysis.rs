//! The static analyzer, end to end: the algorithm roster must come back
//! completely clean — safety passes *and* semantics prover — on every
//! topology preset, every diagnostic code must be demonstrable on a
//! hand-built bad schedule, and seeded mutations of known-good schedules
//! must always be flagged with the expected code. The semantic mutations
//! additionally prove the separation claim: they are invisible to the
//! safety passes alone and only the dataflow prover catches them.

use a2a_testutil::{FixedSchedule, Mutation, Rng};
use alltoall_suite::algos::alltoallv::{
    AlltoallvAlgorithm, CountsFn, NodeAwareAlltoallv, NonblockingAlltoallv, PairwiseAlltoallv,
    VContext, VSchedule,
};
use alltoall_suite::algos::*;
use alltoall_suite::lint::{analyze_schedule, lint_schedule, Code, LintConfig, LintReport};
use alltoall_suite::sched::analysis::SemanticsSpec;
use alltoall_suite::sched::{
    Block, Bytes, Phase, ProgBuilder, RankProgram, ScheduleSource, RBUF, SBUF,
};
use alltoall_suite::topo::{Machine, ProcGrid};
use std::sync::Arc;

/// The paper's eight-algorithm roster (group sizes divide every preset's
/// ppn below).
fn roster() -> Vec<Box<dyn AlltoallAlgorithm>> {
    vec![
        Box::new(PairwiseAlltoall),
        Box::new(NonblockingAlltoall),
        Box::new(BruckAlltoall),
        Box::new(HierarchicalAlltoall::new(4, ExchangeKind::Nonblocking)),
        Box::new(NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise)),
        Box::new(NodeAwareAlltoall::locality_aware(2, ExchangeKind::Pairwise)),
        Box::new(MultileaderNodeAwareAlltoall::new(2, ExchangeKind::Pairwise)),
        Box::new(MpichShmAlltoall::default()),
    ]
}

/// Topology presets: flat bench grid, the scaled dane/amber shape, and the
/// scaled tuolumne shape (matching the `repro lint` sweep).
fn presets() -> Vec<ProcGrid> {
    vec![
        ProcGrid::new(Machine::custom("bench", 2, 2, 1, 2)),
        ProcGrid::new(Machine::custom("dane", 2, 2, 4, 4)),
        ProcGrid::new(Machine::custom("tuolumne", 2, 4, 1, 8)),
    ]
}

fn lint_fixed(f: &FixedSchedule, cfg: &LintConfig) -> LintReport {
    let grid = ProcGrid::new(Machine::custom("t", 1, 1, 1, f.nranks()));
    lint_schedule("fixed", f, &grid, cfg)
}

fn fixed(progs: Vec<RankProgram>, bufsize: Bytes) -> FixedSchedule {
    let n = progs.len();
    FixedSchedule {
        progs,
        buffers: vec![vec![bufsize, bufsize]; n],
        phase_names: vec!["all"],
    }
}

// ---------------------------------------------------------------- clean bill

#[test]
fn roster_is_clean_on_every_preset() {
    // Full analysis: safety passes plus the dataflow prover against the
    // declared alltoall semantics. Clean means every output byte proved
    // present, correctly sourced, unclobbered, and no transfer was dead.
    let cfg = LintConfig::default();
    for grid in presets() {
        for algo in roster() {
            for bytes in [4u64, 256, 4096] {
                let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(grid.clone(), bytes));
                let spec = SemanticsSpec::alltoall(grid.world_size(), bytes);
                let report = analyze_schedule(
                    format!("{} block={bytes}", algo.name()),
                    &sched,
                    &grid,
                    &cfg,
                    Some(&spec),
                );
                assert!(
                    report.is_clean(),
                    "{} on {} ranks, block {bytes}:\n{}",
                    algo.name(),
                    grid.world_size(),
                    report.render_text()
                );
            }
        }
    }
}

#[test]
fn v_roster_proves_clean_on_lumpy_profiles() {
    // The prover against the MPI_Alltoallv contract: lumpy asymmetric
    // counts, a banded profile, and a profile with entire zero rows (rank
    // 0 sends nothing anywhere, rank 1 receives nothing from anyone).
    let grid = ProcGrid::new(Machine::custom("v", 2, 2, 1, 2)); // 8 ranks
    let n = grid.world_size();
    let profiles: Vec<(&str, CountsFn)> = vec![
        (
            "lumpy",
            Arc::new(|s: u32, d: u32| (s as u64 * 31 + d as u64 * 17) % 13),
        ),
        (
            "banded",
            Arc::new(move |s: u32, d: u32| {
                if (s as i64 - d as i64).abs() <= 1 {
                    64
                } else {
                    0
                }
            }),
        ),
        (
            "zero-rows",
            Arc::new(|s: u32, d: u32| {
                if s == 0 || d == 1 {
                    0
                } else {
                    8 * (1 + (s + d) as u64 % 3)
                }
            }),
        ),
    ];
    for (name, counts) in profiles {
        for algo in [
            Box::new(PairwiseAlltoallv) as Box<dyn AlltoallvAlgorithm>,
            Box::new(NonblockingAlltoallv),
            Box::new(NodeAwareAlltoallv),
        ] {
            let sched = VSchedule::new(algo.as_ref(), VContext::new(grid.clone(), counts.clone()));
            let spec = SemanticsSpec::alltoallv(n, &|s, d| counts(s, d));
            let report = analyze_schedule(
                format!("{}[{name}]", algo.name()),
                &sched,
                &grid,
                &LintConfig::default(),
                Some(&spec),
            );
            assert!(
                report.is_clean(),
                "{}[{name}]:\n{}",
                algo.name(),
                report.render_text()
            );
        }
    }
}

// ------------------------------------------------- one bad schedule per code

#[test]
fn a2a000_flags_malformed_schedule() {
    let mut b = ProgBuilder::new(Phase(0));
    b.send(1, Block::new(SBUF, 0, 8), 0); // no matching receive
    let r = lint_fixed(
        &fixed(vec![b.finish(), RankProgram::default()], 8),
        &LintConfig::default(),
    );
    assert!(r.has(Code::Malformed), "{}", r.render_text());
    assert_eq!(r.errors(), 1);
}

#[test]
fn a2a001_flags_head_to_head_blocking_sends() {
    let progs = (0..2u32)
        .map(|me| {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            b.send(peer, Block::new(SBUF, 0, 8), 0);
            b.recv(peer, Block::new(RBUF, 0, 8), 0);
            b.finish()
        })
        .collect();
    let r = lint_fixed(&fixed(progs, 8), &LintConfig::default());
    assert!(r.has(Code::Deadlock), "{}", r.render_text());
    let d = r.diags.iter().find(|d| d.code == Code::Deadlock).unwrap();
    assert!(!d.notes.is_empty(), "cycle chain is rendered");
}

#[test]
fn a2a002_flags_write_into_pending_send_source() {
    let mut b0 = ProgBuilder::new(Phase(0));
    let s = b0.isend(1, Block::new(SBUF, 0, 8), 0);
    b0.copy(Block::new(RBUF, 0, 8), Block::new(SBUF, 0, 8));
    b0.waitall(s, 1);
    let mut b1 = ProgBuilder::new(Phase(0));
    b1.recv(0, Block::new(RBUF, 0, 8), 0);
    let r = lint_fixed(
        &fixed(vec![b0.finish(), b1.finish()], 8),
        &LintConfig::default(),
    );
    assert!(r.has(Code::UnstableSend), "{}", r.render_text());
}

#[test]
fn a2a003_flags_overlapping_pending_receives() {
    let mut b0 = ProgBuilder::new(Phase(0));
    let first = b0.irecv(1, Block::new(RBUF, 0, 8), 0);
    b0.irecv(1, Block::new(RBUF, 4, 8), 1);
    b0.waitall(first, 2);
    let mut b1 = ProgBuilder::new(Phase(0));
    b1.send(0, Block::new(SBUF, 0, 8), 0);
    b1.send(0, Block::new(SBUF, 0, 8), 1);
    let r = lint_fixed(
        &fixed(vec![b0.finish(), b1.finish()], 16),
        &LintConfig::default(),
    );
    assert!(r.has(Code::RecvRace), "{}", r.render_text());
}

#[test]
fn a2a004_flags_concurrent_same_channel_messages() {
    let mut b0 = ProgBuilder::new(Phase(0));
    let s = b0.isend(1, Block::new(SBUF, 0, 4), 9);
    b0.isend(1, Block::new(SBUF, 4, 4), 9);
    b0.waitall(s, 2);
    let mut b1 = ProgBuilder::new(Phase(0));
    let rr = b1.irecv(0, Block::new(RBUF, 0, 4), 9);
    b1.irecv(0, Block::new(RBUF, 4, 4), 9);
    b1.waitall(rr, 2);
    let r = lint_fixed(
        &fixed(vec![b0.finish(), b1.finish()], 8),
        &LintConfig::default(),
    );
    assert!(r.has(Code::ChannelOrder), "{}", r.render_text());
    assert_eq!(r.errors(), 0, "FIFO reliance is a warning, not an error");
}

#[test]
fn a2a005_flags_send_window_pressure() {
    let n = 6u32;
    let mut b0 = ProgBuilder::new(Phase(0));
    let first = b0.req_mark();
    for k in 0..n {
        b0.isend(1, Block::new(SBUF, k as Bytes * 4, 4), k);
    }
    b0.waitall(first, n);
    let mut b1 = ProgBuilder::new(Phase(0));
    let firstr = b1.req_mark();
    for k in 0..n {
        b1.irecv(0, Block::new(RBUF, k as Bytes * 4, 4), k);
    }
    b1.waitall(firstr, n);
    let f = fixed(vec![b0.finish(), b1.finish()], 24);
    let cfg = LintConfig {
        send_window: 4,
        ..Default::default()
    };
    let r = lint_fixed(&f, &cfg);
    assert!(r.has(Code::SendWindow), "{}", r.render_text());
    // The same burst sits inside the default window.
    let r = lint_fixed(&f, &LintConfig::default());
    assert!(r.is_clean(), "{}", r.render_text());
}

#[test]
fn a2a006_flags_read_of_pending_receive_destination() {
    let mut b0 = ProgBuilder::new(Phase(0));
    let rr = b0.irecv(1, Block::new(RBUF, 0, 8), 0);
    b0.copy(Block::new(RBUF, 0, 8), Block::new(SBUF, 0, 8));
    b0.waitall(rr, 1);
    let mut b1 = ProgBuilder::new(Phase(0));
    b1.send(0, Block::new(SBUF, 0, 8), 0);
    let r = lint_fixed(
        &fixed(vec![b0.finish(), b1.finish()], 8),
        &LintConfig::default(),
    );
    assert!(r.has(Code::UnstableRead), "{}", r.render_text());
}

/// Run the full analysis of a 2-rank fixed schedule against the alltoall
/// semantics (block = 8, so each rank's receive buffer expects its own
/// block at 0 and the peer's at 8).
fn analyze_fixed(f: &FixedSchedule, block: Bytes) -> LintReport {
    let grid = ProcGrid::new(Machine::custom("t", 1, 1, 1, f.nranks()));
    let spec = SemanticsSpec::alltoall(f.nranks(), block);
    analyze_schedule("fixed", f, &grid, &LintConfig::default(), Some(&spec))
}

#[test]
fn a2a007_flags_wrong_source_byte() {
    // Both ranks send the block addressed to *themselves* instead of the
    // peer's block: every exchanged byte lands with wrong provenance.
    let progs = (0..2u32)
        .map(|me| {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            b.copy(
                Block::new(SBUF, me as Bytes * 8, 8),
                Block::new(RBUF, me as Bytes * 8, 8),
            );
            b.sendrecv(
                peer,
                Block::new(SBUF, me as Bytes * 8, 8), // should be peer's block
                0,
                peer,
                Block::new(RBUF, peer as Bytes * 8, 8),
                0,
            );
            b.finish()
        })
        .collect();
    let r = analyze_fixed(&fixed(progs, 16), 8);
    assert!(r.has(Code::WrongSource), "{}", r.render_text());
    assert!(r.errors() > 0);
    // The correctly-routed version of the same shape proves clean.
    let r = analyze_fixed(&fixed(two_rank_exchange_correct(), 16), 8);
    assert!(r.is_clean(), "{}", r.render_text());
}

/// A correct 2-rank alltoall: self copy plus one exchanged message.
fn two_rank_exchange_correct() -> Vec<RankProgram> {
    (0..2u32)
        .map(|me| {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            b.copy(
                Block::new(SBUF, me as Bytes * 8, 8),
                Block::new(RBUF, me as Bytes * 8, 8),
            );
            b.sendrecv(
                peer,
                Block::new(SBUF, peer as Bytes * 8, 8),
                0,
                peer,
                Block::new(RBUF, peer as Bytes * 8, 8),
                0,
            );
            b.finish()
        })
        .collect()
}

#[test]
fn a2a008_flags_missing_byte() {
    // The self block is never copied into the receive buffer: those bytes
    // end the schedule unwritten.
    let progs = (0..2u32)
        .map(|me| {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            b.sendrecv(
                peer,
                Block::new(SBUF, peer as Bytes * 8, 8),
                0,
                peer,
                Block::new(RBUF, peer as Bytes * 8, 8),
                0,
            );
            b.finish()
        })
        .collect();
    let r = analyze_fixed(&fixed(progs, 16), 8);
    assert!(r.has(Code::MissingByte), "{}", r.render_text());
    assert!(r.errors() > 0);
}

#[test]
fn a2a009_flags_clobbered_byte() {
    // After the correct exchange, rank 0 overwrites the peer block in its
    // receive buffer with its own (differently-sourced) bytes.
    let mut progs = two_rank_exchange_correct();
    let mut b = ProgBuilder::new(Phase(0));
    b.copy(Block::new(SBUF, 0, 8), Block::new(RBUF, 8, 8));
    let extra = b.finish();
    progs[0].ops.extend(extra.ops);
    let r = analyze_fixed(&fixed(progs, 16), 8);
    assert!(r.has(Code::ClobberedByte), "{}", r.render_text());
    assert!(r.errors() > 0);
}

#[test]
fn a2a010_flags_redundant_transfer() {
    // A second, never-read message rides alongside the correct exchange:
    // delivered into scratch, contributing to no output byte.
    let progs = (0..2u32)
        .map(|me| {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            b.copy(
                Block::new(SBUF, me as Bytes * 8, 8),
                Block::new(RBUF, me as Bytes * 8, 8),
            );
            b.sendrecv(
                peer,
                Block::new(SBUF, peer as Bytes * 8, 8),
                0,
                peer,
                Block::new(RBUF, peer as Bytes * 8, 8),
                0,
            );
            b.sendrecv(
                peer,
                Block::new(SBUF, 0, 8),
                1,
                peer,
                Block::new(alltoall_suite::sched::TMP0, 0, 8),
                1,
            );
            b.finish()
        })
        .collect();
    let n = 2;
    let f = FixedSchedule {
        progs,
        buffers: vec![vec![16, 16, 8]; n],
        phase_names: vec!["all"],
    };
    let r = analyze_fixed(&f, 8);
    assert!(r.has(Code::RedundantTransfer), "{}", r.render_text());
    assert_eq!(r.errors(), 0, "a dead transfer is a warning, not an error");
}

// ------------------------------------------------------------ mutation suite

/// Bases rich enough that every mutation finds a site in at least one:
/// pairwise (sendrecv triples + copies), nonblocking (all requests posted
/// upfront), Bruck (copies + sendrecv rings).
fn mutation_bases() -> Vec<(String, FixedSchedule, ProcGrid)> {
    let grid = ProcGrid::new(Machine::custom("mut", 2, 1, 1, 2)); // 4 ranks
    let algos: Vec<Box<dyn AlltoallAlgorithm>> = vec![
        Box::new(PairwiseAlltoall),
        Box::new(NonblockingAlltoall),
        Box::new(BruckAlltoall),
    ];
    algos
        .into_iter()
        .map(|a| {
            let sched = AlgoSchedule::new(a.as_ref(), A2AContext::new(grid.clone(), 8));
            (a.name(), FixedSchedule::capture(&sched), grid.clone())
        })
        .collect()
}

#[test]
fn every_mutation_is_caught_with_its_expected_code() {
    // The *full* analysis — safety passes plus prover — catches all 14
    // mutation classes with their expected code.
    let bases = mutation_bases();
    let cfg = LintConfig::default();
    for m in Mutation::ALL {
        let expected = m.expected_code();
        let mut applied = 0usize;
        for (name, base, grid) in &bases {
            let spec = SemanticsSpec::alltoall(grid.world_size(), 8);
            for seed in 0..5u64 {
                let mut rng = Rng::new(0xA2A0 + seed);
                let Some(mutant) = m.apply(base, &mut rng) else {
                    continue;
                };
                applied += 1;
                let report = analyze_schedule(
                    format!("{m} on {name} seed {seed}"),
                    &mutant,
                    grid,
                    &cfg,
                    Some(&spec),
                );
                assert!(
                    report.diags.iter().any(|d| d.code.as_str() == expected),
                    "{m} on {name} (seed {seed}) must be flagged {expected}, got:\n{}",
                    report.render_text()
                );
            }
        }
        assert!(
            applied > 0,
            "{m} never found an applicable site — silent pass"
        );
    }
}

#[test]
fn semantic_mutants_are_invisible_to_safety_passes_alone() {
    // The separation claim behind A2A007–A2A010: every semantic mutant is
    // a *valid, safety-clean* schedule — only the dataflow prover sees
    // that the bytes are wrong.
    let bases = mutation_bases();
    let cfg = LintConfig::default();
    for m in Mutation::SEMANTIC {
        let mut applied = 0usize;
        for (name, base, grid) in &bases {
            for seed in 0..5u64 {
                let mut rng = Rng::new(0xA2A0 + seed);
                let Some(mutant) = m.apply(base, &mut rng) else {
                    continue;
                };
                applied += 1;
                let report =
                    lint_schedule(format!("{m} on {name} seed {seed}"), &mutant, grid, &cfg);
                assert!(
                    report.is_clean(),
                    "{m} on {name} (seed {seed}) tripped a safety pass:\n{}",
                    report.render_text()
                );
            }
        }
        assert!(
            applied > 0,
            "{m} never found an applicable site — silent pass"
        );
    }
}

#[test]
fn merged_report_orders_deterministically() {
    // Build a mutant carrying both safety and semantic findings, analyze
    // twice, and require byte-identical, (code, rank, op)-sorted JSON.
    let bases = mutation_bases();
    let (name, base, grid) = &bases[0];
    let spec = SemanticsSpec::alltoall(grid.world_size(), 8);
    let cfg = LintConfig::default();
    let mut rng = Rng::new(3);
    let mutant = Mutation::SwapSendSource
        .apply(base, &mut rng)
        .expect("pairwise has swappable sends");
    let a = analyze_schedule(name.clone(), &mutant, grid, &cfg, Some(&spec));
    let b = analyze_schedule(name.clone(), &mutant, grid, &cfg, Some(&spec));
    assert_eq!(a.render_json(), b.render_json());
    let keys: Vec<_> = a.diags.iter().map(|d| (d.code, d.rank, d.op)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "diagnostic stream is not canonically sorted");
}

#[test]
fn unmutated_bases_are_clean() {
    // The mutation suite proves nothing if the bases themselves are dirty.
    let cfg = LintConfig::default();
    for (name, base, grid) in &mutation_bases() {
        let report = lint_schedule(name.clone(), base, grid, &cfg);
        assert!(report.is_clean(), "{name}:\n{}", report.render_text());
    }
}

#[test]
fn mutants_fail_where_the_roster_passes_json_roundtrip() {
    // The JSON rendering carries the mutant's code (what CI archives).
    let bases = mutation_bases();
    let (_, base, grid) = &bases[0];
    let mut rng = Rng::new(1);
    let mutant = Mutation::SequentializeSendrecv
        .apply(base, &mut rng)
        .expect("pairwise has sendrecv triples");
    let report = lint_schedule("mutant", &mutant, grid, &LintConfig::default());
    let json = report.render_json();
    assert!(json.contains("\"code\":\"A2A001\""), "{json}");
    assert!(report.errors() > 0);
}
