//! The zero-copy fast path is an optimization, not a semantic change:
//! the prepared/arena executor, the legacy per-message-allocation
//! executor, and the parallel rank scheduler must all produce identical
//! bytes and identical message counts for every algorithm, and recycled
//! buffers (arena slots, pooled fabric buffers) must never leak stale
//! bytes between runs or messages.

use alltoall_suite::algos::{
    A2AContext, AlgoSchedule, AlltoallAlgorithm, BruckAlltoall, ExchangeKind, HierarchicalAlltoall,
    MpichShmAlltoall, MultileaderNodeAwareAlltoall, NodeAwareAlltoall, NonblockingAlltoall,
    PairwiseAlltoall,
};
use alltoall_suite::runtime::{ParallelExecutor, ThreadWorld};
use alltoall_suite::sched::{
    check_alltoall_rbuf, fill_alltoall_sbuf, DataExecutor, ExecScratch, LegacyDataExecutor,
    PreparedSchedule,
};
use alltoall_suite::topo::{Machine, ProcGrid};

/// 8 ranks over 2 nodes x 4 ppn: every algorithm's group size divides it.
fn grid8() -> ProcGrid {
    ProcGrid::new(Machine::custom("fastpath", 2, 2, 1, 2))
}

/// The full 8-algorithm roster of the paper's evaluation.
fn roster() -> Vec<Box<dyn AlltoallAlgorithm>> {
    vec![
        Box::new(PairwiseAlltoall),
        Box::new(NonblockingAlltoall),
        Box::new(BruckAlltoall),
        Box::new(HierarchicalAlltoall::new(4, ExchangeKind::Nonblocking)),
        Box::new(NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise)),
        Box::new(NodeAwareAlltoall::locality_aware(2, ExchangeKind::Pairwise)),
        Box::new(MultileaderNodeAwareAlltoall::new(2, ExchangeKind::Pairwise)),
        Box::new(MpichShmAlltoall::default()),
    ]
}

/// A seeded fill distinct from the transpose pattern, so stale bytes from
/// a differently-seeded run can never masquerade as correct output.
fn seeded_fill(seed: u64, rank: u32, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        let h = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((rank as u64) << 32)
            .wrapping_add(i as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        *b = (h >> 56) as u8;
    }
}

#[test]
fn fast_legacy_and_parallel_agree_for_every_algorithm() {
    let grid = grid8();
    let n = grid.world_size();
    for algo in roster() {
        for s in [4u64, 64, 1024] {
            let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(grid.clone(), s));
            let fill = |r: u32, b: &mut [u8]| fill_alltoall_sbuf(r, n, s, b);

            let fast = DataExecutor::run(&sched, fill)
                .unwrap_or_else(|e| panic!("{} s={s} fast: {e}", algo.name()));
            let legacy = LegacyDataExecutor::run(&sched, fill)
                .unwrap_or_else(|e| panic!("{} s={s} legacy: {e}", algo.name()));
            let parallel = ParallelExecutor::run(&sched, 3, fill)
                .unwrap_or_else(|e| panic!("{} s={s} parallel: {e}", algo.name()));

            assert_eq!(
                fast.rbufs,
                legacy.rbufs,
                "{} s={s}: fast vs legacy bytes",
                algo.name()
            );
            assert_eq!(
                fast.rbufs,
                parallel.rbufs,
                "{} s={s}: fast vs parallel bytes",
                algo.name()
            );
            assert_eq!(fast.messages, legacy.messages, "{} s={s}", algo.name());
            assert_eq!(fast.messages, parallel.messages, "{} s={s}", algo.name());
            assert_eq!(
                fast.message_bytes,
                parallel.message_bytes,
                "{} s={s}",
                algo.name()
            );
            for (r, rbuf) in fast.rbufs.iter().enumerate() {
                check_alltoall_rbuf(r as u32, n, s, rbuf)
                    .unwrap_or_else(|e| panic!("{} s={s} rank {r}: {e}", algo.name()));
            }
        }
    }
}

#[test]
fn parallel_worker_count_never_changes_the_bytes() {
    // Worker counts from 1 (fully sequential) past the rank count: the
    // partition changes, the bytes must not.
    let grid = grid8();
    let n = grid.world_size();
    let s = 32u64;
    let sched = AlgoSchedule::new(&BruckAlltoall, A2AContext::new(grid, s));
    let fill = |r: u32, b: &mut [u8]| fill_alltoall_sbuf(r, n, s, b);
    let reference = ParallelExecutor::run(&sched, 1, fill).expect("workers=1");
    for workers in [2usize, 3, 5, 8, 16] {
        let out = ParallelExecutor::run(&sched, workers, fill)
            .unwrap_or_else(|e| panic!("workers={workers}: {e}"));
        assert_eq!(out, reference, "workers={workers}");
    }
}

#[test]
fn reused_scratch_leaves_no_stale_bytes_between_runs() {
    // One PreparedSchedule + one ExecScratch across differently-seeded
    // runs: every arena slot, mailbox stream, and receive buffer is
    // recycled, so any stale byte from run `seed-1` corrupts run `seed`.
    let grid = grid8();
    let n = grid.world_size();
    let s = 48u64;
    let algo = HierarchicalAlltoall::new(4, ExchangeKind::Nonblocking);
    let sched = AlgoSchedule::new(&algo, A2AContext::new(grid, s));
    let prep = PreparedSchedule::new(&sched);
    let mut scratch = ExecScratch::new(&prep);
    for seed in 0..6u64 {
        DataExecutor::run_prepared(&prep, &mut scratch, |r, b| seeded_fill(seed, r, b))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let expect = LegacyDataExecutor::run(&prep, |r, b| seeded_fill(seed, r, b))
            .unwrap_or_else(|e| panic!("seed {seed} legacy: {e}"));
        for r in 0..n as u32 {
            assert_eq!(
                scratch.rbuf(r),
                &expect.rbufs[r as usize][..],
                "seed {seed} rank {r}: stale bytes survived scratch reuse"
            );
        }
    }
}

#[test]
fn pooled_fabric_buffers_are_fully_overwritten_between_messages() {
    // Shrinking messages on one channel: every recycled pool buffer has
    // *more* capacity than the payload it carries, so a stale tail byte
    // from the previous (larger) message would surface immediately if the
    // pool ever handed out a partially-overwritten buffer.
    let rounds = 64usize;
    let outs = ThreadWorld::run(2, |comm| {
        if comm.rank() == 0 {
            for i in 0..rounds {
                let len = rounds - i;
                let msg = vec![i as u8; len];
                comm.send(1, 7, &msg).unwrap();
            }
            Vec::new()
        } else {
            let mut got = Vec::new();
            for i in 0..rounds {
                let len = rounds - i;
                let mut buf = vec![0xEEu8; len];
                comm.recv(0, 7, &mut buf).unwrap();
                got.push(buf);
            }
            got
        }
    });
    for (i, buf) in outs[1].iter().enumerate() {
        assert_eq!(
            buf,
            &vec![i as u8; rounds - i],
            "message {i}: stale bytes leaked from a recycled pool buffer"
        );
    }
}
