//! The §5-extension collectives (allgather, broadcast): correctness on the
//! data executor, parity on the threaded runtime, and locality properties
//! on the simulator.

use a2a_testutil::run_cases;
use alltoall_suite::algos::collectives::*;
use alltoall_suite::algos::{A2AContext, GatherKind};
use alltoall_suite::netsim::{models, simulate, SimOptions};
use alltoall_suite::runtime::ThreadWorld;
use alltoall_suite::sched::{
    pattern_byte, run_and_verify_allgather, run_and_verify_bcast, validate,
};
use alltoall_suite::topo::{Machine, ProcGrid};

fn ctx(nodes: usize, s: u64) -> A2AContext {
    A2AContext::new(ProcGrid::new(Machine::custom("c", nodes, 2, 1, 3)), s)
}

#[test]
fn allgather_algorithms_verify_and_validate() {
    for nodes in [1usize, 2, 4] {
        let c = ctx(nodes, 16);
        let grid = c.grid.clone();
        let algos: Vec<Box<dyn AllgatherAlgorithm>> = vec![
            Box::new(RingAllgather),
            Box::new(BruckAllgather),
            Box::new(LocalityAwareAllgather::new(3)),
            Box::new(LocalityAwareAllgather::new(6).with_gather(GatherKind::Binomial)),
        ];
        for algo in &algos {
            let sched = AllgatherSchedule::new(algo.as_ref(), c.clone());
            validate(&sched, &grid).unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
            run_and_verify_allgather(&sched, 16).unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        }
    }
}

#[test]
fn bcast_algorithms_verify_from_every_root() {
    let c = ctx(3, 128);
    let n = c.n() as u32;
    for root in 0..n {
        for algo in [
            Box::new(LinearBcast) as Box<dyn BcastAlgorithm>,
            Box::new(BinomialBcast),
            Box::new(HierarchicalBcast),
        ] {
            let sched = BcastSchedule::new(algo.as_ref(), c.clone(), root);
            run_and_verify_bcast(&sched, root, 128)
                .unwrap_or_else(|e| panic!("{} root {root}: {e}", algo.name()));
        }
    }
}

#[test]
fn runtime_allgather_matches_executor() {
    let grid = ProcGrid::new(Machine::custom("c", 2, 2, 1, 2)); // 8 ranks
    let n = grid.world_size();
    let s = 8u64;
    let algo = LocalityAwareAllgather::new(2);
    let g = &grid;
    let a = &algo;
    let outs = ThreadWorld::run(n, move |comm| {
        let mut contrib = vec![0u8; s as usize];
        for k in 0..s {
            contrib[k as usize] = pattern_byte(comm.rank(), comm.rank(), k);
        }
        let mut rbuf = vec![0u8; (n as u64 * s) as usize];
        comm.allgather(a, g, s, &contrib, &mut rbuf).unwrap();
        rbuf
    });
    for rbuf in &outs {
        alltoall_suite::sched::check_allgather_rbuf(0, n, s, rbuf).unwrap();
    }
}

#[test]
fn runtime_bcast_delivers_payload() {
    let grid = ProcGrid::new(Machine::custom("c", 2, 2, 1, 2));
    let n = grid.world_size();
    let root = 5u32;
    let payload: Vec<u8> = (0..100u32).map(|i| (i * 7) as u8).collect();
    let g = &grid;
    let p = &payload;
    let outs = ThreadWorld::run(n, move |comm| {
        let mut rbuf = vec![0u8; p.len()];
        let my_payload = (comm.rank() == root).then_some(p.as_slice());
        comm.bcast(&HierarchicalBcast, g, root, my_payload, &mut rbuf)
            .unwrap();
        rbuf
    });
    for (r, out) in outs.iter().enumerate() {
        assert_eq!(out, &payload, "rank {r}");
    }
}

#[test]
fn locality_aware_allgather_beats_flat_on_network_messages_and_time() {
    let c = ctx(4, 512);
    let grid = c.grid.clone();
    let model = models::dane();
    let flat = AllgatherSchedule::new(&BruckAllgather, c.clone());
    let la = LocalityAwareAllgather::new(6);
    let lasched = AllgatherSchedule::new(&la, c.clone());
    let sf = validate(&flat, &grid).unwrap();
    let sl = validate(&lasched, &grid).unwrap();
    assert!(sl.inter_node_msgs() < sf.inter_node_msgs());
    let tf = simulate(&flat, &grid, &model, &SimOptions::default()).unwrap();
    let tl = simulate(&lasched, &grid, &model, &SimOptions::default()).unwrap();
    assert!(
        tl.total_us < tf.total_us * 2.0,
        "locality-aware allgather unexpectedly slow: {} vs {}",
        tl.total_us,
        tf.total_us
    );
}

#[test]
fn hierarchical_bcast_network_messages_are_nodes_minus_one() {
    for nodes in [2usize, 3, 5] {
        let c = ctx(nodes, 64);
        let grid = c.grid.clone();
        let sched = BcastSchedule::new(&HierarchicalBcast, c, 2);
        let st = validate(&sched, &grid).unwrap();
        assert_eq!(st.inter_node_msgs(), nodes - 1, "nodes={nodes}");
    }
}

// The two property suites below were ported from proptest (32 cases) to the
// seeded runner with 48 cases each; failures print the case seed and the
// generated parameter tuple.

#[test]
fn allgather_property() {
    run_cases(
        "allgather_property",
        48,
        |rng| {
            (
                rng.range_usize(1, 4),
                rng.range_usize(1, 3),
                rng.range_usize(1, 3),
                rng.range_u64(1, 32),
                rng.range_usize(0, 3),
            )
        },
        |&(nodes, sk, co, s, which)| {
            let grid = ProcGrid::new(Machine::custom("p", nodes, sk, 1, co));
            let ppn = grid.machine().ppn();
            let c = A2AContext::new(grid, s);
            let algo: Box<dyn AllgatherAlgorithm> = match which {
                0 => Box::new(RingAllgather),
                1 => Box::new(BruckAllgather),
                _ => {
                    let g = (1..=ppn).rev().find(|g| ppn.is_multiple_of(*g)).unwrap();
                    Box::new(LocalityAwareAllgather::new(g))
                }
            };
            let sched = AllgatherSchedule::new(algo.as_ref(), c);
            run_and_verify_allgather(&sched, s)
                .map(|_| ())
                .map_err(|e| format!("{}: {e}", algo.name()))
        },
    );
}

#[test]
fn bcast_property() {
    run_cases(
        "bcast_property",
        48,
        |rng| {
            (
                rng.range_usize(1, 4),
                rng.range_usize(1, 4),
                rng.range_u64(1, 200),
                rng.range_usize(0, 8),
                rng.range_usize(0, 3),
            )
        },
        |&(nodes, co, len, root_sel, which)| {
            let grid = ProcGrid::new(Machine::custom("p", nodes, 2, 1, co));
            let n = grid.world_size();
            let root = (root_sel % n) as u32;
            let c = A2AContext::new(grid, len);
            let algo: Box<dyn BcastAlgorithm> = match which {
                0 => Box::new(LinearBcast),
                1 => Box::new(BinomialBcast),
                _ => Box::new(HierarchicalBcast),
            };
            let sched = BcastSchedule::new(algo.as_ref(), c, root);
            run_and_verify_bcast(&sched, root, len)
                .map(|_| ())
                .map_err(|e| format!("{} root {root}: {e}", algo.name()))
        },
    );
}
