//! End-to-end correctness: every algorithm in the suite, across machine
//! shapes, group sizes, inner exchanges, and block sizes, must produce an
//! exact all-to-all transpose under the data executor.

use alltoall_suite::algos::*;
use alltoall_suite::sched::run_and_verify;
use alltoall_suite::topo::{Machine, ProcGrid};

fn verify(algo: &dyn AlltoallAlgorithm, grid: &ProcGrid, s: u64) {
    let sched = AlgoSchedule::new(algo, A2AContext::new(grid.clone(), s));
    run_and_verify(&sched, s).unwrap_or_else(|e| {
        panic!(
            "{} on {}x{} s={s}: {e}",
            algo.name(),
            grid.machine().nodes,
            grid.machine().ppn()
        )
    });
}

/// Machines exercising every corner: single node, trivial ppn, NUMA
/// asymmetry, odd node counts.
fn machines() -> Vec<ProcGrid> {
    vec![
        ProcGrid::new(Machine::custom("m1", 1, 1, 1, 4)),
        ProcGrid::new(Machine::custom("m2", 2, 2, 1, 3)),
        ProcGrid::new(Machine::custom("m3", 3, 2, 2, 2)),
        ProcGrid::new(Machine::custom("m4", 5, 1, 2, 2)),
        ProcGrid::new(Machine::custom("m5", 2, 1, 1, 1)), // 1 ppn
    ]
}

#[test]
fn flat_algorithms_transpose_everywhere() {
    for grid in machines() {
        for s in [1u64, 4, 67] {
            verify(&PairwiseAlltoall, &grid, s);
            verify(&NonblockingAlltoall, &grid, s);
            verify(&BruckAlltoall, &grid, s);
            verify(&BatchedAlltoall::new(3), &grid, s);
        }
    }
}

#[test]
fn hierarchical_family_transposes_everywhere() {
    for grid in machines() {
        let ppn = grid.machine().ppn();
        for ppl in 1..=ppn {
            if ppn % ppl != 0 {
                continue;
            }
            for inner in [
                ExchangeKind::Pairwise,
                ExchangeKind::Nonblocking,
                ExchangeKind::Bruck,
            ] {
                verify(&HierarchicalAlltoall::new(ppl, inner), &grid, 8);
            }
        }
    }
}

#[test]
fn node_aware_family_transposes_everywhere() {
    for grid in machines() {
        let ppn = grid.machine().ppn();
        verify(
            &NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise),
            &grid,
            8,
        );
        for ppg in 1..=ppn {
            if ppn % ppg != 0 {
                continue;
            }
            verify(
                &NodeAwareAlltoall::locality_aware(ppg, ExchangeKind::Nonblocking),
                &grid,
                8,
            );
        }
    }
}

#[test]
fn mlna_family_transposes_everywhere() {
    for grid in machines() {
        let ppn = grid.machine().ppn();
        for ppl in 1..=ppn {
            if ppn % ppl != 0 {
                continue;
            }
            for inner in [ExchangeKind::Pairwise, ExchangeKind::Bruck] {
                verify(&MultileaderNodeAwareAlltoall::new(ppl, inner), &grid, 4);
            }
        }
    }
}

#[test]
fn mpich_shm_and_system_transpose_everywhere() {
    for grid in machines() {
        verify(&MpichShmAlltoall::default(), &grid, 8);
        verify(&SystemMpiAlltoall::default(), &grid, 8); // Bruck path
        verify(&SystemMpiAlltoall::default(), &grid, 300); // pairwise path
    }
}

#[test]
fn binomial_gather_variants_transpose() {
    use alltoall_suite::algos::GatherKind;
    let grid = ProcGrid::new(Machine::custom("m", 2, 2, 2, 2)); // ppn 8
    for ppl in [2usize, 4, 8] {
        verify(
            &HierarchicalAlltoall::new(ppl, ExchangeKind::Pairwise)
                .with_gather(GatherKind::Binomial),
            &grid,
            8,
        );
        verify(
            &MultileaderNodeAwareAlltoall::new(ppl, ExchangeKind::Pairwise)
                .with_gather(GatherKind::Binomial),
            &grid,
            8,
        );
    }
}

#[test]
fn paper_roster_all_verify_on_paper_group_sizes() {
    // A machine where the paper's 4/8/16 group sizes all divide ppn.
    let grid = ProcGrid::new(Machine::custom("mini-dane", 2, 2, 4, 2)); // 16 ppn
    for (label, algo) in paper_roster(grid.machine().ppn()) {
        let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(grid.clone(), 4));
        run_and_verify(&sched, 4).unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn large_blocks_transpose() {
    // Push past the simulated eager thresholds to cover rendezvous-size
    // blocks in the data executor too.
    let grid = ProcGrid::new(Machine::custom("m", 2, 1, 1, 2));
    verify(
        &NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise),
        &grid,
        9000,
    );
    verify(&PairwiseAlltoall, &grid, 9000);
}
