//! Property-based tests: random machine shapes, group sizes, and block
//! sizes must always yield (a) structurally valid schedules and (b) exact
//! transposes, for every algorithm family.

use proptest::prelude::*;

use alltoall_suite::algos::*;
use alltoall_suite::sched::{run_and_verify, validate};
use alltoall_suite::topo::{Machine, ProcGrid};

/// Random small machine: up to ~48 ranks so the data executor stays fast.
fn arb_machine() -> impl Strategy<Value = ProcGrid> {
    (1usize..=4, 1usize..=2, 1usize..=2, 1usize..=3).prop_map(|(nodes, sk, nu, co)| {
        ProcGrid::new(Machine::custom("prop", nodes, sk, nu, co))
    })
}

/// A random divisor of `ppn` (group size).
fn divisor_of(ppn: usize) -> impl Strategy<Value = usize> {
    let divs: Vec<usize> = (1..=ppn).filter(|g| ppn % g == 0).collect();
    proptest::sample::select(divs)
}

fn arb_inner() -> impl Strategy<Value = ExchangeKind> {
    prop_oneof![
        Just(ExchangeKind::Pairwise),
        Just(ExchangeKind::Nonblocking),
        Just(ExchangeKind::Bruck),
        (1usize..6).prop_map(|b| ExchangeKind::Batched { batch: b }),
    ]
}

fn check(algo: &dyn AlltoallAlgorithm, grid: &ProcGrid, s: u64) -> Result<(), TestCaseError> {
    let sched = AlgoSchedule::new(algo, A2AContext::new(grid.clone(), s));
    validate(&sched, grid)
        .map_err(|e| TestCaseError::fail(format!("{} invalid: {e}", algo.name())))?;
    run_and_verify(&sched, s)
        .map_err(|e| TestCaseError::fail(format!("{} wrong: {e}", algo.name())))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flat_exchanges_always_transpose(
        grid in arb_machine(),
        inner in arb_inner(),
        s in 1u64..40,
    ) {
        // Drive the flat exchange through the system-facing wrappers.
        match inner {
            ExchangeKind::Pairwise => check(&PairwiseAlltoall, &grid, s)?,
            ExchangeKind::Nonblocking => check(&NonblockingAlltoall, &grid, s)?,
            ExchangeKind::Bruck => check(&BruckAlltoall, &grid, s)?,
            ExchangeKind::Batched { batch } => check(&BatchedAlltoall::new(batch), &grid, s)?,
        }
    }

    #[test]
    fn hierarchical_always_transposes(
        (grid, ppl) in arb_machine().prop_flat_map(|g| {
            let ppn = g.machine().ppn();
            (Just(g), divisor_of(ppn))
        }),
        inner in arb_inner(),
        s in 1u64..24,
    ) {
        check(&HierarchicalAlltoall::new(ppl, inner), &grid, s)?;
    }

    #[test]
    fn locality_aware_always_transposes(
        (grid, ppg) in arb_machine().prop_flat_map(|g| {
            let ppn = g.machine().ppn();
            (Just(g), divisor_of(ppn))
        }),
        inner in arb_inner(),
        s in 1u64..24,
    ) {
        check(&NodeAwareAlltoall::locality_aware(ppg, inner), &grid, s)?;
    }

    #[test]
    fn mlna_always_transposes(
        (grid, ppl) in arb_machine().prop_flat_map(|g| {
            let ppn = g.machine().ppn();
            (Just(g), divisor_of(ppn))
        }),
        inner in arb_inner(),
        s in 1u64..24,
    ) {
        check(&MultileaderNodeAwareAlltoall::new(ppl, inner), &grid, s)?;
    }

    #[test]
    fn mpich_shm_always_transposes(
        grid in arb_machine(),
        inner in arb_inner(),
        s in 1u64..24,
    ) {
        check(&MpichShmAlltoall::new(inner), &grid, s)?;
    }

    #[test]
    fn binomial_trees_always_transpose(
        (grid, ppl) in arb_machine().prop_flat_map(|g| {
            let ppn = g.machine().ppn();
            (Just(g), divisor_of(ppn))
        }),
        s in 1u64..16,
    ) {
        check(
            &HierarchicalAlltoall::new(ppl, ExchangeKind::Pairwise)
                .with_gather(GatherKind::Binomial),
            &grid,
            s,
        )?;
        check(
            &MultileaderNodeAwareAlltoall::new(ppl, ExchangeKind::Pairwise)
                .with_gather(GatherKind::Binomial),
            &grid,
            s,
        )?;
    }

    #[test]
    fn network_volume_is_exactly_minimal_for_aggregators(
        (grid, g1) in arb_machine().prop_flat_map(|g| {
            let ppn = g.machine().ppn();
            (Just(g), divisor_of(ppn))
        }),
        s in 1u64..16,
    ) {
        let m = grid.machine();
        let min = (m.nodes * (m.nodes - 1)) as u64 * (m.ppn() * m.ppn()) as u64 * s;
        for algo in [
            Box::new(NodeAwareAlltoall::locality_aware(g1, ExchangeKind::Pairwise))
                as Box<dyn AlltoallAlgorithm>,
            Box::new(MultileaderNodeAwareAlltoall::new(g1, ExchangeKind::Pairwise)),
            Box::new(HierarchicalAlltoall::new(g1, ExchangeKind::Pairwise)),
        ] {
            let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(grid.clone(), s));
            let st = validate(&sched, &grid)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", algo.name())))?;
            prop_assert_eq!(st.inter_node_bytes(), min, "{}", algo.name());
        }
    }

    #[test]
    fn bruck_handles_any_world_size(m in 1usize..40, s in 1u64..16) {
        let grid = ProcGrid::new(Machine::custom("flat", m, 1, 1, 1));
        check(&BruckAlltoall, &grid, s)?;
    }
}
