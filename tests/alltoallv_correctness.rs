//! Variable-sized all-to-all: randomized count matrices must always yield
//! exact routing, and the node-aware variant must preserve its aggregation
//! guarantees under irregularity.

use std::sync::Arc;

use a2a_testutil::run_cases;
use alltoall_suite::algos::alltoallv::*;
use alltoall_suite::netsim::{models, simulate, SimOptions};
use alltoall_suite::runtime::ParallelExecutor;
use alltoall_suite::sched::{
    validate, DataExecutor, ExecScratch, LegacyDataExecutor, PreparedSchedule,
};
use alltoall_suite::topo::{Machine, ProcGrid, Rank};

fn grid(nodes: usize, ppn_cores: usize) -> ProcGrid {
    ProcGrid::new(Machine::custom("v", nodes, 2, 1, ppn_cores))
}

#[test]
fn random_count_matrices_route_exactly() {
    // Ported from proptest (40 cases) to the seeded runner with 64 cases; a
    // failure prints the case seed and the generated (nodes, cores, seed,
    // zero_bias) tuple.
    run_cases(
        "random_count_matrices_route_exactly",
        64,
        |rng| {
            (
                rng.range_usize(1, 4),
                rng.range_usize(1, 3),
                rng.range_u64(0, 1000),
                rng.range_u64(0, 8),
            )
        },
        |&(nodes, cores, seed, zero_bias)| {
            let g = grid(nodes, cores);
            let n = g.world_size() as u64;
            let counts: CountsFn = Arc::new(move |s, d| {
                let mut x = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((s as u64 * n + d as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
                x ^= x >> 31;
                if x % 8 < zero_bias {
                    0
                } else {
                    x % 97
                }
            });
            let ctx = VContext::new(g, counts);
            run_and_verify_v(&PairwiseAlltoallv, &ctx)?;
            run_and_verify_v(&NonblockingAlltoallv, &ctx)?;
            run_and_verify_v(&NodeAwareAlltoallv, &ctx)?;
            Ok(())
        },
    );
}

#[test]
fn skewed_fft_like_counts_simulate_and_verify() {
    // A transpose-ish workload: rank i sends mostly to a diagonal band.
    let g = grid(3, 2); // 12 ranks
    let n = g.world_size() as i64;
    let counts: CountsFn = Arc::new(move |s, d| {
        let dist = ((s as i64 - d as i64).rem_euclid(n)).min((d as i64 - s as i64).rem_euclid(n));
        if dist <= 2 {
            256 >> dist
        } else {
            0
        }
    });
    let ctx = VContext::new(g.clone(), counts);
    run_and_verify_v(&NodeAwareAlltoallv, &ctx).unwrap();
    // And it must simulate without deadlock, faster than nothing.
    let sched = VSchedule::new(&NodeAwareAlltoallv, ctx);
    let rep = simulate(&sched, &g, &models::dane(), &SimOptions::default()).unwrap();
    assert!(rep.total_us > 0.0);
}

#[test]
fn every_executor_agrees_on_v_schedules_byte_for_byte() {
    // Cross-crate differential: the same non-uniform VSchedule must
    // produce identical receive buffers through the fast prepared data
    // executor, the legacy executor, and the parallel runtime at several
    // worker counts — the uniform-alltoall identity extended to
    // irregular counts.
    let algos: [&dyn AlltoallvAlgorithm; 3] = [
        &PairwiseAlltoallv,
        &NonblockingAlltoallv,
        &NodeAwareAlltoallv,
    ];
    for nodes in [1usize, 3] {
        let g = grid(nodes, 2);
        let n = g.world_size() as u64;
        let counts: CountsFn = Arc::new(move |s, d| {
            let x = (s as u64 * 31 + d as u64 * 17) % 13;
            if x < 4 {
                0
            } else {
                (x * (1 + (s as u64 + d as u64) % 5)) % (n + 7)
            }
        });
        let ctx = VContext::new(g, counts);
        for algo in algos {
            let sched = VSchedule::new(algo, ctx.clone());
            let fill = |r: Rank, buf: &mut [u8]| fill_alltoallv_sbuf(&ctx, r, buf);

            // Fast path: prepared schedule + reusable scratch, run twice
            // to cover scratch reuse.
            let prep = PreparedSchedule::new(&sched);
            let mut scratch = ExecScratch::new(&prep);
            for _ in 0..2 {
                DataExecutor::run_prepared(&prep, &mut scratch, fill)
                    .unwrap_or_else(|e| panic!("{} nodes={nodes}: {e}", algo.name()));
            }
            let fast: Vec<Vec<u8>> = (0..ctx.n() as Rank)
                .map(|r| scratch.rbuf(r).to_vec())
                .collect();
            for (r, rbuf) in fast.iter().enumerate() {
                check_alltoallv_rbuf(&ctx, r as Rank, rbuf)
                    .unwrap_or_else(|e| panic!("{} nodes={nodes}: {e}", algo.name()));
            }

            let legacy = LegacyDataExecutor::run(&sched, fill)
                .unwrap_or_else(|e| panic!("{} nodes={nodes}: {e}", algo.name()));
            assert_eq!(
                legacy.rbufs,
                fast,
                "{} nodes={nodes}: legacy executor diverged",
                algo.name()
            );

            for workers in [1usize, 2, 3] {
                let par = ParallelExecutor::run(&sched, workers, fill)
                    .unwrap_or_else(|e| panic!("{} nodes={nodes}: {e}", algo.name()));
                assert_eq!(
                    par.rbufs,
                    fast,
                    "{} nodes={nodes} workers={workers}: parallel runtime diverged",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn node_aware_v_internode_bytes_are_minimal() {
    // Even with irregular counts, aggregation sends each byte across the
    // network exactly once.
    let g = grid(3, 2);
    let counts: CountsFn = Arc::new(|s, d| ((s as u64 * 7 + d as u64 * 3) % 11) * 4);
    let ctx = VContext::new(g.clone(), counts.clone());
    let sched = VSchedule::new(&NodeAwareAlltoallv, ctx.clone());
    let st = validate(&sched, &g).unwrap();
    let mut min_bytes = 0u64;
    for s in 0..g.world_size() as u32 {
        for d in 0..g.world_size() as u32 {
            if g.node_of(s) != g.node_of(d) {
                min_bytes += counts(s, d);
            }
        }
    }
    assert_eq!(st.inter_node_bytes(), min_bytes);
    // Direct pairwise matches too (no aggregation, same bytes).
    let direct = VSchedule::new(&PairwiseAlltoallv, ctx);
    let sd = validate(&direct, &g).unwrap();
    assert_eq!(sd.inter_node_bytes(), min_bytes);
}
