//! Sub-communicator algebra.
//!
//! Every composed all-to-all algorithm in the paper runs inner exchanges on
//! MPI sub-communicators. A [`CommView`] is the ordered set of world ranks
//! in such a communicator; the constructors on [`ProcGrid`] mirror the
//! communicators named in Algorithms 3–5:
//!
//! * `local_comm` — the `g` consecutive on-node ranks forming one
//!   leader-group / aggregation region ([`ProcGrid::subset_comm`]);
//! * `group_comm` (Alg. 3) — all leaders ([`ProcGrid::all_leaders_comm`]);
//! * `group_comm` (Alg. 4) — the ranks with equal local rank, one per region
//!   ([`ProcGrid::cross_region_comm`]);
//! * `group_comm` (Alg. 5) — corresponding leaders across nodes
//!   ([`ProcGrid::corresponding_leader_comm`]);
//! * `leader_group_comm` (Alg. 5) — the leaders within one node
//!   ([`ProcGrid::node_leaders_comm`]).
//!
//! All communicators list ranks in ascending world-rank order, which (with
//! the block rank mapping) equals ordering by `(node, subset, offset)`.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::machine::ProcGrid;
use crate::Rank;

/// An ordered sub-communicator: a sorted list of world ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct CommView {
    ranks: Vec<Rank>,
}

impl CommView {
    /// Build from a rank list.
    ///
    /// # Panics
    /// Panics if `ranks` is empty, unsorted, or contains duplicates: the
    /// data-layout algebra in the algorithms relies on ascending order.
    pub fn new(ranks: Vec<Rank>) -> Self {
        assert!(!ranks.is_empty(), "communicator must be nonempty");
        assert!(
            ranks.windows(2).all(|w| w[0] < w[1]),
            "communicator ranks must be strictly ascending"
        );
        CommView { ranks }
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// World rank of communicator-local index `i`.
    pub fn world(&self, i: usize) -> Rank {
        self.ranks[i]
    }

    /// Communicator-local index of a world rank, if a member.
    pub fn local_of(&self, world: Rank) -> Option<usize> {
        self.ranks.binary_search(&world).ok()
    }

    /// All member world ranks, ascending.
    pub fn ranks(&self) -> &[Rank] {
        &self.ranks
    }

    /// Iterate `(local index, world rank)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Rank)> + '_ {
        self.ranks.iter().enumerate().map(|(i, &r)| (i, r))
    }
}

impl ProcGrid {
    fn assert_group(&self, g: usize) {
        let ppn = self.machine().ppn();
        assert!(
            g > 0 && ppn.is_multiple_of(g),
            "group size {g} must divide ppn {ppn}"
        );
    }

    /// Number of `g`-sized subsets (leader groups / regions) per node.
    pub fn groups_per_node(&self, g: usize) -> usize {
        self.assert_group(g);
        self.machine().ppn() / g
    }

    /// Total regions in the job for group size `g`.
    pub fn region_count(&self, g: usize) -> usize {
        self.machine().nodes * self.groups_per_node(g)
    }

    /// Index of `rank`'s subset within its node (`q`).
    pub fn subset_index(&self, rank: Rank, g: usize) -> usize {
        self.assert_group(g);
        self.local_rank(rank) / g
    }

    /// Offset of `rank` within its subset (`o`).
    pub fn subset_offset(&self, rank: Rank, g: usize) -> usize {
        self.assert_group(g);
        self.local_rank(rank) % g
    }

    /// Global region index of `rank`'s subset, ordered by `(node, subset)`.
    pub fn region_index(&self, rank: Rank, g: usize) -> usize {
        self.node_of(rank) * self.groups_per_node(g) + self.subset_index(rank, g)
    }

    /// World rank of the leader (offset 0) of `rank`'s subset.
    pub fn leader_of(&self, rank: Rank, g: usize) -> Rank {
        self.node_base(rank) + (self.subset_index(rank, g) * g) as Rank
    }

    /// First world rank of the region with global index `region`.
    pub fn region_base(&self, region: usize, g: usize) -> Rank {
        let gpn = self.groups_per_node(g);
        let node = region / gpn;
        let subset = region % gpn;
        (node * self.machine().ppn() + subset * g) as Rank
    }

    /// The whole job as one communicator.
    pub fn world_comm(&self) -> CommView {
        CommView::new((0..self.world_size() as Rank).collect())
    }

    /// All ranks on `rank`'s node.
    pub fn node_comm(&self, rank: Rank) -> CommView {
        let base = self.node_base(rank);
        CommView::new((base..base + self.machine().ppn() as Rank).collect())
    }

    /// `local_comm`: the `g` consecutive ranks of `rank`'s subset.
    pub fn subset_comm(&self, rank: Rank, g: usize) -> CommView {
        let leader = self.leader_of(rank, g);
        CommView::new((leader..leader + g as Rank).collect())
    }

    /// Algorithm 3 `group_comm`: every subset leader, across all nodes and
    /// subsets, ordered by `(node, subset)`.
    pub fn all_leaders_comm(&self, g: usize) -> CommView {
        let regions = self.region_count(g);
        CommView::new((0..regions).map(|r| self.region_base(r, g)).collect())
    }

    /// Algorithm 4 `group_comm`: the ranks sharing `rank`'s offset within
    /// their subset — exactly one per region, ordered by `(node, subset)`.
    pub fn cross_region_comm(&self, rank: Rank, g: usize) -> CommView {
        let o = self.subset_offset(rank, g) as Rank;
        let regions = self.region_count(g);
        CommView::new((0..regions).map(|r| self.region_base(r, g) + o).collect())
    }

    /// Algorithm 5 `group_comm`: the leaders of `rank`'s subset index on
    /// every node (one per node).
    pub fn corresponding_leader_comm(&self, rank: Rank, g: usize) -> CommView {
        let q = self.subset_index(rank, g);
        let ppn = self.machine().ppn();
        CommView::new(
            (0..self.machine().nodes)
                .map(|n| (n * ppn + q * g) as Rank)
                .collect(),
        )
    }

    /// Algorithm 5 `leader_group_comm`: the subset leaders within `rank`'s
    /// node.
    pub fn node_leaders_comm(&self, rank: Rank, g: usize) -> CommView {
        let base = self.node_base(rank);
        CommView::new(
            (0..self.groups_per_node(g))
                .map(|q| base + (q * g) as Rank)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;

    fn grid() -> ProcGrid {
        // 3 nodes x 12 ppn.
        ProcGrid::new(Machine::custom("t", 3, 2, 2, 3))
    }

    #[test]
    fn commview_basics() {
        let c = CommView::new(vec![2, 5, 9]);
        assert_eq!(c.size(), 3);
        assert_eq!(c.world(1), 5);
        assert_eq!(c.local_of(9), Some(2));
        assert_eq!(c.local_of(3), None);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![(0, 2), (1, 5), (2, 9)]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn commview_rejects_unsorted() {
        CommView::new(vec![3, 1]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn commview_rejects_duplicates() {
        CommView::new(vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn commview_rejects_empty() {
        CommView::new(vec![]);
    }

    #[test]
    fn subset_indexing() {
        let g = grid();
        // g=4: 3 subsets per node.
        assert_eq!(g.groups_per_node(4), 3);
        assert_eq!(g.region_count(4), 9);
        let r: Rank = 12 + 7; // node 1, local 7 -> subset 1, offset 3
        assert_eq!(g.subset_index(r, 4), 1);
        assert_eq!(g.subset_offset(r, 4), 3);
        assert_eq!(g.region_index(r, 4), 4);
        assert_eq!(g.leader_of(r, 4), 16);
        assert_eq!(g.region_base(4, 4), 16);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn group_must_divide_ppn() {
        grid().groups_per_node(5);
    }

    #[test]
    fn node_comm_contents() {
        let g = grid();
        let c = g.node_comm(14);
        assert_eq!(c.ranks(), (12..24).collect::<Vec<Rank>>().as_slice());
    }

    #[test]
    fn subset_comm_contents() {
        let g = grid();
        let c = g.subset_comm(19, 4);
        assert_eq!(c.ranks(), &[16, 17, 18, 19]);
    }

    #[test]
    fn all_leaders_comm_contents() {
        let g = grid();
        let c = g.all_leaders_comm(6);
        assert_eq!(c.ranks(), &[0, 6, 12, 18, 24, 30]);
    }

    #[test]
    fn cross_region_comm_contents() {
        let g = grid();
        // offset 2 within 4-wide subsets -> one per region.
        let c = g.cross_region_comm(6, 4); // local 6 -> subset 1, offset 2
        assert_eq!(c.ranks(), &[2, 6, 10, 14, 18, 22, 26, 30, 34]);
        assert_eq!(c.local_of(6), Some(1));
    }

    #[test]
    fn corresponding_leader_comm_contents() {
        let g = grid();
        let c = g.corresponding_leader_comm(19, 4); // subset 1
        assert_eq!(c.ranks(), &[4, 16, 28]);
    }

    #[test]
    fn node_leaders_comm_contents() {
        let g = grid();
        let c = g.node_leaders_comm(19, 4);
        assert_eq!(c.ranks(), &[12, 16, 20]);
    }

    #[test]
    fn regions_partition_world() {
        let g = grid();
        for gs in [1, 2, 3, 4, 6, 12] {
            let mut seen = vec![false; g.world_size()];
            for region in 0..g.region_count(gs) {
                let base = g.region_base(region, gs);
                for r in base..base + gs as Rank {
                    assert!(!seen[r as usize], "rank {r} in two regions");
                    seen[r as usize] = true;
                    assert_eq!(g.region_index(r, gs), region);
                }
            }
            assert!(seen.iter().all(|&s| s), "regions must cover world");
        }
    }

    #[test]
    fn cross_region_comms_partition_world() {
        let g = grid();
        let gs = 4;
        let mut seen = vec![0u32; g.world_size()];
        for o in 0..gs {
            let c = g.cross_region_comm(o as Rank, gs);
            assert_eq!(c.size(), g.region_count(gs));
            for (_, w) in c.iter() {
                seen[w as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn group_size_one_and_full_node_degenerate_cases() {
        let g = grid();
        // g == ppn: one region per node; subset comm == node comm.
        assert_eq!(g.subset_comm(14, 12), g.node_comm(14));
        assert_eq!(g.cross_region_comm(14, 12).size(), 3);
        // g == 1: every rank its own leader; cross-region comm == world.
        assert_eq!(g.cross_region_comm(14, 1), g.world_comm());
        assert_eq!(g.all_leaders_comm(1), g.world_comm());
    }
}
