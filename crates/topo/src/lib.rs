//! Machine and process topology models for many-core all-to-all collectives.
//!
//! This crate describes *where ranks live*: the shape of a many-core
//! cluster (nodes, sockets, NUMA domains, cores), the mapping from MPI-style
//! world ranks onto that shape, and the sub-communicator algebra used by
//! hierarchical, node-aware, locality-aware, and multi-leader all-to-all
//! algorithms (paper Algorithms 3–5).
//!
//! Everything here is pure data and index arithmetic: no I/O, no threads.
//! The schedule builders in `a2a-core` and the simulator in `a2a-netsim`
//! consume these types.
//!
//! # Example
//!
//! ```
//! use a2a_topo::{Machine, ProcGrid, Level};
//!
//! // A small Dane-like machine: 4 nodes, 2 sockets x 2 NUMA x 4 cores = 16 ppn.
//! let m = Machine::custom("mini", 4, 2, 2, 4);
//! let grid = ProcGrid::new(m);
//! assert_eq!(grid.world_size(), 64);
//! assert_eq!(grid.level(0, 1), Level::IntraNuma);
//! assert_eq!(grid.level(0, 17), Level::InterNode);
//!
//! // Node-aware communicators (Algorithm 4, one region per node):
//! let group = grid.cross_region_comm(3, grid.machine().ppn());
//! assert_eq!(group.size(), 4); // one peer per node
//! ```

mod comm;
mod links;
mod machine;
pub mod presets;

pub use comm::CommView;
pub use links::LinkTable;
pub use machine::{Level, Location, Machine, MapOrder, ProcGrid};
pub use presets::{amber, dane, scaled_many_core, tuolumne};

/// A world rank. `u32` keeps op encodings compact; 4 G ranks is plenty.
pub type Rank = u32;
