//! Machine presets from the paper's Table 1.
//!
//! | Name     | CPU                   | ppn | Structure                     |
//! |----------|-----------------------|-----|-------------------------------|
//! | Dane     | Intel Sapphire Rapids | 112 | 2 sockets x 4 NUMA x 14 cores |
//! | Amber    | Intel Sapphire Rapids | 112 | 2 sockets x 4 NUMA x 14 cores |
//! | Tuolumne | AMD Instinct MI300A   | 96  | 4 APUs    x 1 NUMA x 24 cores |
//!
//! Dane and Amber share the node architecture (both Sapphire Rapids with 112
//! cores over 2 sockets and 4 NUMA domains per socket); they differ in
//! network/MPI stack, which lives in `a2a-netsim`'s cost-model presets.
//! Tuolumne's MI300A node is modeled as 4 sockets (APUs) of 24 cores, one
//! NUMA domain each.

use crate::Machine;

/// LLNL Dane: Sapphire Rapids, 112 cores/node, Omni-Path.
pub fn dane(nodes: usize) -> Machine {
    Machine::custom("dane", nodes, 2, 4, 14)
}

/// SNL Amber: Sapphire Rapids, 112 cores/node, Omni-Path.
pub fn amber(nodes: usize) -> Machine {
    Machine::custom("amber", nodes, 2, 4, 14)
}

/// LLNL Tuolumne: AMD MI300A, 96 cores/node, Slingshot-11.
pub fn tuolumne(nodes: usize) -> Machine {
    Machine::custom("tuolumne", nodes, 4, 1, 24)
}

/// A scaled-down Sapphire-Rapids-like node for fast simulation sweeps:
/// keeps the 2-socket x 4-NUMA hierarchy but shrinks cores per NUMA.
/// `cores_per_numa = 4` gives 32 ppn (the default figure-harness scale).
pub fn scaled_many_core(nodes: usize, cores_per_numa: usize) -> Machine {
    Machine::custom("scaled", nodes, 2, 4, cores_per_numa)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        assert_eq!(dane(32).ppn(), 112);
        assert_eq!(dane(32).world_size(), 3584);
        assert_eq!(amber(32).ppn(), 112);
        assert_eq!(tuolumne(32).ppn(), 96);
        assert_eq!(tuolumne(32).world_size(), 3072);
        assert_eq!(scaled_many_core(32, 4).ppn(), 32);
    }

    #[test]
    fn paper_buffer_size_claim() {
        // "at 32 nodes (3584 processes on Dane and Amber), each process must
        // exchange a buffer of 14,680,064 bytes" at 4096 B per process.
        let m = dane(32);
        assert_eq!(m.world_size() * 4096, 14_680_064);
    }

    #[test]
    fn paper_group_sizes_divide_ppn() {
        // The paper tests 4, 8, and 16 processes per leader/group.
        for g in [4, 8, 16] {
            assert_eq!(dane(2).ppn() % g, 0, "g={g} on dane");
            assert_eq!(tuolumne(2).ppn() % g, 0, "g={g} on tuolumne");
        }
        // 4 ppl on Dane = 28 leaders per node, as Figure 10's caption says.
        assert_eq!(dane(2).ppn() / 4, 28);
        // 16 ppg = 7 leaders on Dane (Figure 16 discussion).
        assert_eq!(dane(2).ppn() / 16, 7);
    }
}
