//! Dense per-directed-node-pair tables.
//!
//! A sharded simulator (or any per-link analysis) needs O(1) lookups keyed
//! by the directed inter-node link `(from_node, to_node)`. [`LinkTable`]
//! stores one value per ordered node pair in a flat `nodes * nodes` vector;
//! the diagonal (`from == to`) is allocated but conventionally unused —
//! intra-node traffic never crosses a network link.
//!
//! The canonical use is the conservative-lookahead table of `a2a-netsim`:
//! each directed link carries a *latency floor* (the minimum time any
//! message needs to traverse it, derived from the LogGP `alpha` and any
//! per-link degradation), and a shard may safely advance to the minimum of
//! its neighbors' guarantees plus that floor.

/// A value per directed inter-node link, stored densely.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkTable<T> {
    nodes: usize,
    values: Vec<T>,
}

impl<T> LinkTable<T> {
    /// Build a table by evaluating `f(from_node, to_node)` for every
    /// ordered node pair (including the unused diagonal, so indexing stays
    /// branch-free).
    pub fn from_fn(nodes: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        assert!(nodes > 0, "link table needs at least one node");
        let mut values = Vec::with_capacity(nodes * nodes);
        for from in 0..nodes {
            for to in 0..nodes {
                values.push(f(from, to));
            }
        }
        LinkTable { nodes, values }
    }

    /// Node count the table was built for.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Value on the directed link `from -> to`.
    #[inline]
    pub fn get(&self, from: usize, to: usize) -> &T {
        &self.values[from * self.nodes + to]
    }

    /// Mutable value on the directed link `from -> to`.
    #[inline]
    pub fn get_mut(&mut self, from: usize, to: usize) -> &mut T {
        &mut self.values[from * self.nodes + to]
    }

    /// Iterate `(from, to, &value)` over every ordered pair of *distinct*
    /// nodes (the diagonal is skipped: it is not a network link).
    pub fn iter_links(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        let n = self.nodes;
        self.values.iter().enumerate().filter_map(move |(i, v)| {
            let (from, to) = (i / n, i % n);
            (from != to).then_some((from, to, v))
        })
    }
}

impl LinkTable<f64> {
    /// Minimum off-diagonal value — e.g. the tightest latency floor over
    /// all inter-node links, the global safe lookahead.
    pub fn min_link(&self) -> Option<f64> {
        self.iter_links().map(|(_, _, &v)| v).min_by(f64::total_cmp)
    }

    /// Minimum over directed links from any node in `from` to any node in
    /// `to` — the safe lookahead between two shards (node groups).
    pub fn min_between(
        &self,
        from: std::ops::Range<usize>,
        to: std::ops::Range<usize>,
    ) -> Option<f64> {
        let mut best: Option<f64> = None;
        for a in from {
            for b in to.clone() {
                if a == b {
                    continue;
                }
                let v = *self.get(a, b);
                best = Some(match best {
                    Some(m) if m <= v => m,
                    _ => v,
                });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let t = LinkTable::from_fn(3, |a, b| (a * 10 + b) as f64);
        assert_eq!(t.nodes(), 3);
        assert_eq!(*t.get(2, 1), 21.0);
        assert_eq!(*t.get(0, 0), 0.0);
    }

    #[test]
    fn iter_links_skips_diagonal() {
        let t = LinkTable::from_fn(3, |a, b| a + b);
        let links: Vec<_> = t.iter_links().collect();
        assert_eq!(links.len(), 6);
        assert!(links.iter().all(|&(a, b, _)| a != b));
    }

    #[test]
    fn min_link_ignores_diagonal() {
        // Diagonal holds 0.0 but must not win.
        let t = LinkTable::from_fn(2, |a, b| if a == b { 0.0 } else { 5.0 + b as f64 });
        assert_eq!(t.min_link(), Some(5.0));
    }

    #[test]
    fn min_between_ranges() {
        let t = LinkTable::from_fn(4, |a, b| (a * 4 + b) as f64);
        // Links from {0,1} to {2,3}: values 2,3,6,7 -> min 2.
        assert_eq!(t.min_between(0..2, 2..4), Some(2.0));
        // Same range excludes the diagonal.
        assert_eq!(t.min_between(0..2, 0..2), Some(1.0));
        // Single node to itself: no links.
        assert_eq!(t.min_between(0..1, 0..1), None);
    }

    #[test]
    fn get_mut_updates() {
        let mut t = LinkTable::from_fn(2, |_, _| 1.0);
        *t.get_mut(0, 1) = 9.0;
        assert_eq!(*t.get(0, 1), 9.0);
        assert_eq!(*t.get(1, 0), 1.0);
    }

    #[test]
    fn single_node_has_no_links() {
        let t = LinkTable::from_fn(1, |_, _| 3.0);
        assert_eq!(t.min_link(), None);
        assert_eq!(t.iter_links().count(), 0);
    }
}
