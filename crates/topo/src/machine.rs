//! The cluster shape and the rank -> hardware mapping.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::Rank;

/// Shape of a homogeneous cluster: every node has the same socket/NUMA/core
/// structure. Mirrors the architectures in the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Machine {
    /// Human-readable name ("dane", "amber", "tuolumne", ...).
    pub name: String,
    /// Number of nodes in the allocation.
    pub nodes: usize,
    /// CPU sockets per node.
    pub sockets_per_node: usize,
    /// NUMA domains per socket.
    pub numa_per_socket: usize,
    /// Cores (= ranks; one rank per core, as in the paper) per NUMA domain.
    pub cores_per_numa: usize,
}

impl Machine {
    /// Build an arbitrary machine shape.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn custom(
        name: &str,
        nodes: usize,
        sockets_per_node: usize,
        numa_per_socket: usize,
        cores_per_numa: usize,
    ) -> Self {
        assert!(
            nodes > 0 && sockets_per_node > 0 && numa_per_socket > 0 && cores_per_numa > 0,
            "machine dimensions must be nonzero"
        );
        Machine {
            name: name.to_string(),
            nodes,
            sockets_per_node,
            numa_per_socket,
            cores_per_numa,
        }
    }

    /// Cores (ranks) per NUMA domain times NUMA domains per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.numa_per_socket * self.cores_per_numa
    }

    /// Processes per node ("ppn" throughout the paper).
    pub fn ppn(&self) -> usize {
        self.sockets_per_node * self.cores_per_socket()
    }

    /// Total ranks in the job (`nodes * ppn`).
    pub fn world_size(&self) -> usize {
        self.nodes * self.ppn()
    }

    /// Same per-node shape on a different node count.
    pub fn with_nodes(&self, nodes: usize) -> Self {
        Machine {
            nodes,
            ..self.clone()
        }
    }
}

/// Hardware placement of a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Location {
    pub node: usize,
    /// Socket index within the node.
    pub socket: usize,
    /// NUMA domain index within the socket.
    pub numa: usize,
    /// Core index within the NUMA domain.
    pub core: usize,
}

/// Locality level of a rank pair, from closest to farthest. The cost model
/// assigns each level its own latency/bandwidth tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Level {
    /// Same rank (self copy).
    SelfRank,
    /// Same NUMA domain.
    IntraNuma,
    /// Same socket, different NUMA domain.
    IntraSocket,
    /// Same node, different socket.
    InterSocket,
    /// Different nodes (crosses the network).
    InterNode,
}

impl Level {
    /// All distinct inter-rank levels (excludes `SelfRank`), closest first.
    pub const INTER_RANK: [Level; 4] = [
        Level::IntraNuma,
        Level::IntraSocket,
        Level::InterSocket,
        Level::InterNode,
    ];

    /// True when the pair does not leave the node.
    pub fn is_intra_node(self) -> bool {
        !matches!(self, Level::InterNode)
    }
}

/// How consecutive local ranks land on a node's cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum MapOrder {
    /// `--map-by core`: fill one NUMA domain before the next. Consecutive
    /// local ranks share a NUMA domain, so small consecutive groups are
    /// NUMA-aligned.
    #[default]
    CoreMajor,
    /// `--map-by numa` (cyclic): deal ranks round-robin across the node's
    /// NUMA domains. Consecutive local ranks land on *different* domains —
    /// modeling the paper's runs, where aggregation groups were not mapped
    /// to regions of locality and "group sizes force the groups to cross
    /// NUMA regions and/or sockets".
    NumaCyclic,
}

/// A `Machine` plus the rank mapping: ranks fill node 0, then node 1, and
/// so on; within a node, cores are assigned per [`MapOrder`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ProcGrid {
    machine: Machine,
    #[cfg_attr(feature = "serde", serde(default))]
    mapping: MapOrder,
}

impl ProcGrid {
    pub fn new(machine: Machine) -> Self {
        ProcGrid {
            machine,
            mapping: MapOrder::CoreMajor,
        }
    }

    /// Grid with an explicit within-node mapping order.
    pub fn with_mapping(machine: Machine, mapping: MapOrder) -> Self {
        ProcGrid { machine, mapping }
    }

    /// The within-node mapping order.
    pub fn mapping(&self) -> MapOrder {
        self.mapping
    }

    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    pub fn world_size(&self) -> usize {
        self.machine.world_size()
    }

    /// Node index of `rank`.
    pub fn node_of(&self, rank: Rank) -> usize {
        rank as usize / self.machine.ppn()
    }

    /// Rank's index within its node (`l` in the paper's pseudo-code).
    pub fn local_rank(&self, rank: Rank) -> usize {
        rank as usize % self.machine.ppn()
    }

    /// Full hardware placement of `rank`.
    pub fn location(&self, rank: Rank) -> Location {
        let ppn = self.machine.ppn();
        let cps = self.machine.cores_per_socket();
        let cpn = self.machine.cores_per_numa;
        let r = rank as usize;
        let within = r % ppn;
        match self.mapping {
            MapOrder::CoreMajor => Location {
                node: r / ppn,
                socket: within / cps,
                numa: (within % cps) / cpn,
                core: within % cpn,
            },
            MapOrder::NumaCyclic => {
                // Deal across all NUMA domains of the node in turn.
                let domains = self.machine.sockets_per_node * self.machine.numa_per_socket;
                let domain = within % domains;
                Location {
                    node: r / ppn,
                    socket: domain / self.machine.numa_per_socket,
                    numa: domain % self.machine.numa_per_socket,
                    core: within / domains,
                }
            }
        }
    }

    /// World rank at a hardware placement.
    pub fn rank_at(&self, loc: Location) -> Rank {
        let ppn = self.machine.ppn();
        let cps = self.machine.cores_per_socket();
        let cpn = self.machine.cores_per_numa;
        match self.mapping {
            MapOrder::CoreMajor => {
                (loc.node * ppn + loc.socket * cps + loc.numa * cpn + loc.core) as Rank
            }
            MapOrder::NumaCyclic => {
                let domains = self.machine.sockets_per_node * self.machine.numa_per_socket;
                let domain = loc.socket * self.machine.numa_per_socket + loc.numa;
                (loc.node * ppn + loc.core * domains + domain) as Rank
            }
        }
    }

    /// Locality level between two ranks.
    pub fn level(&self, a: Rank, b: Rank) -> Level {
        if a == b {
            return Level::SelfRank;
        }
        let la = self.location(a);
        let lb = self.location(b);
        if la.node != lb.node {
            Level::InterNode
        } else if la.socket != lb.socket {
            Level::InterSocket
        } else if la.numa != lb.numa {
            Level::IntraSocket
        } else {
            Level::IntraNuma
        }
    }

    /// First world rank of `rank`'s node.
    pub fn node_base(&self, rank: Rank) -> Rank {
        (self.node_of(rank) * self.machine.ppn()) as Rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ProcGrid {
        // 3 nodes x 2 sockets x 2 NUMA x 3 cores = 12 ppn, 36 ranks.
        ProcGrid::new(Machine::custom("t", 3, 2, 2, 3))
    }

    #[test]
    fn dimensions() {
        let g = grid();
        assert_eq!(g.machine().cores_per_socket(), 6);
        assert_eq!(g.machine().ppn(), 12);
        assert_eq!(g.world_size(), 36);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        Machine::custom("bad", 0, 1, 1, 1);
    }

    #[test]
    fn location_roundtrip() {
        let g = grid();
        for r in 0..g.world_size() as Rank {
            let loc = g.location(r);
            assert_eq!(g.rank_at(loc), r, "rank {r} roundtrip");
            assert!(loc.socket < 2 && loc.numa < 2 && loc.core < 3);
        }
    }

    #[test]
    fn block_mapping_is_core_major() {
        let g = grid();
        // Rank 0..2 share NUMA 0 of socket 0 of node 0; rank 3 starts NUMA 1.
        assert_eq!(
            g.location(0),
            Location {
                node: 0,
                socket: 0,
                numa: 0,
                core: 0
            }
        );
        assert_eq!(g.location(2).numa, 0);
        assert_eq!(g.location(3).numa, 1);
        assert_eq!(g.location(6).socket, 1);
        assert_eq!(g.location(12).node, 1);
    }

    #[test]
    fn levels() {
        let g = grid();
        assert_eq!(g.level(5, 5), Level::SelfRank);
        assert_eq!(g.level(0, 1), Level::IntraNuma);
        assert_eq!(g.level(0, 3), Level::IntraSocket);
        assert_eq!(g.level(0, 6), Level::InterSocket);
        assert_eq!(g.level(0, 12), Level::InterNode);
        // Symmetry.
        assert_eq!(g.level(12, 0), Level::InterNode);
        assert_eq!(g.level(3, 0), Level::IntraSocket);
    }

    #[test]
    fn level_ordering_reflects_distance() {
        assert!(Level::IntraNuma < Level::IntraSocket);
        assert!(Level::IntraSocket < Level::InterSocket);
        assert!(Level::InterSocket < Level::InterNode);
        assert!(!Level::InterNode.is_intra_node());
        assert!(Level::IntraSocket.is_intra_node());
    }

    #[test]
    fn node_helpers() {
        let g = grid();
        assert_eq!(g.node_of(13), 1);
        assert_eq!(g.local_rank(13), 1);
        assert_eq!(g.node_base(13), 12);
    }

    #[test]
    fn with_nodes_preserves_shape() {
        let m = Machine::custom("t", 3, 2, 2, 3).with_nodes(7);
        assert_eq!(m.nodes, 7);
        assert_eq!(m.ppn(), 12);
    }

    #[test]
    fn numa_cyclic_roundtrip_and_partition() {
        let g = ProcGrid::with_mapping(Machine::custom("t", 2, 2, 2, 3), MapOrder::NumaCyclic);
        let mut seen = std::collections::HashSet::new();
        for r in 0..g.world_size() as Rank {
            let loc = g.location(r);
            assert_eq!(g.rank_at(loc), r, "rank {r} roundtrip");
            assert!(seen.insert((loc.node, loc.socket, loc.numa, loc.core)));
        }
    }

    #[test]
    fn numa_cyclic_spreads_consecutive_ranks() {
        // 2 sockets x 2 NUMA = 4 domains: ranks 0..4 land on 4 different
        // domains; rank 4 wraps back to domain 0.
        let g = ProcGrid::with_mapping(Machine::custom("t", 1, 2, 2, 3), MapOrder::NumaCyclic);
        assert_eq!(g.level(0, 1), Level::IntraSocket);
        assert_eq!(g.level(0, 2), Level::InterSocket);
        assert_eq!(g.level(0, 4), Level::IntraNuma); // same domain, next core
                                                     // Under core-major, ranks 0..3 share a NUMA domain instead.
        let cm = ProcGrid::new(Machine::custom("t", 1, 2, 2, 3));
        assert_eq!(cm.level(0, 1), Level::IntraNuma);
    }

    #[test]
    fn mapping_does_not_change_node_membership() {
        let m = Machine::custom("t", 3, 2, 2, 3);
        let a = ProcGrid::new(m.clone());
        let b = ProcGrid::with_mapping(m, MapOrder::NumaCyclic);
        for r in 0..a.world_size() as Rank {
            assert_eq!(a.node_of(r), b.node_of(r));
            assert_eq!(a.local_rank(r), b.local_rank(r));
        }
    }
}
