//! Paper Algorithm 4: node-aware aggregation, and its locality-aware
//! generalization (one of the paper's two novel algorithms).
//!
//! Each node is split into aggregation regions of `ppg` consecutive ranks
//! (`ppg = ppn` is classic node-aware: one region per node). Stages:
//!
//! 1. **Inter-region all-to-all** on the cross-region communicator (the
//!    ranks sharing this rank's offset, one per region): rank `(region,
//!    o)` sends to `(region', o)` the `ppg` blocks of its *own* send buffer
//!    destined to `region'`'s members. No packing is needed — the send
//!    buffer is already laid out contiguously by destination region. Every
//!    rank participates, so data crosses the network evenly.
//! 2. **Pack** — transpose the received data by destination member.
//! 3. **Intra-region all-to-all** on the region: member `o` hands member
//!    `o''` the blocks destined to `o''` from every same-offset sender.
//! 4. **Unpack** into the receive buffer by source world rank.
//!
//! With multiple regions per node (locality-aware), the local
//! redistribution in step 3 spans only `ppg` ranks instead of all `ppn`,
//! trading slightly more inter-node messages for cheaper local traffic —
//! the paper's explanation for its win at the largest message sizes.

use a2a_sched::{Block, BufId, Bytes, Phase, ProgBuilder, RankProgram, RBUF, SBUF};
use a2a_topo::Rank;

use crate::bruck::{bruck_buffer_sizes, BruckBufs};
use crate::exchange::{build_exchange, Contig, ExchangeKind};
use crate::{tags, A2AContext, AlltoallAlgorithm};

const T0: BufId = BufId(2); // inter-phase receive: R segments of ppg*s
const P: BufId = BufId(3); // packed for intra phase: ppg segments of R*s
const T1: BufId = BufId(4); // intra-phase receive: ppg segments of R*s
const BK_WORK: BufId = BufId(5);
const BK_PACK: BufId = BufId(6);
const BK_RECV: BufId = BufId(7);

const PH_INTER: Phase = Phase(0);
const PH_PACK: Phase = Phase(1);
const PH_INTRA: Phase = Phase(2);

/// Node-aware (`ppg = ppn`) / locality-aware (`ppg < ppn`) all-to-all.
#[derive(Debug, Clone, Copy)]
pub struct NodeAwareAlltoall {
    /// Processes per aggregation group; `None` = whole node (node-aware).
    ppg: Option<usize>,
    /// Underlying pattern for both inner all-to-alls.
    pub inner: ExchangeKind,
}

impl NodeAwareAlltoall {
    /// Classic node-aware aggregation: one region per node.
    pub fn node_aware(inner: ExchangeKind) -> Self {
        NodeAwareAlltoall { ppg: None, inner }
    }

    /// Locality-aware aggregation with `ppg` processes per group.
    pub fn locality_aware(ppg: usize, inner: ExchangeKind) -> Self {
        assert!(ppg > 0, "ppg must be nonzero");
        NodeAwareAlltoall {
            ppg: Some(ppg),
            inner,
        }
    }

    fn group(&self, ctx: &A2AContext) -> usize {
        let ppn = ctx.grid.machine().ppn();
        let g = self.ppg.unwrap_or(ppn);
        assert!(
            g <= ppn && ppn.is_multiple_of(g),
            "ppg {g} must divide ppn {ppn}"
        );
        g
    }
}

impl AlltoallAlgorithm for NodeAwareAlltoall {
    fn name(&self) -> String {
        match self.ppg {
            None => format!("node-aware({})", self.inner),
            Some(g) => format!("locality-aware(ppg={g},{})", self.inner),
        }
    }

    fn phase_names(&self) -> Vec<&'static str> {
        vec!["inter-a2a", "pack", "intra-a2a"]
    }

    fn buffers(&self, ctx: &A2AContext, _rank: Rank) -> Vec<Bytes> {
        let g = self.group(ctx);
        let s = ctx.block_bytes;
        let total = ctx.total_bytes();
        let mut bufs = vec![total, total, total, total, total, 0, 0, 0];
        if matches!(self.inner, ExchangeKind::Bruck) {
            let r = ctx.grid.region_count(g);
            let (w1, p1, q1) = bruck_buffer_sizes(r, g as Bytes * s);
            let (w2, p2, q2) = bruck_buffer_sizes(g, r as Bytes * s);
            bufs[BK_WORK.0 as usize] = w1.max(w2);
            bufs[BK_PACK.0 as usize] = p1.max(p2);
            bufs[BK_RECV.0 as usize] = q1.max(q2);
        }
        bufs
    }

    fn build_rank(&self, ctx: &A2AContext, rank: Rank) -> RankProgram {
        let grid = &ctx.grid;
        let g = self.group(ctx);
        let s = ctx.block_bytes;
        let nregions = grid.region_count(g);
        let rb = nregions as Bytes;
        let gb = g as Bytes;
        let rho = grid.region_index(rank, g);
        let o = grid.subset_offset(rank, g) as Bytes;
        let bruck = BruckBufs {
            work: BK_WORK,
            pack: BK_PACK,
            recv: BK_RECV,
        };
        let mut b = ProgBuilder::new(PH_INTER);

        // 1. Inter-region all-to-all straight out of the send buffer: the
        //    send buffer is contiguous segments of g blocks per region.
        let cross = grid.cross_region_comm(rank, g);
        debug_assert_eq!(cross.local_of(rank), Some(rho));
        build_exchange(
            self.inner,
            &mut b,
            &cross,
            rho,
            Contig::new(SBUF, 0, T0, 0, gb * s),
            tags::INTER,
            Some(&bruck),
        );

        // 2. Transpose by destination member: P[o''][region] = T0[region][o''].
        b.set_phase(PH_PACK);
        for o2 in 0..gb {
            for m2 in 0..rb {
                b.copy(
                    Block::new(T0, m2 * gb * s + o2 * s, s),
                    Block::new(P, o2 * rb * s + m2 * s, s),
                );
            }
        }

        // 3. Intra-region all-to-all.
        b.set_phase(PH_INTRA);
        let subset = grid.subset_comm(rank, g);
        build_exchange(
            self.inner,
            &mut b,
            &subset,
            o as usize,
            Contig::new(P, 0, T1, 0, rb * s),
            tags::INTRA,
            Some(&bruck),
        );

        // 4. Unpack by source world rank: the block from region m2's member
        //    o2 came through region-mate o2.
        b.set_phase(PH_PACK);
        for o2 in 0..gb {
            for m2 in 0..nregions {
                let src_world = grid.region_base(m2, g) as Bytes + o2;
                b.copy(
                    Block::new(T1, o2 * rb * s + m2 as Bytes * s, s),
                    Block::new(RBUF, src_world * s, s),
                );
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlgoSchedule;
    use a2a_sched::{run_and_verify, validate};
    use a2a_topo::{Machine, ProcGrid};

    fn ctx(nodes: usize, s: Bytes) -> A2AContext {
        // ppn = 6: 2 sockets x 1 NUMA x 3 cores.
        A2AContext::new(ProcGrid::new(Machine::custom("t", nodes, 2, 1, 3)), s)
    }

    #[test]
    fn node_aware_transposes() {
        for nodes in [1usize, 2, 3, 4] {
            for inner in [
                ExchangeKind::Pairwise,
                ExchangeKind::Nonblocking,
                ExchangeKind::Bruck,
                ExchangeKind::Batched { batch: 3 },
            ] {
                let algo = NodeAwareAlltoall::node_aware(inner);
                run_and_verify(&AlgoSchedule::new(&algo, ctx(nodes, 8)), 8)
                    .unwrap_or_else(|e| panic!("nodes={nodes} inner={inner}: {e}"));
            }
        }
    }

    #[test]
    fn locality_aware_all_group_sizes_transpose() {
        for ppg in [1usize, 2, 3, 6] {
            for inner in [ExchangeKind::Pairwise, ExchangeKind::Nonblocking] {
                let algo = NodeAwareAlltoall::locality_aware(ppg, inner);
                run_and_verify(&AlgoSchedule::new(&algo, ctx(3, 4)), 4)
                    .unwrap_or_else(|e| panic!("ppg={ppg} inner={inner}: {e}"));
            }
        }
    }

    #[test]
    fn every_rank_sends_internode() {
        // Node-aware distributes network traffic across all ranks: each
        // rank exchanges with its counterpart on every other node.
        let c = ctx(3, 8);
        let grid = c.grid.clone();
        let algo = NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise);
        let stats = validate(&AlgoSchedule::new(&algo, c), &grid).unwrap();
        // 18 ranks x 2 other nodes.
        assert_eq!(stats.inter_node_msgs(), 18 * 2);
        assert_eq!(stats.max_internode_sends_per_rank, 2);
    }

    #[test]
    fn internode_volume_is_minimal() {
        // Aggregation sends each byte across the network exactly once.
        let c = ctx(2, 8);
        let grid = c.grid.clone();
        let algo = NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise);
        let stats = validate(&AlgoSchedule::new(&algo, c), &grid).unwrap();
        // Bytes that must cross: per ordered node pair, ppn*ppn blocks.
        let expect = 2 * (6u64 * 6) * 8;
        assert_eq!(stats.inter_node_bytes(), expect);
    }

    #[test]
    fn locality_aware_reduces_intra_messages_increases_inter() {
        let c = ctx(4, 8);
        let grid = c.grid.clone();
        let na = NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise);
        let la = NodeAwareAlltoall::locality_aware(2, ExchangeKind::Pairwise);
        let sna = validate(&AlgoSchedule::new(&na, c.clone()), &grid).unwrap();
        let sla = validate(&AlgoSchedule::new(&la, c), &grid).unwrap();
        assert!(
            sla.intra_node_msgs() < sna.intra_node_msgs(),
            "locality-aware should shrink local redistribution: {} vs {}",
            sla.intra_node_msgs(),
            sna.intra_node_msgs()
        );
        assert!(
            sla.inter_node_msgs() > sna.inter_node_msgs(),
            "locality-aware pays with more network messages"
        );
        // Both keep minimal inter-node volume.
        assert_eq!(sla.inter_node_bytes(), sna.inter_node_bytes());
    }

    #[test]
    fn ppg_one_degenerates_to_direct() {
        // One process per group: the "intra" phase is a self copy and the
        // inter phase is a flat exchange over the world.
        let c = ctx(2, 8);
        let grid = c.grid.clone();
        let algo = NodeAwareAlltoall::locality_aware(1, ExchangeKind::Pairwise);
        let stats = validate(&AlgoSchedule::new(&algo, c), &grid).unwrap();
        let n = 12u64;
        // Every pair exchanges once.
        let total_msgs: usize = stats.msgs.iter().sum();
        assert_eq!(total_msgs as u64, n * (n - 1));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_ppg_panics() {
        let algo = NodeAwareAlltoall::locality_aware(4, ExchangeKind::Pairwise);
        algo.build_rank(&ctx(2, 8), 0);
    }
}
