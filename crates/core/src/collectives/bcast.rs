//! Broadcast algorithms: the root's payload ends up in every rank's
//! receive buffer.
//!
//! * [`LinearBcast`] — root sends to everyone (the baseline worth beating).
//! * [`BinomialBcast`] — classic `ceil(log2 n)`-round tree over the world.
//! * [`HierarchicalBcast`] — the paper's locality recipe: binomial tree
//!   among node leaders (one inter-node receive per node), then a binomial
//!   tree within each node. Network messages drop from `O(n)` to
//!   `O(nodes)`.

use a2a_sched::{Block, Bytes, Phase, ProgBuilder, RankProgram, ScheduleSource, RBUF, SBUF};
use a2a_topo::{CommView, Rank};

use crate::{tags, A2AContext};

/// A broadcast algorithm: rank `root`'s `SBUF` holds `payload` bytes; after
/// the collective every rank's `RBUF` holds them. `ctx.block_bytes` is the
/// payload size.
pub trait BcastAlgorithm: Send + Sync {
    fn name(&self) -> String;
    fn phase_names(&self) -> Vec<&'static str>;
    fn buffers(&self, ctx: &A2AContext, rank: Rank, root: Rank) -> Vec<Bytes>;
    fn build_rank(&self, ctx: &A2AContext, rank: Rank, root: Rank) -> RankProgram;
}

/// Adapter to `ScheduleSource`.
pub struct BcastSchedule<'a> {
    algo: &'a dyn BcastAlgorithm,
    ctx: A2AContext,
    root: Rank,
}

impl<'a> BcastSchedule<'a> {
    pub fn new(algo: &'a dyn BcastAlgorithm, ctx: A2AContext, root: Rank) -> Self {
        assert!((root as usize) < ctx.n(), "root out of range");
        BcastSchedule { algo, ctx, root }
    }
}

impl ScheduleSource for BcastSchedule<'_> {
    fn nranks(&self) -> usize {
        self.ctx.n()
    }
    fn buffers(&self, rank: Rank) -> Vec<Bytes> {
        self.algo.buffers(&self.ctx, rank, self.root)
    }
    fn build_rank(&self, rank: Rank) -> RankProgram {
        self.algo.build_rank(&self.ctx, rank, self.root)
    }
    fn phase_names(&self) -> Vec<&'static str> {
        self.algo.phase_names()
    }
}

fn bcast_buffers(ctx: &A2AContext, rank: Rank, root: Rank) -> Vec<Bytes> {
    let len = ctx.block_bytes;
    vec![if rank == root { len } else { 0 }, len]
}

/// Emit a binomial broadcast over `comm` rooted at comm index `root_idx`,
/// payload living in `data` (each rank's own `RBUF` window). The root must
/// already hold the payload in `data` before these ops run.
pub(crate) fn build_binomial_bcast(
    b: &mut ProgBuilder,
    comm: &CommView,
    me: usize,
    root_idx: usize,
    data: Block,
    tag: u32,
) {
    let m = comm.size();
    if m == 1 {
        return;
    }
    let vr = (me + m - root_idx) % m;
    // Receive from the parent (clear the highest set bit of vr).
    let mut mask = 1usize;
    while mask < m {
        if vr & mask != 0 {
            let parent = (vr - mask + root_idx) % m;
            b.recv(comm.world(parent), data, tag);
            break;
        }
        mask <<= 1;
    }
    // Forward to children, largest stride first.
    mask >>= 1;
    while mask > 0 {
        if vr + mask < m {
            let child = (vr + mask + root_idx) % m;
            b.send(comm.world(child), data, tag);
        }
        mask >>= 1;
    }
}

/// Root sends the payload to every rank directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearBcast;

impl BcastAlgorithm for LinearBcast {
    fn name(&self) -> String {
        "bcast-linear".into()
    }
    fn phase_names(&self) -> Vec<&'static str> {
        vec!["bcast"]
    }
    fn buffers(&self, ctx: &A2AContext, rank: Rank, root: Rank) -> Vec<Bytes> {
        bcast_buffers(ctx, rank, root)
    }
    fn build_rank(&self, ctx: &A2AContext, rank: Rank, root: Rank) -> RankProgram {
        let len = ctx.block_bytes;
        let mut b = ProgBuilder::new(Phase(0));
        let data = Block::new(RBUF, 0, len);
        if rank == root {
            b.copy(Block::new(SBUF, 0, len), data);
            let first = b.req_mark();
            for r in 0..ctx.n() as Rank {
                if r != root {
                    b.isend(r, data, tags::DIRECT);
                }
            }
            b.waitall(first, ctx.n() as u32 - 1);
        } else {
            b.recv(root, data, tags::DIRECT);
        }
        b.finish()
    }
}

/// Binomial tree over the world communicator.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinomialBcast;

impl BcastAlgorithm for BinomialBcast {
    fn name(&self) -> String {
        "bcast-binomial".into()
    }
    fn phase_names(&self) -> Vec<&'static str> {
        vec!["bcast"]
    }
    fn buffers(&self, ctx: &A2AContext, rank: Rank, root: Rank) -> Vec<Bytes> {
        bcast_buffers(ctx, rank, root)
    }
    fn build_rank(&self, ctx: &A2AContext, rank: Rank, root: Rank) -> RankProgram {
        let len = ctx.block_bytes;
        let mut b = ProgBuilder::new(Phase(0));
        let data = Block::new(RBUF, 0, len);
        if rank == root {
            b.copy(Block::new(SBUF, 0, len), data);
        }
        build_binomial_bcast(
            &mut b,
            &ctx.grid.world_comm(),
            rank as usize,
            root as usize,
            data,
            tags::DIRECT,
        );
        b.finish()
    }
}

/// Two-level broadcast: binomial among node leaders (rooted at the root's
/// node), then binomial within each node.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchicalBcast;

impl BcastAlgorithm for HierarchicalBcast {
    fn name(&self) -> String {
        "bcast-hierarchical".into()
    }
    fn phase_names(&self) -> Vec<&'static str> {
        vec!["inter-bcast", "intra-bcast"]
    }
    fn buffers(&self, ctx: &A2AContext, rank: Rank, root: Rank) -> Vec<Bytes> {
        bcast_buffers(ctx, rank, root)
    }
    fn build_rank(&self, ctx: &A2AContext, rank: Rank, root: Rank) -> RankProgram {
        let grid = &ctx.grid;
        let len = ctx.block_bytes;
        let ppn = grid.machine().ppn();
        let data = Block::new(RBUF, 0, len);
        let mut b = ProgBuilder::new(Phase(0));

        // Per-node "leader" for this broadcast: the root on its own node,
        // the first rank elsewhere (so the root never relays to itself).
        let my_node = grid.node_of(rank);
        let root_node = grid.node_of(root);
        let node_leader = |node: usize| -> Rank {
            if node == root_node {
                root
            } else {
                (node * ppn) as Rank
            }
        };
        let leaders = CommView::new({
            let mut v: Vec<Rank> = (0..grid.machine().nodes).map(node_leader).collect();
            v.sort_unstable();
            v
        });

        if rank == root {
            b.copy(Block::new(SBUF, 0, len), data);
        }
        if rank == node_leader(my_node) {
            let me = leaders.local_of(rank).expect("leader in comm");
            let root_idx = leaders.local_of(root).expect("root leads its node");
            build_binomial_bcast(&mut b, &leaders, me, root_idx, data, tags::INTER);
        }

        // Intra-node stage, rooted at the node leader.
        b.set_phase(Phase(1));
        let node = grid.node_comm(rank);
        let me = node.local_of(rank).expect("rank in node comm");
        let root_idx = node
            .local_of(node_leader(my_node))
            .expect("leader in node comm");
        build_binomial_bcast(&mut b, &node, me, root_idx, data, tags::INTRA);
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_sched::{run_and_verify_bcast, validate};
    use a2a_topo::{Machine, ProcGrid};

    fn ctx(nodes: usize, len: Bytes) -> A2AContext {
        A2AContext::new(ProcGrid::new(Machine::custom("t", nodes, 2, 1, 3)), len)
    }

    fn verify(algo: &dyn BcastAlgorithm, c: A2AContext, root: Rank) {
        let len = c.block_bytes;
        let sched = BcastSchedule::new(algo, c, root);
        run_and_verify_bcast(&sched, root, len)
            .unwrap_or_else(|e| panic!("{} root={root}: {e}", algo.name()));
    }

    #[test]
    fn all_bcasts_correct_from_any_root() {
        for nodes in [1usize, 2, 3] {
            let c = ctx(nodes, 64);
            let n = c.n() as Rank;
            for root in [0, n / 2, n - 1] {
                verify(&LinearBcast, c.clone(), root);
                verify(&BinomialBcast, c.clone(), root);
                verify(&HierarchicalBcast, c.clone(), root);
            }
        }
    }

    #[test]
    fn binomial_root_sends_log_messages() {
        let c = ctx(3, 16); // 18 ranks
        let prog = BinomialBcast.build_rank(&c, 0, 0);
        assert_eq!(prog.send_count(), 5); // ceil(log2 18)
        let linear = LinearBcast.build_rank(&c, 0, 0);
        assert_eq!(linear.send_count(), 17);
    }

    #[test]
    fn hierarchical_minimizes_internode_messages() {
        let c = ctx(4, 32);
        let grid = c.grid.clone();
        let h = HierarchicalBcast;
        let sched = BcastSchedule::new(&h, c.clone(), 0);
        let st = validate(&sched, &grid).unwrap();
        // Exactly nodes-1 network messages (the leader tree edges).
        assert_eq!(st.inter_node_msgs(), 3);
        let flat = BcastSchedule::new(&BinomialBcast, c, 0);
        let st_flat = validate(&flat, &grid).unwrap();
        assert!(st.inter_node_msgs() <= st_flat.inter_node_msgs());
    }

    #[test]
    fn nonleader_root_works_hierarchically() {
        // Root in the middle of a node: it must act as that node's leader.
        let c = ctx(3, 16);
        verify(&HierarchicalBcast, c, 7);
    }
}
