//! Locality-aware extensions to further collectives — the paper's §5
//! future work: *"We plan to extend this work by applying this approach on
//! both other HPC critical collectives (all-gather, broadcast, etc.)"*.
//!
//! These reuse the same schedule IR, communicator algebra, and executors
//! as the all-to-all family, so every algorithm here runs on the data
//! executor (correctness), the simulator (cost), and the threaded runtime.
//!
//! Scope note: data-movement collectives only. Reductions (allreduce,
//! reduce-scatter) need a compute operation in the IR and are documented
//! as out of scope in DESIGN.md.

pub mod allgather;
pub mod bcast;

pub use allgather::{
    AllgatherAlgorithm, AllgatherSchedule, BruckAllgather, LocalityAwareAllgather, RingAllgather,
};
pub use bcast::{BcastAlgorithm, BcastSchedule, BinomialBcast, HierarchicalBcast, LinearBcast};
