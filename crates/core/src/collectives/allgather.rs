//! Allgather algorithms: every rank contributes `s` bytes; every rank ends
//! with all `n` contributions in rank order.
//!
//! * [`RingAllgather`] — `n-1` neighbor steps, bandwidth-optimal.
//! * [`BruckAllgather`] — `ceil(log2 n)` doubling rounds, latency-optimal.
//! * [`LocalityAwareAllgather`] — the paper's locality-aware recipe applied
//!   to allgather (following the authors' EuroMPI'22 locality-aware Bruck
//!   allgather): gather contributions to a leader per `ppg`-sized group,
//!   allgather among leaders only, then broadcast the assembled result
//!   within each group. Inter-node message count drops from `O(n)` per
//!   rank to `O(regions)` per leader.

use a2a_sched::{Block, BufId, Bytes, Phase, ProgBuilder, RankProgram, ScheduleSource, RBUF, SBUF};
use a2a_topo::{CommView, Rank};

use crate::gather::{build_gather, relay_chunks, GatherKind};
use crate::{tags, A2AContext};

/// An allgather algorithm: `SBUF` holds this rank's `s`-byte contribution,
/// `RBUF` receives all `n` contributions in rank order.
pub trait AllgatherAlgorithm: Send + Sync {
    fn name(&self) -> String;
    fn phase_names(&self) -> Vec<&'static str>;
    fn buffers(&self, ctx: &A2AContext, rank: Rank) -> Vec<Bytes>;
    fn build_rank(&self, ctx: &A2AContext, rank: Rank) -> RankProgram;
}

/// Adapter to `ScheduleSource` (same pattern as `AlgoSchedule`).
pub struct AllgatherSchedule<'a> {
    algo: &'a dyn AllgatherAlgorithm,
    ctx: A2AContext,
}

impl<'a> AllgatherSchedule<'a> {
    pub fn new(algo: &'a dyn AllgatherAlgorithm, ctx: A2AContext) -> Self {
        AllgatherSchedule { algo, ctx }
    }
}

impl ScheduleSource for AllgatherSchedule<'_> {
    fn nranks(&self) -> usize {
        self.ctx.n()
    }
    fn buffers(&self, rank: Rank) -> Vec<Bytes> {
        self.algo.buffers(&self.ctx, rank)
    }
    fn build_rank(&self, rank: Rank) -> RankProgram {
        self.algo.build_rank(&self.ctx, rank)
    }
    fn phase_names(&self) -> Vec<&'static str> {
        self.algo.phase_names()
    }
}

/// Ring allgather: at step `k` forward the block received at step `k-1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RingAllgather;

impl AllgatherAlgorithm for RingAllgather {
    fn name(&self) -> String {
        "allgather-ring".into()
    }
    fn phase_names(&self) -> Vec<&'static str> {
        vec!["exchange"]
    }
    fn buffers(&self, ctx: &A2AContext, _rank: Rank) -> Vec<Bytes> {
        vec![ctx.block_bytes, ctx.total_bytes()]
    }
    fn build_rank(&self, ctx: &A2AContext, rank: Rank) -> RankProgram {
        let n = ctx.n();
        let s = ctx.block_bytes;
        let me = rank as usize;
        let mut b = ProgBuilder::new(Phase(0));
        let blk = |i: usize| Block::new(RBUF, i as Bytes * s, s);
        b.copy(Block::new(SBUF, 0, s), blk(me));
        if n == 1 {
            return b.finish();
        }
        let right = ctx.grid.world_comm().world((me + 1) % n);
        let left = ctx.grid.world_comm().world((me + n - 1) % n);
        for k in 0..n - 1 {
            let send_block = (me + n - k) % n;
            let recv_block = (me + n - k - 1) % n;
            b.sendrecv(
                right,
                blk(send_block),
                tags::DIRECT + k as u32,
                left,
                blk(recv_block),
                tags::DIRECT + k as u32,
            );
        }
        b.finish()
    }
}

/// Bruck (dissemination) allgather on an arbitrary communicator; used both
/// flat (over the world) and as the leader stage of the locality-aware
/// variant. Emits ops for comm index `me`; the assembled result (blocks
/// ordered by comm index) lands at `dst` (a `m*blk`-byte region).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_bruck_allgather(
    b: &mut ProgBuilder,
    comm: &CommView,
    me: usize,
    my_contrib: Block,
    dst: (BufId, Bytes),
    work: BufId,
    blk: Bytes,
    tag: u32,
) {
    let m = comm.size();
    let at = |i: usize, cnt: usize| Block::new(work, i as Bytes * blk, cnt as Bytes * blk);
    b.copy(my_contrib, at(0, 1));
    let mut have = 1usize;
    let mut k = 0u32;
    while have < m {
        let step = have.min(m - have);
        let to = comm.world((me + m - have) % m);
        // Wait: sending my first `step` blocks to the rank `have` behind me
        // and receiving `step` blocks appended at `have` from `have` ahead.
        let from = comm.world((me + have) % m);
        b.sendrecv(to, at(0, step), tag + k, from, at(have, step), tag + k);
        have += step;
        k += 1;
    }
    // work[i] holds the contribution of comm rank (me + i) mod m; rotate
    // into destination order with two bulk copies.
    b.copy(
        at(0, m - me),
        Block::new(dst.0, dst.1 + me as Bytes * blk, (m - me) as Bytes * blk),
    );
    if me > 0 {
        b.copy(at(m - me, me), Block::new(dst.0, dst.1, me as Bytes * blk));
    }
}

/// Bruck allgather over the world communicator.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruckAllgather;

impl AllgatherAlgorithm for BruckAllgather {
    fn name(&self) -> String {
        "allgather-bruck".into()
    }
    fn phase_names(&self) -> Vec<&'static str> {
        vec!["exchange"]
    }
    fn buffers(&self, ctx: &A2AContext, _rank: Rank) -> Vec<Bytes> {
        vec![ctx.block_bytes, ctx.total_bytes(), ctx.total_bytes()]
    }
    fn build_rank(&self, ctx: &A2AContext, rank: Rank) -> RankProgram {
        let mut b = ProgBuilder::new(Phase(0));
        build_bruck_allgather(
            &mut b,
            &ctx.grid.world_comm(),
            rank as usize,
            Block::new(SBUF, 0, ctx.block_bytes),
            (RBUF, 0),
            BufId(2),
            ctx.block_bytes,
            tags::DIRECT,
        );
        b.finish()
    }
}

const AG_GATHERED: BufId = BufId(2); // leader: group contributions (ppg*s)
const AG_WORK: BufId = BufId(3); // leader: Bruck work array (n*s)
const AG_RELAY: BufId = BufId(4); // binomial gather/scatter relay

/// Locality-aware allgather: aggregate per group, exchange among leaders,
/// broadcast locally.
#[derive(Debug, Clone, Copy)]
pub struct LocalityAwareAllgather {
    /// Processes per aggregation group (`ppn` = node-aware).
    pub ppg: usize,
    /// Gather/broadcast flavor within the group.
    pub gather: GatherKind,
}

impl LocalityAwareAllgather {
    pub fn new(ppg: usize) -> Self {
        assert!(ppg > 0, "ppg must be nonzero");
        LocalityAwareAllgather {
            ppg,
            gather: GatherKind::Linear,
        }
    }

    pub fn with_gather(mut self, gather: GatherKind) -> Self {
        self.gather = gather;
        self
    }
}

impl AllgatherAlgorithm for LocalityAwareAllgather {
    fn name(&self) -> String {
        format!("allgather-locality(ppg={},{})", self.ppg, self.gather)
    }
    fn phase_names(&self) -> Vec<&'static str> {
        vec!["gather", "inter-ag", "bcast"]
    }
    fn buffers(&self, ctx: &A2AContext, rank: Rank) -> Vec<Bytes> {
        let s = ctx.block_bytes;
        let g = self.ppg as Bytes;
        let o = ctx.grid.subset_offset(rank, self.ppg);
        let leader = o == 0;
        // Relay only serves the gather stage (s-byte chunks); the local
        // broadcast sends the full result directly.
        let relay = relay_chunks(self.gather, o, self.ppg) as Bytes * s;
        let mut bufs = vec![s, ctx.total_bytes(), 0, 0, relay];
        if leader {
            bufs[AG_GATHERED.0 as usize] = g * s;
            bufs[AG_WORK.0 as usize] = ctx.total_bytes();
        }
        bufs
    }
    fn build_rank(&self, ctx: &A2AContext, rank: Rank) -> RankProgram {
        let grid = &ctx.grid;
        let ppn = grid.machine().ppn();
        assert!(
            self.ppg <= ppn && ppn.is_multiple_of(self.ppg),
            "ppg {} must divide ppn {ppn}",
            self.ppg
        );
        let s = ctx.block_bytes;
        let g = self.ppg;
        let subset = grid.subset_comm(rank, g);
        let o = grid.subset_offset(rank, g);
        let mut b = ProgBuilder::new(Phase(0));

        // 1. Gather contributions to the group leader.
        build_gather(
            self.gather,
            &mut b,
            &subset,
            o,
            Block::new(SBUF, 0, s),
            (AG_GATHERED, 0),
            AG_RELAY,
            s,
            tags::GATHER,
        );

        if o == 0 {
            // 2. Allgather among leaders: each contributes its group's
            //    g*s block; region order equals rank order, so the result
            //    lands directly in RBUF layout.
            b.set_phase(Phase(1));
            let leaders = grid.all_leaders_comm(g);
            let me = leaders.local_of(rank).expect("leader in leaders comm");
            build_bruck_allgather(
                &mut b,
                &leaders,
                me,
                Block::new(AG_GATHERED, 0, g as Bytes * s),
                (RBUF, 0),
                AG_WORK,
                g as Bytes * s,
                tags::INTER,
            );
            // 3. Broadcast the assembled result to the group (leader is
            //    comm index 0; reuse the scatter builder with every chunk
            //    being the whole result would double-send, so send the
            //    full buffer to each member directly).
            b.set_phase(Phase(2));
            let total = ctx.total_bytes();
            let first = b.req_mark();
            for i in 1..subset.size() {
                b.isend(subset.world(i), Block::new(RBUF, 0, total), tags::SCATTER);
            }
            b.waitall(first, subset.size() as u32 - 1);
        } else {
            b.set_phase(Phase(2));
            let leader = subset.world(0);
            b.recv(
                leader,
                Block::new(RBUF, 0, ctx.total_bytes()),
                tags::SCATTER,
            );
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_sched::{run_and_verify_allgather, validate};
    use a2a_topo::{Machine, ProcGrid};

    fn ctx(nodes: usize, s: Bytes) -> A2AContext {
        A2AContext::new(ProcGrid::new(Machine::custom("t", nodes, 2, 1, 3)), s)
    }

    fn verify(algo: &dyn AllgatherAlgorithm, c: A2AContext) {
        let s = c.block_bytes;
        let sched = AllgatherSchedule::new(algo, c);
        run_and_verify_allgather(&sched, s).unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
    }

    #[test]
    fn ring_allgather_correct() {
        for nodes in [1usize, 2, 3] {
            verify(&RingAllgather, ctx(nodes, 8));
        }
    }

    #[test]
    fn bruck_allgather_correct_various_sizes() {
        for nodes in [1usize, 2, 3, 5] {
            verify(&BruckAllgather, ctx(nodes, 8));
        }
    }

    #[test]
    fn locality_aware_allgather_correct() {
        for nodes in [1usize, 2, 3] {
            for ppg in [1usize, 2, 3, 6] {
                verify(&LocalityAwareAllgather::new(ppg), ctx(nodes, 4));
            }
        }
    }

    #[test]
    fn locality_aware_reduces_internode_messages() {
        let c = ctx(3, 8);
        let grid = c.grid.clone();
        let flat = AllgatherSchedule::new(&BruckAllgather, c.clone());
        let la = LocalityAwareAllgather::new(6); // node-aware
        let lasched = AllgatherSchedule::new(&la, c);
        let sf = validate(&flat, &grid).unwrap();
        let sl = validate(&lasched, &grid).unwrap();
        assert!(
            sl.inter_node_msgs() < sf.inter_node_msgs(),
            "locality-aware {} not below flat {}",
            sl.inter_node_msgs(),
            sf.inter_node_msgs()
        );
    }

    #[test]
    fn bruck_allgather_round_count() {
        let c = ctx(3, 8); // 18 ranks
        let prog = BruckAllgather.build_rank(&c, 0);
        let sends = prog
            .ops
            .iter()
            .filter(|t| matches!(t.op, a2a_sched::Op::Isend { .. }))
            .count();
        assert_eq!(sends, 5); // ceil(log2 18)
    }

    #[test]
    fn ring_allgather_message_volume() {
        let c = ctx(2, 8); // 12 ranks
        let prog = RingAllgather.build_rank(&c, 3);
        assert_eq!(prog.send_count(), 11);
        assert_eq!(prog.send_bytes(), 11 * 8);
    }
}
