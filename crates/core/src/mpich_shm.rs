//! The MPICH "node-aware multi-leaders" variant described in the paper's
//! §3.3 note: *"Each rank on a node places the data for ranks sitting on
//! other nodes into a shared memory buffer. Next each rank participates as
//! a leader in inter-node Alltoall."*
//!
//! Our rendering: an intra-node redistribution stages, at each rank `l`,
//! the data from *all* node members destined to local rank `l` of every
//! other node (the "shared memory buffer" fill — here explicit node-local
//! messages, which the simulator prices at intra-node cost); then every
//! rank leads one inter-node all-to-all message per remote node, received
//! directly into the final receive-buffer layout (no scatter needed).
//!
//! Structurally this is Algorithm 4 with the intra- and inter-node phases
//! swapped: redistribute first, then exchange. All ranks participate in
//! inter-node communication, as the MPICH documentation states.

use a2a_sched::{Block, BufId, Bytes, Phase, ProgBuilder, RankProgram, RBUF, SBUF};
use a2a_topo::Rank;

use crate::bruck::{bruck_buffer_sizes, BruckBufs};
use crate::exchange::{build_exchange, Contig, ExchangeKind};
use crate::{tags, A2AContext, AlltoallAlgorithm};

const P: BufId = BufId(2); // packed for intra phase: ppn segments of N*s
const T: BufId = BufId(3); // staged "shared" buffer: ppn segments of N*s
const P2: BufId = BufId(4); // packed for inter phase: N segments of ppn*s
const BK_WORK: BufId = BufId(5);
const BK_PACK: BufId = BufId(6);
const BK_RECV: BufId = BufId(7);

const PH_INTRA: Phase = Phase(0);
const PH_PACK: Phase = Phase(1);
const PH_INTER: Phase = Phase(2);

/// MPICH-style shared-memory staging all-to-all: every rank leads.
#[derive(Debug, Clone, Copy)]
pub struct MpichShmAlltoall {
    pub inner: ExchangeKind,
}

impl MpichShmAlltoall {
    pub fn new(inner: ExchangeKind) -> Self {
        MpichShmAlltoall { inner }
    }
}

impl Default for MpichShmAlltoall {
    fn default() -> Self {
        MpichShmAlltoall::new(ExchangeKind::Pairwise)
    }
}

impl AlltoallAlgorithm for MpichShmAlltoall {
    fn name(&self) -> String {
        format!("mpich-shm({})", self.inner)
    }

    fn phase_names(&self) -> Vec<&'static str> {
        vec!["intra-a2a", "pack", "inter-a2a"]
    }

    fn buffers(&self, ctx: &A2AContext, _rank: Rank) -> Vec<Bytes> {
        let total = ctx.total_bytes();
        let mut bufs = vec![total, total, total, total, total, 0, 0, 0];
        if matches!(self.inner, ExchangeKind::Bruck) {
            let ppn = ctx.grid.machine().ppn();
            let nodes = ctx.grid.machine().nodes;
            let s = ctx.block_bytes;
            let (w1, p1, r1) = bruck_buffer_sizes(ppn, nodes as Bytes * s);
            let (w2, p2, r2) = bruck_buffer_sizes(nodes, ppn as Bytes * s);
            bufs[BK_WORK.0 as usize] = w1.max(w2);
            bufs[BK_PACK.0 as usize] = p1.max(p2);
            bufs[BK_RECV.0 as usize] = r1.max(r2);
        }
        bufs
    }

    fn build_rank(&self, ctx: &A2AContext, rank: Rank) -> RankProgram {
        let grid = &ctx.grid;
        let ppn = grid.machine().ppn() as Bytes;
        let nodes = grid.machine().nodes as Bytes;
        let s = ctx.block_bytes;
        let d = grid.node_of(rank);
        let l = grid.local_rank(rank);
        let bruck = BruckBufs {
            work: BK_WORK,
            pack: BK_PACK,
            recv: BK_RECV,
        };
        let mut b = ProgBuilder::new(PH_PACK);

        // Stage 1 pack: P[l''][d'] = my block for rank (d', l'').
        for l2 in 0..ppn {
            for d2 in 0..nodes {
                b.copy(
                    Block::new(SBUF, (d2 * ppn + l2) * s, s),
                    Block::new(P, l2 * nodes * s + d2 * s, s),
                );
            }
        }

        // Stage 1 exchange: node-local redistribution ("shared memory" fill).
        b.set_phase(PH_INTRA);
        let node = grid.node_comm(rank);
        build_exchange(
            self.inner,
            &mut b,
            &node,
            l,
            Contig::new(P, 0, T, 0, nodes * s),
            tags::INTRA,
            Some(&bruck),
        );

        // Stage 2 pack: P2[d'][l_src] = T[l_src][d'].
        b.set_phase(PH_PACK);
        for d2 in 0..nodes {
            for l2 in 0..ppn {
                b.copy(
                    Block::new(T, l2 * nodes * s + d2 * s, s),
                    Block::new(P2, d2 * ppn * s + l2 * s, s),
                );
            }
        }

        // Stage 2 exchange: every rank leads; receives land directly in the
        // final receive-buffer layout (source ranks of node d' are
        // contiguous there).
        b.set_phase(PH_INTER);
        let cross = grid.cross_region_comm(rank, grid.machine().ppn());
        build_exchange(
            self.inner,
            &mut b,
            &cross,
            d,
            Contig::new(P2, 0, RBUF, 0, ppn * s),
            tags::INTER,
            Some(&bruck),
        );
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlgoSchedule;
    use a2a_sched::{run_and_verify, validate};
    use a2a_topo::{Machine, ProcGrid};

    fn ctx(nodes: usize, s: Bytes) -> A2AContext {
        A2AContext::new(ProcGrid::new(Machine::custom("t", nodes, 2, 1, 3)), s)
    }

    #[test]
    fn mpich_shm_transposes() {
        for nodes in [1usize, 2, 3, 4] {
            for inner in [
                ExchangeKind::Pairwise,
                ExchangeKind::Nonblocking,
                ExchangeKind::Bruck,
            ] {
                let algo = MpichShmAlltoall::new(inner);
                run_and_verify(&AlgoSchedule::new(&algo, ctx(nodes, 4)), 4)
                    .unwrap_or_else(|e| panic!("nodes={nodes} inner={inner}: {e}"));
            }
        }
    }

    #[test]
    fn every_rank_leads_internode() {
        let c = ctx(3, 8);
        let grid = c.grid.clone();
        let algo = MpichShmAlltoall::default();
        let stats = validate(&AlgoSchedule::new(&algo, c), &grid).unwrap();
        // All 18 ranks send to their counterpart on both other nodes.
        assert_eq!(stats.inter_node_msgs(), 18 * 2);
        assert_eq!(stats.max_internode_sends_per_rank, 2);
    }

    #[test]
    fn same_network_shape_as_node_aware() {
        // The MPICH variant and Algorithm 4 differ in phase order, not in
        // what crosses the network.
        let c = ctx(2, 8);
        let grid = c.grid.clone();
        let shm = MpichShmAlltoall::default();
        let na = crate::NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise);
        let s1 = validate(&AlgoSchedule::new(&shm, c.clone()), &grid).unwrap();
        let s2 = validate(&AlgoSchedule::new(&na, c), &grid).unwrap();
        assert_eq!(s1.inter_node_msgs(), s2.inter_node_msgs());
        assert_eq!(s1.inter_node_bytes(), s2.inter_node_bytes());
    }

    #[test]
    fn receives_land_directly_no_final_unpack() {
        // The inter phase writes straight into RBUF: the program's last op
        // is part of the inter exchange, not a copy loop.
        let c = ctx(2, 8);
        let algo = MpichShmAlltoall::default();
        let prog = algo.build_rank(&c, 0);
        let last = prog.ops.last().unwrap();
        assert_eq!(last.phase, PH_INTER);
    }
}
