//! Flat all-to-all exchange builders over contiguous equal-sized segments.
//!
//! Every all-to-all in the paper — the top-level flat algorithms *and* the
//! inner exchanges of the composed algorithms — moves `m` equal blocks laid
//! out contiguously by communicator rank: block `i` of the source region
//! goes to comm rank `i`, and block `j` of the destination region receives
//! from comm rank `j`. [`build_exchange`] emits the ops for one such
//! exchange using the selected underlying pattern:
//!
//! * **Pairwise** (paper Algorithm 1): `m-1` steps; at step `i` exchange
//!   with ranks `me±i` via a blocking sendrecv. One transfer in flight at a
//!   time bounds contention but serializes steps.
//! * **Non-blocking** (paper Algorithm 2): post all `2(m-1)` transfers then
//!   wait once. Minimal synchronization, maximal queue pressure.
//! * **Batched** (related work): non-blocking within fixed-size batches.
//! * **Bruck**: `ceil(log2 m)` rounds of aggregated messages (see
//!   [`crate::bruck`]).
//!
//! The self block (`i == me`) is always a local copy, exactly as MPI
//! implementations shortcut it.

use std::fmt;

use a2a_sched::{Block, BufId, Bytes, ProgBuilder};
use a2a_topo::CommView;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::bruck::{build_bruck, BruckBufs};

/// Underlying data-exchange pattern for one all-to-all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum ExchangeKind {
    /// Algorithm 1: blocking pairwise exchange.
    Pairwise,
    /// Algorithm 2: all transfers posted up front.
    Nonblocking,
    /// Non-blocking in batches of `batch` peers at a time.
    Batched { batch: usize },
    /// Bruck's log-step algorithm (requires scratch buffers).
    Bruck,
}

impl fmt::Display for ExchangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeKind::Pairwise => write!(f, "pairwise"),
            ExchangeKind::Nonblocking => write!(f, "nonblocking"),
            ExchangeKind::Batched { batch } => write!(f, "batched{batch}"),
            ExchangeKind::Bruck => write!(f, "bruck"),
        }
    }
}

/// A contiguous-segment exchange: comm rank `i`'s outgoing block sits at
/// `sbuf[soff + i*block ..]`, and its incoming block from rank `j` lands at
/// `rbuf[roff + j*block ..]`.
#[derive(Debug, Clone, Copy)]
pub struct Contig {
    pub sbuf: BufId,
    pub soff: Bytes,
    pub rbuf: BufId,
    pub roff: Bytes,
    /// Bytes per segment.
    pub block: Bytes,
}

impl Contig {
    pub fn new(sbuf: BufId, soff: Bytes, rbuf: BufId, roff: Bytes, block: Bytes) -> Self {
        Contig {
            sbuf,
            soff,
            rbuf,
            roff,
            block,
        }
    }

    pub fn sblk(&self, i: usize) -> Block {
        Block::new(self.sbuf, self.soff + i as Bytes * self.block, self.block)
    }

    pub fn rblk(&self, i: usize) -> Block {
        Block::new(self.rbuf, self.roff + i as Bytes * self.block, self.block)
    }
}

/// Emit one all-to-all exchange over `comm` into `b` (the program of the
/// rank at comm index `me`), using pattern `kind`. `bruck` scratch buffers
/// are required only for [`ExchangeKind::Bruck`].
///
/// Tags `tag .. tag+32` are reserved for this exchange.
///
/// # Panics
/// Panics if `me` is out of range, or `kind` is Bruck without scratch
/// buffers, or a batch size of zero is given.
pub fn build_exchange(
    kind: ExchangeKind,
    b: &mut ProgBuilder,
    comm: &CommView,
    me: usize,
    x: Contig,
    tag: u32,
    bruck: Option<&BruckBufs>,
) {
    let m = comm.size();
    assert!(me < m, "comm index {me} out of range for size {m}");
    // Self block first: every pattern shortcuts it to a memcpy.
    if !matches!(kind, ExchangeKind::Bruck) {
        b.copy(x.sblk(me), x.rblk(me));
    }
    if m == 1 {
        if matches!(kind, ExchangeKind::Bruck) {
            b.copy(x.sblk(0), x.rblk(0));
        }
        return;
    }
    match kind {
        ExchangeKind::Pairwise => {
            for i in 1..m {
                let sp = (me + i) % m;
                let rp = (me + m - i) % m;
                b.sendrecv(
                    comm.world(sp),
                    x.sblk(sp),
                    tag,
                    comm.world(rp),
                    x.rblk(rp),
                    tag,
                );
            }
        }
        ExchangeKind::Nonblocking => {
            let first = b.req_mark();
            for i in 1..m {
                let sp = (me + i) % m;
                b.isend(comm.world(sp), x.sblk(sp), tag);
                let rp = (me + m - i) % m;
                b.irecv(comm.world(rp), x.rblk(rp), tag);
            }
            b.waitall(first, 2 * (m as u32 - 1));
        }
        ExchangeKind::Batched { batch } => {
            assert!(batch > 0, "batch size must be nonzero");
            let mut i = 1;
            while i < m {
                let hi = (i + batch).min(m);
                let first = b.req_mark();
                for j in i..hi {
                    let sp = (me + j) % m;
                    b.isend(comm.world(sp), x.sblk(sp), tag);
                    let rp = (me + m - j) % m;
                    b.irecv(comm.world(rp), x.rblk(rp), tag);
                }
                b.waitall(first, 2 * (hi - i) as u32);
                i = hi;
            }
        }
        ExchangeKind::Bruck => {
            let bufs = bruck.expect("Bruck exchange requires scratch buffers");
            build_bruck(b, comm, me, x, bufs, tag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_sched::{Op, Phase};

    fn comm(m: usize) -> CommView {
        CommView::new((0..m as u32).collect())
    }

    fn x(block: Bytes) -> Contig {
        Contig::new(a2a_sched::SBUF, 0, a2a_sched::RBUF, 0, block)
    }

    fn count_ops(kind: ExchangeKind, m: usize) -> (usize, usize, usize) {
        let mut b = ProgBuilder::new(Phase(0));
        build_exchange(kind, &mut b, &comm(m), 0, x(8), 0, None);
        let prog = b.finish();
        let sends = prog
            .ops
            .iter()
            .filter(|t| matches!(t.op, Op::Isend { .. }))
            .count();
        let waits = prog
            .ops
            .iter()
            .filter(|t| matches!(t.op, Op::WaitAll { .. }))
            .count();
        (sends, waits, prog.ops.len())
    }

    #[test]
    fn pairwise_step_structure() {
        let (sends, waits, _) = count_ops(ExchangeKind::Pairwise, 8);
        assert_eq!(sends, 7);
        assert_eq!(waits, 7); // one joint wait per step
    }

    #[test]
    fn nonblocking_single_wait() {
        let (sends, waits, _) = count_ops(ExchangeKind::Nonblocking, 8);
        assert_eq!(sends, 7);
        assert_eq!(waits, 1);
    }

    #[test]
    fn batched_wait_count() {
        let (sends, waits, _) = count_ops(ExchangeKind::Batched { batch: 3 }, 8);
        assert_eq!(sends, 7);
        assert_eq!(waits, 3); // ceil(7/3)
    }

    #[test]
    fn batch_larger_than_comm_degenerates_to_nonblocking() {
        assert_eq!(
            count_ops(ExchangeKind::Batched { batch: 100 }, 8),
            count_ops(ExchangeKind::Nonblocking, 8)
        );
    }

    #[test]
    fn single_rank_comm_is_pure_copy() {
        for kind in [
            ExchangeKind::Pairwise,
            ExchangeKind::Nonblocking,
            ExchangeKind::Batched { batch: 4 },
        ] {
            let mut b = ProgBuilder::new(Phase(0));
            build_exchange(kind, &mut b, &comm(1), 0, x(8), 0, None);
            let prog = b.finish();
            assert_eq!(prog.ops.len(), 1, "{kind}");
            assert!(matches!(prog.ops[0].op, Op::Copy { .. }));
        }
    }

    #[test]
    fn pairwise_peers_are_symmetric() {
        // In every step, if rank a sends to rank b then b receives from a.
        let m = 5;
        for step in 1..m {
            for me in 0..m {
                let sp = (me + step) % m;
                let their_rp = (sp + m - step) % m;
                assert_eq!(their_rp, me);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let mut b = ProgBuilder::new(Phase(0));
        build_exchange(ExchangeKind::Pairwise, &mut b, &comm(2), 5, x(8), 0, None);
    }

    #[test]
    #[should_panic(expected = "scratch buffers")]
    fn bruck_without_buffers_panics() {
        let mut b = ProgBuilder::new(Phase(0));
        build_exchange(ExchangeKind::Bruck, &mut b, &comm(4), 0, x(8), 0, None);
    }

    #[test]
    fn contig_block_math() {
        let c = Contig::new(a2a_sched::SBUF, 100, a2a_sched::RBUF, 200, 16);
        assert_eq!(c.sblk(3), Block::new(a2a_sched::SBUF, 148, 16));
        assert_eq!(c.rblk(0), Block::new(a2a_sched::RBUF, 200, 16));
    }
}
