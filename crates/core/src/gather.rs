//! Gather and scatter builders (the intra-node steps of Algorithms 3 and 5).
//!
//! Root is always comm index 0 — in this suite leaders are the lowest rank
//! of their subset, which is comm index 0 of every `subset_comm`.
//!
//! Two flavors, matching what MPI libraries switch between:
//! * **Linear**: the root posts one receive per member (members send
//!   directly). Minimal total traffic; the root is the serialization point.
//! * **Binomial**: a `ceil(log2 m)`-round tree; members relay aggregated
//!   subtrees. Fewer rounds of latency for small chunks at the price of
//!   forwarding volume (each byte may cross the node several times).

use a2a_sched::{Block, BufId, Bytes, ProgBuilder};
use a2a_topo::CommView;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Gather/scatter flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum GatherKind {
    Linear,
    Binomial,
}

impl std::fmt::Display for GatherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatherKind::Linear => write!(f, "linear"),
            GatherKind::Binomial => write!(f, "binomial"),
        }
    }
}

/// Number of chunks in member `i`'s binomial subtree (the contiguous index
/// range `[i, i + span)` it aggregates/forwards). Root spans everything.
pub fn subtree_span(i: usize, m: usize) -> usize {
    if i == 0 {
        return m;
    }
    let low = 1usize << i.trailing_zeros();
    (i + low).min(m) - i
}

/// Relay-buffer chunks member `i` needs for a binomial gather/scatter
/// (0 for the root, which stages directly in its gather buffer, and 0 for
/// any member under the linear flavor).
pub fn relay_chunks(kind: GatherKind, i: usize, m: usize) -> usize {
    match kind {
        GatherKind::Linear => 0,
        GatherKind::Binomial if i == 0 => 0,
        GatherKind::Binomial => subtree_span(i, m),
    }
}

/// Child comm indices of `i` in the binomial tree, in receive-round order.
fn children(i: usize, m: usize) -> Vec<usize> {
    let k_max = if i == 0 {
        usize::BITS
    } else {
        i.trailing_zeros()
    };
    let mut out = Vec::new();
    for j in 0..k_max {
        let c = i + (1usize << j);
        if c >= m {
            break;
        }
        out.push(c);
    }
    out
}

/// Parent of `i` (valid for `i > 0`).
fn parent(i: usize) -> usize {
    i - (1usize << i.trailing_zeros())
}

/// Emit a gather-to-root over `comm` into `b` (program of comm index `me`).
///
/// * `src` — this member's contribution (`chunk` bytes, anywhere).
/// * `dst` — root's destination region base; member `i`'s chunk lands at
///   `dst.1 + i*chunk`. Only read when `me == 0`.
/// * `relay` — member scratch for the binomial flavor
///   ([`relay_chunks`] chunks).
///
/// The root's local chunk copy is elided when `src` already is its slot in
/// `dst` (an identity copy — the validator rejects overlapping copies).
#[allow(clippy::too_many_arguments)]
pub fn build_gather(
    kind: GatherKind,
    b: &mut ProgBuilder,
    comm: &CommView,
    me: usize,
    src: Block,
    dst: (BufId, Bytes),
    relay: BufId,
    chunk: Bytes,
    tag: u32,
) {
    let m = comm.size();
    assert!(me < m, "comm index out of range");
    assert_eq!(src.len, chunk, "source block must be one chunk");
    let dst_at = |i: usize| Block::new(dst.0, dst.1 + i as Bytes * chunk, chunk);

    match kind {
        GatherKind::Linear => {
            if me == 0 {
                if src != dst_at(0) {
                    b.copy(src, dst_at(0));
                }
                let first = b.req_mark();
                for i in 1..m {
                    b.irecv(comm.world(i), dst_at(i), tag);
                }
                b.waitall(first, m as u32 - 1);
            } else {
                b.send(comm.world(0), src, tag);
            }
        }
        GatherKind::Binomial => {
            if me == 0 {
                if src != dst_at(0) {
                    b.copy(src, dst_at(0));
                }
                for c in children(0, m) {
                    let span = subtree_span(c, m) as Bytes;
                    b.recv(
                        comm.world(c),
                        Block::new(dst.0, dst.1 + c as Bytes * chunk, span * chunk),
                        tag,
                    );
                }
            } else {
                let span = subtree_span(me, m) as Bytes;
                let kids = children(me, m);
                if kids.is_empty() {
                    // Leaf: forward own chunk directly, no staging needed.
                    b.send(comm.world(parent(me)), src, tag);
                } else {
                    b.copy(src, Block::new(relay, 0, chunk));
                    for c in kids {
                        let cspan = subtree_span(c, m) as Bytes;
                        b.recv(
                            comm.world(c),
                            Block::new(relay, (c - me) as Bytes * chunk, cspan * chunk),
                            tag,
                        );
                    }
                    b.send(
                        comm.world(parent(me)),
                        Block::new(relay, 0, span * chunk),
                        tag,
                    );
                }
            }
        }
    }
}

/// Emit a scatter-from-root over `comm` (mirror of [`build_gather`]).
///
/// * `src` — root's staged region base; member `i`'s chunk sits at
///   `src.1 + i*chunk`. Only read when `me == 0`.
/// * `dst` — where this member's chunk must land (`chunk` bytes).
#[allow(clippy::too_many_arguments)]
pub fn build_scatter(
    kind: GatherKind,
    b: &mut ProgBuilder,
    comm: &CommView,
    me: usize,
    src: (BufId, Bytes),
    dst: Block,
    relay: BufId,
    chunk: Bytes,
    tag: u32,
) {
    let m = comm.size();
    assert!(me < m, "comm index out of range");
    assert_eq!(dst.len, chunk, "destination block must be one chunk");
    let src_at = |i: usize| Block::new(src.0, src.1 + i as Bytes * chunk, chunk);

    match kind {
        GatherKind::Linear => {
            if me == 0 {
                if src_at(0) != dst {
                    b.copy(src_at(0), dst);
                }
                let first = b.req_mark();
                for i in 1..m {
                    b.isend(comm.world(i), src_at(i), tag);
                }
                b.waitall(first, m as u32 - 1);
            } else {
                b.recv(comm.world(0), dst, tag);
            }
        }
        GatherKind::Binomial => {
            if me == 0 {
                // Send larger subtrees first (conventional; also lets far
                // subtrees start forwarding earliest).
                for c in children(0, m).into_iter().rev() {
                    let span = subtree_span(c, m) as Bytes;
                    b.send(
                        comm.world(c),
                        Block::new(src.0, src.1 + c as Bytes * chunk, span * chunk),
                        tag,
                    );
                }
                if src_at(0) != dst {
                    b.copy(src_at(0), dst);
                }
            } else {
                let span = subtree_span(me, m) as Bytes;
                let kids = children(me, m);
                if kids.is_empty() {
                    b.recv(comm.world(parent(me)), dst, tag);
                } else {
                    b.recv(
                        comm.world(parent(me)),
                        Block::new(relay, 0, span * chunk),
                        tag,
                    );
                    for c in kids.into_iter().rev() {
                        let cspan = subtree_span(c, m) as Bytes;
                        b.send(
                            comm.world(c),
                            Block::new(relay, (c - me) as Bytes * chunk, cspan * chunk),
                            tag,
                        );
                    }
                    b.copy(Block::new(relay, 0, chunk), dst);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_sched::{DataExecutor, Phase, RankProgram, ScheduleSource, RBUF, SBUF, TMP0};
    use a2a_topo::Rank;

    /// Gather world: every rank's chunk ends up ordered at root's RBUF; then
    /// (optionally) scattered back into every rank's RBUF tail.
    struct GatherWorld {
        m: usize,
        chunk: Bytes,
        kind: GatherKind,
        and_scatter: bool,
    }

    impl ScheduleSource for GatherWorld {
        fn nranks(&self) -> usize {
            self.m
        }
        fn buffers(&self, r: Rank) -> Vec<Bytes> {
            let total = self.m as Bytes * self.chunk;
            let relay = relay_chunks(self.kind, r as usize, self.m) as Bytes * self.chunk;
            // RBUF: root stages the gathered array; everyone reserves one
            // chunk at the front for the scattered-back data.
            vec![self.chunk, total.max(self.chunk), relay.max(1)]
        }
        fn build_rank(&self, r: Rank) -> RankProgram {
            let comm = CommView::new((0..self.m as Rank).collect());
            let mut b = ProgBuilder::new(Phase(0));
            build_gather(
                self.kind,
                &mut b,
                &comm,
                r as usize,
                Block::new(SBUF, 0, self.chunk),
                (RBUF, 0),
                TMP0,
                self.chunk,
                1,
            );
            if self.and_scatter {
                // Scatter the gathered array straight back.
                build_scatter(
                    self.kind,
                    &mut b,
                    &comm,
                    r as usize,
                    (RBUF, 0),
                    Block::new(RBUF, 0, self.chunk),
                    TMP0,
                    self.chunk,
                    2,
                );
            }
            b.finish()
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["gather"]
        }
    }

    fn fill(r: Rank, buf: &mut [u8]) {
        buf.fill(r as u8 + 1);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        for kind in [GatherKind::Linear, GatherKind::Binomial] {
            for m in [1usize, 2, 3, 5, 8, 13, 16] {
                let w = GatherWorld {
                    m,
                    chunk: 4,
                    kind,
                    and_scatter: false,
                };
                let res =
                    DataExecutor::run(&w, fill).unwrap_or_else(|e| panic!("{kind} m={m}: {e}"));
                let root = &res.rbufs[0];
                for i in 0..m {
                    assert_eq!(
                        &root[i * 4..(i + 1) * 4],
                        &[i as u8 + 1; 4],
                        "{kind} m={m} chunk {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn scatter_returns_each_chunk_home() {
        for kind in [GatherKind::Linear, GatherKind::Binomial] {
            for m in [1usize, 2, 3, 5, 8, 13, 16] {
                let w = GatherWorld {
                    m,
                    chunk: 4,
                    kind,
                    and_scatter: true,
                };
                let res =
                    DataExecutor::run(&w, fill).unwrap_or_else(|e| panic!("{kind} m={m}: {e}"));
                for (r, rb) in res.rbufs.iter().enumerate() {
                    assert_eq!(&rb[..4], &[r as u8 + 1; 4], "{kind} m={m} rank {r}");
                }
            }
        }
    }

    #[test]
    fn binomial_message_count_is_m_minus_1_total() {
        // The tree moves exactly m-1 messages in gather, regardless of shape.
        for m in [2usize, 3, 7, 8, 12] {
            let w = GatherWorld {
                m,
                chunk: 4,
                kind: GatherKind::Binomial,
                and_scatter: false,
            };
            let res = DataExecutor::run(&w, fill).unwrap();
            assert_eq!(res.messages, m - 1, "m={m}");
        }
    }

    #[test]
    fn binomial_root_receives_only_log_messages() {
        let w = GatherWorld {
            m: 16,
            chunk: 4,
            kind: GatherKind::Binomial,
            and_scatter: false,
        };
        let prog = w.build_rank(0);
        let recvs = prog
            .ops
            .iter()
            .filter(|t| matches!(t.op, a2a_sched::Op::Irecv { .. }))
            .count();
        assert_eq!(recvs, 4); // log2(16)
    }

    #[test]
    fn subtree_span_properties() {
        assert_eq!(subtree_span(0, 16), 16);
        assert_eq!(subtree_span(8, 16), 8);
        assert_eq!(subtree_span(8, 12), 4); // clipped by m
        assert_eq!(subtree_span(5, 16), 1); // odd index is a leaf
        assert_eq!(subtree_span(6, 16), 2);
        // Children partition [i+1, i+span).
        for m in [5usize, 8, 11, 16] {
            for i in 0..m {
                let mut covered: Vec<usize> = Vec::new();
                for c in children(i, m) {
                    covered.extend(c..c + subtree_span(c, m));
                }
                covered.sort_unstable();
                let span = subtree_span(i, m);
                let expect: Vec<usize> = (i + 1..i + span).collect();
                assert_eq!(covered, expect, "i={i} m={m}");
            }
        }
    }

    #[test]
    fn relay_chunks_zero_for_linear_and_root() {
        assert_eq!(relay_chunks(GatherKind::Linear, 3, 8), 0);
        assert_eq!(relay_chunks(GatherKind::Binomial, 0, 8), 0);
        assert_eq!(relay_chunks(GatherKind::Binomial, 4, 8), 4);
    }
}
