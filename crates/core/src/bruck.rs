//! Bruck's log-step all-to-all [Bruck et al., TPDS 1997].
//!
//! Minimizes message count: `ceil(log2 m)` rounds, each sending roughly half
//! of the local blocks (`~m*s/2` bytes), which is why production MPIs use it
//! for small messages and why it loses to direct exchange for large ones.
//!
//! Structure (for comm rank `p` of `m`, block size `b`):
//! 1. **Rotate**: `work[i] = src[(p + i) mod m]`, so `work[i]` holds the
//!    block destined for rank `p + i`.
//! 2. **Rounds**: for each bit `2^k < m`, pack every `work[i]` with bit `k`
//!    set in `i`, send the aggregate to rank `p + 2^k`, receive from
//!    `p - 2^k`, and unpack into the same indices. Each block therefore
//!    accumulates displacement `i` over the rounds.
//! 3. **Final rotate**: the block from source rank `j` ends at
//!    `work[(p - j) mod m]`; copy it to the destination segment `j`.
//!
//! Works for any `m`, including non-powers-of-two.

use a2a_sched::{Block, BufId, Bytes, ProgBuilder};
use a2a_topo::CommView;

use crate::exchange::Contig;

/// Scratch buffers a Bruck exchange needs, declared by the caller so
/// composed algorithms control buffer-id allocation.
#[derive(Debug, Clone, Copy)]
pub struct BruckBufs {
    /// Working array of `m` blocks.
    pub work: BufId,
    /// Packed outgoing blocks for one round (`max_round_blocks(m)` blocks).
    pub pack: BufId,
    /// Incoming blocks for one round (same size as `pack`).
    pub recv: BufId,
}

/// Largest number of blocks any round sends: `max_k |{i < m : i & 2^k != 0}|`.
pub fn max_round_blocks(m: usize) -> usize {
    let mut max = 0;
    let mut k = 0;
    while (1usize << k) < m {
        let bit = 1usize << k;
        max = max.max((0..m).filter(|i| i & bit != 0).count());
        k += 1;
    }
    max
}

/// Required sizes of (work, pack, recv) scratch buffers.
pub fn bruck_buffer_sizes(m: usize, block: Bytes) -> (Bytes, Bytes, Bytes) {
    let round = max_round_blocks(m) as Bytes * block;
    (m as Bytes * block, round, round)
}

/// Emit a Bruck all-to-all over `comm` for the rank at comm index `me`.
/// Tags `tag..tag+rounds` are used (one per round).
pub fn build_bruck(
    b: &mut ProgBuilder,
    comm: &CommView,
    me: usize,
    x: Contig,
    bufs: &BruckBufs,
    tag: u32,
) {
    let m = comm.size();
    let blk = x.block;
    if m == 1 {
        b.copy(x.sblk(0), x.rblk(0));
        return;
    }
    let work = |i: usize| Block::new(bufs.work, i as Bytes * blk, blk);
    let work_run =
        |i: usize, len: usize| Block::new(bufs.work, i as Bytes * blk, len as Bytes * blk);

    // 1. Rotate into the working array — two bulk copies.
    b.copy(
        Block::new(x.sbuf, x.soff + me as Bytes * blk, (m - me) as Bytes * blk),
        work_run(0, m - me),
    );
    if me > 0 {
        b.copy(
            Block::new(x.sbuf, x.soff, me as Bytes * blk),
            work_run(m - me, me),
        );
    }

    // 2. Log-step rounds. The indices with bit `k` set form contiguous
    //    runs of length `2^k`; packing/unpacking works run-at-a-time so
    //    the op count stays O(m) per rank across all rounds.
    let mut k = 0u32;
    while (1usize << k) < m {
        let bit = 1usize << k;
        // Runs [start, end) of indices with bit k set, below m.
        let mut runs: Vec<(usize, usize)> = Vec::with_capacity(m / (2 * bit) + 1);
        let mut start = bit;
        while start < m {
            runs.push((start, (start + bit).min(m)));
            start += 2 * bit;
        }
        let cnt: usize = runs.iter().map(|r| r.1 - r.0).sum();
        let mut off = 0usize;
        for &(lo, hi) in &runs {
            b.copy(work_run(lo, hi - lo), {
                Block::new(bufs.pack, off as Bytes * blk, (hi - lo) as Bytes * blk)
            });
            off += hi - lo;
        }
        let to = comm.world((me + bit) % m);
        let from = comm.world((me + m - bit) % m);
        b.sendrecv(
            to,
            Block::new(bufs.pack, 0, cnt as Bytes * blk),
            tag + k,
            from,
            Block::new(bufs.recv, 0, cnt as Bytes * blk),
            tag + k,
        );
        let mut off = 0usize;
        for &(lo, hi) in &runs {
            b.copy(
                Block::new(bufs.recv, off as Bytes * blk, (hi - lo) as Bytes * blk),
                work_run(lo, hi - lo),
            );
            off += hi - lo;
        }
        k += 1;
    }

    // 3. Final rotation into the destination layout.
    for j in 0..m {
        b.copy(work((me + m - j) % m), x.rblk(j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_sched::{Bytes, Op, Phase, RankProgram, ScheduleSource, TMP0, TMP1, TMP2};
    use a2a_topo::Rank;

    /// Standalone Bruck over a world of `m` ranks, for executor testing.
    struct BruckWorld {
        m: usize,
        s: Bytes,
    }

    impl ScheduleSource for BruckWorld {
        fn nranks(&self) -> usize {
            self.m
        }
        fn buffers(&self, _r: Rank) -> Vec<Bytes> {
            let (w, p, r) = bruck_buffer_sizes(self.m, self.s);
            vec![self.m as Bytes * self.s, self.m as Bytes * self.s, w, p, r]
        }
        fn build_rank(&self, r: Rank) -> RankProgram {
            let comm = CommView::new((0..self.m as Rank).collect());
            let mut b = ProgBuilder::new(Phase(0));
            build_bruck(
                &mut b,
                &comm,
                r as usize,
                Contig::new(a2a_sched::SBUF, 0, a2a_sched::RBUF, 0, self.s),
                &BruckBufs {
                    work: TMP0,
                    pack: TMP1,
                    recv: TMP2,
                },
                0,
            );
            b.finish()
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["bruck"]
        }
    }

    #[test]
    fn bruck_transposes_various_sizes() {
        // Powers of two and awkward non-powers, including 1 and primes.
        for m in [1usize, 2, 3, 4, 5, 6, 7, 8, 12, 13, 16, 31] {
            let src = BruckWorld { m, s: 8 };
            a2a_sched::run_and_verify(&src, 8)
                .unwrap_or_else(|e| panic!("bruck m={m} failed: {e}"));
        }
    }

    #[test]
    fn round_count_is_log2_ceil() {
        let src = BruckWorld { m: 8, s: 4 };
        let prog = src.build_rank(0);
        let sends = prog
            .ops
            .iter()
            .filter(|t| matches!(t.op, Op::Isend { .. }))
            .count();
        assert_eq!(sends, 3); // log2(8)
        let src = BruckWorld { m: 9, s: 4 };
        let sends9 = src
            .build_rank(0)
            .ops
            .iter()
            .filter(|t| matches!(t.op, Op::Isend { .. }))
            .count();
        assert_eq!(sends9, 4); // ceil(log2 9)
    }

    #[test]
    fn per_round_volume_is_about_half() {
        // Paper: Bruck sends ~ s*p/2 bytes per step.
        let m = 16;
        let s = 8;
        let src = BruckWorld { m, s };
        let prog = src.build_rank(3);
        for t in &prog.ops {
            if let Op::Isend { block, .. } = t.op {
                assert_eq!(block.len, (m as Bytes / 2) * s);
            }
        }
    }

    #[test]
    fn max_round_blocks_bounds() {
        assert_eq!(max_round_blocks(1), 0);
        assert_eq!(max_round_blocks(2), 1);
        assert_eq!(max_round_blocks(8), 4);
        for m in 2..64 {
            assert!(max_round_blocks(m) <= m.div_ceil(2), "m={m}");
        }
    }

    #[test]
    fn buffer_sizes_consistent() {
        let (w, p, r) = bruck_buffer_sizes(10, 4);
        assert_eq!(w, 40);
        assert_eq!(p, r);
        assert_eq!(p, max_round_blocks(10) as Bytes * 4);
    }
}
