//! The "system MPI" baseline: the size-switched policy production MPI
//! libraries (MPICH, Intel MPI, Open MPI) default to — Bruck for small
//! messages, direct pairwise exchange for large ones. The paper plots
//! system MPI in every figure and observes it "is likely using the Bruck
//! algorithm" at small sizes.

use a2a_sched::{Bytes, RankProgram};
use a2a_topo::Rank;

use crate::direct::{BruckAlltoall, PairwiseAlltoall};
use crate::{A2AContext, AlltoallAlgorithm};

/// Size-switched Bruck / pairwise baseline.
#[derive(Debug, Clone, Copy)]
pub struct SystemMpiAlltoall {
    /// Per-process block sizes at or below this use Bruck.
    pub bruck_threshold: Bytes,
}

impl SystemMpiAlltoall {
    pub fn new(bruck_threshold: Bytes) -> Self {
        SystemMpiAlltoall { bruck_threshold }
    }

    fn delegate(&self, ctx: &A2AContext) -> &'static dyn AlltoallAlgorithm {
        if ctx.block_bytes <= self.bruck_threshold {
            &BruckAlltoall
        } else {
            &PairwiseAlltoall
        }
    }
}

impl Default for SystemMpiAlltoall {
    /// MPICH's default short-message cutoff for Bruck is 256 bytes.
    fn default() -> Self {
        SystemMpiAlltoall::new(256)
    }
}

impl AlltoallAlgorithm for SystemMpiAlltoall {
    fn name(&self) -> String {
        "system-mpi".into()
    }

    fn phase_names(&self) -> Vec<&'static str> {
        vec!["exchange"]
    }

    fn buffers(&self, ctx: &A2AContext, rank: Rank) -> Vec<Bytes> {
        self.delegate(ctx).buffers(ctx, rank)
    }

    fn build_rank(&self, ctx: &A2AContext, rank: Rank) -> RankProgram {
        self.delegate(ctx).build_rank(ctx, rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlgoSchedule;
    use a2a_sched::run_and_verify;
    use a2a_topo::{Machine, ProcGrid};

    fn ctx(s: Bytes) -> A2AContext {
        A2AContext::new(ProcGrid::new(Machine::custom("t", 2, 2, 1, 3)), s)
    }

    #[test]
    fn switches_on_threshold() {
        let sys = SystemMpiAlltoall::default();
        // Small -> Bruck: log message count.
        let small = sys.build_rank(&ctx(64), 0);
        assert_eq!(small.send_count(), 4); // ceil(log2 12)
                                           // Large -> pairwise: n-1 messages.
        let large = sys.build_rank(&ctx(1024), 0);
        assert_eq!(large.send_count(), 11);
    }

    #[test]
    fn both_paths_transpose() {
        for s in [64u64, 1024] {
            let sys = SystemMpiAlltoall::default();
            run_and_verify(&AlgoSchedule::new(&sys, ctx(s)), s).unwrap();
        }
    }

    #[test]
    fn threshold_is_inclusive() {
        let sys = SystemMpiAlltoall::new(256);
        assert_eq!(sys.build_rank(&ctx(256), 0).send_count(), 4);
        assert_eq!(sys.build_rank(&ctx(257), 0).send_count(), 11);
    }
}
