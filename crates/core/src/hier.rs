//! Paper Algorithm 3: hierarchical / multi-leader all-to-all.
//!
//! Each node is partitioned into subsets of `ppl` consecutive ranks; the
//! first rank of each subset is its *leader*. Stages:
//!
//! 1. **Gather** — members send their entire send buffer (`n*s` bytes) to
//!    their leader.
//! 2. **Pack** — the leader reorders the gathered data by destination
//!    leader: the segment for leader `m'` holds, member-major, the `ppl`
//!    blocks destined to each of `m'`'s members (`ppl^2 * s` bytes).
//! 3. **Inter all-to-all** — all `nodes * ppn/ppl` leaders exchange their
//!    segments with the configured underlying pattern.
//! 4. **Unpack** — the leader reorders received segments into per-member
//!    receive images ordered by source world rank.
//! 5. **Scatter** — each member receives its `n*s`-byte result.
//!
//! `ppl = ppn` is the classic hierarchical algorithm (one leader per node);
//! smaller `ppl` is the multi-leader extension. With `ppl = 1` every rank
//! leads and the algorithm degenerates to a flat exchange.

use a2a_sched::{Block, BufId, Bytes, Phase, ProgBuilder, RankProgram, RBUF, SBUF};
use a2a_topo::Rank;

use crate::bruck::{bruck_buffer_sizes, BruckBufs};
use crate::exchange::{build_exchange, Contig, ExchangeKind};
use crate::gather::{build_gather, build_scatter, relay_chunks, GatherKind};
use crate::{tags, A2AContext, AlltoallAlgorithm};

const G: BufId = BufId(2); // gathered member buffers, member-major
const P: BufId = BufId(3); // packed by destination leader
const Q: BufId = BufId(4); // received segments, source-leader-major
const S: BufId = BufId(5); // per-member receive images
const RELAY: BufId = BufId(6); // binomial gather/scatter relay
const BK_WORK: BufId = BufId(7);
const BK_PACK: BufId = BufId(8);
const BK_RECV: BufId = BufId(9);

const PH_GATHER: Phase = Phase(0);
const PH_PACK: Phase = Phase(1);
const PH_INTER: Phase = Phase(2);
const PH_SCATTER: Phase = Phase(3);

/// Hierarchical (1 leader/node) and multi-leader (ppn/ppl leaders/node)
/// all-to-all.
#[derive(Debug, Clone, Copy)]
pub struct HierarchicalAlltoall {
    /// Processes per leader (subset size). `ppl == ppn` means one leader
    /// per node.
    pub ppl: usize,
    /// Underlying pattern for the inter-leader all-to-all.
    pub inner: ExchangeKind,
    /// Gather/scatter flavor.
    pub gather: GatherKind,
}

impl HierarchicalAlltoall {
    pub fn new(ppl: usize, inner: ExchangeKind) -> Self {
        assert!(ppl > 0, "ppl must be nonzero");
        HierarchicalAlltoall {
            ppl,
            inner,
            gather: GatherKind::Linear,
        }
    }

    pub fn with_gather(mut self, gather: GatherKind) -> Self {
        self.gather = gather;
        self
    }

    fn is_leader(&self, ctx: &A2AContext, rank: Rank) -> bool {
        ctx.grid.subset_offset(rank, self.ppl) == 0
    }
}

impl AlltoallAlgorithm for HierarchicalAlltoall {
    fn name(&self) -> String {
        format!("hier(ppl={},{},{})", self.ppl, self.inner, self.gather)
    }

    fn phase_names(&self) -> Vec<&'static str> {
        vec!["gather", "pack", "inter-a2a", "scatter"]
    }

    fn buffers(&self, ctx: &A2AContext, rank: Rank) -> Vec<Bytes> {
        let g = self.ppl as Bytes;
        let s = ctx.block_bytes;
        let total = ctx.total_bytes(); // n*s
        let mut bufs = vec![total, total, 0, 0, 0, 0, 0, 0, 0, 0];
        let grid = &ctx.grid;
        let o = grid.subset_offset(rank, self.ppl);
        // Gather/scatter relay for internal binomial-tree members.
        bufs[RELAY.0 as usize] = relay_chunks(self.gather, o, self.ppl) as Bytes * total;
        if self.is_leader(ctx, rank) {
            let leader_bytes = g * total; // ppl member images of n*s
            bufs[G.0 as usize] = leader_bytes;
            bufs[P.0 as usize] = leader_bytes;
            bufs[Q.0 as usize] = leader_bytes;
            bufs[S.0 as usize] = leader_bytes;
            if matches!(self.inner, ExchangeKind::Bruck) {
                let m = grid.region_count(self.ppl);
                let (w, p, r) = bruck_buffer_sizes(m, g * g * s);
                bufs[BK_WORK.0 as usize] = w;
                bufs[BK_PACK.0 as usize] = p;
                bufs[BK_RECV.0 as usize] = r;
            }
        }
        bufs
    }

    fn build_rank(&self, ctx: &A2AContext, rank: Rank) -> RankProgram {
        let grid = &ctx.grid;
        let ppn = grid.machine().ppn();
        assert!(
            self.ppl <= ppn && ppn.is_multiple_of(self.ppl),
            "ppl {} must divide ppn {ppn}",
            self.ppl
        );
        let g = self.ppl;
        let s = ctx.block_bytes;
        let n = ctx.n() as Bytes;
        let total = n * s;
        let subset = grid.subset_comm(rank, g);
        let o = grid.subset_offset(rank, g);
        let mut b = ProgBuilder::new(PH_GATHER);

        // 1. Gather member send buffers to the leader.
        build_gather(
            self.gather,
            &mut b,
            &subset,
            o,
            Block::new(SBUF, 0, total),
            (G, 0),
            RELAY,
            total,
            tags::GATHER,
        );

        if self.is_leader(ctx, rank) {
            let leaders = grid.all_leaders_comm(g);
            let me = leaders
                .local_of(rank)
                .expect("leader must be in leader comm");
            let nl = leaders.size();
            let seg = (g * g) as Bytes * s; // bytes per destination leader

            // 2. Pack by destination leader, member-major within segments.
            b.set_phase(PH_PACK);
            for m2 in 0..nl {
                let dst_base = grid.region_base(m2, g) as Bytes * s;
                for o2 in 0..g as Bytes {
                    b.copy(
                        Block::new(G, o2 * total + dst_base, g as Bytes * s),
                        Block::new(P, m2 as Bytes * seg + o2 * g as Bytes * s, g as Bytes * s),
                    );
                }
            }

            // 3. Inter-leader all-to-all.
            b.set_phase(PH_INTER);
            let bruck = BruckBufs {
                work: BK_WORK,
                pack: BK_PACK,
                recv: BK_RECV,
            };
            build_exchange(
                self.inner,
                &mut b,
                &leaders,
                me,
                Contig::new(P, 0, Q, 0, seg),
                tags::INTER,
                Some(&bruck),
            );

            // 4. Unpack into per-member receive images ordered by source
            //    world rank.
            b.set_phase(PH_PACK);
            for om in 0..g as Bytes {
                // destination member
                for m2 in 0..nl {
                    let src_base = grid.region_base(m2, g) as Bytes;
                    for o2 in 0..g as Bytes {
                        // source member within region m2
                        b.copy(
                            Block::new(Q, m2 as Bytes * seg + o2 * g as Bytes * s + om * s, s),
                            Block::new(S, om * total + (src_base + o2) * s, s),
                        );
                    }
                }
            }

            // 5. Scatter receive images back to members.
            b.set_phase(PH_SCATTER);
            build_scatter(
                self.gather,
                &mut b,
                &subset,
                0,
                (S, 0),
                Block::new(RBUF, 0, total),
                RELAY,
                total,
                tags::SCATTER,
            );
        } else {
            // Members only participate in gather and scatter.
            b.set_phase(PH_SCATTER);
            build_scatter(
                self.gather,
                &mut b,
                &subset,
                o,
                (S, 0),
                Block::new(RBUF, 0, total),
                RELAY,
                total,
                tags::SCATTER,
            );
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlgoSchedule;
    use a2a_sched::{run_and_verify, validate, ScheduleSource};
    use a2a_topo::{Machine, ProcGrid};

    fn ctx(nodes: usize, ppn_shape: (usize, usize, usize), s: Bytes) -> A2AContext {
        let (sk, nu, co) = ppn_shape;
        A2AContext::new(ProcGrid::new(Machine::custom("t", nodes, sk, nu, co)), s)
    }

    #[test]
    fn hierarchical_single_leader_transposes() {
        // ppn = 6, ppl = 6 -> classic hierarchical.
        let c = ctx(3, (2, 1, 3), 8);
        let algo = HierarchicalAlltoall::new(6, ExchangeKind::Pairwise);
        run_and_verify(&AlgoSchedule::new(&algo, c), 8).unwrap();
    }

    #[test]
    fn multileader_all_group_sizes_transpose() {
        for nodes in [2usize, 3] {
            for ppl in [1usize, 2, 3, 6] {
                for inner in [
                    ExchangeKind::Pairwise,
                    ExchangeKind::Nonblocking,
                    ExchangeKind::Bruck,
                ] {
                    let c = ctx(nodes, (2, 1, 3), 4);
                    let algo = HierarchicalAlltoall::new(ppl, inner);
                    run_and_verify(&AlgoSchedule::new(&algo, c), 4)
                        .unwrap_or_else(|e| panic!("nodes={nodes} ppl={ppl} inner={inner}: {e}"));
                }
            }
        }
    }

    #[test]
    fn binomial_gather_variant_transposes() {
        let c = ctx(2, (2, 2, 2), 8); // ppn = 8
        for ppl in [4usize, 8] {
            let algo = HierarchicalAlltoall::new(ppl, ExchangeKind::Pairwise)
                .with_gather(GatherKind::Binomial);
            run_and_verify(&AlgoSchedule::new(&algo, c.clone()), 8)
                .unwrap_or_else(|e| panic!("ppl={ppl}: {e}"));
        }
    }

    #[test]
    fn only_leaders_touch_the_network() {
        let c = ctx(2, (2, 1, 3), 8); // ppn=6
        let algo = HierarchicalAlltoall::new(3, ExchangeKind::Pairwise);
        let grid = c.grid.clone();
        let sched = AlgoSchedule::new(&algo, c);
        let stats = validate(&sched, &grid).unwrap();
        // 4 leaders total (2 per node); each sends to the 2 leaders on the
        // other node: 4*2 = 8 inter-node messages.
        assert_eq!(stats.inter_node_msgs(), 8);
        // Members never send inter-node.
        let member_prog = sched.build_rank(1);
        assert_eq!(member_prog.send_count(), 1); // gather send only
    }

    #[test]
    fn hierarchical_minimizes_internode_messages() {
        // Classic hierarchical: exactly one leader pair exchange per node
        // pair, in both directions.
        let c = ctx(3, (2, 1, 3), 8);
        let algo = HierarchicalAlltoall::new(6, ExchangeKind::Pairwise);
        let grid = c.grid.clone();
        let stats = validate(&AlgoSchedule::new(&algo, c), &grid).unwrap();
        assert_eq!(stats.inter_node_msgs(), 3 * 2); // nodes*(nodes-1)
    }

    #[test]
    fn leader_buffer_sizes() {
        let c = ctx(2, (2, 1, 3), 8); // n=12, total=96
        let algo = HierarchicalAlltoall::new(3, ExchangeKind::Pairwise);
        let leader = algo.buffers(&c, 0);
        assert_eq!(leader[0], 96);
        assert_eq!(leader[G.0 as usize], 3 * 96);
        let member = algo.buffers(&c, 1);
        assert_eq!(member[G.0 as usize], 0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_ppl_panics() {
        let c = ctx(2, (2, 1, 3), 8); // ppn=6
        HierarchicalAlltoall::new(4, ExchangeKind::Pairwise).build_rank(&c, 0);
    }
}
