//! Flat (topology-oblivious) all-to-all algorithms over the world
//! communicator: the paper's §2 baselines.

use a2a_sched::{Bytes, Phase, ProgBuilder, RankProgram, RBUF, SBUF, TMP0, TMP1, TMP2};
use a2a_topo::Rank;

use crate::bruck::{bruck_buffer_sizes, BruckBufs};
use crate::exchange::{build_exchange, Contig, ExchangeKind};
use crate::{tags, A2AContext, AlltoallAlgorithm};

fn direct_build(kind: ExchangeKind, ctx: &A2AContext, rank: Rank) -> RankProgram {
    let comm = ctx.grid.world_comm();
    let mut b = ProgBuilder::new(Phase(0));
    let x = Contig::new(SBUF, 0, RBUF, 0, ctx.block_bytes);
    let bruck = BruckBufs {
        work: TMP0,
        pack: TMP1,
        recv: TMP2,
    };
    build_exchange(
        kind,
        &mut b,
        &comm,
        rank as usize,
        x,
        tags::DIRECT,
        Some(&bruck),
    );
    b.finish()
}

fn direct_buffers(kind: ExchangeKind, ctx: &A2AContext) -> Vec<Bytes> {
    let total = ctx.total_bytes();
    match kind {
        ExchangeKind::Bruck => {
            let (w, p, r) = bruck_buffer_sizes(ctx.n(), ctx.block_bytes);
            vec![total, total, w, p, r]
        }
        _ => vec![total, total],
    }
}

/// Paper Algorithm 1: `p-1` blocking pairwise sendrecv steps.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairwiseAlltoall;

impl AlltoallAlgorithm for PairwiseAlltoall {
    fn name(&self) -> String {
        "pairwise".into()
    }
    fn phase_names(&self) -> Vec<&'static str> {
        vec!["exchange"]
    }
    fn buffers(&self, ctx: &A2AContext, _rank: Rank) -> Vec<Bytes> {
        direct_buffers(ExchangeKind::Pairwise, ctx)
    }
    fn build_rank(&self, ctx: &A2AContext, rank: Rank) -> RankProgram {
        direct_build(ExchangeKind::Pairwise, ctx, rank)
    }
}

/// Paper Algorithm 2: all sends/recvs posted non-blocking, one waitall.
#[derive(Debug, Clone, Copy, Default)]
pub struct NonblockingAlltoall;

impl AlltoallAlgorithm for NonblockingAlltoall {
    fn name(&self) -> String {
        "nonblocking".into()
    }
    fn phase_names(&self) -> Vec<&'static str> {
        vec!["exchange"]
    }
    fn buffers(&self, ctx: &A2AContext, _rank: Rank) -> Vec<Bytes> {
        direct_buffers(ExchangeKind::Nonblocking, ctx)
    }
    fn build_rank(&self, ctx: &A2AContext, rank: Rank) -> RankProgram {
        direct_build(ExchangeKind::Nonblocking, ctx, rank)
    }
}

/// Batched all-to-all (related work [16]): non-blocking exchange in bounded
/// batches, trading pairwise's synchronization for bounded queue pressure.
#[derive(Debug, Clone, Copy)]
pub struct BatchedAlltoall {
    pub batch: usize,
}

impl BatchedAlltoall {
    pub fn new(batch: usize) -> Self {
        assert!(batch > 0, "batch size must be nonzero");
        BatchedAlltoall { batch }
    }
}

impl AlltoallAlgorithm for BatchedAlltoall {
    fn name(&self) -> String {
        format!("batched(b={})", self.batch)
    }
    fn phase_names(&self) -> Vec<&'static str> {
        vec!["exchange"]
    }
    fn buffers(&self, ctx: &A2AContext, _rank: Rank) -> Vec<Bytes> {
        direct_buffers(ExchangeKind::Batched { batch: self.batch }, ctx)
    }
    fn build_rank(&self, ctx: &A2AContext, rank: Rank) -> RankProgram {
        direct_build(ExchangeKind::Batched { batch: self.batch }, ctx, rank)
    }
}

/// Bruck's log-step all-to-all over the world communicator.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruckAlltoall;

impl AlltoallAlgorithm for BruckAlltoall {
    fn name(&self) -> String {
        "bruck".into()
    }
    fn phase_names(&self) -> Vec<&'static str> {
        vec!["exchange"]
    }
    fn buffers(&self, ctx: &A2AContext, _rank: Rank) -> Vec<Bytes> {
        direct_buffers(ExchangeKind::Bruck, ctx)
    }
    fn build_rank(&self, ctx: &A2AContext, rank: Rank) -> RankProgram {
        direct_build(ExchangeKind::Bruck, ctx, rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlgoSchedule;
    use a2a_sched::{run_and_verify, validate};
    use a2a_topo::{Machine, ProcGrid};

    fn ctx(nodes: usize, s: Bytes) -> A2AContext {
        A2AContext::new(ProcGrid::new(Machine::custom("t", nodes, 2, 1, 3)), s)
    }

    fn algos() -> Vec<Box<dyn AlltoallAlgorithm>> {
        vec![
            Box::new(PairwiseAlltoall),
            Box::new(NonblockingAlltoall),
            Box::new(BatchedAlltoall::new(4)),
            Box::new(BruckAlltoall),
        ]
    }

    #[test]
    fn all_flat_algorithms_transpose() {
        for algo in algos() {
            for nodes in [1usize, 2, 3] {
                let c = ctx(nodes, 8);
                let sched = AlgoSchedule::new(algo.as_ref(), c);
                run_and_verify(&sched, 8)
                    .unwrap_or_else(|e| panic!("{} nodes={nodes}: {e}", algo.name()));
            }
        }
    }

    #[test]
    fn all_flat_algorithms_validate() {
        for algo in algos() {
            let c = ctx(2, 16);
            let grid = c.grid.clone();
            let sched = AlgoSchedule::new(algo.as_ref(), c);
            validate(&sched, &grid).unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        }
    }

    #[test]
    fn direct_algorithms_send_n_minus_1_messages_per_rank() {
        let c = ctx(2, 8); // n = 12
        for algo in [
            Box::new(PairwiseAlltoall) as Box<dyn AlltoallAlgorithm>,
            Box::new(NonblockingAlltoall),
            Box::new(BatchedAlltoall::new(5)),
        ] {
            let prog = algo.build_rank(&c, 3);
            assert_eq!(prog.send_count(), 11, "{}", algo.name());
            assert_eq!(prog.send_bytes(), 11 * 8, "{}", algo.name());
        }
    }

    #[test]
    fn bruck_sends_fewer_messages_but_more_bytes() {
        let c = ctx(4, 8); // n = 24
        let direct = PairwiseAlltoall.build_rank(&c, 0);
        let bruck = BruckAlltoall.build_rank(&c, 0);
        assert!(bruck.send_count() < direct.send_count());
        assert!(bruck.send_bytes() > direct.send_bytes());
        assert_eq!(bruck.send_count(), 5); // ceil(log2 24)
    }

    #[test]
    fn single_rank_world() {
        let c = A2AContext::new(ProcGrid::new(Machine::custom("t", 1, 1, 1, 1)), 4);
        for algo in algos() {
            let sched = AlgoSchedule::new(algo.as_ref(), c.clone());
            run_and_verify(&sched, 4).unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        }
    }
}
