//! Paper Algorithm 5: multi-leader + node-aware all-to-all (the paper's
//! second novel algorithm).
//!
//! Combines the multi-leader gather/scatter (fewer active ranks doing
//! inter-node traffic than node-aware, cheaper gathers than hierarchical)
//! with node-aware aggregation *between* leaders, so every leader sends only
//! one message per remote node:
//!
//! 1. **Gather** — members send their send buffers to their subset leader.
//! 2. **Pack** — by destination node, member-major.
//! 3. **Inter-node all-to-all** among *corresponding* leaders (subset `q`
//!    of every node): one `ppl*ppn*s`-byte message per remote node.
//! 4. **Pack** — by destination leader within the node.
//! 5. **Intra-node all-to-all** among the node's leaders redistributes data
//!    to the leader that owns each destination member.
//! 6. **Unpack** into per-member receive images; **scatter** to members.
//!
//! With one leader per node (`ppl = ppn`) this degenerates to hierarchical
//! (the intra-node leader exchange is a self copy); with `ppl = 1` it
//! degenerates to node-aware — exactly as the paper observes.

use a2a_sched::{Block, BufId, Bytes, Phase, ProgBuilder, RankProgram, RBUF, SBUF};
use a2a_topo::Rank;

use crate::bruck::{bruck_buffer_sizes, BruckBufs};
use crate::exchange::{build_exchange, Contig, ExchangeKind};
use crate::gather::{build_gather, build_scatter, relay_chunks, GatherKind};
use crate::{tags, A2AContext, AlltoallAlgorithm};

const G: BufId = BufId(2); // gathered member images
const P1: BufId = BufId(3); // packed by destination node
const Q1: BufId = BufId(4); // received, source-node-major
const P2: BufId = BufId(5); // packed by destination leader (same node)
const Q2: BufId = BufId(6); // received, source-subset-major
const S: BufId = BufId(7); // per-member receive images
const RELAY: BufId = BufId(8);
const BK_WORK: BufId = BufId(9);
const BK_PACK: BufId = BufId(10);
const BK_RECV: BufId = BufId(11);

const PH_GATHER: Phase = Phase(0);
const PH_PACK: Phase = Phase(1);
const PH_INTER: Phase = Phase(2);
const PH_INTRA: Phase = Phase(3);
const PH_SCATTER: Phase = Phase(4);

/// Multi-leader + node-aware all-to-all (Algorithm 5).
#[derive(Debug, Clone, Copy)]
pub struct MultileaderNodeAwareAlltoall {
    /// Processes per leader.
    pub ppl: usize,
    /// Underlying pattern for both inner all-to-alls.
    pub inner: ExchangeKind,
    /// Gather/scatter flavor.
    pub gather: GatherKind,
}

impl MultileaderNodeAwareAlltoall {
    pub fn new(ppl: usize, inner: ExchangeKind) -> Self {
        assert!(ppl > 0, "ppl must be nonzero");
        MultileaderNodeAwareAlltoall {
            ppl,
            inner,
            gather: GatherKind::Linear,
        }
    }

    pub fn with_gather(mut self, gather: GatherKind) -> Self {
        self.gather = gather;
        self
    }

    fn is_leader(&self, ctx: &A2AContext, rank: Rank) -> bool {
        ctx.grid.subset_offset(rank, self.ppl) == 0
    }
}

impl AlltoallAlgorithm for MultileaderNodeAwareAlltoall {
    fn name(&self) -> String {
        format!("mlna(ppl={},{},{})", self.ppl, self.inner, self.gather)
    }

    fn phase_names(&self) -> Vec<&'static str> {
        vec!["gather", "pack", "inter-a2a", "intra-a2a", "scatter"]
    }

    fn buffers(&self, ctx: &A2AContext, rank: Rank) -> Vec<Bytes> {
        let s = ctx.block_bytes;
        let total = ctx.total_bytes();
        let g = self.ppl as Bytes;
        let mut bufs = vec![total, total, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let o = ctx.grid.subset_offset(rank, self.ppl);
        bufs[RELAY.0 as usize] = relay_chunks(self.gather, o, self.ppl) as Bytes * total;
        if self.is_leader(ctx, rank) {
            let leader_bytes = g * total;
            for id in [G, P1, Q1, P2, Q2, S] {
                bufs[id.0 as usize] = leader_bytes;
            }
            if matches!(self.inner, ExchangeKind::Bruck) {
                let grid = &ctx.grid;
                let ppn = grid.machine().ppn() as Bytes;
                let nodes = grid.machine().nodes;
                let lpn = grid.groups_per_node(self.ppl);
                let (w1, p1, r1) = bruck_buffer_sizes(nodes, g * ppn * s);
                let (w2, p2, r2) = bruck_buffer_sizes(lpn, nodes as Bytes * g * g * s);
                bufs[BK_WORK.0 as usize] = w1.max(w2);
                bufs[BK_PACK.0 as usize] = p1.max(p2);
                bufs[BK_RECV.0 as usize] = r1.max(r2);
            }
        }
        bufs
    }

    fn build_rank(&self, ctx: &A2AContext, rank: Rank) -> RankProgram {
        let grid = &ctx.grid;
        let ppn = grid.machine().ppn();
        assert!(
            self.ppl <= ppn && ppn.is_multiple_of(self.ppl),
            "ppl {} must divide ppn {ppn}",
            self.ppl
        );
        let g = self.ppl;
        let gb = g as Bytes;
        let s = ctx.block_bytes;
        let n = ctx.n() as Bytes;
        let total = n * s;
        let ppnb = ppn as Bytes;
        let nodes = grid.machine().nodes;
        let lpn = grid.groups_per_node(g);
        let subset = grid.subset_comm(rank, g);
        let o = grid.subset_offset(rank, g);
        let mut b = ProgBuilder::new(PH_GATHER);

        // 1. Gather member send buffers to the leader.
        build_gather(
            self.gather,
            &mut b,
            &subset,
            o,
            Block::new(SBUF, 0, total),
            (G, 0),
            RELAY,
            total,
            tags::GATHER,
        );

        if self.is_leader(ctx, rank) {
            let d = grid.node_of(rank);
            let q = grid.subset_index(rank, g);
            let node_seg = gb * ppnb * s; // per destination node
            let leader_seg = nodes as Bytes * gb * gb * s; // per destination leader

            // 2. Pack by destination node: P1[d'][o][l'] = G[o][d'*ppn + l'].
            b.set_phase(PH_PACK);
            for d2 in 0..nodes as Bytes {
                for om in 0..gb {
                    b.copy(
                        Block::new(G, om * total + d2 * ppnb * s, ppnb * s),
                        Block::new(P1, d2 * node_seg + om * ppnb * s, ppnb * s),
                    );
                }
            }

            // 3. Inter-node all-to-all among corresponding leaders.
            b.set_phase(PH_INTER);
            let corr = grid.corresponding_leader_comm(rank, g);
            debug_assert_eq!(corr.local_of(rank), Some(d));
            let bruck = BruckBufs {
                work: BK_WORK,
                pack: BK_PACK,
                recv: BK_RECV,
            };
            build_exchange(
                self.inner,
                &mut b,
                &corr,
                d,
                Contig::new(P1, 0, Q1, 0, node_seg),
                tags::INTER,
                Some(&bruck),
            );

            // 4. Pack by destination leader within my node:
            //    P2[q''][d_src][o_src][o''] = Q1[d_src][o_src][q''*g + o''].
            b.set_phase(PH_PACK);
            for q2 in 0..lpn as Bytes {
                for d2 in 0..nodes as Bytes {
                    for o2 in 0..gb {
                        b.copy(
                            Block::new(Q1, d2 * node_seg + o2 * ppnb * s + q2 * gb * s, gb * s),
                            Block::new(
                                P2,
                                q2 * leader_seg + d2 * gb * gb * s + o2 * gb * s,
                                gb * s,
                            ),
                        );
                    }
                }
            }

            // 5. Intra-node all-to-all among this node's leaders.
            b.set_phase(PH_INTRA);
            let node_leaders = grid.node_leaders_comm(rank, g);
            debug_assert_eq!(node_leaders.local_of(rank), Some(q));
            build_exchange(
                self.inner,
                &mut b,
                &node_leaders,
                q,
                Contig::new(P2, 0, Q2, 0, leader_seg),
                tags::INTRA,
                Some(&bruck),
            );

            // 6. Unpack into per-member receive images ordered by source
            //    world rank: source (d2, q2, o2) has world rank
            //    d2*ppn + q2*g + o2.
            b.set_phase(PH_PACK);
            for om in 0..gb {
                for q2 in 0..lpn as Bytes {
                    for d2 in 0..nodes as Bytes {
                        for o2 in 0..gb {
                            let src_world = d2 * ppnb + q2 * gb + o2;
                            b.copy(
                                Block::new(
                                    Q2,
                                    q2 * leader_seg + d2 * gb * gb * s + o2 * gb * s + om * s,
                                    s,
                                ),
                                Block::new(S, om * total + src_world * s, s),
                            );
                        }
                    }
                }
            }

            // 7. Scatter receive images to members.
            b.set_phase(PH_SCATTER);
            build_scatter(
                self.gather,
                &mut b,
                &subset,
                0,
                (S, 0),
                Block::new(RBUF, 0, total),
                RELAY,
                total,
                tags::SCATTER,
            );
        } else {
            b.set_phase(PH_SCATTER);
            build_scatter(
                self.gather,
                &mut b,
                &subset,
                o,
                (S, 0),
                Block::new(RBUF, 0, total),
                RELAY,
                total,
                tags::SCATTER,
            );
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlgoSchedule;
    use a2a_sched::{run_and_verify, validate};
    use a2a_topo::{Machine, ProcGrid};

    fn ctx(nodes: usize, s: Bytes) -> A2AContext {
        // ppn = 6.
        A2AContext::new(ProcGrid::new(Machine::custom("t", nodes, 2, 1, 3)), s)
    }

    #[test]
    fn mlna_transposes_all_group_sizes() {
        for nodes in [1usize, 2, 3] {
            for ppl in [1usize, 2, 3, 6] {
                for inner in [
                    ExchangeKind::Pairwise,
                    ExchangeKind::Nonblocking,
                    ExchangeKind::Bruck,
                ] {
                    let algo = MultileaderNodeAwareAlltoall::new(ppl, inner);
                    run_and_verify(&AlgoSchedule::new(&algo, ctx(nodes, 4)), 4)
                        .unwrap_or_else(|e| panic!("nodes={nodes} ppl={ppl} inner={inner}: {e}"));
                }
            }
        }
    }

    #[test]
    fn binomial_gather_variant_transposes() {
        let algo = MultileaderNodeAwareAlltoall::new(3, ExchangeKind::Pairwise)
            .with_gather(GatherKind::Binomial);
        run_and_verify(&AlgoSchedule::new(&algo, ctx(2, 8)), 8).unwrap();
    }

    #[test]
    fn each_leader_sends_one_message_per_remote_node() {
        // The headline property vs plain multi-leader: inter-node message
        // count per leader = nodes - 1, independent of leader count.
        let nodes = 3;
        let c = ctx(nodes, 8);
        let grid = c.grid.clone();
        let algo = MultileaderNodeAwareAlltoall::new(2, ExchangeKind::Pairwise); // 3 leaders/node
        let stats = validate(&AlgoSchedule::new(&algo, c.clone()), &grid).unwrap();
        assert_eq!(stats.max_internode_sends_per_rank, nodes - 1);
        // Total inter-node messages: leaders * (nodes-1).
        let leaders = nodes * 3;
        assert_eq!(stats.inter_node_msgs(), leaders * (nodes - 1));
        // Compare with plain multi-leader (hierarchical with same ppl):
        // each leader talks to *every* leader on remote nodes.
        let ml = crate::HierarchicalAlltoall::new(2, ExchangeKind::Pairwise);
        let ml_stats = validate(&AlgoSchedule::new(&ml, c), &grid).unwrap();
        assert!(ml_stats.inter_node_msgs() > stats.inter_node_msgs());
    }

    #[test]
    fn members_do_not_touch_network() {
        let c = ctx(2, 8);
        let algo = MultileaderNodeAwareAlltoall::new(3, ExchangeKind::Pairwise);
        let member = algo.build_rank(&c, 1);
        assert_eq!(member.send_count(), 1); // gather only
    }

    #[test]
    fn internode_volume_is_minimal() {
        // Like node-aware, every byte crosses the network exactly once.
        let c = ctx(2, 8);
        let grid = c.grid.clone();
        let algo = MultileaderNodeAwareAlltoall::new(2, ExchangeKind::Pairwise);
        let stats = validate(&AlgoSchedule::new(&algo, c), &grid).unwrap();
        assert_eq!(stats.inter_node_bytes(), 2 * (6u64 * 6) * 8);
    }

    #[test]
    fn degenerate_ppl_equals_ppn_matches_hierarchical_network_shape() {
        let c = ctx(3, 8);
        let grid = c.grid.clone();
        let mlna = MultileaderNodeAwareAlltoall::new(6, ExchangeKind::Pairwise);
        let hier = crate::HierarchicalAlltoall::new(6, ExchangeKind::Pairwise);
        let s1 = validate(&AlgoSchedule::new(&mlna, c.clone()), &grid).unwrap();
        let s2 = validate(&AlgoSchedule::new(&hier, c), &grid).unwrap();
        assert_eq!(s1.inter_node_msgs(), s2.inter_node_msgs());
        assert_eq!(s1.inter_node_bytes(), s2.inter_node_bytes());
    }

    #[test]
    fn leader_buffers_sized_member_buffers_zero() {
        let c = ctx(2, 8);
        let algo = MultileaderNodeAwareAlltoall::new(3, ExchangeKind::Pairwise);
        let leader = algo.buffers(&c, 0);
        let member = algo.buffers(&c, 2);
        assert_eq!(leader[G.0 as usize], 3 * 12 * 8);
        assert_eq!(member[G.0 as usize], 0);
        assert_eq!(member[S.0 as usize], 0);
    }
}
