//! All-to-all collective algorithms for emerging many-core systems.
//!
//! This crate is the reproduction of the paper's contribution: a family of
//! all-to-all algorithms that compile to communication schedules
//! (`a2a-sched`), parameterized by the machine topology (`a2a-topo`).
//!
//! ## Flat exchanges (paper §2)
//! * [`PairwiseAlltoall`] — Algorithm 1: `p-1` blocking sendrecv steps.
//! * [`NonblockingAlltoall`] — Algorithm 2: post everything, one waitall.
//! * [`BatchedAlltoall`] — related work [16]: non-blocking in bounded batches.
//! * [`BruckAlltoall`] — log-step exchange for small messages.
//!
//! ## Composed algorithms (paper §3)
//! * [`HierarchicalAlltoall`] — Algorithm 3 with 1..k leaders per node
//!   (1 leader = classic hierarchical; >1 = multi-leader).
//! * [`NodeAwareAlltoall`] — Algorithm 4; with more than one aggregation
//!   group per node it is the paper's **locality-aware** novel variant.
//! * [`MultileaderNodeAwareAlltoall`] — Algorithm 5, the paper's second
//!   novel contribution.
//! * [`MpichShmAlltoall`] — the MPICH "node-aware multi-leaders" variant the
//!   paper's §3.3 note describes.
//! * [`SystemMpiAlltoall`] — the size-switched Bruck/pairwise policy
//!   production MPIs default to; the paper's baseline.
//!
//! Every algorithm implements [`AlltoallAlgorithm`]; wrap one in
//! [`AlgoSchedule`] to obtain an `a2a_sched::ScheduleSource` that any of the
//! three executors (data, simulator, threaded runtime) can run.
//!
//! # Example
//!
//! ```
//! use a2a_topo::{ProcGrid, Machine};
//! use a2a_core::{AlgoSchedule, A2AContext, NodeAwareAlltoall, ExchangeKind};
//! use a2a_sched::run_and_verify;
//!
//! let grid = ProcGrid::new(Machine::custom("mini", 3, 2, 2, 2)); // 24 ranks
//! let algo = NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise);
//! let sched = AlgoSchedule::new(&algo, A2AContext::new(grid, 8));
//! run_and_verify(&sched, 8).expect("exact transpose");
//! ```

pub mod alltoallv;
pub mod bruck;
pub mod collectives;
pub mod exchange;
pub mod gather;

mod direct;
mod hier;
mod mlna;
mod mpich_shm;
mod node_aware;
mod selector;
mod system;

pub use bruck::BruckBufs;
pub use direct::{BatchedAlltoall, BruckAlltoall, NonblockingAlltoall, PairwiseAlltoall};
pub use exchange::{build_exchange, Contig, ExchangeKind};
pub use gather::GatherKind;
pub use hier::HierarchicalAlltoall;
pub use mlna::MultileaderNodeAwareAlltoall;
pub use mpich_shm::MpichShmAlltoall;
pub use node_aware::NodeAwareAlltoall;
pub use selector::{select_algorithm, SelectorTable};
pub use system::SystemMpiAlltoall;

use a2a_sched::{Bytes, RankProgram, ScheduleSource};
use a2a_topo::{ProcGrid, Rank};

/// Context shared by every algorithm build: the machine/rank layout and the
/// per-process block size `s` (bytes each rank sends to each other rank).
#[derive(Debug, Clone)]
pub struct A2AContext {
    pub grid: ProcGrid,
    pub block_bytes: Bytes,
}

impl A2AContext {
    pub fn new(grid: ProcGrid, block_bytes: Bytes) -> Self {
        assert!(block_bytes > 0, "block size must be nonzero");
        A2AContext { grid, block_bytes }
    }

    /// World size `n`.
    pub fn n(&self) -> usize {
        self.grid.world_size()
    }

    /// Bytes each rank sends in total (`n * s`).
    pub fn total_bytes(&self) -> Bytes {
        self.n() as Bytes * self.block_bytes
    }
}

/// An all-to-all algorithm: compiles per-rank schedules for a given context.
pub trait AlltoallAlgorithm: Send + Sync {
    /// Short unique name, e.g. `"node-aware(g=112,pairwise)"`.
    fn name(&self) -> String;

    /// Phase labels used by this algorithm's ops (index = `Phase(i)`).
    fn phase_names(&self) -> Vec<&'static str>;

    /// Per-rank buffer sizes (index = `BufId`); entries 0 and 1 are the user
    /// send/receive buffers of `n * s` bytes.
    fn buffers(&self, ctx: &A2AContext, rank: Rank) -> Vec<Bytes>;

    /// Compile rank `rank`'s program.
    fn build_rank(&self, ctx: &A2AContext, rank: Rank) -> RankProgram;
}

/// Adapter binding an algorithm to a context, yielding a `ScheduleSource`.
pub struct AlgoSchedule<'a> {
    algo: &'a dyn AlltoallAlgorithm,
    ctx: A2AContext,
}

impl<'a> AlgoSchedule<'a> {
    pub fn new(algo: &'a dyn AlltoallAlgorithm, ctx: A2AContext) -> Self {
        AlgoSchedule { algo, ctx }
    }

    pub fn ctx(&self) -> &A2AContext {
        &self.ctx
    }

    pub fn algo(&self) -> &dyn AlltoallAlgorithm {
        self.algo
    }
}

impl ScheduleSource for AlgoSchedule<'_> {
    fn nranks(&self) -> usize {
        self.ctx.n()
    }

    fn buffers(&self, rank: Rank) -> Vec<Bytes> {
        self.algo.buffers(&self.ctx, rank)
    }

    fn build_rank(&self, rank: Rank) -> RankProgram {
        self.algo.build_rank(&self.ctx, rank)
    }

    fn phase_names(&self) -> Vec<&'static str> {
        self.algo.phase_names()
    }
}

/// Message-tag bases, one per communication stage, so concurrent stages of
/// composed algorithms can never cross-match. Bruck rounds consume
/// `tag .. tag + 32`.
pub mod tags {
    pub const DIRECT: u32 = 0;
    pub const GATHER: u32 = 64;
    pub const INTER: u32 = 128;
    pub const INTRA: u32 = 192;
    pub const SCATTER: u32 = 256;
}

/// The full algorithm roster evaluated in the paper's figures, with the
/// group sizes used there. Returns `(label, algorithm)` pairs; `ppl` values
/// that do not divide `ppn` are skipped.
pub fn paper_roster(ppn: usize) -> Vec<(String, Box<dyn AlltoallAlgorithm>)> {
    let mut v: Vec<(String, Box<dyn AlltoallAlgorithm>)> = Vec::new();
    for kind in [ExchangeKind::Pairwise, ExchangeKind::Nonblocking] {
        v.push((
            format!("hierarchical-{kind}"),
            Box::new(HierarchicalAlltoall::new(ppn, kind)),
        ));
        for ppl in [4, 8, 16] {
            if ppn.is_multiple_of(ppl) {
                v.push((
                    format!("multileader(ppl={ppl})-{kind}"),
                    Box::new(HierarchicalAlltoall::new(ppl, kind)),
                ));
            }
        }
        v.push((
            format!("node-aware-{kind}"),
            Box::new(NodeAwareAlltoall::node_aware(kind)),
        ));
        for ppg in [4, 8, 16] {
            if ppn.is_multiple_of(ppg) {
                v.push((
                    format!("locality-aware(ppg={ppg})-{kind}"),
                    Box::new(NodeAwareAlltoall::locality_aware(ppg, kind)),
                ));
            }
        }
        for ppl in [4, 8, 16] {
            if ppn.is_multiple_of(ppl) {
                v.push((
                    format!("ml-node-aware(ppl={ppl})-{kind}"),
                    Box::new(MultileaderNodeAwareAlltoall::new(ppl, kind)),
                ));
            }
        }
    }
    v.push((
        "system-mpi".to_string(),
        Box::new(SystemMpiAlltoall::default()),
    ));
    v
}
