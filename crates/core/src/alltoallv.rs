//! Variable-sized all-to-all (`MPI_Alltoallv`), the irregular counterpart
//! the paper's related work ([7], [12]) optimizes with the same node-aware
//! aggregation ideas.
//!
//! Counts are a function `counts(src, dst) -> bytes`, known on every rank
//! (as in MPI, where callers supply both send and receive counts). Send
//! buffers concatenate blocks by destination rank; receive buffers by
//! source rank. Zero-count pairs exchange nothing.
//!
//! Three algorithms:
//! * [`PairwiseAlltoallv`] / [`NonblockingAlltoallv`] — direct exchanges;
//! * [`NodeAwareAlltoallv`] — Algorithm 4 generalized to variable counts:
//!   aggregate per node so each rank sends one (possibly large) message to
//!   its counterpart on every other node, then redistribute locally.

use std::sync::Arc;

use a2a_sched::{Block, BufId, Bytes, Phase, ProgBuilder, RankProgram, ScheduleSource, RBUF, SBUF};
use a2a_topo::{ProcGrid, Rank};

use crate::tags;

/// Byte count for each (source, destination) pair.
pub type CountsFn = Arc<dyn Fn(Rank, Rank) -> Bytes + Send + Sync>;

/// Context for a variable all-to-all.
#[derive(Clone)]
pub struct VContext {
    pub grid: ProcGrid,
    pub counts: CountsFn,
}

impl VContext {
    pub fn new(grid: ProcGrid, counts: CountsFn) -> Self {
        VContext { grid, counts }
    }

    pub fn n(&self) -> usize {
        self.grid.world_size()
    }

    /// Bytes `src` sends to `dst`.
    pub fn count(&self, src: Rank, dst: Rank) -> Bytes {
        (self.counts)(src, dst)
    }

    /// Offset of the block for `dst` within `src`'s send buffer.
    pub fn send_off(&self, src: Rank, dst: Rank) -> Bytes {
        (0..dst).map(|j| self.count(src, j)).sum()
    }

    /// Offset of the block from `src` within `dst`'s receive buffer.
    pub fn recv_off(&self, src: Rank, dst: Rank) -> Bytes {
        (0..src).map(|i| self.count(i, dst)).sum()
    }

    /// Total bytes `src` sends.
    pub fn send_total(&self, src: Rank) -> Bytes {
        (0..self.n() as Rank).map(|j| self.count(src, j)).sum()
    }

    /// Total bytes `dst` receives.
    pub fn recv_total(&self, dst: Rank) -> Bytes {
        (0..self.n() as Rank).map(|i| self.count(i, dst)).sum()
    }
}

/// A variable all-to-all algorithm.
pub trait AlltoallvAlgorithm: Send + Sync {
    fn name(&self) -> String;
    fn phase_names(&self) -> Vec<&'static str>;
    fn buffers(&self, ctx: &VContext, rank: Rank) -> Vec<Bytes>;
    fn build_rank(&self, ctx: &VContext, rank: Rank) -> RankProgram;
}

/// Adapter to `ScheduleSource`.
pub struct VSchedule<'a> {
    algo: &'a dyn AlltoallvAlgorithm,
    ctx: VContext,
}

impl<'a> VSchedule<'a> {
    pub fn new(algo: &'a dyn AlltoallvAlgorithm, ctx: VContext) -> Self {
        VSchedule { algo, ctx }
    }
}

impl ScheduleSource for VSchedule<'_> {
    fn nranks(&self) -> usize {
        self.ctx.n()
    }
    fn buffers(&self, rank: Rank) -> Vec<Bytes> {
        self.algo.buffers(&self.ctx, rank)
    }
    fn build_rank(&self, rank: Rank) -> RankProgram {
        self.algo.build_rank(&self.ctx, rank)
    }
    fn phase_names(&self) -> Vec<&'static str> {
        self.algo.phase_names()
    }
}

fn direct_buffers(ctx: &VContext, rank: Rank) -> Vec<Bytes> {
    vec![ctx.send_total(rank).max(1), ctx.recv_total(rank).max(1)]
}

fn direct_build(ctx: &VContext, rank: Rank, nonblocking: bool) -> RankProgram {
    let n = ctx.n();
    let me = rank as usize;
    let mut b = ProgBuilder::new(Phase(0));
    let self_count = ctx.count(rank, rank);
    if self_count > 0 {
        b.copy(
            Block::new(SBUF, ctx.send_off(rank, rank), self_count),
            Block::new(RBUF, ctx.recv_off(rank, rank), self_count),
        );
    }
    let first = b.req_mark();
    for i in 1..n {
        let sp = ((me + i) % n) as Rank;
        let rp = ((me + n - i) % n) as Rank;
        let scount = ctx.count(rank, sp);
        let rcount = ctx.count(rp, rank);
        let step = b.req_mark();
        if scount > 0 {
            b.isend(
                sp,
                Block::new(SBUF, ctx.send_off(rank, sp), scount),
                tags::DIRECT,
            );
        }
        if rcount > 0 {
            b.irecv(
                rp,
                Block::new(RBUF, ctx.recv_off(rp, rank), rcount),
                tags::DIRECT,
            );
        }
        if !nonblocking {
            let posted = b.req_mark() - step;
            b.waitall(step, posted);
        }
    }
    if nonblocking {
        let posted = b.req_mark() - first;
        b.waitall(first, posted);
    }
    b.finish()
}

/// Pairwise-ordered direct variable exchange.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairwiseAlltoallv;

impl AlltoallvAlgorithm for PairwiseAlltoallv {
    fn name(&self) -> String {
        "alltoallv-pairwise".into()
    }
    fn phase_names(&self) -> Vec<&'static str> {
        vec!["exchange"]
    }
    fn buffers(&self, ctx: &VContext, rank: Rank) -> Vec<Bytes> {
        direct_buffers(ctx, rank)
    }
    fn build_rank(&self, ctx: &VContext, rank: Rank) -> RankProgram {
        direct_build(ctx, rank, false)
    }
}

/// Fully non-blocking direct variable exchange.
#[derive(Debug, Clone, Copy, Default)]
pub struct NonblockingAlltoallv;

impl AlltoallvAlgorithm for NonblockingAlltoallv {
    fn name(&self) -> String {
        "alltoallv-nonblocking".into()
    }
    fn phase_names(&self) -> Vec<&'static str> {
        vec!["exchange"]
    }
    fn buffers(&self, ctx: &VContext, rank: Rank) -> Vec<Bytes> {
        direct_buffers(ctx, rank)
    }
    fn build_rank(&self, ctx: &VContext, rank: Rank) -> RankProgram {
        direct_build(ctx, rank, true)
    }
}

const V_T0: BufId = BufId(2); // inter-phase receive staging
const V_P: BufId = BufId(3); // packed for intra phase
const V_T1: BufId = BufId(4); // intra-phase receive staging

/// Node-aware variable all-to-all: one aggregated message to the same-local
/// -rank counterpart on every other node, then local redistribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeAwareAlltoallv;

impl NodeAwareAlltoallv {
    /// Bytes rank `(node(of), o)` holds for node `dn` after the inter
    /// phase: everything its counterpart senders `(d_src, o)` sent for all
    /// members of `dn`... (helper for offsets; see `build_rank`).
    fn seg_from_region(ctx: &VContext, sender: Rank, dst_node: usize) -> Bytes {
        let ppn = ctx.grid.machine().ppn();
        let base = (dst_node * ppn) as Rank;
        (0..ppn as Rank).map(|l| ctx.count(sender, base + l)).sum()
    }
}

impl AlltoallvAlgorithm for NodeAwareAlltoallv {
    fn name(&self) -> String {
        "alltoallv-node-aware".into()
    }
    fn phase_names(&self) -> Vec<&'static str> {
        vec!["inter-a2a", "pack", "intra-a2a"]
    }
    fn buffers(&self, ctx: &VContext, rank: Rank) -> Vec<Bytes> {
        let grid = &ctx.grid;
        let ppn = grid.machine().ppn();
        let nodes = grid.machine().nodes;
        let o = grid.local_rank(rank) as Rank;
        let my_node = grid.node_of(rank);
        // T0: from each node's o-counterpart, its data for my whole node.
        let t0: Bytes = (0..nodes)
            .map(|dn| {
                let sender = (dn * ppn) as Rank + o;
                Self::seg_from_region(ctx, sender, my_node)
            })
            .sum();
        // P/T1: regrouped by destination member / by source.
        vec![
            ctx.send_total(rank).max(1),
            ctx.recv_total(rank).max(1),
            t0.max(1),
            t0.max(1),
            ctx.recv_total(rank).max(1),
        ]
    }
    fn build_rank(&self, ctx: &VContext, rank: Rank) -> RankProgram {
        let grid = &ctx.grid;
        let ppn = grid.machine().ppn();
        let nodes = grid.machine().nodes;
        let o = grid.local_rank(rank) as Rank;
        let my_node = grid.node_of(rank);
        let node_base = |d: usize| (d * ppn) as Rank;
        let mut b = ProgBuilder::new(Phase(0));

        // --- Inter phase: exchange aggregated node blocks with the same-
        // offset counterpart on every node. My send block for node d' is
        // contiguous in SBUF (destinations of one node are consecutive).
        // T0 layout: segments by source node d, within a segment the
        // sender's blocks for my node's members l'' in order.
        let t0_seg_off = |d: usize| -> Bytes {
            (0..d)
                .map(|dd| Self::seg_from_region(ctx, node_base(dd) + o, my_node))
                .sum()
        };
        // Self segment first, then pairwise steps (send to node me+i,
        // receive from node me-i, as in Algorithm 1).
        let self_count = Self::seg_from_region(ctx, rank, my_node);
        if self_count > 0 {
            b.copy(
                Block::new(SBUF, ctx.send_off(rank, node_base(my_node)), self_count),
                Block::new(V_T0, t0_seg_off(my_node), self_count),
            );
        }
        for step in 1..nodes {
            let d_send = (my_node + step) % nodes;
            let d_recv = (my_node + nodes - step) % nodes;
            let send_peer = node_base(d_send) + o;
            let recv_peer = node_base(d_recv) + o;
            let scount = Self::seg_from_region(ctx, rank, d_send);
            let rcount = Self::seg_from_region(ctx, recv_peer, my_node);
            let first = b.req_mark();
            if scount > 0 {
                b.isend(
                    send_peer,
                    Block::new(SBUF, ctx.send_off(rank, node_base(d_send)), scount),
                    tags::INTER,
                );
            }
            if rcount > 0 {
                b.irecv(
                    recv_peer,
                    Block::new(V_T0, t0_seg_off(d_recv), rcount),
                    tags::INTER,
                );
            }
            let posted = b.req_mark() - first;
            b.waitall(first, posted);
        }

        // --- Pack by destination member l'': P groups, for each member,
        // the blocks (from every node's o-counterpart) destined to it.
        b.set_phase(Phase(1));
        let p_seg = |l2: usize| -> Bytes {
            // bytes destined to member l'' that traveled through me
            (0..nodes)
                .map(|d| ctx.count(node_base(d) + o, node_base(my_node) + l2 as Rank))
                .sum()
        };
        let p_seg_off = |l2: usize| -> Bytes { (0..l2).map(p_seg).sum() };
        for l2 in 0..ppn {
            let dst_rank = node_base(my_node) + l2 as Rank;
            let mut p_off = p_seg_off(l2);
            for d in 0..nodes {
                let sender = node_base(d) + o;
                let cnt = ctx.count(sender, dst_rank);
                if cnt > 0 {
                    // Within T0 segment d: blocks for members 0..l2 first.
                    let within: Bytes = (0..l2)
                        .map(|ll| ctx.count(sender, node_base(my_node) + ll as Rank))
                        .sum();
                    b.copy(
                        Block::new(V_T0, t0_seg_off(d) + within, cnt),
                        Block::new(V_P, p_off, cnt),
                    );
                }
                p_off += cnt;
            }
        }

        // --- Intra phase: hand member l'' its segment; receive mine from
        // every node-mate. T1 layout: segments by source offset o~, each
        // holding that mate's forwarded blocks (by source node).
        b.set_phase(Phase(2));
        let t1_seg = |o2: usize| -> Bytes {
            (0..nodes)
                .map(|d| ctx.count(node_base(d) + o2 as Rank, rank))
                .sum()
        };
        let t1_seg_off = |o2: usize| -> Bytes { (0..o2).map(t1_seg).sum() };
        let self_fwd = p_seg(o as usize);
        if self_fwd > 0 {
            b.copy(
                Block::new(V_P, p_seg_off(o as usize), self_fwd),
                Block::new(V_T1, t1_seg_off(o as usize), self_fwd),
            );
        }
        for step in 1..ppn {
            let l_send = (o as usize + step) % ppn;
            let l_recv = (o as usize + ppn - step) % ppn;
            let send_peer = node_base(my_node) + l_send as Rank;
            let recv_peer = node_base(my_node) + l_recv as Rank;
            let scount = p_seg(l_send);
            let rcount = t1_seg(l_recv);
            let first = b.req_mark();
            if scount > 0 {
                b.isend(
                    send_peer,
                    Block::new(V_P, p_seg_off(l_send), scount),
                    tags::INTRA,
                );
            }
            if rcount > 0 {
                b.irecv(
                    recv_peer,
                    Block::new(V_T1, t1_seg_off(l_recv), rcount),
                    tags::INTRA,
                );
            }
            let posted = b.req_mark() - first;
            b.waitall(first, posted);
        }

        // --- Unpack into the receive buffer by source world rank.
        b.set_phase(Phase(1));
        for o2 in 0..ppn {
            let mut t1_off = t1_seg_off(o2);
            for d in 0..nodes {
                let src = node_base(d) + o2 as Rank;
                let cnt = ctx.count(src, rank);
                if cnt > 0 {
                    b.copy(
                        Block::new(V_T1, t1_off, cnt),
                        Block::new(RBUF, ctx.recv_off(src, rank), cnt),
                    );
                }
                t1_off += cnt;
            }
        }
        b.finish()
    }
}

/// Fill `rank`'s alltoallv send buffer with the deterministic pattern.
pub fn fill_alltoallv_sbuf(ctx: &VContext, rank: Rank, buf: &mut [u8]) {
    let mut off = 0usize;
    for dst in 0..ctx.n() as Rank {
        let cnt = ctx.count(rank, dst);
        for k in 0..cnt {
            buf[off] = a2a_sched::pattern_byte(rank, dst, k);
            off += 1;
        }
    }
}

/// Check `rank`'s alltoallv receive buffer.
pub fn check_alltoallv_rbuf(ctx: &VContext, rank: Rank, buf: &[u8]) -> Result<(), String> {
    let mut off = 0usize;
    for src in 0..ctx.n() as Rank {
        let cnt = ctx.count(src, rank);
        for k in 0..cnt {
            let got = buf[off];
            let want = a2a_sched::pattern_byte(src, rank, k);
            if got != want {
                return Err(format!(
                    "rank {rank}: block from {src} byte {k}: got {got:#04x}, want {want:#04x}"
                ));
            }
            off += 1;
        }
    }
    Ok(())
}

/// Execute and verify an alltoallv schedule end to end.
pub fn run_and_verify_v(algo: &dyn AlltoallvAlgorithm, ctx: &VContext) -> Result<(), String> {
    let sched = VSchedule::new(algo, ctx.clone());
    let res = a2a_sched::DataExecutor::run(&sched, |r, buf| fill_alltoallv_sbuf(ctx, r, buf))
        .map_err(|e| format!("{}: {e}", algo.name()))?;
    for (r, rbuf) in res.rbufs.iter().enumerate() {
        check_alltoallv_rbuf(ctx, r as Rank, rbuf).map_err(|e| format!("{}: {e}", algo.name()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_topo::Machine;

    fn grid(nodes: usize) -> ProcGrid {
        ProcGrid::new(Machine::custom("v", nodes, 2, 1, 3))
    }

    /// A lumpy, asymmetric count matrix with plenty of zeros.
    fn lumpy(_n: usize) -> CountsFn {
        Arc::new(move |s: Rank, d: Rank| {
            let x = (s as u64 * 31 + d as u64 * 17) % 13;
            if x < 4 {
                0
            } else {
                x * (1 + (s as u64 + d as u64) % 5)
            }
        })
    }

    #[test]
    fn offsets_are_consistent() {
        let g = grid(2);
        let n = g.world_size();
        let ctx = VContext::new(g, lumpy(n));
        for r in 0..n as Rank {
            let mut acc = 0;
            for d in 0..n as Rank {
                assert_eq!(ctx.send_off(r, d), acc);
                acc += ctx.count(r, d);
            }
            assert_eq!(ctx.send_total(r), acc);
        }
    }

    #[test]
    fn direct_variants_correct() {
        for nodes in [1usize, 2, 3] {
            let g = grid(nodes);
            let n = g.world_size();
            let ctx = VContext::new(g, lumpy(n));
            run_and_verify_v(&PairwiseAlltoallv, &ctx).unwrap();
            run_and_verify_v(&NonblockingAlltoallv, &ctx).unwrap();
        }
    }

    #[test]
    fn node_aware_correct() {
        for nodes in [1usize, 2, 3, 4] {
            let g = grid(nodes);
            let n = g.world_size();
            let ctx = VContext::new(g, lumpy(n));
            run_and_verify_v(&NodeAwareAlltoallv, &ctx).unwrap();
        }
    }

    #[test]
    fn uniform_counts_match_fixed_alltoall_shape() {
        // With uniform counts the node-aware variant must produce exactly
        // the fixed algorithm's network statistics.
        let g = grid(3);
        let ctx = VContext::new(g.clone(), Arc::new(|_, _| 8));
        let vsched = VSchedule::new(&NodeAwareAlltoallv, ctx);
        let vstats = a2a_sched::validate(&vsched, &g).unwrap();
        let fixed = crate::NodeAwareAlltoall::node_aware(crate::ExchangeKind::Pairwise);
        let fsched = crate::AlgoSchedule::new(&fixed, crate::A2AContext::new(g.clone(), 8));
        let fstats = a2a_sched::validate(&fsched, &g).unwrap();
        assert_eq!(vstats.inter_node_bytes(), fstats.inter_node_bytes());
        assert_eq!(vstats.inter_node_msgs(), fstats.inter_node_msgs());
    }

    #[test]
    fn all_zero_counts_produce_empty_exchange() {
        let g = grid(2);
        let ctx = VContext::new(g, Arc::new(|_, _| 0));
        run_and_verify_v(&PairwiseAlltoallv, &ctx).unwrap();
        run_and_verify_v(&NodeAwareAlltoallv, &ctx).unwrap();
    }

    #[test]
    fn single_hot_pair() {
        // Only one pair communicates; everyone else is silent.
        let g = grid(2);
        let ctx = VContext::new(
            g,
            Arc::new(|s: Rank, d: Rank| if s == 1 && d == 10 { 333 } else { 0 }),
        );
        run_and_verify_v(&PairwiseAlltoallv, &ctx).unwrap();
        run_and_verify_v(&NodeAwareAlltoallv, &ctx).unwrap();
    }

    #[test]
    fn node_aware_reduces_internode_messages_for_dense_counts() {
        let g = grid(3);
        let n = g.world_size();
        let ctx = VContext::new(g.clone(), Arc::new(|_, _| 16));
        let direct = VSchedule::new(&PairwiseAlltoallv, ctx.clone());
        let na = VSchedule::new(&NodeAwareAlltoallv, ctx);
        let sd = a2a_sched::validate(&direct, &g).unwrap();
        let sn = a2a_sched::validate(&na, &g).unwrap();
        assert!(sn.inter_node_msgs() < sd.inter_node_msgs());
        assert_eq!(sd.max_sends_per_rank, n - 1);
    }
}
