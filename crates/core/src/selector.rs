//! Dynamic algorithm selection (the paper's §5 future work: "explore how
//! the optimal algorithm can be dynamically selected for a given computer,
//! system MPI, process count, and data size").
//!
//! The default thresholds encode the paper's measured regimes on Dane
//! (Figures 10–12): multi-leader + node-aware for latency-bound small
//! messages, node-aware for the broad middle, locality-aware for the very
//! largest exchanges. A [`SelectorTable`] can be re-derived for another
//! machine from simulator sweeps (see the bench harness's `tune` command).

use a2a_sched::Bytes;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::exchange::ExchangeKind;
use crate::mlna::MultileaderNodeAwareAlltoall;
use crate::node_aware::NodeAwareAlltoall;
use crate::AlltoallAlgorithm;

/// Size thresholds and group sizes for dynamic selection.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SelectorTable {
    /// Block sizes at or below this use multi-leader + node-aware.
    pub small_threshold: Bytes,
    /// Block sizes at or above this use locality-aware aggregation.
    pub large_threshold: Bytes,
    /// Processes per leader for the small-message algorithm.
    pub ppl: usize,
    /// Processes per group for the large-message algorithm.
    pub ppg: usize,
    /// Underlying exchange for the inner all-to-alls.
    pub inner: ExchangeKind,
}

impl Default for SelectorTable {
    fn default() -> Self {
        SelectorTable {
            small_threshold: 256,
            large_threshold: 4096,
            ppl: 4,
            ppg: 4,
            inner: ExchangeKind::Pairwise,
        }
    }
}

/// Largest divisor of `ppn` that is `<= want` (so configured group sizes
/// degrade gracefully on machines whose ppn they don't divide).
fn fit_group(want: usize, ppn: usize) -> usize {
    (1..=want.min(ppn))
        .rev()
        .find(|g| ppn.is_multiple_of(*g))
        .unwrap_or(1)
}

/// Pick an algorithm for one exchange: `ppn` processes per node, blocks of
/// `block_bytes` per process pair.
pub fn select_algorithm(
    table: &SelectorTable,
    ppn: usize,
    block_bytes: Bytes,
) -> Box<dyn AlltoallAlgorithm> {
    if block_bytes <= table.small_threshold {
        Box::new(MultileaderNodeAwareAlltoall::new(
            fit_group(table.ppl, ppn),
            table.inner,
        ))
    } else if block_bytes >= table.large_threshold {
        Box::new(NodeAwareAlltoall::locality_aware(
            fit_group(table.ppg, ppn),
            table.inner,
        ))
    } else {
        Box::new(NodeAwareAlltoall::node_aware(table.inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_match_paper_findings() {
        let t = SelectorTable::default();
        assert!(select_algorithm(&t, 112, 4).name().starts_with("mlna"));
        assert!(select_algorithm(&t, 112, 1024)
            .name()
            .starts_with("node-aware"));
        assert!(select_algorithm(&t, 112, 8192)
            .name()
            .starts_with("locality-aware"));
    }

    #[test]
    fn group_sizes_degrade_to_divisors() {
        assert_eq!(fit_group(4, 112), 4);
        assert_eq!(fit_group(4, 6), 3);
        assert_eq!(fit_group(5, 7), 1);
        assert_eq!(fit_group(100, 96), 96);
    }

    #[test]
    fn selected_algorithms_are_buildable() {
        use crate::{A2AContext, AlgoSchedule};
        use a2a_topo::{Machine, ProcGrid};
        let t = SelectorTable::default();
        for s in [4u64, 1024, 8192] {
            let grid = ProcGrid::new(Machine::custom("t", 2, 2, 1, 3));
            let algo = select_algorithm(&t, grid.machine().ppn(), s);
            let sched = AlgoSchedule::new(algo.as_ref(), A2AContext::new(grid, s));
            a2a_sched::run_and_verify(&sched, s).unwrap();
        }
    }
}
