//! Error paths of the data executor: each misuse of the schedule IR must
//! surface as the specific [`ExecError`] variant, with the diagnostic fields
//! (rank, buffer, offsets, counts) the debugging workflow relies on.

use a2a_sched::{
    Block, BufId, Bytes, DataExecutor, ExecError, Op, Phase, ProgBuilder, RankProgram,
    ScheduleSource, TimedOp, RBUF, SBUF,
};
use a2a_topo::Rank;

/// A fixed-size world whose per-rank programs are supplied directly.
struct Fixture {
    progs: Vec<RankProgram>,
    bufsize: Bytes,
}

impl ScheduleSource for Fixture {
    fn nranks(&self) -> usize {
        self.progs.len()
    }
    fn buffers(&self, _r: Rank) -> Vec<Bytes> {
        vec![self.bufsize, self.bufsize]
    }
    fn rank_program(&self, r: Rank) -> std::borrow::Cow<'_, RankProgram> {
        std::borrow::Cow::Borrowed(&self.progs[r as usize])
    }
    fn phase_names(&self) -> Vec<&'static str> {
        vec!["all"]
    }
}

fn run(progs: Vec<RankProgram>) -> Result<(), ExecError> {
    DataExecutor::run(&Fixture { progs, bufsize: 8 }, |r, buf| buf.fill(r as u8)).map(|_| ())
}

#[test]
fn mutual_blocking_recv_reports_deadlock_with_both_ranks() {
    // Classic head-to-head: both ranks issue a blocking recv before their
    // send, so neither can progress past op 1 (the lowered WaitAll).
    let mut progs = Vec::new();
    for me in 0..2u32 {
        let peer = 1 - me;
        let mut b = ProgBuilder::new(Phase(0));
        b.recv(peer, Block::new(RBUF, 0, 8), 0);
        b.send(peer, Block::new(SBUF, 0, 8), 0);
        progs.push(b.finish());
    }
    match run(progs).unwrap_err() {
        ExecError::Deadlock { blocked } => {
            assert_eq!(blocked.len(), 2, "both ranks must be reported blocked");
            let ranks: Vec<Rank> = blocked.iter().map(|&(r, _)| r).collect();
            assert_eq!(ranks, vec![0, 1]);
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn missing_sender_reports_deadlock_with_one_rank() {
    // Rank 0 waits on a message rank 1 never sends; rank 1 finishes, so
    // exactly one rank appears in the blocked list.
    let mut b = ProgBuilder::new(Phase(0));
    let r0 = b.irecv(1, Block::new(RBUF, 0, 8), 0);
    b.waitall(r0, 1);
    let progs = vec![b.finish(), RankProgram::default()];
    match run(progs).unwrap_err() {
        ExecError::Deadlock { blocked } => assert_eq!(blocked, vec![(0, 1)]),
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn send_past_buffer_end_reports_out_of_bounds() {
    // An 8-byte buffer with a block covering bytes 4..12.
    let mut b = ProgBuilder::new(Phase(0));
    b.isend(1, Block::new(SBUF, 4, 8), 0);
    let progs = vec![b.finish(), RankProgram::default()];
    match run(progs).unwrap_err() {
        ExecError::OutOfBounds {
            rank,
            buf,
            end,
            size,
        } => {
            assert_eq!((rank, buf, end, size), (0, SBUF.0, 12, 8));
        }
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

#[test]
fn undeclared_buffer_id_reports_unknown_buffer() {
    let mut b = ProgBuilder::new(Phase(0));
    b.copy(Block::new(BufId(6), 0, 8), Block::new(RBUF, 0, 8));
    let progs = vec![b.finish(), RankProgram::default()];
    match run(progs).unwrap_err() {
        ExecError::UnknownBuffer { rank, buf } => assert_eq!((rank, buf), (0, 6)),
        other => panic!("expected UnknownBuffer, got {other:?}"),
    }
}

#[test]
fn short_posted_receive_reports_length_mismatch() {
    // Rank 1 sends 8 bytes; rank 0 posted only 4. The error must carry both
    // lengths plus the (rank, from, tag) triple.
    let mut b0 = ProgBuilder::new(Phase(0));
    let r0 = b0.irecv(1, Block::new(RBUF, 0, 4), 3);
    b0.waitall(r0, 1);
    let mut b1 = ProgBuilder::new(Phase(0));
    b1.isend(0, Block::new(SBUF, 0, 8), 3);
    match run(vec![b0.finish(), b1.finish()]).unwrap_err() {
        ExecError::LengthMismatch {
            rank,
            from,
            tag,
            sent,
            posted,
        } => {
            assert_eq!((rank, from, tag), (0, 1, 3));
            assert_eq!((sent, posted), (8, 4));
        }
        other => panic!("expected LengthMismatch, got {other:?}"),
    }
}

#[test]
fn wait_on_never_posted_request_reports_unknown_request() {
    // WaitAll names request id 0 but the program posted no sends/receives,
    // so no request slot exists. ProgBuilder refuses to build this, so the
    // malformed program is assembled from raw IR — exactly what a buggy
    // hand-written ScheduleSource could produce.
    let prog = RankProgram {
        ops: vec![TimedOp {
            op: Op::WaitAll {
                first_req: 0,
                count: 1,
            },
            phase: Phase(0),
        }],
        n_reqs: 0,
    };
    let progs = vec![prog, RankProgram::default()];
    match run(progs).unwrap_err() {
        ExecError::UnknownRequest { rank, req } => assert_eq!((rank, req), (0, 0)),
        other => panic!("expected UnknownRequest, got {other:?}"),
    }
}

#[test]
fn unreceived_messages_report_unconsumed_count() {
    // Two sends with no matching receives anywhere: both linger in the mail
    // system and are reported after all ranks finish.
    let mut b = ProgBuilder::new(Phase(0));
    b.isend(1, Block::new(SBUF, 0, 4), 0);
    b.isend(1, Block::new(SBUF, 4, 4), 1);
    let progs = vec![b.finish(), RankProgram::default()];
    match run(progs).unwrap_err() {
        ExecError::UnconsumedMessages { count } => assert_eq!(count, 2),
        other => panic!("expected UnconsumedMessages, got {other:?}"),
    }
}

#[test]
fn unsatisfied_unwaited_receive_reports_dangling() {
    // A posted irecv that is never matched and never waited on: the rank
    // runs to completion, so this is only detectable at finish time.
    let mut b = ProgBuilder::new(Phase(0));
    b.irecv(1, Block::new(RBUF, 0, 8), 0);
    let progs = vec![b.finish(), RankProgram::default()];
    match run(progs).unwrap_err() {
        ExecError::DanglingReceives { rank, count } => assert_eq!((rank, count), (0, 1)),
        other => panic!("expected DanglingReceives, got {other:?}"),
    }
}

#[test]
fn error_displays_carry_context() {
    // The Display impls are part of the debugging contract: spot-check that
    // the key fields appear in the rendered message.
    let err = ExecError::LengthMismatch {
        rank: 2,
        from: 7,
        tag: 11,
        sent: 64,
        posted: 32,
    };
    let msg = err.to_string();
    for needle in ["rank 2", "from 7", "tag 11", "64", "32"] {
        assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
    }
    let err = ExecError::Deadlock {
        blocked: vec![(0, 4), (3, 9)],
    };
    let msg = err.to_string();
    assert!(msg.contains("2 ranks blocked"), "{msg:?}");
    assert!(msg.contains("rank 3 at op 9"), "{msg:?}");
}
