//! The data executor: runs a whole schedule on real byte buffers.
//!
//! This is the correctness oracle for every algorithm: it moves actual
//! bytes through FIFO-matched mailboxes (matching on `(source, tag)`, in
//! posting order, like MPI) and detects deadlocks, tag/peer mismatches,
//! length mismatches, out-of-bounds accesses, and leftover messages.
//!
//! Execution is sequential and deterministic: ranks are advanced round-robin
//! until all programs finish or no rank can make progress. Non-blocking
//! semantics are honored — a rank runs past `Isend`/`Irecv` and only blocks
//! at `WaitAll`, with sends completing eagerly (buffered), which matches the
//! standard-mode MPI behaviour the paper's algorithms assume.
//!
//! # Fast path
//!
//! Message transport is zero-copy wherever the schedule allows it
//! (see DESIGN.md §8):
//!
//! * programs are **borrowed** from the source ([`ScheduleSource::rank_program`]),
//!   never cloned per run;
//! * a [`PreparedSchedule`] precomputes, per send, whether its source bytes
//!   stay untouched until delivery (**stable sends**) — those are delivered
//!   with a single `memcpy` straight from the sender's live buffer into the
//!   receiver's block;
//! * unstable sends (and every fault-perturbed message) are snapshotted into
//!   a recycling **byte arena** — messages are `(offset, len)` slices, not
//!   owned `Vec`s, and slots are reused by exact size class;
//! * mailboxes are a dense `ranks × ranks × tag-slot` table of intrusive
//!   FIFO queues over a **message-node pool** (a `HashMap` fallback kicks in
//!   above [`DENSE_LIMIT`] entries so thousand-rank schedules stay bounded);
//! * all run-to-run state lives in a reusable [`ExecScratch`], so a bench
//!   loop allocates nothing after the first iteration.
//!
//! The pre-PR executor is preserved verbatim in [`crate::exec_legacy`]; a
//! differential test pins this path byte-identical to it.

use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};

use a2a_topo::Rank;

use crate::ir::{Block, Bytes, Op, RankProgram};
use crate::ScheduleSource;

/// Execution failure, with enough context to debug the offending schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// No rank could make progress; lists `(rank, program counter)` of every
    /// unfinished rank.
    Deadlock { blocked: Vec<(Rank, usize)> },
    /// A block referenced a buffer id the rank did not declare.
    UnknownBuffer { rank: Rank, buf: u8 },
    /// A block ran past the end of its buffer.
    OutOfBounds {
        rank: Rank,
        buf: u8,
        end: Bytes,
        size: Bytes,
    },
    /// A received message's length differed from the posted receive block.
    LengthMismatch {
        rank: Rank,
        from: Rank,
        tag: u32,
        sent: Bytes,
        posted: Bytes,
    },
    /// Messages were sent but never received.
    UnconsumedMessages { count: usize },
    /// A receive was posted but never satisfied (and never waited on).
    DanglingReceives { rank: Rank, count: usize },
    /// A `WaitAll` named a request id never posted by a send or receive.
    UnknownRequest { rank: Rank, req: u32 },
    /// The schedule failed *after* a [`FaultInjector`] perturbed its
    /// messages: the underlying error plus what was injected, so a test can
    /// tell a detected injected fault from a genuine schedule bug.
    FaultInjected {
        dropped: usize,
        duplicated: usize,
        corrupted: usize,
        cause: Box<ExecError>,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Deadlock { blocked } => {
                write!(f, "deadlock: {} ranks blocked", blocked.len())?;
                for (r, pc) in blocked.iter().take(8) {
                    write!(f, " (rank {r} at op {pc})")?;
                }
                Ok(())
            }
            ExecError::UnknownBuffer { rank, buf } => {
                write!(f, "rank {rank}: unknown buffer id {buf}")
            }
            ExecError::OutOfBounds {
                rank,
                buf,
                end,
                size,
            } => write!(
                f,
                "rank {rank}: access to byte {end} of buffer {buf} (size {size})"
            ),
            ExecError::LengthMismatch {
                rank,
                from,
                tag,
                sent,
                posted,
            } => write!(
                f,
                "rank {rank}: message from {from} tag {tag} has {sent} bytes, receive posted {posted}"
            ),
            ExecError::UnconsumedMessages { count } => {
                write!(f, "{count} messages sent but never received")
            }
            ExecError::DanglingReceives { rank, count } => {
                write!(f, "rank {rank}: {count} receives never satisfied")
            }
            ExecError::UnknownRequest { rank, req } => {
                write!(f, "rank {rank}: wait on unknown request {req}")
            }
            ExecError::FaultInjected {
                dropped,
                duplicated,
                corrupted,
                cause,
            } => write!(
                f,
                "after injected faults ({dropped} dropped, {duplicated} duplicated, \
                 {corrupted} corrupted): {cause}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// One message's injected fate, decided by a [`FaultInjector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageFault {
    /// Silently discard the message.
    pub drop: bool,
    /// Deliver the message twice.
    pub duplicate: bool,
    /// Flip one payload byte at `hint % len` (no-op on empty payloads).
    pub corrupt: Option<u64>,
}

impl MessageFault {
    /// A fault that leaves the message untouched.
    pub fn clean() -> Self {
        MessageFault::default()
    }

    /// Whether this fault perturbs the message at all.
    pub fn is_clean(&self) -> bool {
        !self.drop && !self.duplicate && self.corrupt.is_none()
    }

    /// Apply the corruption component of this fault to a payload in place:
    /// flips one byte at `hint % len`. Returns whether a byte was actually
    /// flipped (empty payloads cannot be corrupted). Every executor shares
    /// this so corruption is byte-identical across them.
    pub fn apply_corrupt(&self, data: &mut [u8]) -> bool {
        match self.corrupt {
            Some(hint) if !data.is_empty() => {
                let idx = (hint % data.len() as u64) as usize;
                data[idx] ^= 0xA5;
                true
            }
            _ => false,
        }
    }
}

/// Decides each message's fate. `seq` numbers messages per
/// `(from, to, tag)` stream in send order, so a deterministic injector
/// (e.g. `a2a_faults::FaultPlan`) produces the same fate regardless of
/// executor interleaving.
pub trait FaultInjector: Sync {
    fn on_message(&self, from: Rank, to: Rank, tag: u32, seq: u64) -> MessageFault;
}

/// What a fault-injected execution actually perturbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub dropped: usize,
    pub duplicated: usize,
    pub corrupted: usize,
}

impl FaultStats {
    pub fn any(&self) -> bool {
        self.dropped + self.duplicated + self.corrupted > 0
    }
}

/// Summary of a successful execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Every rank's final receive buffer (`RBUF`).
    pub rbufs: Vec<Vec<u8>>,
    /// Messages delivered.
    pub messages: usize,
    /// Total message payload bytes.
    pub message_bytes: Bytes,
    /// Total locally copied (repack) bytes.
    pub copy_bytes: Bytes,
}

/// Traffic counters of a successful [`DataExecutor::run_prepared`] run
/// (the receive buffers stay in the [`ExecScratch`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Messages delivered.
    pub messages: usize,
    /// Total message payload bytes.
    pub message_bytes: Bytes,
    /// Total locally copied (repack) bytes.
    pub copy_bytes: Bytes,
}

/// Dense-mailbox ceiling: above `ranks² × tags` entries the table would
/// dominate memory, so the scratch falls back to a hash-indexed sparse map.
pub const DENSE_LIMIT: usize = 1 << 22;

/// Sentinel for "no node" in the intrusive queues / free list.
const NONE_NODE: u32 = u32::MAX;
/// `MsgNode::src` value marking an arena-backed payload.
const SRC_ARENA: Rank = Rank::MAX;

/// A schedule compiled for execution: borrowed (or built-once) programs,
/// buffer sizes, the distinct tag set, and per-send stability flags.
///
/// Preparing once and calling [`DataExecutor::run_prepared`] in a loop is
/// the intended bench path: programs are never rebuilt or cloned, and the
/// paired [`ExecScratch`] recycles every byte of run-to-run state.
///
/// A prepared schedule is normally borrowed from its source for the
/// duration of one run loop. Long-running consumers (the `a2a-service`
/// schedule cache) instead sever the borrow with
/// [`PreparedSchedule::into_owned`] and share the resulting
/// `PreparedSchedule<'static>` behind an `Arc` across jobs and worker
/// threads: every field is plain `Send + Sync` data.
#[derive(Debug)]
pub struct PreparedSchedule<'s> {
    nranks: usize,
    progs: Vec<Cow<'s, RankProgram>>,
    bufsizes: Vec<Vec<Bytes>>,
    /// Sorted distinct tags across all programs; index = dense tag slot.
    tags: Vec<u32>,
    /// Per rank, per op: `true` for an `Isend` whose source bytes provably
    /// stay untouched until delivery (no receive anywhere in the program
    /// and no later copy writes into the source region).
    stable: Vec<Vec<bool>>,
    phase_names: Vec<&'static str>,
}

impl<'s> PreparedSchedule<'s> {
    pub fn new(source: &'s dyn ScheduleSource) -> Self {
        let n = source.nranks();
        let mut progs = Vec::with_capacity(n);
        let mut bufsizes = Vec::with_capacity(n);
        let mut tags: Vec<u32> = Vec::new();
        for r in 0..n as Rank {
            let prog = source.rank_program(r);
            for top in &prog.ops {
                match top.op {
                    Op::Isend { tag, .. } | Op::Irecv { tag, .. } => tags.push(tag),
                    _ => {}
                }
            }
            bufsizes.push(source.buffers(r));
            progs.push(prog);
        }
        tags.sort_unstable();
        tags.dedup();
        let stable = progs.iter().map(|p| send_stability(p)).collect();
        PreparedSchedule {
            nranks: n,
            progs,
            bufsizes,
            tags,
            stable,
            phase_names: source.phase_names(),
        }
    }

    /// Compile `source` straight into an owned (`'static`) prepared
    /// schedule. Shorthand for `PreparedSchedule::new(src).into_owned()`
    /// usable when the source is a temporary.
    pub fn new_owned(source: &dyn ScheduleSource) -> PreparedSchedule<'static> {
        PreparedSchedule::new(source).into_owned()
    }

    /// Sever the borrow of the compiled source, yielding a shareable
    /// `PreparedSchedule<'static>` (e.g. for an `Arc`-based cache).
    ///
    /// Programs that were built by the source (generator-style
    /// [`ScheduleSource::build_rank`] implementations, i.e. every
    /// algorithm) are already owned `Cow`s and are **moved**, not cloned —
    /// converting a freshly compiled algorithm schedule allocates nothing.
    /// Only programs borrowed from a storing source are cloned, once.
    pub fn into_owned(self) -> PreparedSchedule<'static> {
        PreparedSchedule {
            nranks: self.nranks,
            progs: self
                .progs
                .into_iter()
                .map(|p| Cow::Owned(p.into_owned()))
                .collect(),
            bufsizes: self.bufsizes,
            tags: self.tags,
            stable: self.stable,
            phase_names: self.phase_names,
        }
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Distinct tag count (dense mailbox width).
    pub fn ntags(&self) -> usize {
        self.tags.len()
    }

    pub fn prog(&self, rank: Rank) -> &RankProgram {
        self.progs[rank as usize].as_ref()
    }

    /// Rank `rank`'s buffer sizes, borrowed — unlike
    /// [`ScheduleSource::buffers`], which must allocate a fresh `Vec` per
    /// call, this is free and is what the prepare path uses internally.
    pub fn buffer_sizes(&self, rank: Rank) -> &[Bytes] {
        &self.bufsizes[rank as usize]
    }

    fn tag_slot(&self, tag: u32) -> usize {
        self.tags
            .binary_search(&tag)
            .expect("tag was collected from these programs at prepare time")
    }
}

/// Compiled-content equality across borrow states: a cached owned schedule
/// compares equal to a freshly compiled borrowed one iff every program,
/// buffer size, tag, stability flag, and phase name is bit-identical.
impl<'b> PartialEq<PreparedSchedule<'b>> for PreparedSchedule<'_> {
    fn eq(&self, other: &PreparedSchedule<'b>) -> bool {
        self.nranks == other.nranks
            && self.progs == other.progs
            && self.bufsizes == other.bufsizes
            && self.tags == other.tags
            && self.stable == other.stable
            && self.phase_names == other.phase_names
    }
}

impl Eq for PreparedSchedule<'_> {}

impl ScheduleSource for PreparedSchedule<'_> {
    fn nranks(&self) -> usize {
        self.nranks
    }
    fn buffers(&self, rank: Rank) -> Vec<Bytes> {
        self.bufsizes[rank as usize].clone()
    }
    fn rank_program(&self, rank: Rank) -> Cow<'_, RankProgram> {
        Cow::Borrowed(self.progs[rank as usize].as_ref())
    }
    fn phase_names(&self) -> Vec<&'static str> {
        self.phase_names.clone()
    }
}

/// Per-op send stability for one program. An `Isend`'s source region is
/// stable iff no `Irecv` block in the program overlaps it (a receive posted
/// *before* the send can still be satisfied — and written — *after* it)
/// and no `Copy` at a later op index writes into it. Stable payloads can be
/// delivered from the sender's live buffer; everything else is snapshotted.
fn send_stability(prog: &RankProgram) -> Vec<bool> {
    let mut recv_ranges: HashMap<u8, Vec<(Bytes, Bytes)>> = HashMap::new();
    let mut copy_dsts: HashMap<u8, Vec<(usize, Bytes, Bytes)>> = HashMap::new();
    for (i, top) in prog.ops.iter().enumerate() {
        match top.op {
            Op::Irecv { block, .. } => recv_ranges
                .entry(block.buf.0)
                .or_default()
                .push((block.off, block.end())),
            Op::Copy { dst, .. } => {
                copy_dsts
                    .entry(dst.buf.0)
                    .or_default()
                    .push((i, dst.off, dst.end()))
            }
            _ => {}
        }
    }
    // Cheap whole-buffer bounds so the common case (sends from SBUF,
    // receives into RBUF/temporaries) rejects without scanning ranges.
    let recv_bounds: HashMap<u8, (Bytes, Bytes)> = recv_ranges
        .iter()
        .map(|(b, v)| {
            let lo = v.iter().map(|r| r.0).min().unwrap_or(Bytes::MAX);
            let hi = v.iter().map(|r| r.1).max().unwrap_or(0);
            (*b, (lo, hi))
        })
        .collect();
    // Suffix bounds over copy destinations, by op index, for the same
    // rejection on "any later copy".
    let copy_suffix: HashMap<u8, Vec<(Bytes, Bytes)>> = copy_dsts
        .iter()
        .map(|(b, list)| {
            let mut bounds = vec![(Bytes::MAX, 0); list.len() + 1];
            for k in (0..list.len()).rev() {
                let (_, off, end) = list[k];
                let (no, ne) = bounds[k + 1];
                bounds[k] = (no.min(off), ne.max(end));
            }
            (*b, bounds)
        })
        .collect();

    let overlaps =
        |a_off: Bytes, a_end: Bytes, b_off: Bytes, b_end: Bytes| a_off < b_end && b_off < a_end;
    prog.ops
        .iter()
        .enumerate()
        .map(|(i, top)| {
            let Op::Isend { block, .. } = top.op else {
                return false;
            };
            if let Some(&(lo, hi)) = recv_bounds.get(&block.buf.0) {
                if overlaps(block.off, block.end(), lo, hi)
                    && recv_ranges[&block.buf.0]
                        .iter()
                        .any(|&(o, e)| overlaps(block.off, block.end(), o, e))
                {
                    return false;
                }
            }
            if let Some(list) = copy_dsts.get(&block.buf.0) {
                let k = list.partition_point(|&(j, _, _)| j <= i);
                let (lo, hi) = copy_suffix[&block.buf.0][k];
                if overlaps(block.off, block.end(), lo, hi)
                    && list[k..]
                        .iter()
                        .any(|&(_, o, e)| overlaps(block.off, block.end(), o, e))
                {
                    return false;
                }
            }
            true
        })
        .collect()
}

/// One in-flight message: a slice descriptor, never an owned buffer.
/// `src == SRC_ARENA` means the payload lives at `arena[off..off+len]`;
/// otherwise it is read from `bufs[src][buf][off..off+len]` at delivery
/// (stable sends). `next` links the intrusive per-stream FIFO / free list.
#[derive(Clone, Copy)]
struct MsgNode {
    src: Rank,
    buf: u8,
    off: Bytes,
    len: Bytes,
    next: u32,
}

/// One `(from, to, tag)` stream: an intrusive FIFO over the node pool plus
/// the send-order sequence counter (doubles as the "touched" marker so
/// resets only clear streams a run actually used).
#[derive(Clone, Copy)]
struct Stream {
    head: u32,
    tail: u32,
    next_seq: u64,
}

impl Default for Stream {
    fn default() -> Self {
        Stream {
            head: NONE_NODE,
            tail: NONE_NODE,
            next_seq: 0,
        }
    }
}

enum MailIndex {
    /// `streams[(to*n + from) * ntags + tag_slot]`.
    Dense,
    /// Fallback above [`DENSE_LIMIT`]: key -> index into `streams`.
    Sparse(HashMap<(Rank, Rank, u32), u32>),
}

/// Byte arena with exact-size free lists. A schedule uses only a handful of
/// distinct message lengths, so a linear scan over size classes is cheaper
/// than any general allocator — and recycled slots are always fully
/// overwritten by the snapshot copy before they are re-enqueued.
#[derive(Default)]
struct Arena {
    bytes: Vec<u8>,
    free: Vec<(Bytes, Vec<Bytes>)>,
}

impl Arena {
    fn alloc(&mut self, len: Bytes) -> Bytes {
        if let Some((_, slots)) = self.free.iter_mut().find(|(l, _)| *l == len) {
            if let Some(off) = slots.pop() {
                return off;
            }
        }
        let off = self.bytes.len() as Bytes;
        self.bytes.resize(self.bytes.len() + len as usize, 0);
        off
    }

    fn release(&mut self, off: Bytes, len: Bytes) {
        if len == 0 {
            return;
        }
        match self.free.iter_mut().find(|(l, _)| *l == len) {
            Some((_, slots)) => slots.push(off),
            None => self.free.push((len, vec![off])),
        }
    }

    fn clear(&mut self) {
        self.bytes.clear();
        self.free.clear();
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingRecv {
    from: Rank,
    tag: u32,
    block: Block,
    req: u32,
}

/// All mutable state of one execution, reusable across runs of the same
/// [`PreparedSchedule`]: buffers, the mailbox table, the message-node pool,
/// the arena, and per-rank interpreter state. After the first run a bench
/// loop allocates nothing.
///
/// Buffers are *not* re-zeroed between runs; `fill` rewrites the send
/// buffers and a schedule that verifies from zero-initialised buffers
/// overwrites every receive-buffer byte it produces, so reused runs yield
/// the same receive buffers as fresh ones.
pub struct ExecScratch {
    bufs: Vec<Vec<Vec<u8>>>,
    index: MailIndex,
    streams: Vec<Stream>,
    /// Dense-stream indices used this run (sparse mode clears wholesale).
    touched: Vec<u32>,
    nodes: Vec<MsgNode>,
    free_node: u32,
    arena: Arena,
    pending: Vec<VecDeque<PendingRecv>>,
    req_done: Vec<Vec<bool>>,
    pc: Vec<usize>,
    in_flight: usize,
}

impl ExecScratch {
    pub fn new(prep: &PreparedSchedule<'_>) -> Self {
        let n = prep.nranks;
        let bufs = prep
            .bufsizes
            .iter()
            .map(|sizes| sizes.iter().map(|&s| vec![0u8; s as usize]).collect())
            .collect();
        let entries = n * n * prep.ntags().max(1);
        let (index, streams) = if entries <= DENSE_LIMIT {
            (MailIndex::Dense, vec![Stream::default(); entries])
        } else {
            (MailIndex::Sparse(HashMap::new()), Vec::new())
        };
        ExecScratch {
            bufs,
            index,
            streams,
            touched: Vec::new(),
            nodes: Vec::new(),
            free_node: NONE_NODE,
            arena: Arena::default(),
            pending: (0..n).map(|_| VecDeque::new()).collect(),
            req_done: prep
                .progs
                .iter()
                .map(|p| vec![false; p.n_reqs as usize])
                .collect(),
            pc: vec![0; n],
            in_flight: 0,
        }
    }

    /// Rank `rank`'s receive buffer after a [`DataExecutor::run_prepared`].
    pub fn rbuf(&self, rank: Rank) -> &[u8] {
        self.bufs[rank as usize]
            .get(1)
            .map_or(&[], |b| b.as_slice())
    }

    /// Return to the ready state, keeping every allocation.
    fn reset(&mut self) {
        match &mut self.index {
            MailIndex::Dense => {
                for &i in &self.touched {
                    self.streams[i as usize] = Stream::default();
                }
                self.touched.clear();
            }
            MailIndex::Sparse(map) => {
                map.clear();
                self.streams.clear();
            }
        }
        if self.in_flight != 0 {
            // An errored run left nodes enqueued; the pool and arena are
            // cheaper to rebuild than to unpick.
            self.nodes.clear();
            self.free_node = NONE_NODE;
            self.arena.clear();
            self.in_flight = 0;
        }
        for p in &mut self.pending {
            p.clear();
        }
        for rd in &mut self.req_done {
            rd.iter_mut().for_each(|b| *b = false);
        }
        self.pc.iter_mut().for_each(|pc| *pc = 0);
    }

    /// Index of the `(from, to, tag)` stream, creating it in sparse mode.
    fn stream_idx(&mut self, prep: &PreparedSchedule<'_>, from: Rank, to: Rank, tag: u32) -> usize {
        match &mut self.index {
            MailIndex::Dense => {
                (to as usize * prep.nranks + from as usize) * prep.ntags().max(1)
                    + prep.tag_slot(tag)
            }
            MailIndex::Sparse(map) => {
                let next = self.streams.len() as u32;
                let idx = *map.entry((from, to, tag)).or_insert(next);
                if idx == next {
                    self.streams.push(Stream::default());
                }
                idx as usize
            }
        }
    }
}

/// Mutably borrow two distinct elements of a slice.
fn split_two<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// Copy `dst.len` bytes from `(src_buf, src_off)` of rank `from` into `dst`
/// of rank `to`, handling the same-rank (and same-buffer) cases. Overlap
/// within one buffer is memmove-safe via `copy_within`, matching the
/// snapshot-then-write semantics of the legacy executor.
fn copy_across(
    bufs: &mut [Vec<Vec<u8>>],
    from: Rank,
    src_buf: u8,
    src_off: Bytes,
    to: Rank,
    dst: Block,
) {
    let len = dst.len as usize;
    let (so, doff) = (src_off as usize, dst.off as usize);
    if from == to {
        let rank = &mut bufs[to as usize];
        if src_buf == dst.buf.0 {
            rank[dst.buf.0 as usize].copy_within(so..so + len, doff);
        } else {
            let (s, d) = split_two(rank, src_buf as usize, dst.buf.0 as usize);
            d[doff..doff + len].copy_from_slice(&s[so..so + len]);
        }
    } else {
        let (s, d) = split_two(bufs, from as usize, to as usize);
        d[dst.buf.0 as usize][doff..doff + len].copy_from_slice(&s[src_buf as usize][so..so + len]);
    }
}

/// The round-robin interpreter over one prepared schedule + scratch.
struct Engine<'e, 'p> {
    prep: &'e PreparedSchedule<'p>,
    s: &'e mut ExecScratch,
    injector: Option<&'e dyn FaultInjector>,
    stats: ExecStats,
    faults: FaultStats,
}

impl Engine<'_, '_> {
    fn drive(&mut self) -> Result<(), ExecError> {
        loop {
            let mut progressed = false;
            let mut all_done = true;
            for r in 0..self.prep.nranks {
                progressed |= self.advance(r as Rank)?;
                all_done &= self.done(r as Rank);
            }
            if all_done {
                return Ok(());
            }
            if !progressed {
                let blocked = (0..self.prep.nranks)
                    .filter(|&r| !self.done(r as Rank))
                    .map(|r| (r as Rank, self.s.pc[r]))
                    .collect();
                return Err(ExecError::Deadlock { blocked });
            }
        }
    }

    fn done(&self, rank: Rank) -> bool {
        self.s.pc[rank as usize] >= self.prep.prog(rank).ops.len()
    }

    fn check_block(&self, rank: Rank, block: Block) -> Result<(), ExecError> {
        let bufs = &self.s.bufs[rank as usize];
        let idx = block.buf.0 as usize;
        let size = match bufs.get(idx) {
            Some(b) => b.len() as Bytes,
            None => {
                return Err(ExecError::UnknownBuffer {
                    rank,
                    buf: block.buf.0,
                })
            }
        };
        if block.end() > size {
            return Err(ExecError::OutOfBounds {
                rank,
                buf: block.buf.0,
                end: block.end(),
                size,
            });
        }
        Ok(())
    }

    /// Take a node from the pool free list (or grow it).
    fn node_alloc(&mut self, node: MsgNode) -> u32 {
        if self.s.free_node != NONE_NODE {
            let ni = self.s.free_node;
            self.s.free_node = self.s.nodes[ni as usize].next;
            self.s.nodes[ni as usize] = node;
            ni
        } else {
            self.s.nodes.push(node);
            (self.s.nodes.len() - 1) as u32
        }
    }

    fn enqueue(&mut self, stream: usize, mut node: MsgNode) {
        node.next = NONE_NODE;
        let ni = self.node_alloc(node);
        let st = &mut self.s.streams[stream];
        if st.tail == NONE_NODE {
            st.head = ni;
        } else {
            let tail = st.tail as usize;
            self.s.nodes[tail].next = ni;
        }
        self.s.streams[stream].tail = ni;
        self.s.in_flight += 1;
    }

    /// Post one sent message. The common path allocates nothing and copies
    /// nothing: a stable send enqueues a slice descriptor pointing at the
    /// sender's live buffer. Unstable or fault-perturbed payloads are
    /// snapshotted into the arena; an injected duplicate copies into a
    /// second (recycled) arena slot — payload clones happen only when a
    /// duplicate fault is actually injected.
    fn post_message(&mut self, from: Rank, to: Rank, tag: u32, block: Block, stable: bool) {
        let stream = self.s.stream_idx(self.prep, from, to, tag);
        if self.s.streams[stream].next_seq == 0 {
            if let MailIndex::Dense = self.s.index {
                self.s.touched.push(stream as u32);
            }
        }
        let seq = self.s.streams[stream].next_seq;
        self.s.streams[stream].next_seq += 1;

        let fault = match self.injector {
            Some(inj) => inj.on_message(from, to, tag, seq),
            None => MessageFault::clean(),
        };
        if fault.drop {
            self.faults.dropped += 1;
            return;
        }
        if stable && fault.corrupt.is_none() {
            let node = MsgNode {
                src: from,
                buf: block.buf.0,
                off: block.off,
                len: block.len,
                next: NONE_NODE,
            };
            if fault.duplicate {
                self.faults.duplicated += 1;
                self.enqueue(stream, node);
            }
            self.enqueue(stream, node);
            return;
        }
        // Snapshot into the arena (recycled slots are fully overwritten).
        let off = self.s.arena.alloc(block.len);
        let sc = &mut *self.s;
        let src =
            &sc.bufs[from as usize][block.buf.0 as usize][block.off as usize..block.end() as usize];
        let dst = &mut sc.arena.bytes[off as usize..(off + block.len) as usize];
        dst.copy_from_slice(src);
        if fault.apply_corrupt(dst) {
            self.faults.corrupted += 1;
        }
        let node = MsgNode {
            src: SRC_ARENA,
            buf: 0,
            off,
            len: block.len,
            next: NONE_NODE,
        };
        if fault.duplicate {
            self.faults.duplicated += 1;
            let dup_off = self.s.arena.alloc(block.len);
            self.s
                .arena
                .bytes
                .copy_within(off as usize..(off + block.len) as usize, dup_off as usize);
            self.enqueue(
                stream,
                MsgNode {
                    off: dup_off,
                    ..node
                },
            );
        }
        self.enqueue(stream, node);
    }

    /// Try to satisfy rank's pending receives, in posting order.
    fn progress_recvs(&mut self, rank: Rank) -> Result<bool, ExecError> {
        let mut any = false;
        let mut i = 0;
        while i < self.s.pending[rank as usize].len() {
            let p = self.s.pending[rank as usize][i];
            let stream = self.s.stream_idx(self.prep, p.from, rank, p.tag);
            let head = self.s.streams[stream].head;
            if head == NONE_NODE {
                i += 1;
                continue;
            }
            let node = self.s.nodes[head as usize];
            if node.len != p.block.len {
                return Err(ExecError::LengthMismatch {
                    rank,
                    from: p.from,
                    tag: p.tag,
                    sent: node.len,
                    posted: p.block.len,
                });
            }
            // Unlink the head and return it to the pool.
            {
                let st = &mut self.s.streams[stream];
                st.head = node.next;
                if st.head == NONE_NODE {
                    st.tail = NONE_NODE;
                }
            }
            self.s.nodes[head as usize].next = self.s.free_node;
            self.s.free_node = head;
            self.s.in_flight -= 1;

            if node.src == SRC_ARENA {
                let sc = &mut *self.s;
                let src = &sc.arena.bytes[node.off as usize..(node.off + node.len) as usize];
                sc.bufs[rank as usize][p.block.buf.0 as usize]
                    [p.block.off as usize..p.block.end() as usize]
                    .copy_from_slice(src);
                sc.arena.release(node.off, node.len);
            } else {
                copy_across(
                    &mut self.s.bufs,
                    node.src,
                    node.buf,
                    node.off,
                    rank,
                    p.block,
                );
            }
            self.stats.messages += 1;
            self.stats.message_bytes += node.len;
            self.s.req_done[rank as usize][p.req as usize] = true;
            self.s.pending[rank as usize].remove(i);
            any = true;
        }
        Ok(any)
    }

    /// Advance one rank as far as possible; returns whether it progressed.
    fn advance(&mut self, rank: Rank) -> Result<bool, ExecError> {
        let mut progressed = self.progress_recvs(rank)?;
        let r = rank as usize;
        loop {
            let prog = self.prep.prog(rank);
            let pc = self.s.pc[r];
            if pc >= prog.ops.len() {
                return Ok(progressed);
            }
            match prog.ops[pc].op {
                Op::Isend {
                    to,
                    block,
                    tag,
                    req,
                    ..
                } => {
                    self.check_block(rank, block)?;
                    let stable = self.prep.stable[r][pc];
                    self.post_message(rank, to, tag, block, stable);
                    self.s.req_done[r][req as usize] = true;
                    self.s.pc[r] += 1;
                }
                Op::Irecv {
                    from,
                    block,
                    tag,
                    req,
                    ..
                } => {
                    self.check_block(rank, block)?;
                    self.s.pending[r].push_back(PendingRecv {
                        from,
                        tag,
                        block,
                        req,
                    });
                    self.s.pc[r] += 1;
                }
                Op::WaitAll { first_req, count } => {
                    self.progress_recvs(rank)?;
                    let mut ready = true;
                    for req in first_req..first_req + count {
                        match self.s.req_done[r].get(req as usize) {
                            Some(true) => {}
                            Some(false) => {
                                ready = false;
                                break;
                            }
                            None => return Err(ExecError::UnknownRequest { rank, req }),
                        }
                    }
                    if !ready {
                        return Ok(progressed);
                    }
                    self.s.pc[r] += 1;
                }
                Op::Copy { src, dst } => {
                    self.check_block(rank, src)?;
                    self.check_block(rank, dst)?;
                    copy_across(&mut self.s.bufs, rank, src.buf.0, src.off, rank, dst);
                    self.stats.copy_bytes += src.len;
                    self.s.pc[r] += 1;
                }
            }
            progressed = true;
        }
    }

    fn finish(&self) -> Result<(), ExecError> {
        for (r, pend) in self.s.pending.iter().enumerate() {
            if !pend.is_empty() {
                return Err(ExecError::DanglingReceives {
                    rank: r as Rank,
                    count: pend.len(),
                });
            }
        }
        if self.s.in_flight > 0 {
            return Err(ExecError::UnconsumedMessages {
                count: self.s.in_flight,
            });
        }
        Ok(())
    }
}

/// Sequential deterministic executor over the zero-copy fast path. See
/// module docs; the pre-PR allocation behaviour lives in
/// [`crate::exec_legacy::LegacyDataExecutor`].
pub struct DataExecutor;

impl DataExecutor {
    /// Execute `source`, filling each rank's send buffer with `fill`,
    /// and return the final receive buffers.
    pub fn run(
        source: &dyn ScheduleSource,
        fill: impl FnMut(Rank, &mut [u8]),
    ) -> Result<ExecResult, ExecError> {
        let prep = PreparedSchedule::new(source);
        let mut scratch = ExecScratch::new(&prep);
        let stats = Self::run_prepared(&prep, &mut scratch, fill)?;
        Ok(take_result(&mut scratch, stats))
    }

    /// Execute `source` with `injector` perturbing every message. Returns
    /// the result plus what was injected; failures caused after any
    /// injection are wrapped in [`ExecError::FaultInjected`] so detection
    /// tests can name the fault.
    pub fn run_with_faults(
        source: &dyn ScheduleSource,
        fill: impl FnMut(Rank, &mut [u8]),
        injector: &dyn FaultInjector,
    ) -> Result<(ExecResult, FaultStats), ExecError> {
        let prep = PreparedSchedule::new(source);
        let mut scratch = ExecScratch::new(&prep);
        let (stats, faults) = Self::run_prepared_with_faults(&prep, &mut scratch, fill, injector)?;
        Ok((take_result(&mut scratch, stats), faults))
    }

    /// Execute a prepared schedule in a reusable scratch: the allocation-free
    /// bench path. Receive buffers are left in the scratch
    /// ([`ExecScratch::rbuf`]); only traffic counters are returned.
    pub fn run_prepared(
        prep: &PreparedSchedule<'_>,
        scratch: &mut ExecScratch,
        fill: impl FnMut(Rank, &mut [u8]),
    ) -> Result<ExecStats, ExecError> {
        Self::run_prepared_inner(prep, scratch, fill, None).map(|(s, _)| s)
    }

    /// [`DataExecutor::run_prepared`] with a fault layer.
    pub fn run_prepared_with_faults(
        prep: &PreparedSchedule<'_>,
        scratch: &mut ExecScratch,
        fill: impl FnMut(Rank, &mut [u8]),
        injector: &dyn FaultInjector,
    ) -> Result<(ExecStats, FaultStats), ExecError> {
        Self::run_prepared_inner(prep, scratch, fill, Some(injector))
    }

    fn run_prepared_inner(
        prep: &PreparedSchedule<'_>,
        scratch: &mut ExecScratch,
        mut fill: impl FnMut(Rank, &mut [u8]),
        injector: Option<&dyn FaultInjector>,
    ) -> Result<(ExecStats, FaultStats), ExecError> {
        assert_eq!(
            scratch.pc.len(),
            prep.nranks,
            "scratch was built for a different schedule"
        );
        scratch.reset();
        for (r, bufs) in scratch.bufs.iter_mut().enumerate() {
            if let Some(sbuf) = bufs.first_mut() {
                fill(r as Rank, sbuf);
            }
        }
        let mut engine = Engine {
            prep,
            s: scratch,
            injector,
            stats: ExecStats::default(),
            faults: FaultStats::default(),
        };
        let driven = engine.drive();
        let faults = engine.faults;
        let stats = engine.stats;
        let res = driven
            .and_then(|()| engine.finish())
            .map(|()| (stats, faults));
        match res {
            // Name the injection in the error: once faults were actually
            // applied, a failure is the *expected* loud detection, and the
            // stats let a test distinguish it from a genuine schedule bug.
            Err(cause) if faults.any() => Err(ExecError::FaultInjected {
                dropped: faults.dropped,
                duplicated: faults.duplicated,
                corrupted: faults.corrupted,
                cause: Box::new(cause),
            }),
            other => other,
        }
    }
}

/// Move the receive buffers out of a one-shot scratch.
fn take_result(scratch: &mut ExecScratch, stats: ExecStats) -> ExecResult {
    let rbufs = scratch
        .bufs
        .iter_mut()
        .map(|bufs| {
            if bufs.len() > 1 {
                std::mem::take(&mut bufs[1])
            } else {
                Vec::new()
            }
        })
        .collect();
    ExecResult {
        rbufs,
        messages: stats.messages,
        message_bytes: stats.message_bytes,
        copy_bytes: stats.copy_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgBuilder;
    use crate::ir::{Phase, RBUF, SBUF};

    /// A 2-rank ping-pong schedule for exercising the executor. Stores its
    /// programs and hands out borrows: execution never clones an op list.
    struct TwoRank {
        progs: Vec<RankProgram>,
        bufsize: Bytes,
    }

    impl ScheduleSource for TwoRank {
        fn nranks(&self) -> usize {
            2
        }
        fn buffers(&self, _r: Rank) -> Vec<Bytes> {
            vec![self.bufsize, self.bufsize]
        }
        fn rank_program(&self, r: Rank) -> Cow<'_, RankProgram> {
            Cow::Borrowed(&self.progs[r as usize])
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["all"]
        }
    }

    fn swap_schedule() -> TwoRank {
        let mut progs = Vec::new();
        for me in 0..2u32 {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            b.sendrecv(
                peer,
                Block::new(SBUF, 0, 8),
                0,
                peer,
                Block::new(RBUF, 0, 8),
                0,
            );
            progs.push(b.finish());
        }
        TwoRank { progs, bufsize: 8 }
    }

    #[test]
    fn swap_moves_data() {
        let res = DataExecutor::run(&swap_schedule(), |r, buf| {
            buf.fill(r as u8 + 1);
        })
        .unwrap();
        assert_eq!(res.rbufs[0], vec![2u8; 8]);
        assert_eq!(res.rbufs[1], vec![1u8; 8]);
        assert_eq!(res.messages, 2);
        assert_eq!(res.message_bytes, 16);
    }

    #[test]
    fn blocking_recv_before_send_deadlocks() {
        // Both ranks do blocking recv first -> classic deadlock.
        let mut progs = Vec::new();
        for me in 0..2u32 {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            b.recv(peer, Block::new(RBUF, 0, 8), 0);
            b.send(peer, Block::new(SBUF, 0, 8), 0);
            progs.push(b.finish());
        }
        let err = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |_, _| {}).unwrap_err();
        assert!(matches!(err, ExecError::Deadlock { ref blocked } if blocked.len() == 2));
    }

    #[test]
    fn nonblocking_recv_before_send_is_fine() {
        let mut progs = Vec::new();
        for me in 0..2u32 {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            let r0 = b.irecv(peer, Block::new(RBUF, 0, 8), 0);
            b.isend(peer, Block::new(SBUF, 0, 8), 0);
            b.waitall(r0, 2);
            progs.push(b.finish());
        }
        DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |r, buf| buf.fill(r as u8)).unwrap();
    }

    #[test]
    fn tag_mismatch_deadlocks() {
        let mut progs = Vec::new();
        for me in 0..2u32 {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            let r0 = b.irecv(peer, Block::new(RBUF, 0, 8), 1); // wrong tag
            b.isend(peer, Block::new(SBUF, 0, 8), 0);
            b.waitall(r0, 2);
            progs.push(b.finish());
        }
        let err = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |_, _| {}).unwrap_err();
        assert!(matches!(err, ExecError::Deadlock { .. }));
    }

    #[test]
    fn length_mismatch_detected() {
        let mut progs = Vec::new();
        for me in 0..2u32 {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            let rlen = if me == 0 { 4 } else { 8 };
            let r0 = b.irecv(peer, Block::new(RBUF, 0, rlen), 0);
            b.isend(peer, Block::new(SBUF, 0, 8), 0);
            b.waitall(r0, 2);
            progs.push(b.finish());
        }
        let err = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |_, _| {}).unwrap_err();
        assert!(matches!(
            err,
            ExecError::LengthMismatch {
                sent: 8,
                posted: 4,
                ..
            }
        ));
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut b = ProgBuilder::new(Phase(0));
        b.copy(Block::new(SBUF, 4, 8), Block::new(RBUF, 0, 8));
        let progs = vec![b.finish(), RankProgram::default()];
        let err = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |_, _| {}).unwrap_err();
        assert!(matches!(
            err,
            ExecError::OutOfBounds {
                end: 12,
                size: 8,
                ..
            }
        ));
    }

    #[test]
    fn unconsumed_message_detected() {
        let mut b = ProgBuilder::new(Phase(0));
        b.isend(1, Block::new(SBUF, 0, 8), 0);
        let progs = vec![b.finish(), RankProgram::default()];
        let err = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |_, _| {}).unwrap_err();
        assert_eq!(err, ExecError::UnconsumedMessages { count: 1 });
    }

    #[test]
    fn fifo_ordering_per_source_and_tag() {
        // Rank 0 sends two messages with the same tag; rank 1 must receive
        // them in order.
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.isend(1, Block::new(SBUF, 0, 4), 0);
        b0.isend(1, Block::new(SBUF, 4, 4), 0);
        let mut b1 = ProgBuilder::new(Phase(0));
        let r = b1.irecv(0, Block::new(RBUF, 0, 4), 0);
        b1.irecv(0, Block::new(RBUF, 4, 4), 0);
        b1.waitall(r, 2);
        let progs = vec![b0.finish(), b1.finish()];
        let res = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |r, buf| {
            if r == 0 {
                buf[..4].fill(0xAA);
                buf[4..].fill(0xBB);
            }
        })
        .unwrap();
        assert_eq!(&res.rbufs[1][..4], &[0xAA; 4]);
        assert_eq!(&res.rbufs[1][4..], &[0xBB; 4]);
    }

    /// Deterministic injector for tests: faults messages by (to, seq) rule.
    struct DropFirstTo1;
    impl FaultInjector for DropFirstTo1 {
        fn on_message(&self, _from: Rank, to: Rank, _tag: u32, seq: u64) -> MessageFault {
            MessageFault {
                drop: to == 1 && seq == 0,
                ..MessageFault::default()
            }
        }
    }

    struct DupAll;
    impl FaultInjector for DupAll {
        fn on_message(&self, _f: Rank, _t: Rank, _tag: u32, _s: u64) -> MessageFault {
            MessageFault {
                duplicate: true,
                ..MessageFault::default()
            }
        }
    }

    struct CorruptAll;
    impl FaultInjector for CorruptAll {
        fn on_message(&self, _f: Rank, _t: Rank, _tag: u32, _s: u64) -> MessageFault {
            MessageFault {
                corrupt: Some(3),
                ..MessageFault::default()
            }
        }
    }

    #[test]
    fn injected_drop_detected_as_fault_wrapped_deadlock() {
        let err =
            DataExecutor::run_with_faults(&swap_schedule(), |_, _| {}, &DropFirstTo1).unwrap_err();
        match err {
            ExecError::FaultInjected { dropped, cause, .. } => {
                assert_eq!(dropped, 1);
                assert!(matches!(*cause, ExecError::Deadlock { .. }), "{cause}");
            }
            other => panic!("expected FaultInjected, got {other}"),
        }
    }

    #[test]
    fn injected_duplicate_detected_as_unconsumed() {
        let err = DataExecutor::run_with_faults(&swap_schedule(), |_, _| {}, &DupAll).unwrap_err();
        match err {
            ExecError::FaultInjected {
                duplicated, cause, ..
            } => {
                assert_eq!(duplicated, 2);
                assert!(matches!(*cause, ExecError::UnconsumedMessages { count: 2 }));
            }
            other => panic!("expected FaultInjected, got {other}"),
        }
    }

    #[test]
    fn injected_corruption_flips_exactly_one_byte() {
        let (res, stats) = DataExecutor::run_with_faults(
            &swap_schedule(),
            |r, buf| buf.fill(r as u8 + 1),
            &CorruptAll,
        )
        .unwrap();
        assert_eq!(stats.corrupted, 2);
        // Payloads still delivered, but one byte per message differs.
        let diffs: usize = res.rbufs[0].iter().filter(|&&b| b != 2).count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn clean_injector_behaves_like_plain_run() {
        struct Clean;
        impl FaultInjector for Clean {
            fn on_message(&self, _f: Rank, _t: Rank, _tag: u32, _s: u64) -> MessageFault {
                MessageFault::clean()
            }
        }
        let (res, stats) =
            DataExecutor::run_with_faults(&swap_schedule(), |r, buf| buf.fill(r as u8 + 1), &Clean)
                .unwrap();
        assert!(!stats.any());
        assert_eq!(res.rbufs[0], vec![2u8; 8]);
    }

    #[test]
    fn self_copy_via_copy_op() {
        let mut b = ProgBuilder::new(Phase(0));
        b.copy(Block::new(SBUF, 0, 8), Block::new(RBUF, 0, 8));
        let progs = vec![b.finish(), RankProgram::default()];
        let res = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |r, buf| {
            buf.fill(r as u8 + 9)
        })
        .unwrap();
        assert_eq!(res.rbufs[0], vec![9u8; 8]);
        assert_eq!(res.copy_bytes, 8);
    }

    #[test]
    fn self_send_delivers_through_mailbox() {
        // A rank sending to itself matches its own receive; the delivery
        // copies within one rank's buffer set.
        let mut b = ProgBuilder::new(Phase(0));
        let r0 = b.irecv(0, Block::new(RBUF, 0, 8), 3);
        b.isend(0, Block::new(SBUF, 0, 8), 3);
        b.waitall(r0, 2);
        let progs = vec![b.finish(), RankProgram::default()];
        let res = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |r, buf| {
            buf.fill(r as u8 + 5)
        })
        .unwrap();
        assert_eq!(res.rbufs[0], vec![5u8; 8]);
        assert_eq!(res.messages, 1);
    }

    #[test]
    fn unstable_send_snapshots_payload_at_send_time() {
        // Rank 0 sends SBUF[0..8] and then overwrites it with a Copy before
        // rank 1's receive is matched: the receiver must see the bytes as
        // they were when the send was posted. This is the case the
        // stability analysis exists to catch.
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.isend(1, Block::new(SBUF, 0, 8), 0);
        b0.copy(Block::new(SBUF, 8, 8), Block::new(SBUF, 0, 8));
        let mut b1 = ProgBuilder::new(Phase(0));
        let r = b1.irecv(0, Block::new(RBUF, 0, 8), 0);
        b1.waitall(r, 1);
        let progs = vec![b0.finish(), b1.finish()];
        // Ensure the prepared schedule actually classified it unstable.
        let src = TwoRank { progs, bufsize: 16 };
        let prep = PreparedSchedule::new(&src);
        assert!(
            !prep.stable[0][0],
            "send source is overwritten by a later copy"
        );
        let res = DataExecutor::run(&src, |r, buf| {
            if r == 0 {
                buf[..8].fill(0x11);
                buf[8..].fill(0x22);
            }
        })
        .unwrap();
        assert_eq!(
            &res.rbufs[1][..8],
            &[0x11; 8],
            "snapshot taken at send time"
        );
    }

    #[test]
    fn sendrecv_sends_are_stable() {
        // The ubiquitous pattern — send from SBUF, receive into RBUF —
        // must take the zero-snapshot path.
        let src = swap_schedule();
        let prep = PreparedSchedule::new(&src);
        for r in 0..2 {
            let sends_stable =
                prep.prog(r).ops.iter().enumerate().any(|(i, top)| {
                    matches!(top.op, Op::Isend { .. }) && prep.stable[r as usize][i]
                });
            assert!(sends_stable, "rank {r}'s send should be stable");
        }
    }

    #[test]
    fn arena_slots_are_fully_overwritten_on_reuse() {
        // Two same-length unstable messages in sequence: the second reuses
        // the first's arena slot and must carry its own bytes, never stale
        // ones. Both sends are made unstable by a trailing self-copy over
        // the send region.
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.isend(1, Block::new(SBUF, 0, 8), 0);
        let mut b1 = ProgBuilder::new(Phase(0));
        let r = b1.irecv(0, Block::new(RBUF, 0, 8), 0);
        b1.waitall(r, 1);
        b1.isend(0, Block::new(SBUF, 0, 8), 1);
        b1.copy(Block::new(SBUF, 8, 8), Block::new(SBUF, 0, 8)); // makes it unstable
                                                                 // Rank 0 also overwrites its sent region -> unstable too.
        b0.copy(Block::new(SBUF, 8, 8), Block::new(SBUF, 0, 8));
        let r2 = b0.irecv(1, Block::new(RBUF, 0, 8), 1);
        b0.waitall(r2, 1);
        let progs = vec![b0.finish(), b1.finish()];
        let src = TwoRank { progs, bufsize: 16 };
        let prep = PreparedSchedule::new(&src);
        assert!(
            !prep.stable[0][0] && !prep.stable[1][2],
            "both sends unstable"
        );
        let res = DataExecutor::run(&src, |r, buf| {
            buf[..8].fill(if r == 0 { 0xAA } else { 0xBB });
            buf[8..].fill(0x00);
        })
        .unwrap();
        assert_eq!(&res.rbufs[1][..8], &[0xAA; 8]);
        assert_eq!(
            &res.rbufs[0][..8],
            &[0xBB; 8],
            "recycled slot fully overwritten"
        );
    }

    #[test]
    fn prepared_scratch_reuse_is_allocation_stable_and_correct() {
        // Run the same prepared schedule three times with different fills:
        // each run must produce that fill's answer (no stale bytes leak
        // across runs through the reused buffers, arena, or mailboxes).
        let src = swap_schedule();
        let prep = PreparedSchedule::new(&src);
        let mut scratch = ExecScratch::new(&prep);
        for pass in 1..=3u8 {
            let stats =
                DataExecutor::run_prepared(&prep, &mut scratch, |r, buf| buf.fill(r as u8 + pass))
                    .unwrap();
            assert_eq!(stats.messages, 2);
            assert_eq!(scratch.rbuf(0), &[1 + pass; 8][..]);
            assert_eq!(scratch.rbuf(1), &[pass; 8][..]);
        }
    }

    #[test]
    fn fast_path_matches_legacy_executor() {
        let src = swap_schedule();
        let fast = DataExecutor::run(&src, |r, buf| buf.fill(r as u8 + 1)).unwrap();
        let legacy =
            crate::exec_legacy::LegacyDataExecutor::run(&src, |r, buf| buf.fill(r as u8 + 1))
                .unwrap();
        assert_eq!(fast, legacy);
    }

    #[test]
    fn owned_schedule_is_bit_identical_to_borrowed() {
        let src = swap_schedule();
        let borrowed = PreparedSchedule::new(&src);
        let owned = PreparedSchedule::new(&src).into_owned();
        assert_eq!(owned, borrowed);
        // And it executes identically through a fresh scratch.
        let mut s_b = ExecScratch::new(&borrowed);
        let mut s_o = ExecScratch::new(&owned);
        DataExecutor::run_prepared(&borrowed, &mut s_b, |r, buf| buf.fill(r as u8 + 1)).unwrap();
        DataExecutor::run_prepared(&owned, &mut s_o, |r, buf| buf.fill(r as u8 + 1)).unwrap();
        assert_eq!(s_b.rbuf(0), s_o.rbuf(0));
        assert_eq!(s_b.rbuf(1), s_o.rbuf(1));
    }

    #[test]
    fn into_owned_moves_generator_built_programs() {
        // A generator-style source (only `build_rank`) hands the prepare
        // path owned programs; `into_owned` must move them, not clone:
        // the op vector's heap allocation survives the conversion.
        struct Gen;
        impl ScheduleSource for Gen {
            fn nranks(&self) -> usize {
                2
            }
            fn buffers(&self, _r: Rank) -> Vec<Bytes> {
                vec![8, 8]
            }
            fn build_rank(&self, r: Rank) -> RankProgram {
                swap_schedule().progs[r as usize].clone()
            }
            fn phase_names(&self) -> Vec<&'static str> {
                vec!["all"]
            }
        }
        let prep = PreparedSchedule::new(&Gen);
        let ptr_before = prep.prog(0).ops.as_ptr();
        let owned = prep.into_owned();
        assert_eq!(owned.prog(0).ops.as_ptr(), ptr_before, "moved, not cloned");
    }

    #[test]
    fn owned_schedule_is_shareable_across_threads() {
        let src = swap_schedule();
        let prep = std::sync::Arc::new(PreparedSchedule::new(&src).into_owned());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let prep = std::sync::Arc::clone(&prep);
                std::thread::spawn(move || {
                    let mut scratch = ExecScratch::new(&prep);
                    DataExecutor::run_prepared(&prep, &mut scratch, |r, buf| buf.fill(r as u8 + 1))
                        .unwrap();
                    scratch.rbuf(0).to_vec()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![2u8; 8]);
        }
    }

    #[test]
    fn buffer_sizes_borrow_matches_trait_buffers() {
        let src = swap_schedule();
        let prep = PreparedSchedule::new(&src);
        for r in 0..2 {
            assert_eq!(prep.buffer_sizes(r), &ScheduleSource::buffers(&prep, r)[..]);
        }
    }
}
