//! The data executor: runs a whole schedule on real byte buffers.
//!
//! This is the correctness oracle for every algorithm: it moves actual
//! bytes through FIFO-matched mailboxes (matching on `(source, tag)`, in
//! posting order, like MPI) and detects deadlocks, tag/peer mismatches,
//! length mismatches, out-of-bounds accesses, and leftover messages.
//!
//! Execution is sequential and deterministic: ranks are advanced round-robin
//! until all programs finish or no rank can make progress. Non-blocking
//! semantics are honored — a rank runs past `Isend`/`Irecv` and only blocks
//! at `WaitAll`, with sends completing eagerly (buffered), which matches the
//! standard-mode MPI behaviour the paper's algorithms assume.

use std::collections::{HashMap, VecDeque};

use a2a_topo::Rank;

use crate::ir::{Block, Bytes, Op, RankProgram};
use crate::ScheduleSource;

/// Execution failure, with enough context to debug the offending schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// No rank could make progress; lists `(rank, program counter)` of every
    /// unfinished rank.
    Deadlock { blocked: Vec<(Rank, usize)> },
    /// A block referenced a buffer id the rank did not declare.
    UnknownBuffer { rank: Rank, buf: u8 },
    /// A block ran past the end of its buffer.
    OutOfBounds {
        rank: Rank,
        buf: u8,
        end: Bytes,
        size: Bytes,
    },
    /// A received message's length differed from the posted receive block.
    LengthMismatch {
        rank: Rank,
        from: Rank,
        tag: u32,
        sent: Bytes,
        posted: Bytes,
    },
    /// Messages were sent but never received.
    UnconsumedMessages { count: usize },
    /// A receive was posted but never satisfied (and never waited on).
    DanglingReceives { rank: Rank, count: usize },
    /// A `WaitAll` named a request id never posted by a send or receive.
    UnknownRequest { rank: Rank, req: u32 },
    /// The schedule failed *after* a [`FaultInjector`] perturbed its
    /// messages: the underlying error plus what was injected, so a test can
    /// tell a detected injected fault from a genuine schedule bug.
    FaultInjected {
        dropped: usize,
        duplicated: usize,
        corrupted: usize,
        cause: Box<ExecError>,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Deadlock { blocked } => {
                write!(f, "deadlock: {} ranks blocked", blocked.len())?;
                for (r, pc) in blocked.iter().take(8) {
                    write!(f, " (rank {r} at op {pc})")?;
                }
                Ok(())
            }
            ExecError::UnknownBuffer { rank, buf } => {
                write!(f, "rank {rank}: unknown buffer id {buf}")
            }
            ExecError::OutOfBounds {
                rank,
                buf,
                end,
                size,
            } => write!(
                f,
                "rank {rank}: access to byte {end} of buffer {buf} (size {size})"
            ),
            ExecError::LengthMismatch {
                rank,
                from,
                tag,
                sent,
                posted,
            } => write!(
                f,
                "rank {rank}: message from {from} tag {tag} has {sent} bytes, receive posted {posted}"
            ),
            ExecError::UnconsumedMessages { count } => {
                write!(f, "{count} messages sent but never received")
            }
            ExecError::DanglingReceives { rank, count } => {
                write!(f, "rank {rank}: {count} receives never satisfied")
            }
            ExecError::UnknownRequest { rank, req } => {
                write!(f, "rank {rank}: wait on unknown request {req}")
            }
            ExecError::FaultInjected {
                dropped,
                duplicated,
                corrupted,
                cause,
            } => write!(
                f,
                "after injected faults ({dropped} dropped, {duplicated} duplicated, \
                 {corrupted} corrupted): {cause}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// One message's injected fate, decided by a [`FaultInjector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageFault {
    /// Silently discard the message.
    pub drop: bool,
    /// Deliver the message twice.
    pub duplicate: bool,
    /// Flip one payload byte at `hint % len` (no-op on empty payloads).
    pub corrupt: Option<u64>,
}

impl MessageFault {
    /// A fault that leaves the message untouched.
    pub fn clean() -> Self {
        MessageFault::default()
    }

    /// Whether this fault perturbs the message at all.
    pub fn is_clean(&self) -> bool {
        !self.drop && !self.duplicate && self.corrupt.is_none()
    }
}

/// Decides each message's fate. `seq` numbers messages per
/// `(from, to, tag)` stream in send order, so a deterministic injector
/// (e.g. `a2a_faults::FaultPlan`) produces the same fate regardless of
/// executor interleaving.
pub trait FaultInjector: Sync {
    fn on_message(&self, from: Rank, to: Rank, tag: u32, seq: u64) -> MessageFault;
}

/// What a fault-injected execution actually perturbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub dropped: usize,
    pub duplicated: usize,
    pub corrupted: usize,
}

impl FaultStats {
    pub fn any(&self) -> bool {
        self.dropped + self.duplicated + self.corrupted > 0
    }
}

/// Summary of a successful execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Every rank's final receive buffer (`RBUF`).
    pub rbufs: Vec<Vec<u8>>,
    /// Messages delivered.
    pub messages: usize,
    /// Total message payload bytes.
    pub message_bytes: Bytes,
    /// Total locally copied (repack) bytes.
    pub copy_bytes: Bytes,
}

#[derive(Debug)]
struct PendingRecv {
    from: Rank,
    tag: u32,
    block: Block,
    req: u32,
}

struct RankState {
    prog: RankProgram,
    pc: usize,
    bufs: Vec<Vec<u8>>,
    req_done: Vec<bool>,
    /// Posted-but-unmatched receives, in posting order.
    pending: VecDeque<PendingRecv>,
}

impl RankState {
    fn done(&self) -> bool {
        self.pc >= self.prog.ops.len()
    }
}

/// Sequential round-robin executor. See module docs.
pub struct DataExecutor<'a> {
    ranks: Vec<RankState>,
    /// (from, to, tag) -> FIFO of message payloads.
    mail: HashMap<(Rank, Rank, u32), VecDeque<Vec<u8>>>,
    messages: usize,
    message_bytes: Bytes,
    copy_bytes: Bytes,
    /// Optional fault layer applied to every sent message.
    injector: Option<&'a dyn FaultInjector>,
    /// Per-(from, to, tag) send counters for fault sequencing.
    seqs: HashMap<(Rank, Rank, u32), u64>,
    faults: FaultStats,
}

impl<'a> DataExecutor<'a> {
    /// Execute `source`, filling each rank's send buffer with `fill`,
    /// and return the final receive buffers.
    pub fn run(
        source: &dyn ScheduleSource,
        fill: impl FnMut(Rank, &mut [u8]),
    ) -> Result<ExecResult, ExecError> {
        Self::run_inner(source, fill, None).map(|(res, _)| res)
    }

    /// Execute `source` with `injector` perturbing every message. Returns
    /// the result plus what was injected; failures caused after any
    /// injection are wrapped in [`ExecError::FaultInjected`] so detection
    /// tests can name the fault.
    pub fn run_with_faults(
        source: &dyn ScheduleSource,
        fill: impl FnMut(Rank, &mut [u8]),
        injector: &'a dyn FaultInjector,
    ) -> Result<(ExecResult, FaultStats), ExecError> {
        Self::run_inner(source, fill, Some(injector))
    }

    fn run_inner(
        source: &dyn ScheduleSource,
        mut fill: impl FnMut(Rank, &mut [u8]),
        injector: Option<&'a dyn FaultInjector>,
    ) -> Result<(ExecResult, FaultStats), ExecError> {
        let n = source.nranks();
        let mut ranks = Vec::with_capacity(n);
        for r in 0..n as Rank {
            let sizes = source.buffers(r);
            let mut bufs: Vec<Vec<u8>> = sizes.iter().map(|&s| vec![0u8; s as usize]).collect();
            if let Some(sbuf) = bufs.first_mut() {
                fill(r, sbuf);
            }
            let prog = source.build_rank(r);
            let n_reqs = prog.n_reqs as usize;
            ranks.push(RankState {
                prog,
                pc: 0,
                bufs,
                req_done: vec![false; n_reqs],
                pending: VecDeque::new(),
            });
        }
        let mut exec = DataExecutor {
            ranks,
            mail: HashMap::new(),
            messages: 0,
            message_bytes: 0,
            copy_bytes: 0,
            injector,
            seqs: HashMap::new(),
            faults: FaultStats::default(),
        };
        let driven = exec.drive();
        let faults = exec.faults;
        let res = driven.and_then(|()| exec.finish().map(|r| (r, faults)));
        match res {
            // Name the injection in the error: once faults were actually
            // applied, a failure is the *expected* loud detection, and the
            // stats let a test distinguish it from a genuine schedule bug.
            Err(cause) if faults.any() => Err(ExecError::FaultInjected {
                dropped: faults.dropped,
                duplicated: faults.duplicated,
                corrupted: faults.corrupted,
                cause: Box::new(cause),
            }),
            other => other,
        }
    }

    fn drive(&mut self) -> Result<(), ExecError> {
        loop {
            let mut progressed = false;
            let mut all_done = true;
            for r in 0..self.ranks.len() {
                progressed |= self.advance(r as Rank)?;
                all_done &= self.ranks[r].done();
            }
            if all_done {
                return Ok(());
            }
            if !progressed {
                let blocked = self
                    .ranks
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.done())
                    .map(|(r, s)| (r as Rank, s.pc))
                    .collect();
                return Err(ExecError::Deadlock { blocked });
            }
        }
    }

    fn check_block(&self, rank: Rank, block: Block) -> Result<(), ExecError> {
        let bufs = &self.ranks[rank as usize].bufs;
        let idx = block.buf.0 as usize;
        let size = match bufs.get(idx) {
            Some(b) => b.len() as Bytes,
            None => {
                return Err(ExecError::UnknownBuffer {
                    rank,
                    buf: block.buf.0,
                })
            }
        };
        if block.end() > size {
            return Err(ExecError::OutOfBounds {
                rank,
                buf: block.buf.0,
                end: block.end(),
                size,
            });
        }
        Ok(())
    }

    fn read_block(&self, rank: Rank, block: Block) -> Vec<u8> {
        let buf = &self.ranks[rank as usize].bufs[block.buf.0 as usize];
        buf[block.off as usize..block.end() as usize].to_vec()
    }

    fn write_block(&mut self, rank: Rank, block: Block, data: &[u8]) {
        let buf = &mut self.ranks[rank as usize].bufs[block.buf.0 as usize];
        buf[block.off as usize..block.end() as usize].copy_from_slice(data);
    }

    /// Deliver a sent message into the mailbox, applying the fault layer
    /// (drop / duplicate / corrupt) when one is installed. The send request
    /// still completes eagerly either way — exactly like a buffered MPI
    /// send whose payload is lost on the wire.
    fn post_message(&mut self, from: Rank, to: Rank, tag: u32, mut data: Vec<u8>) {
        if let Some(inj) = self.injector {
            let seq = {
                let c = self.seqs.entry((from, to, tag)).or_insert(0);
                let s = *c;
                *c += 1;
                s
            };
            let fault = inj.on_message(from, to, tag, seq);
            if fault.drop {
                self.faults.dropped += 1;
                return;
            }
            if let Some(hint) = fault.corrupt {
                if !data.is_empty() {
                    let idx = (hint % data.len() as u64) as usize;
                    data[idx] ^= 0xA5;
                    self.faults.corrupted += 1;
                }
            }
            let q = self.mail.entry((from, to, tag)).or_default();
            if fault.duplicate {
                self.faults.duplicated += 1;
                q.push_back(data.clone());
            }
            q.push_back(data);
        } else {
            self.mail
                .entry((from, to, tag))
                .or_default()
                .push_back(data);
        }
    }

    /// Try to satisfy rank's pending receives, in posting order.
    fn progress_recvs(&mut self, rank: Rank) -> Result<bool, ExecError> {
        let mut any = false;
        let mut i = 0;
        while i < self.ranks[rank as usize].pending.len() {
            let (from, tag, block, req) = {
                let p = &self.ranks[rank as usize].pending[i];
                (p.from, p.tag, p.block, p.req)
            };
            let key = (from, rank, tag);
            let msg = match self.mail.get_mut(&key) {
                Some(q) if !q.is_empty() => q.pop_front().unwrap(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            if msg.len() as Bytes != block.len {
                return Err(ExecError::LengthMismatch {
                    rank,
                    from,
                    tag,
                    sent: msg.len() as Bytes,
                    posted: block.len,
                });
            }
            self.write_block(rank, block, &msg);
            self.messages += 1;
            self.message_bytes += msg.len() as Bytes;
            let st = &mut self.ranks[rank as usize];
            st.req_done[req as usize] = true;
            st.pending.remove(i);
            any = true;
        }
        Ok(any)
    }

    /// Advance one rank as far as possible; returns whether it progressed.
    fn advance(&mut self, rank: Rank) -> Result<bool, ExecError> {
        let mut progressed = self.progress_recvs(rank)?;
        loop {
            let st = &self.ranks[rank as usize];
            if st.done() {
                return Ok(progressed);
            }
            let top = st.prog.ops[st.pc];
            match top.op {
                Op::Isend {
                    to,
                    block,
                    tag,
                    req,
                    ..
                } => {
                    self.check_block(rank, block)?;
                    let data = self.read_block(rank, block);
                    self.post_message(rank, to, tag, data);
                    let st = &mut self.ranks[rank as usize];
                    st.req_done[req as usize] = true;
                    st.pc += 1;
                }
                Op::Irecv {
                    from,
                    block,
                    tag,
                    req,
                    ..
                } => {
                    self.check_block(rank, block)?;
                    let st = &mut self.ranks[rank as usize];
                    st.pending.push_back(PendingRecv {
                        from,
                        tag,
                        block,
                        req,
                    });
                    st.pc += 1;
                }
                Op::WaitAll { first_req, count } => {
                    self.progress_recvs(rank)?;
                    let st = &self.ranks[rank as usize];
                    let mut ready = true;
                    for req in first_req..first_req + count {
                        match st.req_done.get(req as usize) {
                            Some(true) => {}
                            Some(false) => {
                                ready = false;
                                break;
                            }
                            None => return Err(ExecError::UnknownRequest { rank, req }),
                        }
                    }
                    if !ready {
                        return Ok(progressed);
                    }
                    self.ranks[rank as usize].pc += 1;
                }
                Op::Copy { src, dst } => {
                    self.check_block(rank, src)?;
                    self.check_block(rank, dst)?;
                    let data = self.read_block(rank, src);
                    self.write_block(rank, dst, &data);
                    self.copy_bytes += data.len() as Bytes;
                    self.ranks[rank as usize].pc += 1;
                }
            }
            progressed = true;
        }
    }

    fn finish(mut self) -> Result<ExecResult, ExecError> {
        for (r, st) in self.ranks.iter().enumerate() {
            if !st.pending.is_empty() {
                return Err(ExecError::DanglingReceives {
                    rank: r as Rank,
                    count: st.pending.len(),
                });
            }
        }
        let leftover: usize = self.mail.values().map(|q| q.len()).sum();
        if leftover > 0 {
            return Err(ExecError::UnconsumedMessages { count: leftover });
        }
        let rbufs = self
            .ranks
            .iter_mut()
            .map(|st| {
                if st.bufs.len() > 1 {
                    std::mem::take(&mut st.bufs[1])
                } else {
                    Vec::new()
                }
            })
            .collect();
        Ok(ExecResult {
            rbufs,
            messages: self.messages,
            message_bytes: self.message_bytes,
            copy_bytes: self.copy_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgBuilder;
    use crate::ir::{Phase, RBUF, SBUF};

    /// A 2-rank ping-pong schedule for exercising the executor.
    struct TwoRank {
        progs: Vec<RankProgram>,
        bufsize: Bytes,
    }

    impl ScheduleSource for TwoRank {
        fn nranks(&self) -> usize {
            2
        }
        fn buffers(&self, _r: Rank) -> Vec<Bytes> {
            vec![self.bufsize, self.bufsize]
        }
        fn build_rank(&self, r: Rank) -> RankProgram {
            self.progs[r as usize].clone()
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["all"]
        }
    }

    fn swap_schedule() -> TwoRank {
        let mut progs = Vec::new();
        for me in 0..2u32 {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            b.sendrecv(
                peer,
                Block::new(SBUF, 0, 8),
                0,
                peer,
                Block::new(RBUF, 0, 8),
                0,
            );
            progs.push(b.finish());
        }
        TwoRank { progs, bufsize: 8 }
    }

    #[test]
    fn swap_moves_data() {
        let res = DataExecutor::run(&swap_schedule(), |r, buf| {
            buf.fill(r as u8 + 1);
        })
        .unwrap();
        assert_eq!(res.rbufs[0], vec![2u8; 8]);
        assert_eq!(res.rbufs[1], vec![1u8; 8]);
        assert_eq!(res.messages, 2);
        assert_eq!(res.message_bytes, 16);
    }

    #[test]
    fn blocking_recv_before_send_deadlocks() {
        // Both ranks do blocking recv first -> classic deadlock.
        let mut progs = Vec::new();
        for me in 0..2u32 {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            b.recv(peer, Block::new(RBUF, 0, 8), 0);
            b.send(peer, Block::new(SBUF, 0, 8), 0);
            progs.push(b.finish());
        }
        let err = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |_, _| {}).unwrap_err();
        assert!(matches!(err, ExecError::Deadlock { ref blocked } if blocked.len() == 2));
    }

    #[test]
    fn nonblocking_recv_before_send_is_fine() {
        let mut progs = Vec::new();
        for me in 0..2u32 {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            let r0 = b.irecv(peer, Block::new(RBUF, 0, 8), 0);
            b.isend(peer, Block::new(SBUF, 0, 8), 0);
            b.waitall(r0, 2);
            progs.push(b.finish());
        }
        DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |r, buf| buf.fill(r as u8)).unwrap();
    }

    #[test]
    fn tag_mismatch_deadlocks() {
        let mut progs = Vec::new();
        for me in 0..2u32 {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            let r0 = b.irecv(peer, Block::new(RBUF, 0, 8), 1); // wrong tag
            b.isend(peer, Block::new(SBUF, 0, 8), 0);
            b.waitall(r0, 2);
            progs.push(b.finish());
        }
        let err = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |_, _| {}).unwrap_err();
        assert!(matches!(err, ExecError::Deadlock { .. }));
    }

    #[test]
    fn length_mismatch_detected() {
        let mut progs = Vec::new();
        for me in 0..2u32 {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            let rlen = if me == 0 { 4 } else { 8 };
            let r0 = b.irecv(peer, Block::new(RBUF, 0, rlen), 0);
            b.isend(peer, Block::new(SBUF, 0, 8), 0);
            b.waitall(r0, 2);
            progs.push(b.finish());
        }
        let err = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |_, _| {}).unwrap_err();
        assert!(matches!(
            err,
            ExecError::LengthMismatch {
                sent: 8,
                posted: 4,
                ..
            }
        ));
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut b = ProgBuilder::new(Phase(0));
        b.copy(Block::new(SBUF, 4, 8), Block::new(RBUF, 0, 8));
        let progs = vec![b.finish(), RankProgram::default()];
        let err = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |_, _| {}).unwrap_err();
        assert!(matches!(
            err,
            ExecError::OutOfBounds {
                end: 12,
                size: 8,
                ..
            }
        ));
    }

    #[test]
    fn unconsumed_message_detected() {
        let mut b = ProgBuilder::new(Phase(0));
        b.isend(1, Block::new(SBUF, 0, 8), 0);
        let progs = vec![b.finish(), RankProgram::default()];
        let err = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |_, _| {}).unwrap_err();
        assert_eq!(err, ExecError::UnconsumedMessages { count: 1 });
    }

    #[test]
    fn fifo_ordering_per_source_and_tag() {
        // Rank 0 sends two messages with the same tag; rank 1 must receive
        // them in order.
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.isend(1, Block::new(SBUF, 0, 4), 0);
        b0.isend(1, Block::new(SBUF, 4, 4), 0);
        let mut b1 = ProgBuilder::new(Phase(0));
        let r = b1.irecv(0, Block::new(RBUF, 0, 4), 0);
        b1.irecv(0, Block::new(RBUF, 4, 4), 0);
        b1.waitall(r, 2);
        let progs = vec![b0.finish(), b1.finish()];
        let res = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |r, buf| {
            if r == 0 {
                buf[..4].fill(0xAA);
                buf[4..].fill(0xBB);
            }
        })
        .unwrap();
        assert_eq!(&res.rbufs[1][..4], &[0xAA; 4]);
        assert_eq!(&res.rbufs[1][4..], &[0xBB; 4]);
    }

    /// Deterministic injector for tests: faults messages by (to, seq) rule.
    struct DropFirstTo1;
    impl FaultInjector for DropFirstTo1 {
        fn on_message(&self, _from: Rank, to: Rank, _tag: u32, seq: u64) -> MessageFault {
            MessageFault {
                drop: to == 1 && seq == 0,
                ..MessageFault::default()
            }
        }
    }

    struct DupAll;
    impl FaultInjector for DupAll {
        fn on_message(&self, _f: Rank, _t: Rank, _tag: u32, _s: u64) -> MessageFault {
            MessageFault {
                duplicate: true,
                ..MessageFault::default()
            }
        }
    }

    struct CorruptAll;
    impl FaultInjector for CorruptAll {
        fn on_message(&self, _f: Rank, _t: Rank, _tag: u32, _s: u64) -> MessageFault {
            MessageFault {
                corrupt: Some(3),
                ..MessageFault::default()
            }
        }
    }

    #[test]
    fn injected_drop_detected_as_fault_wrapped_deadlock() {
        let err =
            DataExecutor::run_with_faults(&swap_schedule(), |_, _| {}, &DropFirstTo1).unwrap_err();
        match err {
            ExecError::FaultInjected { dropped, cause, .. } => {
                assert_eq!(dropped, 1);
                assert!(matches!(*cause, ExecError::Deadlock { .. }), "{cause}");
            }
            other => panic!("expected FaultInjected, got {other}"),
        }
    }

    #[test]
    fn injected_duplicate_detected_as_unconsumed() {
        let err = DataExecutor::run_with_faults(&swap_schedule(), |_, _| {}, &DupAll).unwrap_err();
        match err {
            ExecError::FaultInjected {
                duplicated, cause, ..
            } => {
                assert_eq!(duplicated, 2);
                assert!(matches!(*cause, ExecError::UnconsumedMessages { count: 2 }));
            }
            other => panic!("expected FaultInjected, got {other}"),
        }
    }

    #[test]
    fn injected_corruption_flips_exactly_one_byte() {
        let (res, stats) = DataExecutor::run_with_faults(
            &swap_schedule(),
            |r, buf| buf.fill(r as u8 + 1),
            &CorruptAll,
        )
        .unwrap();
        assert_eq!(stats.corrupted, 2);
        // Payloads still delivered, but one byte per message differs.
        let diffs: usize = res.rbufs[0].iter().filter(|&&b| b != 2).count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn clean_injector_behaves_like_plain_run() {
        struct Clean;
        impl FaultInjector for Clean {
            fn on_message(&self, _f: Rank, _t: Rank, _tag: u32, _s: u64) -> MessageFault {
                MessageFault::clean()
            }
        }
        let (res, stats) =
            DataExecutor::run_with_faults(&swap_schedule(), |r, buf| buf.fill(r as u8 + 1), &Clean)
                .unwrap();
        assert!(!stats.any());
        assert_eq!(res.rbufs[0], vec![2u8; 8]);
    }

    #[test]
    fn self_copy_via_copy_op() {
        let mut b = ProgBuilder::new(Phase(0));
        b.copy(Block::new(SBUF, 0, 8), Block::new(RBUF, 0, 8));
        let progs = vec![b.finish(), RankProgram::default()];
        let res = DataExecutor::run(&TwoRank { progs, bufsize: 8 }, |r, buf| {
            buf.fill(r as u8 + 9)
        })
        .unwrap();
        assert_eq!(res.rbufs[0], vec![9u8; 8]);
        assert_eq!(res.copy_bytes, 8);
    }
}
