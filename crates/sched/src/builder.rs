//! Safe construction of rank programs.
//!
//! The builder owns request-id allocation (dense, in program order) and the
//! current phase label, and provides the blocking-call sugar used by the
//! algorithm implementations: `send`/`recv`/`sendrecv` lower to
//! `Isend`/`Irecv` + `WaitAll` exactly as an MPI library would block.

use a2a_topo::Rank;

use crate::ir::{Block, Op, Phase, RankProgram, TimedOp};

/// Builder for one rank's [`RankProgram`].
#[derive(Debug)]
pub struct ProgBuilder {
    ops: Vec<TimedOp>,
    next_req: u32,
    phase: Phase,
}

impl ProgBuilder {
    pub fn new(initial_phase: Phase) -> Self {
        ProgBuilder {
            ops: Vec::new(),
            next_req: 0,
            phase: initial_phase,
        }
    }

    /// Label subsequent ops with `phase`.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// Current phase label.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    fn push(&mut self, op: Op) {
        self.ops.push(TimedOp {
            op,
            phase: self.phase,
        });
    }

    /// Post a non-blocking send; returns its request id.
    pub fn isend(&mut self, to: Rank, block: Block, tag: u32) -> u32 {
        let req = self.next_req;
        self.next_req += 1;
        self.push(Op::Isend {
            to,
            block,
            tag,
            req,
        });
        req
    }

    /// Post a non-blocking receive; returns its request id.
    pub fn irecv(&mut self, from: Rank, block: Block, tag: u32) -> u32 {
        let req = self.next_req;
        self.next_req += 1;
        self.push(Op::Irecv {
            from,
            block,
            tag,
            req,
        });
        req
    }

    /// Wait on the contiguous request range `first .. first + count`.
    ///
    /// # Panics
    /// Panics if the range names unallocated requests.
    pub fn waitall(&mut self, first: u32, count: u32) {
        assert!(
            first + count <= self.next_req,
            "waitall range {first}..{} exceeds allocated requests {}",
            first + count,
            self.next_req
        );
        if count > 0 {
            self.push(Op::WaitAll {
                first_req: first,
                count,
            });
        }
    }

    /// Wait on a single request.
    pub fn wait(&mut self, req: u32) {
        self.waitall(req, 1);
    }

    /// Local copy (repack step).
    ///
    /// # Panics
    /// Panics on length mismatch, a zero-length copy, or a same-buffer
    /// overlapping copy — all of which indicate a layout bug in the calling
    /// algorithm (the validator rejects overlapping copies too; see
    /// `ValidationError::CopyOverlap`).
    pub fn copy(&mut self, src: Block, dst: Block) {
        assert_eq!(src.len, dst.len, "copy length mismatch");
        assert!(src.len > 0, "zero-length copy");
        assert!(
            src.buf != dst.buf || src.end() <= dst.off || dst.end() <= src.off,
            "overlapping same-buffer copy"
        );
        self.push(Op::Copy { src, dst });
    }

    /// Blocking send: isend + wait.
    pub fn send(&mut self, to: Rank, block: Block, tag: u32) {
        let r = self.isend(to, block, tag);
        self.wait(r);
    }

    /// Blocking receive: irecv + wait.
    pub fn recv(&mut self, from: Rank, block: Block, tag: u32) {
        let r = self.irecv(from, block, tag);
        self.wait(r);
    }

    /// `MPI_Sendrecv`: both transfers posted, then a joint wait — the
    /// blocking structure pairwise exchange relies on.
    pub fn sendrecv(
        &mut self,
        to: Rank,
        sblock: Block,
        stag: u32,
        from: Rank,
        rblock: Block,
        rtag: u32,
    ) {
        let first = self.isend(to, sblock, stag);
        self.irecv(from, rblock, rtag);
        self.waitall(first, 2);
    }

    /// Number of requests allocated so far (the next id to be handed out).
    pub fn req_mark(&self) -> u32 {
        self.next_req
    }

    /// Ops recorded so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub fn finish(self) -> RankProgram {
        RankProgram {
            ops: self.ops,
            n_reqs: self.next_req,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{RBUF, SBUF};

    fn blk(off: u64, len: u64) -> Block {
        Block::new(SBUF, off, len)
    }

    #[test]
    fn request_ids_are_dense_and_ordered() {
        let mut b = ProgBuilder::new(Phase(0));
        assert_eq!(b.isend(1, blk(0, 4), 0), 0);
        assert_eq!(b.irecv(1, Block::new(RBUF, 0, 4), 0), 1);
        assert_eq!(b.isend(2, blk(4, 4), 0), 2);
        b.waitall(0, 3);
        let p = b.finish();
        assert_eq!(p.n_reqs, 3);
        assert_eq!(p.ops.len(), 4);
    }

    #[test]
    fn sendrecv_lowering() {
        let mut b = ProgBuilder::new(Phase(2));
        b.sendrecv(3, blk(0, 8), 5, 4, Block::new(RBUF, 0, 8), 5);
        let p = b.finish();
        assert_eq!(p.ops.len(), 3);
        assert!(matches!(p.ops[0].op, Op::Isend { to: 3, req: 0, .. }));
        assert!(matches!(
            p.ops[1].op,
            Op::Irecv {
                from: 4,
                req: 1,
                ..
            }
        ));
        assert!(matches!(
            p.ops[2].op,
            Op::WaitAll {
                first_req: 0,
                count: 2
            }
        ));
        assert!(p.ops.iter().all(|t| t.phase == Phase(2)));
    }

    #[test]
    fn blocking_send_recv_lowering() {
        let mut b = ProgBuilder::new(Phase(0));
        b.send(1, blk(0, 4), 0);
        b.recv(1, Block::new(RBUF, 0, 4), 0);
        let p = b.finish();
        assert_eq!(p.ops.len(), 4);
        assert!(matches!(
            p.ops[1].op,
            Op::WaitAll {
                first_req: 0,
                count: 1
            }
        ));
        assert!(matches!(
            p.ops[3].op,
            Op::WaitAll {
                first_req: 1,
                count: 1
            }
        ));
    }

    #[test]
    fn phase_tracking() {
        let mut b = ProgBuilder::new(Phase(0));
        b.copy(blk(0, 4), Block::new(RBUF, 0, 4));
        b.set_phase(Phase(1));
        assert_eq!(b.phase(), Phase(1));
        b.copy(blk(4, 4), Block::new(RBUF, 4, 4));
        let p = b.finish();
        assert_eq!(p.ops[0].phase, Phase(0));
        assert_eq!(p.ops[1].phase, Phase(1));
    }

    #[test]
    fn empty_waitall_elided() {
        let mut b = ProgBuilder::new(Phase(0));
        b.waitall(0, 0);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds allocated")]
    fn waitall_on_unallocated_requests_panics() {
        let mut b = ProgBuilder::new(Phase(0));
        b.waitall(0, 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_length_mismatch_panics() {
        let mut b = ProgBuilder::new(Phase(0));
        b.copy(blk(0, 4), Block::new(RBUF, 0, 8));
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_copy_panics() {
        let mut b = ProgBuilder::new(Phase(0));
        b.copy(blk(0, 0), Block::new(RBUF, 0, 0));
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_copy_panics() {
        let mut b = ProgBuilder::new(Phase(0));
        b.copy(blk(0, 8), blk(4, 8));
    }

    #[test]
    fn adjacent_same_buffer_copy_allowed() {
        let mut b = ProgBuilder::new(Phase(0));
        b.copy(blk(0, 4), blk(4, 4));
        assert_eq!(b.len(), 1);
    }
}
