//! The pre-fast-path data executor, preserved as a measurable baseline.
//!
//! [`LegacyDataExecutor`] is the original sequential oracle: it clones each
//! rank's program, allocates a fresh `Vec<u8>` per message, and keys
//! mailboxes by `HashMap<(from, to, tag)>`. The rewritten executor in
//! [`crate::exec`] replaces all three with borrowed programs, an arena +
//! message pool, and a dense mailbox table. Keeping this version compiled
//! serves two purposes:
//!
//! * the bench harness runs both paths in the same process and reports the
//!   speedup in `BENCH_4.json`;
//! * a differential test pins the fast path byte-identical to this one.
//!
//! Semantics are identical to the fast path by construction; do not "fix"
//! or optimise this file — it is the reference.

use std::collections::{HashMap, VecDeque};

use a2a_topo::Rank;

use crate::exec::{ExecError, ExecResult, FaultInjector, FaultStats};
use crate::ir::{Block, Bytes, Op, RankProgram};
use crate::ScheduleSource;

#[derive(Debug)]
struct PendingRecv {
    from: Rank,
    tag: u32,
    block: Block,
    req: u32,
}

struct RankState {
    prog: RankProgram,
    pc: usize,
    bufs: Vec<Vec<u8>>,
    req_done: Vec<bool>,
    /// Posted-but-unmatched receives, in posting order.
    pending: VecDeque<PendingRecv>,
}

impl RankState {
    fn done(&self) -> bool {
        self.pc >= self.prog.ops.len()
    }
}

/// Sequential round-robin executor, pre-PR allocation behaviour. See
/// module docs.
pub struct LegacyDataExecutor<'a> {
    ranks: Vec<RankState>,
    /// (from, to, tag) -> FIFO of message payloads.
    mail: HashMap<(Rank, Rank, u32), VecDeque<Vec<u8>>>,
    messages: usize,
    message_bytes: Bytes,
    copy_bytes: Bytes,
    /// Optional fault layer applied to every sent message.
    injector: Option<&'a dyn FaultInjector>,
    /// Per-(from, to, tag) send counters for fault sequencing.
    seqs: HashMap<(Rank, Rank, u32), u64>,
    faults: FaultStats,
}

impl<'a> LegacyDataExecutor<'a> {
    /// Execute `source`, filling each rank's send buffer with `fill`,
    /// and return the final receive buffers.
    pub fn run(
        source: &dyn ScheduleSource,
        fill: impl FnMut(Rank, &mut [u8]),
    ) -> Result<ExecResult, ExecError> {
        Self::run_inner(source, fill, None).map(|(res, _)| res)
    }

    /// Execute `source` with `injector` perturbing every message.
    pub fn run_with_faults(
        source: &dyn ScheduleSource,
        fill: impl FnMut(Rank, &mut [u8]),
        injector: &'a dyn FaultInjector,
    ) -> Result<(ExecResult, FaultStats), ExecError> {
        Self::run_inner(source, fill, Some(injector))
    }

    fn run_inner(
        source: &dyn ScheduleSource,
        mut fill: impl FnMut(Rank, &mut [u8]),
        injector: Option<&'a dyn FaultInjector>,
    ) -> Result<(ExecResult, FaultStats), ExecError> {
        let n = source.nranks();
        let mut ranks = Vec::with_capacity(n);
        for r in 0..n as Rank {
            let sizes = source.buffers(r);
            let mut bufs: Vec<Vec<u8>> = sizes.iter().map(|&s| vec![0u8; s as usize]).collect();
            if let Some(sbuf) = bufs.first_mut() {
                fill(r, sbuf);
            }
            let prog = source.build_rank(r);
            let n_reqs = prog.n_reqs as usize;
            ranks.push(RankState {
                prog,
                pc: 0,
                bufs,
                req_done: vec![false; n_reqs],
                pending: VecDeque::new(),
            });
        }
        let mut exec = LegacyDataExecutor {
            ranks,
            mail: HashMap::new(),
            messages: 0,
            message_bytes: 0,
            copy_bytes: 0,
            injector,
            seqs: HashMap::new(),
            faults: FaultStats::default(),
        };
        let driven = exec.drive();
        let faults = exec.faults;
        let res = driven.and_then(|()| exec.finish().map(|r| (r, faults)));
        match res {
            Err(cause) if faults.any() => Err(ExecError::FaultInjected {
                dropped: faults.dropped,
                duplicated: faults.duplicated,
                corrupted: faults.corrupted,
                cause: Box::new(cause),
            }),
            other => other,
        }
    }

    fn drive(&mut self) -> Result<(), ExecError> {
        loop {
            let mut progressed = false;
            let mut all_done = true;
            for r in 0..self.ranks.len() {
                progressed |= self.advance(r as Rank)?;
                all_done &= self.ranks[r].done();
            }
            if all_done {
                return Ok(());
            }
            if !progressed {
                let blocked = self
                    .ranks
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.done())
                    .map(|(r, s)| (r as Rank, s.pc))
                    .collect();
                return Err(ExecError::Deadlock { blocked });
            }
        }
    }

    fn check_block(&self, rank: Rank, block: Block) -> Result<(), ExecError> {
        let bufs = &self.ranks[rank as usize].bufs;
        let idx = block.buf.0 as usize;
        let size = match bufs.get(idx) {
            Some(b) => b.len() as Bytes,
            None => {
                return Err(ExecError::UnknownBuffer {
                    rank,
                    buf: block.buf.0,
                })
            }
        };
        if block.end() > size {
            return Err(ExecError::OutOfBounds {
                rank,
                buf: block.buf.0,
                end: block.end(),
                size,
            });
        }
        Ok(())
    }

    fn read_block(&self, rank: Rank, block: Block) -> Vec<u8> {
        let buf = &self.ranks[rank as usize].bufs[block.buf.0 as usize];
        buf[block.off as usize..block.end() as usize].to_vec()
    }

    fn write_block(&mut self, rank: Rank, block: Block, data: &[u8]) {
        let buf = &mut self.ranks[rank as usize].bufs[block.buf.0 as usize];
        buf[block.off as usize..block.end() as usize].copy_from_slice(data);
    }

    /// Deliver a sent message into the mailbox, applying the fault layer.
    /// Note the per-message owned `data` and the duplicate `clone()`: this
    /// allocation pattern is exactly what the fast path removes.
    fn post_message(&mut self, from: Rank, to: Rank, tag: u32, mut data: Vec<u8>) {
        if let Some(inj) = self.injector {
            let seq = {
                let c = self.seqs.entry((from, to, tag)).or_insert(0);
                let s = *c;
                *c += 1;
                s
            };
            let fault = inj.on_message(from, to, tag, seq);
            if fault.drop {
                self.faults.dropped += 1;
                return;
            }
            if fault.apply_corrupt(&mut data) {
                self.faults.corrupted += 1;
            }
            let q = self.mail.entry((from, to, tag)).or_default();
            if fault.duplicate {
                self.faults.duplicated += 1;
                q.push_back(data.clone());
            }
            q.push_back(data);
        } else {
            self.mail
                .entry((from, to, tag))
                .or_default()
                .push_back(data);
        }
    }

    /// Try to satisfy rank's pending receives, in posting order.
    fn progress_recvs(&mut self, rank: Rank) -> Result<bool, ExecError> {
        let mut any = false;
        let mut i = 0;
        while i < self.ranks[rank as usize].pending.len() {
            let (from, tag, block, req) = {
                let p = &self.ranks[rank as usize].pending[i];
                (p.from, p.tag, p.block, p.req)
            };
            let key = (from, rank, tag);
            let msg = match self.mail.get_mut(&key) {
                Some(q) if !q.is_empty() => q.pop_front().unwrap(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            if msg.len() as Bytes != block.len {
                return Err(ExecError::LengthMismatch {
                    rank,
                    from,
                    tag,
                    sent: msg.len() as Bytes,
                    posted: block.len,
                });
            }
            self.write_block(rank, block, &msg);
            self.messages += 1;
            self.message_bytes += msg.len() as Bytes;
            let st = &mut self.ranks[rank as usize];
            st.req_done[req as usize] = true;
            st.pending.remove(i);
            any = true;
        }
        Ok(any)
    }

    /// Advance one rank as far as possible; returns whether it progressed.
    fn advance(&mut self, rank: Rank) -> Result<bool, ExecError> {
        let mut progressed = self.progress_recvs(rank)?;
        loop {
            let st = &self.ranks[rank as usize];
            if st.done() {
                return Ok(progressed);
            }
            let top = st.prog.ops[st.pc];
            match top.op {
                Op::Isend {
                    to,
                    block,
                    tag,
                    req,
                    ..
                } => {
                    self.check_block(rank, block)?;
                    let data = self.read_block(rank, block);
                    self.post_message(rank, to, tag, data);
                    let st = &mut self.ranks[rank as usize];
                    st.req_done[req as usize] = true;
                    st.pc += 1;
                }
                Op::Irecv {
                    from,
                    block,
                    tag,
                    req,
                    ..
                } => {
                    self.check_block(rank, block)?;
                    let st = &mut self.ranks[rank as usize];
                    st.pending.push_back(PendingRecv {
                        from,
                        tag,
                        block,
                        req,
                    });
                    st.pc += 1;
                }
                Op::WaitAll { first_req, count } => {
                    self.progress_recvs(rank)?;
                    let st = &self.ranks[rank as usize];
                    let mut ready = true;
                    for req in first_req..first_req + count {
                        match st.req_done.get(req as usize) {
                            Some(true) => {}
                            Some(false) => {
                                ready = false;
                                break;
                            }
                            None => return Err(ExecError::UnknownRequest { rank, req }),
                        }
                    }
                    if !ready {
                        return Ok(progressed);
                    }
                    self.ranks[rank as usize].pc += 1;
                }
                Op::Copy { src, dst } => {
                    self.check_block(rank, src)?;
                    self.check_block(rank, dst)?;
                    let data = self.read_block(rank, src);
                    self.write_block(rank, dst, &data);
                    self.copy_bytes += data.len() as Bytes;
                    self.ranks[rank as usize].pc += 1;
                }
            }
            progressed = true;
        }
    }

    fn finish(mut self) -> Result<ExecResult, ExecError> {
        for (r, st) in self.ranks.iter().enumerate() {
            if !st.pending.is_empty() {
                return Err(ExecError::DanglingReceives {
                    rank: r as Rank,
                    count: st.pending.len(),
                });
            }
        }
        let leftover: usize = self.mail.values().map(|q| q.len()).sum();
        if leftover > 0 {
            return Err(ExecError::UnconsumedMessages { count: leftover });
        }
        let rbufs = self
            .ranks
            .iter_mut()
            .map(|st| {
                if st.bufs.len() > 1 {
                    std::mem::take(&mut st.bufs[1])
                } else {
                    Vec::new()
                }
            })
            .collect();
        Ok(ExecResult {
            rbufs,
            messages: self.messages,
            message_bytes: self.message_bytes,
            copy_bytes: self.copy_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgBuilder;
    use crate::ir::{Phase, RBUF, SBUF};
    use std::borrow::Cow;

    struct TwoRank {
        progs: Vec<RankProgram>,
        bufsize: Bytes,
    }

    impl ScheduleSource for TwoRank {
        fn nranks(&self) -> usize {
            2
        }
        fn buffers(&self, _r: Rank) -> Vec<Bytes> {
            vec![self.bufsize, self.bufsize]
        }
        fn rank_program(&self, r: Rank) -> Cow<'_, RankProgram> {
            Cow::Borrowed(&self.progs[r as usize])
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["all"]
        }
    }

    fn swap_schedule() -> TwoRank {
        let mut progs = Vec::new();
        for me in 0..2u32 {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            b.sendrecv(
                peer,
                Block::new(SBUF, 0, 8),
                0,
                peer,
                Block::new(RBUF, 0, 8),
                0,
            );
            progs.push(b.finish());
        }
        TwoRank { progs, bufsize: 8 }
    }

    #[test]
    fn legacy_swap_moves_data() {
        let res = LegacyDataExecutor::run(&swap_schedule(), |r, buf| {
            buf.fill(r as u8 + 1);
        })
        .unwrap();
        assert_eq!(res.rbufs[0], vec![2u8; 8]);
        assert_eq!(res.rbufs[1], vec![1u8; 8]);
        assert_eq!(res.messages, 2);
        assert_eq!(res.message_bytes, 16);
    }

    #[test]
    fn legacy_detects_deadlock() {
        let mut progs = Vec::new();
        for me in 0..2u32 {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            b.recv(peer, Block::new(RBUF, 0, 8), 0);
            b.send(peer, Block::new(SBUF, 0, 8), 0);
            progs.push(b.finish());
        }
        let err = LegacyDataExecutor::run(&TwoRank { progs, bufsize: 8 }, |_, _| {}).unwrap_err();
        assert!(matches!(err, ExecError::Deadlock { ref blocked } if blocked.len() == 2));
    }
}
