//! Communication-schedule IR for collective algorithms.
//!
//! An all-to-all algorithm in this suite is not executed directly: it
//! *compiles*, per rank, to a small program of MPI-shaped operations
//! ([`ir::Op`]) over named byte buffers. Three independent executors consume
//! the same programs:
//!
//! * the **data executor** in this crate ([`exec`]) moves real bytes through
//!   matched mailboxes and proves the schedule performs an exact all-to-all
//!   transpose;
//! * the **discrete-event simulator** in `a2a-netsim` assigns virtual time
//!   to every operation under a many-core cluster cost model;
//! * the **threaded runtime** in `a2a-runtime` runs the program on OS
//!   threads with real parallel data movement.
//!
//! Blocking MPI calls (`MPI_Send`, `MPI_Recv`, `MPI_Sendrecv`) are lowered
//! by the [`builder`] to `Isend`/`Irecv` + `WaitAll`, which preserves their
//! dependency structure (a `Sendrecv` blocks until both transfers complete)
//! while keeping the executors uniform.
//!
//! # Example
//!
//! ```
//! use a2a_sched::{Block, ProgBuilder, Phase, SBUF, RBUF};
//!
//! // Rank 0 of a 2-rank job: swap 8-byte blocks with rank 1.
//! let mut b = ProgBuilder::new(Phase(0));
//! b.copy(Block::new(SBUF, 0, 8), Block::new(RBUF, 0, 8)); // self block
//! b.sendrecv(1, Block::new(SBUF, 8, 8), 7, 1, Block::new(RBUF, 8, 8), 7);
//! let prog = b.finish();
//! assert_eq!(prog.ops.len(), 4); // copy, isend, irecv, waitall
//! ```

pub mod analysis;
pub mod builder;
pub mod exec;
pub mod exec_legacy;
pub mod ir;
pub mod validate;
pub mod verify;

pub use builder::ProgBuilder;
pub use exec::{
    DataExecutor, ExecError, ExecScratch, ExecStats, FaultInjector, FaultStats, MessageFault,
    PreparedSchedule,
};
pub use exec_legacy::LegacyDataExecutor;
pub use ir::{Block, BufId, Bytes, Op, Phase, RankProgram, TimedOp, RBUF, SBUF, TMP0, TMP1, TMP2};
pub use validate::{validate, ScheduleStats, ValidationError};
pub use verify::{
    check_allgather_rbuf, check_alltoall_rbuf, fill_allgather_sbuf, fill_alltoall_sbuf,
    pattern_byte, run_and_verify, run_and_verify_allgather, run_and_verify_bcast,
};

use a2a_topo::Rank;

/// A complete schedule: per-rank programs plus per-rank buffer sizes,
/// produced lazily so multi-thousand-rank schedules need not be resident
/// all at once.
///
/// `build_rank` and `rank_program` default to each other, so an
/// implementation must override at least one. Generator-style sources
/// (the algorithms) implement `build_rank`; sources that already hold
/// their programs (test fixtures, [`PreparedSchedule`]) override
/// `rank_program` to hand out borrows, which keeps the executors'
/// hot path free of per-run op-list clones.
pub trait ScheduleSource {
    /// Number of ranks participating.
    fn nranks(&self) -> usize;

    /// Sizes of each rank's buffers, indexed by [`BufId`]. Index 0 is the
    /// send buffer, index 1 the receive buffer; further entries are
    /// algorithm temporaries (may differ per rank, e.g. leaders vs members).
    fn buffers(&self, rank: Rank) -> Vec<Bytes>;

    /// Build rank `rank`'s program (owned).
    fn build_rank(&self, rank: Rank) -> RankProgram {
        self.rank_program(rank).into_owned()
    }

    /// Rank `rank`'s program, borrowed when the source already stores it.
    /// Executors call this, never `build_rank`, so a stored program is
    /// executed in place.
    fn rank_program(&self, rank: Rank) -> std::borrow::Cow<'_, RankProgram> {
        std::borrow::Cow::Owned(self.build_rank(rank))
    }

    /// Human-readable phase names; `Phase(i)` indexes this list.
    fn phase_names(&self) -> Vec<&'static str>;
}
