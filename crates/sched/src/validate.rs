//! Structural validation of schedules, independent of execution.
//!
//! The validator proves, by inspection alone, that a schedule is
//! *well-formed*: every send has exactly one matching receive (same peer,
//! tag, and length, in FIFO order), every request is posted once and waited
//! on, every block stays inside its declared buffer, and no rank messages
//! itself (self-traffic must be a `Copy`). It also gathers the per-locality
//! statistics (message and byte counts per level) that the paper's analysis
//! sections reason about, which the invariant tests assert on.

use std::collections::HashMap;

use a2a_topo::{Level, ProcGrid, Rank};

use crate::ir::{Block, Bytes, Op};
use crate::ScheduleSource;

/// Message-matching ledger: `(from, to, tag)` -> (send lengths, recv
/// lengths), each in program order.
type MatchLedger = HashMap<(Rank, Rank, u32), (Vec<Bytes>, Vec<Bytes>)>;

/// Why a schedule is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Schedule rank count differs from the grid's world size.
    WorldSizeMismatch { schedule: usize, grid: usize },
    /// Block exceeds its declared buffer size (or names an undeclared one).
    BadBlock {
        rank: Rank,
        block: Block,
        bufsize: Option<Bytes>,
    },
    /// `Isend` addressed to the sending rank itself.
    SelfMessage { rank: Rank },
    /// A message peer outside `0..nranks`.
    BadPeer { rank: Rank, peer: Rank },
    /// Request posted more than once, or `WaitAll` range out of bounds.
    BadRequest { rank: Rank, req: u32 },
    /// A `WaitAll` covers a request that is only posted later in program
    /// order — the wait would block on a request that does not exist yet.
    WaitBeforePost { rank: Rank, req: u32 },
    /// A posted request is never waited on.
    UnwaitedRequest { rank: Rank, req: u32 },
    /// A `Copy` whose source and destination ranges intersect in the same
    /// buffer. All three executors happen to share memmove semantics, but
    /// no algorithm needs an overlapping repack, so the validator rejects
    /// it outright rather than blessing executor-dependent behaviour.
    CopyOverlap { rank: Rank, src: Block, dst: Block },
    /// Send/receive sequences between a rank pair + tag don't line up.
    MatchFailure {
        from: Rank,
        to: Rank,
        tag: u32,
        sends: usize,
        recvs: usize,
    },
    /// Matched send/receive lengths differ at some position.
    MatchLengthFailure {
        from: Rank,
        to: Rank,
        tag: u32,
        index: usize,
        send_len: Bytes,
        recv_len: Bytes,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::WorldSizeMismatch { schedule, grid } => write!(
                f,
                "schedule is built for {schedule} rank(s) but the grid has {grid}"
            ),
            ValidationError::BadBlock {
                rank,
                block,
                bufsize: Some(size),
            } => write!(
                f,
                "rank {rank}: block [{}..{}) leaves buffer {} ({size} bytes) or is empty",
                block.off,
                block.end(),
                block.buf.0
            ),
            ValidationError::BadBlock {
                rank,
                block,
                bufsize: None,
            } => write!(
                f,
                "rank {rank}: block [{}..{}) names undeclared buffer {}",
                block.off,
                block.end(),
                block.buf.0
            ),
            ValidationError::SelfMessage { rank } => write!(
                f,
                "rank {rank} sends a message to itself; self-traffic must be a Copy"
            ),
            ValidationError::BadPeer { rank, peer } => {
                write!(
                    f,
                    "rank {rank} addresses peer {peer}, which is not in the world"
                )
            }
            ValidationError::BadRequest { rank, req } => write!(
                f,
                "rank {rank}: request {req} is posted twice, never posted, or waited out of range"
            ),
            ValidationError::WaitBeforePost { rank, req } => write!(
                f,
                "rank {rank}: request {req} is waited on before it is posted"
            ),
            ValidationError::UnwaitedRequest { rank, req } => write!(
                f,
                "rank {rank}: request {req} is posted but never waited on"
            ),
            ValidationError::CopyOverlap { rank, src, dst } => write!(
                f,
                "rank {rank}: copy source [{}..{}) overlaps destination [{}..{}) in buffer {}",
                src.off,
                src.end(),
                dst.off,
                dst.end(),
                src.buf.0
            ),
            ValidationError::MatchFailure {
                from,
                to,
                tag,
                sends,
                recvs,
            } => write!(
                f,
                "channel {from}->{to} tag {tag}: {sends} send(s) but {recvs} receive(s)"
            ),
            ValidationError::MatchLengthFailure {
                from,
                to,
                tag,
                index,
                send_len,
                recv_len,
            } => write!(
                f,
                "channel {from}->{to} tag {tag}: message {index} sends {send_len} bytes \
                 but its receive expects {recv_len}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Per-level traffic statistics for a validated schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Message count per locality level, indexed by [`level_index`].
    pub msgs: [usize; 4],
    /// Payload bytes per locality level.
    pub bytes: [Bytes; 4],
    /// Locally copied (repack) bytes across all ranks.
    pub copy_bytes: Bytes,
    /// Maximum number of sends posted by any single rank.
    pub max_sends_per_rank: usize,
    /// Maximum inter-node sends posted by any single rank.
    pub max_internode_sends_per_rank: usize,
    /// Total temporary-buffer bytes declared across ranks (excludes s/r bufs).
    pub tmp_bytes: Bytes,
}

/// Dense index for the four inter-rank locality levels.
pub fn level_index(level: Level) -> usize {
    match level {
        Level::SelfRank => unreachable!("self messages are rejected"),
        Level::IntraNuma => 0,
        Level::IntraSocket => 1,
        Level::InterSocket => 2,
        Level::InterNode => 3,
    }
}

impl ScheduleStats {
    /// Messages that stay within a node.
    pub fn intra_node_msgs(&self) -> usize {
        self.msgs[0] + self.msgs[1] + self.msgs[2]
    }

    /// Messages that cross the network.
    pub fn inter_node_msgs(&self) -> usize {
        self.msgs[3]
    }

    /// Bytes that cross the network.
    pub fn inter_node_bytes(&self) -> Bytes {
        self.bytes[3]
    }

    /// Bytes that stay within a node.
    pub fn intra_node_bytes(&self) -> Bytes {
        self.bytes[0] + self.bytes[1] + self.bytes[2]
    }
}

/// Validate `source` against `grid` and collect traffic statistics.
pub fn validate(
    source: &dyn ScheduleSource,
    grid: &ProcGrid,
) -> Result<ScheduleStats, ValidationError> {
    let n = source.nranks();
    if n != grid.world_size() {
        return Err(ValidationError::WorldSizeMismatch {
            schedule: n,
            grid: grid.world_size(),
        });
    }

    let mut stats = ScheduleStats::default();
    let mut matching: MatchLedger = HashMap::new();

    for rank in 0..n as Rank {
        let sizes = source.buffers(rank);
        stats.tmp_bytes += sizes.iter().skip(2).sum::<Bytes>();
        let prog = source.build_rank(rank);
        let mut posted = vec![false; prog.n_reqs as usize];
        let mut waited = vec![false; prog.n_reqs as usize];
        let mut sends = 0usize;
        let mut internode_sends = 0usize;

        let check_block = |block: Block| -> Result<(), ValidationError> {
            match sizes.get(block.buf.0 as usize) {
                Some(&sz) if block.end() <= sz && block.len > 0 => Ok(()),
                Some(&sz) => Err(ValidationError::BadBlock {
                    rank,
                    block,
                    bufsize: Some(sz),
                }),
                None => Err(ValidationError::BadBlock {
                    rank,
                    block,
                    bufsize: None,
                }),
            }
        };
        let post = |req: u32, posted: &mut Vec<bool>| -> Result<(), ValidationError> {
            match posted.get_mut(req as usize) {
                Some(p) if !*p => {
                    *p = true;
                    Ok(())
                }
                _ => Err(ValidationError::BadRequest { rank, req }),
            }
        };

        for top in &prog.ops {
            match top.op {
                Op::Isend {
                    to,
                    block,
                    tag,
                    req,
                } => {
                    check_block(block)?;
                    post(req, &mut posted)?;
                    if to == rank {
                        return Err(ValidationError::SelfMessage { rank });
                    }
                    if to as usize >= n {
                        return Err(ValidationError::BadPeer { rank, peer: to });
                    }
                    matching
                        .entry((rank, to, tag))
                        .or_default()
                        .0
                        .push(block.len);
                    let li = level_index(grid.level(rank, to));
                    stats.msgs[li] += 1;
                    stats.bytes[li] += block.len;
                    sends += 1;
                    if li == 3 {
                        internode_sends += 1;
                    }
                }
                Op::Irecv {
                    from,
                    block,
                    tag,
                    req,
                } => {
                    check_block(block)?;
                    post(req, &mut posted)?;
                    if from == rank {
                        return Err(ValidationError::SelfMessage { rank });
                    }
                    if from as usize >= n {
                        return Err(ValidationError::BadPeer { rank, peer: from });
                    }
                    matching
                        .entry((from, rank, tag))
                        .or_default()
                        .1
                        .push(block.len);
                }
                Op::WaitAll { first_req, count } => {
                    for req in first_req..first_req + count {
                        match waited.get_mut(req as usize) {
                            Some(w) => {
                                if !posted[req as usize] {
                                    return Err(ValidationError::WaitBeforePost { rank, req });
                                }
                                *w = true
                            }
                            None => return Err(ValidationError::BadRequest { rank, req }),
                        }
                    }
                }
                Op::Copy { src, dst } => {
                    check_block(src)?;
                    check_block(dst)?;
                    if src.buf == dst.buf && src.off < dst.end() && dst.off < src.end() {
                        return Err(ValidationError::CopyOverlap { rank, src, dst });
                    }
                    stats.copy_bytes += src.len;
                }
            }
        }

        for req in 0..prog.n_reqs {
            if !posted[req as usize] {
                return Err(ValidationError::BadRequest { rank, req });
            }
            if !waited[req as usize] {
                return Err(ValidationError::UnwaitedRequest { rank, req });
            }
        }
        stats.max_sends_per_rank = stats.max_sends_per_rank.max(sends);
        stats.max_internode_sends_per_rank =
            stats.max_internode_sends_per_rank.max(internode_sends);
    }

    for ((from, to, tag), (sends, recvs)) in &matching {
        if sends.len() != recvs.len() {
            return Err(ValidationError::MatchFailure {
                from: *from,
                to: *to,
                tag: *tag,
                sends: sends.len(),
                recvs: recvs.len(),
            });
        }
        for (i, (s, r)) in sends.iter().zip(recvs).enumerate() {
            if s != r {
                return Err(ValidationError::MatchLengthFailure {
                    from: *from,
                    to: *to,
                    tag: *tag,
                    index: i,
                    send_len: *s,
                    recv_len: *r,
                });
            }
        }
    }

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgBuilder;
    use crate::ir::{Phase, RankProgram, RBUF, SBUF};

    struct Fixed {
        progs: Vec<RankProgram>,
        bufsize: Bytes,
    }

    impl ScheduleSource for Fixed {
        fn nranks(&self) -> usize {
            self.progs.len()
        }
        fn buffers(&self, _r: Rank) -> Vec<Bytes> {
            vec![self.bufsize, self.bufsize]
        }
        fn rank_program(&self, r: Rank) -> std::borrow::Cow<'_, RankProgram> {
            std::borrow::Cow::Borrowed(&self.progs[r as usize])
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["all"]
        }
    }

    fn grid2() -> ProcGrid {
        // 2 ranks on one node, same NUMA.
        ProcGrid::new(a2a_topo::Machine::custom("t", 1, 1, 1, 2))
    }

    fn swap() -> Fixed {
        let mut progs = Vec::new();
        for me in 0..2u32 {
            let peer = 1 - me;
            let mut b = ProgBuilder::new(Phase(0));
            b.sendrecv(
                peer,
                Block::new(SBUF, 0, 8),
                0,
                peer,
                Block::new(RBUF, 0, 8),
                0,
            );
            progs.push(b.finish());
        }
        Fixed { progs, bufsize: 8 }
    }

    #[test]
    fn valid_swap_passes_with_stats() {
        let stats = validate(&swap(), &grid2()).unwrap();
        assert_eq!(stats.msgs[0], 2); // both intra-NUMA
        assert_eq!(stats.bytes[0], 16);
        assert_eq!(stats.inter_node_msgs(), 0);
        assert_eq!(stats.max_sends_per_rank, 1);
    }

    #[test]
    fn world_size_mismatch() {
        let g = ProcGrid::new(a2a_topo::Machine::custom("t", 1, 1, 1, 3));
        assert!(matches!(
            validate(&swap(), &g),
            Err(ValidationError::WorldSizeMismatch {
                schedule: 2,
                grid: 3
            })
        ));
    }

    #[test]
    fn unmatched_send_rejected() {
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.send(1, Block::new(SBUF, 0, 8), 0);
        let f = Fixed {
            progs: vec![b0.finish(), RankProgram::default()],
            bufsize: 8,
        };
        assert!(matches!(
            validate(&f, &grid2()),
            Err(ValidationError::MatchFailure {
                sends: 1,
                recvs: 0,
                ..
            })
        ));
    }

    #[test]
    fn matched_length_mismatch_rejected() {
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.send(1, Block::new(SBUF, 0, 8), 0);
        let mut b1 = ProgBuilder::new(Phase(0));
        b1.recv(0, Block::new(RBUF, 0, 4), 0);
        let f = Fixed {
            progs: vec![b0.finish(), b1.finish()],
            bufsize: 8,
        };
        assert!(matches!(
            validate(&f, &grid2()),
            Err(ValidationError::MatchLengthFailure {
                send_len: 8,
                recv_len: 4,
                ..
            })
        ));
    }

    #[test]
    fn self_message_rejected() {
        let mut b0 = ProgBuilder::new(Phase(0));
        let r = b0.irecv(0, Block::new(RBUF, 0, 8), 0);
        b0.isend(0, Block::new(SBUF, 0, 8), 0);
        b0.waitall(r, 2);
        let f = Fixed {
            progs: vec![b0.finish(), RankProgram::default()],
            bufsize: 8,
        };
        assert!(matches!(
            validate(&f, &grid2()),
            Err(ValidationError::SelfMessage { rank: 0 })
        ));
    }

    #[test]
    fn out_of_range_peer_rejected() {
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.send(7, Block::new(SBUF, 0, 8), 0);
        let f = Fixed {
            progs: vec![b0.finish(), RankProgram::default()],
            bufsize: 8,
        };
        assert!(matches!(
            validate(&f, &grid2()),
            Err(ValidationError::BadPeer { peer: 7, .. })
        ));
    }

    #[test]
    fn oversize_block_rejected() {
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.copy(Block::new(SBUF, 4, 8), Block::new(RBUF, 0, 8));
        let f = Fixed {
            progs: vec![b0.finish(), RankProgram::default()],
            bufsize: 8,
        };
        assert!(matches!(
            validate(&f, &grid2()),
            Err(ValidationError::BadBlock { .. })
        ));
    }

    #[test]
    fn unwaited_request_rejected() {
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.isend(1, Block::new(SBUF, 0, 8), 0); // never waited
        let mut b1 = ProgBuilder::new(Phase(0));
        b1.recv(0, Block::new(RBUF, 0, 8), 0);
        let f = Fixed {
            progs: vec![b0.finish(), b1.finish()],
            bufsize: 8,
        };
        assert!(matches!(
            validate(&f, &grid2()),
            Err(ValidationError::UnwaitedRequest { rank: 0, req: 0 })
        ));
    }

    #[test]
    fn wait_before_post_rejected() {
        // Hand-built: wait on req 1 before the recv that posts it.
        use crate::ir::TimedOp;
        let p0 = RankProgram {
            ops: vec![
                TimedOp {
                    op: Op::Isend {
                        to: 1,
                        block: Block::new(SBUF, 0, 8),
                        tag: 0,
                        req: 0,
                    },
                    phase: Phase(0),
                },
                TimedOp {
                    op: Op::WaitAll {
                        first_req: 0,
                        count: 2,
                    },
                    phase: Phase(0),
                },
                TimedOp {
                    op: Op::Irecv {
                        from: 1,
                        block: Block::new(RBUF, 0, 8),
                        tag: 0,
                        req: 1,
                    },
                    phase: Phase(0),
                },
            ],
            n_reqs: 2,
        };
        let mut b1 = ProgBuilder::new(Phase(0));
        b1.sendrecv(0, Block::new(SBUF, 0, 8), 0, 0, Block::new(RBUF, 0, 8), 0);
        let f = Fixed {
            progs: vec![p0, b1.finish()],
            bufsize: 8,
        };
        assert!(matches!(
            validate(&f, &grid2()),
            Err(ValidationError::WaitBeforePost { rank: 0, req: 1 })
        ));
    }

    #[test]
    fn overlapping_copy_rejected() {
        // Hand-built (the builder refuses to construct this).
        use crate::ir::TimedOp;
        let p0 = RankProgram {
            ops: vec![TimedOp {
                op: Op::Copy {
                    src: Block::new(SBUF, 0, 6),
                    dst: Block::new(SBUF, 4, 6),
                },
                phase: Phase(0),
            }],
            n_reqs: 0,
        };
        let f = Fixed {
            progs: vec![p0, RankProgram::default()],
            bufsize: 16,
        };
        assert!(matches!(
            validate(&f, &grid2()),
            Err(ValidationError::CopyOverlap { rank: 0, .. })
        ));
    }

    #[test]
    fn display_messages_are_specific() {
        let e = ValidationError::MatchFailure {
            from: 3,
            to: 5,
            tag: 9,
            sends: 2,
            recvs: 1,
        };
        assert_eq!(
            e.to_string(),
            "channel 3->5 tag 9: 2 send(s) but 1 receive(s)"
        );
        let e = ValidationError::WaitBeforePost { rank: 4, req: 7 };
        assert_eq!(
            e.to_string(),
            "rank 4: request 7 is waited on before it is posted"
        );
        let e = ValidationError::CopyOverlap {
            rank: 1,
            src: Block::new(SBUF, 0, 8),
            dst: Block::new(SBUF, 4, 8),
        };
        assert_eq!(
            e.to_string(),
            "rank 1: copy source [0..8) overlaps destination [4..12) in buffer 0"
        );
    }

    #[test]
    fn internode_stats_counted() {
        let g = ProcGrid::new(a2a_topo::Machine::custom("t", 2, 1, 1, 1));
        let stats = validate(&swap(), &g).unwrap();
        assert_eq!(stats.inter_node_msgs(), 2);
        assert_eq!(stats.inter_node_bytes(), 16);
        assert_eq!(stats.intra_node_msgs(), 0);
        assert_eq!(stats.max_internode_sends_per_rank, 1);
    }
}
