//! All-to-all transpose verification helpers.
//!
//! The all-to-all contract: with `n` ranks and `s` bytes per block, rank
//! `r`'s send buffer holds block `j` (bytes `j*s .. (j+1)*s`) destined for
//! rank `j`, and after the exchange rank `r`'s receive buffer holds at block
//! `i` the data rank `i` sent to `r`. We fill send buffers with a
//! position-dependent pseudo-random pattern so any misrouted, duplicated,
//! or shifted byte is detected.

use a2a_topo::Rank;

use crate::exec::{DataExecutor, ExecResult};
use crate::ir::Bytes;
use crate::ScheduleSource;

/// Deterministic pattern byte for (source rank, destination rank, byte
/// index). A small integer mix so neighbouring positions differ.
pub fn pattern_byte(src: Rank, dst: Rank, idx: u64) -> u8 {
    let mut x = (src as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(idx.wrapping_mul(0x1656_67B1_9E37_79F9));
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 29;
    x as u8
}

/// Fill `rank`'s send buffer for an `n`-rank, `s`-bytes-per-block all-to-all.
///
/// # Panics
/// Panics if the buffer is smaller than `n * s`.
pub fn fill_alltoall_sbuf(rank: Rank, n: usize, s: Bytes, buf: &mut [u8]) {
    assert!(
        buf.len() as Bytes >= n as Bytes * s,
        "send buffer too small"
    );
    for dst in 0..n {
        for k in 0..s {
            buf[(dst as Bytes * s + k) as usize] = pattern_byte(rank, dst as Rank, k);
        }
    }
}

/// Check `rank`'s receive buffer against the expected transpose. Returns a
/// description of the first mismatch, if any.
pub fn check_alltoall_rbuf(rank: Rank, n: usize, s: Bytes, buf: &[u8]) -> Result<(), String> {
    if (buf.len() as Bytes) < n as Bytes * s {
        return Err(format!(
            "rank {rank}: receive buffer has {} bytes, expected at least {}",
            buf.len(),
            n as Bytes * s
        ));
    }
    for src in 0..n {
        for k in 0..s {
            let got = buf[(src as Bytes * s + k) as usize];
            let want = pattern_byte(src as Rank, rank, k);
            if got != want {
                return Err(format!(
                    "rank {rank}: block from {src} byte {k}: got {got:#04x}, want {want:#04x}"
                ));
            }
        }
    }
    Ok(())
}

/// Execute `source` with the standard all-to-all fill and verify every
/// rank's receive buffer is the exact transpose.
pub fn run_and_verify(source: &dyn ScheduleSource, s: Bytes) -> Result<ExecResult, String> {
    let n = source.nranks();
    let res = DataExecutor::run(source, |r, buf| fill_alltoall_sbuf(r, n, s, buf))
        .map_err(|e| e.to_string())?;
    for (r, rbuf) in res.rbufs.iter().enumerate() {
        check_alltoall_rbuf(r as Rank, n, s, rbuf)?;
    }
    Ok(res)
}

/// Fill `rank`'s allgather contribution (`s` bytes).
pub fn fill_allgather_sbuf(rank: Rank, s: Bytes, buf: &mut [u8]) {
    assert!(buf.len() as Bytes >= s, "contribution buffer too small");
    for k in 0..s {
        buf[k as usize] = pattern_byte(rank, rank, k);
    }
}

/// Check an allgather result: block `j` must be rank `j`'s contribution.
pub fn check_allgather_rbuf(rank: Rank, n: usize, s: Bytes, buf: &[u8]) -> Result<(), String> {
    if (buf.len() as Bytes) < n as Bytes * s {
        return Err(format!(
            "rank {rank}: allgather buffer has {} bytes, expected {}",
            buf.len(),
            n as Bytes * s
        ));
    }
    for src in 0..n as Rank {
        for k in 0..s {
            let got = buf[(src as Bytes * s + k) as usize];
            let want = pattern_byte(src, src, k);
            if got != want {
                return Err(format!(
                    "rank {rank}: allgather block {src} byte {k}: got {got:#04x}, want {want:#04x}"
                ));
            }
        }
    }
    Ok(())
}

/// Execute an allgather schedule (each rank contributes `s` bytes) and
/// verify every rank assembled all contributions in rank order.
pub fn run_and_verify_allgather(
    source: &dyn ScheduleSource,
    s: Bytes,
) -> Result<ExecResult, String> {
    let n = source.nranks();
    let res = DataExecutor::run(source, |r, buf| fill_allgather_sbuf(r, s, buf))
        .map_err(|e| e.to_string())?;
    for (r, rbuf) in res.rbufs.iter().enumerate() {
        check_allgather_rbuf(r as Rank, n, s, rbuf)?;
    }
    Ok(res)
}

/// Execute a broadcast schedule (root `root` contributes `len` bytes in its
/// send buffer) and verify every rank's receive buffer holds the payload.
pub fn run_and_verify_bcast(
    source: &dyn ScheduleSource,
    root: Rank,
    len: Bytes,
) -> Result<ExecResult, String> {
    let res = DataExecutor::run(source, |r, buf| {
        if r == root {
            for k in 0..len {
                buf[k as usize] = pattern_byte(root, root, k);
            }
        }
    })
    .map_err(|e| e.to_string())?;
    for (r, rbuf) in res.rbufs.iter().enumerate() {
        if (rbuf.len() as Bytes) < len {
            return Err(format!("rank {r}: bcast buffer too small"));
        }
        for k in 0..len {
            let got = rbuf[k as usize];
            let want = pattern_byte(root, root, k);
            if got != want {
                return Err(format!(
                    "rank {r}: bcast byte {k}: got {got:#04x}, want {want:#04x}"
                ));
            }
        }
    }
    Ok(res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgBuilder;
    use crate::ir::{Block, Phase, RankProgram, RBUF, SBUF};

    #[test]
    fn pattern_distinguishes_positions() {
        // Not a strong hash test; just ensure the pattern is not constant
        // along each axis.
        assert_ne!(pattern_byte(0, 1, 0), pattern_byte(1, 0, 0));
        let k_differs = (1..64).any(|k| pattern_byte(2, 3, k) != pattern_byte(2, 3, 0));
        assert!(k_differs);
        let dst_differs = (1..64).any(|d| pattern_byte(2, d, 5) != pattern_byte(2, 0, 5));
        assert!(dst_differs);
    }

    #[test]
    fn fill_then_check_roundtrip() {
        // A buffer filled as rank r's *send* view, reinterpreted as every
        // destination's receive block, must check out.
        let (n, s) = (4usize, 8u64);
        let mut bufs: Vec<Vec<u8>> = (0..n)
            .map(|r| {
                let mut b = vec![0u8; (n as u64 * s) as usize];
                fill_alltoall_sbuf(r as Rank, n, s, &mut b);
                b
            })
            .collect();
        // Manually transpose.
        let mut rbufs = vec![vec![0u8; (n as u64 * s) as usize]; n];
        for src in 0..n {
            for dst in 0..n {
                let blk = &bufs[src][(dst as u64 * s) as usize..((dst as u64 + 1) * s) as usize];
                rbufs[dst][(src as u64 * s) as usize..((src as u64 + 1) * s) as usize]
                    .copy_from_slice(blk);
            }
        }
        for (r, rb) in rbufs.iter().enumerate() {
            check_alltoall_rbuf(r as Rank, n, s, rb).unwrap();
        }
        // Corrupt one byte and expect detection.
        bufs[0][0] ^= 1;
        rbufs[0][0] ^= 1;
        assert!(check_alltoall_rbuf(0, n, s, &rbufs[0]).is_err());
    }

    /// Hand-written 2-rank direct exchange to smoke-test run_and_verify.
    struct Direct2 {
        s: Bytes,
    }

    impl ScheduleSource for Direct2 {
        fn nranks(&self) -> usize {
            2
        }
        fn buffers(&self, _r: Rank) -> Vec<Bytes> {
            vec![2 * self.s, 2 * self.s]
        }
        fn build_rank(&self, r: Rank) -> RankProgram {
            let peer = 1 - r;
            let s = self.s;
            let mut b = ProgBuilder::new(Phase(0));
            b.copy(
                Block::new(SBUF, r as u64 * s, s),
                Block::new(RBUF, r as u64 * s, s),
            );
            b.sendrecv(
                peer,
                Block::new(SBUF, peer as u64 * s, s),
                0,
                peer,
                Block::new(RBUF, peer as u64 * s, s),
                0,
            );
            b.finish()
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["exchange"]
        }
    }

    #[test]
    fn run_and_verify_accepts_correct_schedule() {
        let res = run_and_verify(&Direct2 { s: 16 }, 16).unwrap();
        assert_eq!(res.messages, 2);
    }

    /// Broken variant: swaps its own send blocks (wrong routing).
    struct Broken2;

    impl ScheduleSource for Broken2 {
        fn nranks(&self) -> usize {
            2
        }
        fn buffers(&self, _r: Rank) -> Vec<Bytes> {
            vec![32, 32]
        }
        fn build_rank(&self, r: Rank) -> RankProgram {
            let peer = 1 - r;
            let mut b = ProgBuilder::new(Phase(0));
            // Bug: sends the block meant for *itself* to the peer.
            b.copy(
                Block::new(SBUF, peer as u64 * 16, 16),
                Block::new(RBUF, r as u64 * 16, 16),
            );
            b.sendrecv(
                peer,
                Block::new(SBUF, r as u64 * 16, 16),
                0,
                peer,
                Block::new(RBUF, peer as u64 * 16, 16),
                0,
            );
            b.finish()
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["exchange"]
        }
    }

    #[test]
    fn run_and_verify_rejects_misrouted_schedule() {
        assert!(run_and_verify(&Broken2, 16).is_err());
    }
}
