//! The operation set.
//!
//! Four operations are enough to express every algorithm in the paper:
//! non-blocking send/receive, a wait over a contiguous request range, and a
//! local copy (the paper's "Repack Data" steps). Blocking calls are sugar
//! lowered by the builder.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use a2a_topo::Rank;

/// Byte counts and buffer offsets.
pub type Bytes = u64;

/// Identifies one of a rank's buffers. By convention `SBUF` (0) is the
/// user send buffer, `RBUF` (1) the user receive buffer; higher ids are
/// algorithm-internal temporaries declared via `ScheduleSource::buffers`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BufId(pub u8);

/// The user send buffer.
pub const SBUF: BufId = BufId(0);
/// The user receive buffer.
pub const RBUF: BufId = BufId(1);
/// First algorithm temporary.
pub const TMP0: BufId = BufId(2);
/// Second algorithm temporary.
pub const TMP1: BufId = BufId(3);
/// Third algorithm temporary.
pub const TMP2: BufId = BufId(4);

/// A contiguous byte range within one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Block {
    pub buf: BufId,
    pub off: Bytes,
    pub len: Bytes,
}

impl Block {
    pub fn new(buf: BufId, off: Bytes, len: Bytes) -> Self {
        Block { buf, off, len }
    }

    /// End offset (exclusive).
    pub fn end(&self) -> Bytes {
        self.off + self.len
    }
}

/// Phase label, indexing `ScheduleSource::phase_names`. Drives the paper's
/// per-phase timing breakdowns (Figures 13–16): the simulator accumulates
/// time per phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Phase(pub u8);

/// One MPI-shaped operation. Request ids are rank-local and allocated
/// densely by the builder; `WaitAll` names a contiguous id range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Op {
    /// Post a non-blocking send of `block` to world rank `to`.
    Isend {
        to: Rank,
        block: Block,
        tag: u32,
        req: u32,
    },
    /// Post a non-blocking receive into `block` from world rank `from`.
    Irecv {
        from: Rank,
        block: Block,
        tag: u32,
        req: u32,
    },
    /// Block until requests `first_req .. first_req + count` all complete.
    WaitAll { first_req: u32, count: u32 },
    /// Local memory copy (repack). `src.len == dst.len`.
    Copy { src: Block, dst: Block },
}

impl Op {
    /// Bytes moved by this op (message or copy length), 0 for waits.
    pub fn bytes(&self) -> Bytes {
        match self {
            Op::Isend { block, .. } | Op::Irecv { block, .. } => block.len,
            Op::Copy { src, .. } => src.len,
            Op::WaitAll { .. } => 0,
        }
    }
}

/// An op tagged with the phase it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct TimedOp {
    pub op: Op,
    pub phase: Phase,
}

/// One rank's complete program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct RankProgram {
    pub ops: Vec<TimedOp>,
    /// Number of request ids allocated (ids are `0..n_reqs`).
    pub n_reqs: u32,
}

impl RankProgram {
    /// Total message count (sends only, so a matched pair counts once).
    pub fn send_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|t| matches!(t.op, Op::Isend { .. }))
            .count()
    }

    /// Total bytes sent by this rank.
    pub fn send_bytes(&self) -> Bytes {
        self.ops
            .iter()
            .map(|t| match t.op {
                Op::Isend { block, .. } => block.len,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes copied locally (repack traffic).
    pub fn copy_bytes(&self) -> Bytes {
        self.ops
            .iter()
            .map(|t| match t.op {
                Op::Copy { src, .. } => src.len,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_end() {
        let b = Block::new(SBUF, 16, 8);
        assert_eq!(b.end(), 24);
    }

    #[test]
    fn op_bytes() {
        let blk = Block::new(SBUF, 0, 64);
        assert_eq!(
            Op::Isend {
                to: 1,
                block: blk,
                tag: 0,
                req: 0
            }
            .bytes(),
            64
        );
        assert_eq!(
            Op::Irecv {
                from: 1,
                block: blk,
                tag: 0,
                req: 0
            }
            .bytes(),
            64
        );
        assert_eq!(
            Op::Copy {
                src: blk,
                dst: Block::new(RBUF, 0, 64)
            }
            .bytes(),
            64
        );
        assert_eq!(
            Op::WaitAll {
                first_req: 0,
                count: 2
            }
            .bytes(),
            0
        );
    }

    #[test]
    fn program_accounting() {
        let blk = Block::new(SBUF, 0, 10);
        let prog = RankProgram {
            ops: vec![
                TimedOp {
                    op: Op::Isend {
                        to: 1,
                        block: blk,
                        tag: 0,
                        req: 0,
                    },
                    phase: Phase(0),
                },
                TimedOp {
                    op: Op::Copy {
                        src: blk,
                        dst: Block::new(RBUF, 0, 10),
                    },
                    phase: Phase(0),
                },
                TimedOp {
                    op: Op::Isend {
                        to: 2,
                        block: Block::new(SBUF, 10, 30),
                        tag: 0,
                        req: 1,
                    },
                    phase: Phase(1),
                },
            ],
            n_reqs: 2,
        };
        assert_eq!(prog.send_count(), 2);
        assert_eq!(prog.send_bytes(), 40);
        assert_eq!(prog.copy_bytes(), 10);
    }
}
