//! Byte-interval reasoning over [`Block`] regions.
//!
//! The zero-copy executor delivers a stable send with one direct memcpy at
//! receive time, which is only sound if the source bytes are unchanged
//! between `Isend` and the covering `WaitAll`. [`InFlight`] tracks exactly
//! that window — every posted-but-unwaited request with its region — so an
//! analysis pass can ask, at each op, "does this touch bytes that are in
//! flight?".

use a2a_topo::Rank;

use crate::ir::Block;

/// Whether two blocks name intersecting byte ranges of the same buffer.
pub fn overlaps(a: &Block, b: &Block) -> bool {
    a.buf == b.buf && a.off < b.end() && b.off < a.end()
}

/// One posted-but-unwaited request: its region plus enough context
/// (peer, tag, posting position) to render a useful diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingOp {
    pub req: u32,
    /// Index of the posting op in the rank's program.
    pub op_idx: usize,
    pub block: Block,
    /// Destination (for sends) or source (for receives) rank.
    pub peer: Rank,
    pub tag: u32,
}

/// The in-flight window of one rank, maintained while scanning its program
/// in order: post on `Isend`/`Irecv`, retire on `WaitAll`.
#[derive(Debug, Default)]
pub struct InFlight {
    sends: Vec<PendingOp>,
    recvs: Vec<PendingOp>,
}

impl InFlight {
    pub fn post_send(&mut self, p: PendingOp) {
        self.sends.push(p);
    }

    pub fn post_recv(&mut self, p: PendingOp) {
        self.recvs.push(p);
    }

    /// Retire every request in `first .. first + count` (a `WaitAll`).
    pub fn retire(&mut self, first: u32, count: u32) {
        let done = |req: u32| req >= first && req < first + count;
        self.sends.retain(|p| !done(p.req));
        self.recvs.retain(|p| !done(p.req));
    }

    /// Pending sends whose source region intersects `b`.
    pub fn sends_overlapping<'a>(&'a self, b: &'a Block) -> impl Iterator<Item = &'a PendingOp> {
        self.sends.iter().filter(move |p| overlaps(&p.block, b))
    }

    /// Pending receives whose destination region intersects `b`.
    pub fn recvs_overlapping<'a>(&'a self, b: &'a Block) -> impl Iterator<Item = &'a PendingOp> {
        self.recvs.iter().filter(move |p| overlaps(&p.block, b))
    }

    /// Number of pending sends addressed to `dest`.
    pub fn sends_to(&self, dest: Rank) -> usize {
        self.sends.iter().filter(|p| p.peer == dest).count()
    }

    /// Pending sends already on channel `(to, tag)` — a second concurrent
    /// message here relies on FIFO transport ordering.
    pub fn sends_on_channel(&self, to: Rank, tag: u32) -> Option<&PendingOp> {
        self.sends.iter().find(|p| p.peer == to && p.tag == tag)
    }

    /// Pending receives already on channel `(from, tag)`.
    pub fn recvs_on_channel(&self, from: Rank, tag: u32) -> Option<&PendingOp> {
        self.recvs.iter().find(|p| p.peer == from && p.tag == tag)
    }

    pub fn pending_sends(&self) -> &[PendingOp] {
        &self.sends
    }

    pub fn pending_recvs(&self) -> &[PendingOp] {
        &self.recvs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{RBUF, SBUF};

    fn blk(off: u64, len: u64) -> Block {
        Block::new(SBUF, off, len)
    }

    #[test]
    fn overlap_requires_same_buffer_and_intersection() {
        assert!(overlaps(&blk(0, 8), &blk(4, 8)));
        assert!(overlaps(&blk(4, 8), &blk(0, 8)));
        assert!(overlaps(&blk(0, 8), &blk(0, 8)));
        assert!(!overlaps(&blk(0, 8), &blk(8, 8))); // touching, not overlapping
        assert!(!overlaps(&blk(0, 8), &Block::new(RBUF, 0, 8)));
    }

    #[test]
    fn inflight_posts_and_retires() {
        let mut f = InFlight::default();
        f.post_send(PendingOp {
            req: 0,
            op_idx: 0,
            block: blk(0, 8),
            peer: 1,
            tag: 5,
        });
        f.post_recv(PendingOp {
            req: 1,
            op_idx: 1,
            block: Block::new(RBUF, 0, 8),
            peer: 1,
            tag: 5,
        });
        assert_eq!(f.sends_overlapping(&blk(4, 4)).count(), 1);
        assert_eq!(f.recvs_overlapping(&Block::new(RBUF, 7, 1)).count(), 1);
        assert_eq!(f.sends_to(1), 1);
        assert!(f.sends_on_channel(1, 5).is_some());
        assert!(f.sends_on_channel(1, 6).is_none());
        assert!(f.recvs_on_channel(1, 5).is_some());
        f.retire(0, 2);
        assert!(f.pending_sends().is_empty());
        assert!(f.pending_recvs().is_empty());
    }

    #[test]
    fn retire_is_range_scoped() {
        let mut f = InFlight::default();
        for req in 0..4 {
            f.post_send(PendingOp {
                req,
                op_idx: req as usize,
                block: blk(req as u64 * 8, 8),
                peer: 2,
                tag: 0,
            });
        }
        assert_eq!(f.sends_to(2), 4);
        f.retire(1, 2);
        let left: Vec<u32> = f.pending_sends().iter().map(|p| p.req).collect();
        assert_eq!(left, vec![0, 3]);
    }
}
