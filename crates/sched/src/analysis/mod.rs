//! Static-analysis support over compiled schedules.
//!
//! The validator ([`crate::validate`]) proves a schedule is *well-formed*;
//! the machinery here supports proving it is *safe to execute*:
//!
//! * [`intervals`] — byte-interval reasoning over [`crate::Block`] regions
//!   and an in-flight tracker for posted-but-unwaited requests, the basis
//!   of the stable-send (zero-copy) and receive-race analyses;
//! * [`waitgraph`] — the cross-rank wait-for graph over `WaitAll` ops,
//!   whose acyclicity proves deadlock-freedom under eager or rendezvous
//!   send semantics;
//! * [`provenance`] — the semantic dataflow prover: symbolic byte-interval
//!   provenance propagated through every op and checked against a
//!   collective's declared semantics ([`provenance::SemanticsSpec`]);
//! * [`critpath`] — the static LogGP critical-path analyzer: a longest-path
//!   lower bound on makespan with intra-/inter-node/software attribution.
//!
//! The `a2a-lint` crate drives these into a diagnostics report with stable
//! lint codes; they live here so the IR crate owns every schedule-shaped
//! data structure.

pub mod critpath;
pub mod intervals;
pub mod provenance;
pub mod waitgraph;

pub use critpath::{
    critical_path, CritAttribution, CritChain, CritHop, CritParams, CritReport, CHAIN_DISPLAY_HOPS,
};
pub use intervals::{overlaps, InFlight, PendingOp};
pub use provenance::{
    prove_schedule, ExpectSeg, ProveFinding, ProveIssue, ProveReport, SemanticsSpec,
};
pub use waitgraph::{build_wait_graph, find_cycle, Blocker, SendMode, WaitForGraph, WaitNode};
