//! Static-analysis support over compiled schedules.
//!
//! The validator ([`crate::validate`]) proves a schedule is *well-formed*;
//! the machinery here supports proving it is *safe to execute*:
//!
//! * [`intervals`] — byte-interval reasoning over [`crate::Block`] regions
//!   and an in-flight tracker for posted-but-unwaited requests, the basis
//!   of the stable-send (zero-copy) and receive-race analyses;
//! * [`waitgraph`] — the cross-rank wait-for graph over `WaitAll` ops,
//!   whose acyclicity proves deadlock-freedom under eager or rendezvous
//!   send semantics.
//!
//! The `a2a-lint` crate drives these into a diagnostics report with stable
//! lint codes; they live here so the IR crate owns every schedule-shaped
//! data structure.

pub mod intervals;
pub mod waitgraph;

pub use intervals::{overlaps, InFlight, PendingOp};
pub use waitgraph::{build_wait_graph, find_cycle, Blocker, SendMode, WaitForGraph, WaitNode};
