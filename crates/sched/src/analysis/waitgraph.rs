//! Cross-rank wait-for graph: static deadlock detection.
//!
//! A schedule can only block at a `WaitAll`, so deadlock-freedom reduces to
//! acyclicity of a graph whose nodes are the `WaitAll` ops of every rank
//! and whose edges say "this wait cannot complete until that wait does":
//!
//! * a waited `Irecv` completes only once the matching `Isend` has been
//!   *posted* by its peer, and the peer reaches the posting op only after
//!   every `WaitAll` preceding it completes — so the edge targets the
//!   peer's latest `WaitAll` before the posting op;
//! * under **rendezvous** semantics ([`SendMode::Rendezvous`]) a waited
//!   `Isend` additionally completes only once the matching `Irecv` is
//!   posted, giving the symmetric edge (under [`SendMode::Eager`] sends
//!   are buffered and complete on posting — no edge);
//! * a `WaitAll` is only *reached* after the same rank's previous
//!   `WaitAll` completes, giving an intra-rank [`Blocker::Sequential`]
//!   edge. Without it, a wait with no message dependencies of its own
//!   would look always-completable even when it sits behind a blocked one.
//!
//! Message matching is FIFO per `(from, to, tag)` channel: the k-th send
//! on a channel pairs with the k-th receive, exactly as the executors and
//! the simulator match. Unmatched messages are the validator's department;
//! the graph simply skips them.

use std::collections::HashMap;

use a2a_topo::Rank;

use crate::ir::{Op, RankProgram};

/// Send-completion semantics assumed by the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// Sends are buffered: posting completes them (the data executor and
    /// threaded runtime behave this way).
    Eager,
    /// A send's completion requires the matching receive to be posted (the
    /// simulator's large-message protocol; the strongest static guarantee).
    Rendezvous,
}

/// One `WaitAll` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitNode {
    pub rank: Rank,
    /// Index of the `WaitAll` in its rank's program.
    pub op_idx: usize,
    pub first_req: u32,
    pub count: u32,
}

/// Why one wait depends on another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blocker {
    /// The source wait covers an `Irecv` (posted at `post_op`) whose
    /// matching `Isend` sits at `peer_op` on `peer`, behind the target wait.
    RecvNeedsSend {
        req: u32,
        post_op: usize,
        peer: Rank,
        peer_op: usize,
        tag: u32,
    },
    /// Rendezvous only: the source wait covers an `Isend` (posted at
    /// `post_op`) whose matching `Irecv` sits at `peer_op` on `peer`,
    /// behind the target wait.
    SendNeedsRecv {
        req: u32,
        post_op: usize,
        peer: Rank,
        peer_op: usize,
        tag: u32,
    },
    /// The source wait is not even reached until the same rank's previous
    /// wait completes.
    Sequential,
}

/// The wait-for graph of one schedule.
#[derive(Debug, Default)]
pub struct WaitForGraph {
    pub nodes: Vec<WaitNode>,
    /// `edges[i]` — waits node `i` depends on, in deterministic order.
    pub edges: Vec<Vec<(usize, Blocker)>>,
}

/// Per-rank indexing used during construction.
struct RankIndex {
    /// `req -> op index` of the posting `Isend`/`Irecv`.
    post_op: HashMap<u32, usize>,
    /// `op index -> node id` of the latest `WaitAll` strictly before it.
    wait_before: Vec<Option<usize>>,
}

/// Build the wait-for graph for `progs` under `mode`.
pub fn build_wait_graph(progs: &[RankProgram], mode: SendMode) -> WaitForGraph {
    let mut g = WaitForGraph::default();
    let mut idx: Vec<RankIndex> = Vec::with_capacity(progs.len());

    // Pass 1: nodes, posting positions, and the latest-wait-before map.
    for (r, prog) in progs.iter().enumerate() {
        let mut post_op = HashMap::new();
        let mut wait_before = Vec::with_capacity(prog.ops.len());
        let mut last_wait = None;
        for (i, top) in prog.ops.iter().enumerate() {
            wait_before.push(last_wait);
            match top.op {
                Op::Isend { req, .. } | Op::Irecv { req, .. } => {
                    post_op.insert(req, i);
                }
                Op::WaitAll { first_req, count } => {
                    let id = g.nodes.len();
                    g.nodes.push(WaitNode {
                        rank: r as Rank,
                        op_idx: i,
                        first_req,
                        count,
                    });
                    last_wait = Some(id);
                }
                Op::Copy { .. } => {}
            }
        }
        idx.push(RankIndex {
            post_op,
            wait_before,
        });
    }

    // Pass 2: FIFO channel matching. For every message op, the op index of
    // its partner on the peer rank.
    type Chan = (Vec<(usize, usize)>, Vec<(usize, usize)>); // (rank, op) posts
    let mut chans: HashMap<(Rank, Rank, u32), Chan> = HashMap::new();
    for (r, prog) in progs.iter().enumerate() {
        for (i, top) in prog.ops.iter().enumerate() {
            match top.op {
                Op::Isend { to, tag, .. } => {
                    chans
                        .entry((r as Rank, to, tag))
                        .or_default()
                        .0
                        .push((r, i));
                }
                Op::Irecv { from, tag, .. } => {
                    chans
                        .entry((from, r as Rank, tag))
                        .or_default()
                        .1
                        .push((r, i));
                }
                _ => {}
            }
        }
    }
    // `(rank, op) -> (peer rank, peer op)` for matched messages.
    let mut partner: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    for (sends, recvs) in chans.values() {
        for (s, r) in sends.iter().zip(recvs) {
            partner.insert(*s, *r);
            partner.insert(*r, *s);
        }
    }

    // Pass 3: edges.
    g.edges = vec![Vec::new(); g.nodes.len()];
    for (id, node) in g.nodes.iter().enumerate() {
        let r = node.rank as usize;
        let mut edges = Vec::new();
        // Reaching this wait requires the rank's previous wait to complete.
        if let Some(prev) = idx[r].wait_before[node.op_idx] {
            edges.push((prev, Blocker::Sequential));
        }
        for req in node.first_req..node.first_req + node.count {
            let Some(&post) = idx[r].post_op.get(&req) else {
                continue; // never posted: validator territory
            };
            let Some(&(peer, peer_op)) = partner.get(&(r, post)) else {
                continue; // unmatched: validator territory
            };
            let Some(blocking_wait) = idx[peer].wait_before[peer_op] else {
                continue; // partner is posted before the peer can block
            };
            let (tag, is_recv) = match progs[r].ops[post].op {
                Op::Irecv { tag, .. } => (tag, true),
                Op::Isend { tag, .. } => (tag, false),
                _ => continue,
            };
            if is_recv {
                edges.push((
                    blocking_wait,
                    Blocker::RecvNeedsSend {
                        req,
                        post_op: post,
                        peer: peer as Rank,
                        peer_op,
                        tag,
                    },
                ));
            } else if mode == SendMode::Rendezvous {
                edges.push((
                    blocking_wait,
                    Blocker::SendNeedsRecv {
                        req,
                        post_op: post,
                        peer: peer as Rank,
                        peer_op,
                        tag,
                    },
                ));
            }
        }
        g.edges[id] = edges;
    }
    g
}

/// Find one dependency cycle, if any: the returned chain lists
/// `(node, blocker)` pairs where each blocker explains the edge to the
/// *next* node in the chain (the last entry points back to the first).
pub fn find_cycle(g: &WaitForGraph) -> Option<Vec<(usize, Blocker)>> {
    const NEW: u8 = 0;
    const OPEN: u8 = 1;
    const DONE: u8 = 2;
    let n = g.nodes.len();
    let mut state = vec![NEW; n];

    for start in 0..n {
        if state[start] != NEW {
            continue;
        }
        // Iterative DFS: (node, next edge index to explore).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = OPEN;
        while let Some(&(v, ei)) = stack.last() {
            if ei >= g.edges[v].len() {
                state[v] = DONE;
                stack.pop();
                continue;
            }
            stack.last_mut().unwrap().1 += 1;
            let (to, blocker) = g.edges[v][ei];
            match state[to] {
                NEW => {
                    state[to] = OPEN;
                    stack.push((to, 0));
                }
                OPEN => {
                    // Back edge: the cycle is the stack from `to` to `v`,
                    // closed by this edge. Each stack entry's blocker is the
                    // edge it last followed (index `ei - 1`).
                    let from = stack.iter().position(|&(s, _)| s == to).expect("on stack");
                    let mut chain: Vec<(usize, Blocker)> = stack[from..stack.len() - 1]
                        .iter()
                        .map(|&(s, sei)| (s, g.edges[s][sei - 1].1))
                        .collect();
                    chain.push((v, blocker));
                    return Some(chain);
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgBuilder;
    use crate::ir::{Block, Phase, RBUF, SBUF};

    fn blk(off: u64) -> Block {
        Block::new(SBUF, off, 8)
    }

    fn rblk(off: u64) -> Block {
        Block::new(RBUF, off, 8)
    }

    /// Two ranks exchanging via sendrecv: deadlock-free in both modes.
    fn sendrecv_pair() -> Vec<RankProgram> {
        (0..2u32)
            .map(|me| {
                let peer = 1 - me;
                let mut b = ProgBuilder::new(Phase(0));
                b.sendrecv(peer, blk(0), 0, peer, rblk(0), 0);
                b.finish()
            })
            .collect()
    }

    /// Two ranks both doing blocking send *then* recv: the classic
    /// rendezvous deadlock.
    fn head_to_head() -> Vec<RankProgram> {
        (0..2u32)
            .map(|me| {
                let peer = 1 - me;
                let mut b = ProgBuilder::new(Phase(0));
                b.send(peer, blk(0), 0);
                b.recv(peer, rblk(0), 0);
                b.finish()
            })
            .collect()
    }

    #[test]
    fn sendrecv_is_acyclic_under_rendezvous() {
        let g = build_wait_graph(&sendrecv_pair(), SendMode::Rendezvous);
        assert_eq!(g.nodes.len(), 2);
        assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn head_to_head_deadlocks_under_rendezvous_only() {
        let progs = head_to_head();
        let g = build_wait_graph(&progs, SendMode::Rendezvous);
        let cycle = find_cycle(&g).expect("rendezvous deadlock");
        assert_eq!(cycle.len(), 2);
        assert!(cycle
            .iter()
            .all(|(_, b)| matches!(b, Blocker::SendNeedsRecv { .. })));
        // Eager sends buffer: the same schedule completes.
        let g = build_wait_graph(&progs, SendMode::Eager);
        assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn recv_first_deadlocks_in_every_mode() {
        // Both ranks block on a receive before posting their send.
        let progs: Vec<RankProgram> = (0..2u32)
            .map(|me| {
                let peer = 1 - me;
                let mut b = ProgBuilder::new(Phase(0));
                b.recv(peer, rblk(0), 0);
                b.send(peer, blk(0), 0);
                b.finish()
            })
            .collect();
        for mode in [SendMode::Eager, SendMode::Rendezvous] {
            let g = build_wait_graph(&progs, mode);
            let cycle = find_cycle(&g).expect("recv-first deadlock");
            assert!(cycle
                .iter()
                .all(|(_, b)| matches!(b, Blocker::RecvNeedsSend { .. })));
        }
    }

    #[test]
    fn three_rank_ring_of_blocking_recvs_is_cyclic() {
        let progs: Vec<RankProgram> = (0..3u32)
            .map(|me| {
                let mut b = ProgBuilder::new(Phase(0));
                b.recv((me + 1) % 3, rblk(0), 0);
                b.send((me + 2) % 3, blk(0), 0);
                b.finish()
            })
            .collect();
        let g = build_wait_graph(&progs, SendMode::Eager);
        let cycle = find_cycle(&g).expect("ring deadlock");
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn sequential_edges_propagate_blockage() {
        // Message edges target the peer's *latest* wait before the posting
        // op. That is only sound if a wait transitively depends on earlier
        // waits of its rank. Here rank 0's send to rank 1 sits behind wait
        // B, which covers only an innocent eager send — B is completable in
        // isolation, but unreachable because wait A blocks on rank 2.
        // Without the Sequential edge B -> A the cycle is invisible.
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.recv(2, rblk(0), 0); // wait A: blocked on rank 2's send
        b0.send(2, blk(16), 9); // wait B: eager, no message edge
        b0.send(1, blk(0), 0); // posted behind wait B
        let mut b1 = ProgBuilder::new(Phase(0));
        b1.recv(0, rblk(0), 0); // blocked: rank 0's send is behind B
        b1.send(2, blk(0), 0);
        let mut b2 = ProgBuilder::new(Phase(0));
        let r = b2.irecv(0, rblk(16), 9); // tag-9 recv posted upfront
        b2.recv(1, rblk(0), 0); // blocked: rank 1's send is behind its recv
        b2.send(0, blk(0), 0);
        b2.wait(r);
        let progs = vec![b0.finish(), b1.finish(), b2.finish()];
        let g = build_wait_graph(&progs, SendMode::Eager);
        let cycle = find_cycle(&g).expect("deadlock through sequential edge");
        assert!(cycle.iter().any(|(_, b)| matches!(b, Blocker::Sequential)));
        assert!(cycle
            .iter()
            .any(|(_, b)| matches!(b, Blocker::RecvNeedsSend { .. })));
    }

    #[test]
    fn fifo_matching_pairs_kth_send_with_kth_recv() {
        // Rank 0 sends twice on one channel; rank 1's first recv is posted
        // before it can block, the second behind a wait. Only the second
        // send picks up an edge under rendezvous.
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.send(1, blk(0), 7);
        b0.send(1, blk(8), 7);
        let mut b1 = ProgBuilder::new(Phase(0));
        b1.irecv(0, rblk(0), 7);
        b1.wait(0);
        b1.recv(0, rblk(8), 7);
        let progs = vec![b0.finish(), b1.finish()];
        let g = build_wait_graph(&progs, SendMode::Rendezvous);
        let rendezvous_edges: Vec<_> = g
            .edges
            .iter()
            .flatten()
            .filter(|(_, b)| matches!(b, Blocker::SendNeedsRecv { .. }))
            .collect();
        assert_eq!(rendezvous_edges.len(), 1);
        assert!(find_cycle(&g).is_none());
    }
}
