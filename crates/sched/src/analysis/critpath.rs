//! Static LogGP critical-path analysis.
//!
//! Weights the cross-rank wait-for structure of a schedule with LogGP-style
//! costs — per-op software overheads (`o_send`, `o_recv`, copy cost) plus
//! per-level wire time `α + bytes·β` from the topology's locality level —
//! and computes the schedule's critical-path lower bound by a longest-path
//! forward pass over the resulting DAG.
//!
//! The model is deliberately a *lower bound* on the discrete-event
//! simulator: it uses the same base parameters but charges none of the
//! DES's additive extras (matching cost, queue search, NIC and memory-bus
//! serialization, rendezvous handshakes) and assumes every send completes
//! eagerly at post time. At zero jitter every DES event therefore happens
//! no earlier than its static counterpart, so `bound_us <=` the measured
//! makespan on any uncongested schedule — the cross-check `repro verify`
//! asserts cell by cell.
//!
//! The forward pass records, for every `WaitAll` that ends on a message
//! arrival, which send it waited for. Backtracing those edges from the
//! last-finishing rank decomposes the makespan *exactly* into software
//! time (posts and copies) and wire time split intra-/inter-node — the
//! same three-way attribution as the paper's phase breakdowns — and yields
//! the top-k critical chains for diagnosis.

use std::collections::HashMap;

use a2a_topo::{Level, ProcGrid, Rank};

use crate::ir::{Bytes, Op, RankProgram};
use crate::ScheduleSource;

/// Cost parameters for the static model. Mirrors the subset of the
/// simulator's cost model that forms a guaranteed lower bound; build one
/// from a full `CostModel` with `a2a-netsim`'s `crit_params`.
#[derive(Debug, Clone, PartialEq)]
pub struct CritParams {
    /// CPU time to post a send (µs).
    pub o_send: f64,
    /// CPU time to post a receive (µs).
    pub o_recv: f64,
    /// Fixed cost of a local copy (µs).
    pub copy_base: f64,
    /// Reciprocal memcpy bandwidth (µs/byte).
    pub copy_per_byte: f64,
    /// Per-level `(alpha, beta)` wire cost, indexed IntraNuma,
    /// IntraSocket, InterSocket, InterNode.
    pub levels: [(f64, f64); 4],
}

impl CritParams {
    /// Wire time for `bytes` at locality `level`.
    pub fn wire(&self, level: Level, bytes: Bytes) -> f64 {
        let (alpha, beta) = match level {
            Level::SelfRank => (0.0, 0.0),
            Level::IntraNuma => self.levels[0],
            Level::IntraSocket => self.levels[1],
            Level::InterSocket => self.levels[2],
            Level::InterNode => self.levels[3],
        };
        alpha + bytes as f64 * beta
    }

    fn copy(&self, bytes: Bytes) -> f64 {
        self.copy_base + bytes as f64 * self.copy_per_byte
    }
}

/// Exact decomposition of the critical path: the three components sum to
/// the bound (up to float rounding).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CritAttribution {
    /// Send/receive posting and local copies on the path (µs).
    pub software_us: f64,
    /// Intra-node wire segments on the path (µs).
    pub intra_us: f64,
    /// Inter-node wire segments on the path (µs).
    pub inter_us: f64,
}

impl CritAttribution {
    pub fn total_us(&self) -> f64 {
        self.software_us + self.intra_us + self.inter_us
    }
}

/// One step of a critical chain, latest first.
#[derive(Debug, Clone)]
pub struct CritHop {
    pub rank: Rank,
    pub op: usize,
    /// `"send"`, `"recv"`, `"copy"`, `"wire-intra"`, or `"wire-inter"`.
    pub kind: &'static str,
    pub us: f64,
}

/// A critical chain ending at one rank's finish.
#[derive(Debug, Clone)]
pub struct CritChain {
    pub rank: Rank,
    pub finish_us: f64,
    /// Exact makespan decomposition along this chain.
    pub attribution: CritAttribution,
    /// Steps, latest first, truncated to the requested display cap.
    pub hops: Vec<CritHop>,
    /// Untruncated chain length.
    pub total_hops: usize,
}

/// Result of one static analysis.
#[derive(Debug, Clone)]
pub struct CritReport {
    /// Critical-path lower bound on the makespan (µs).
    pub bound_us: f64,
    /// Decomposition of the global critical path.
    pub attribution: CritAttribution,
    /// Per-rank finish times (µs).
    pub rank_finish: Vec<f64>,
    /// Chains for the `top_k` latest-finishing ranks, worst first.
    pub chains: Vec<CritChain>,
}

/// How many hops a reported chain keeps for display; attribution always
/// covers the full chain.
pub const CHAIN_DISPLAY_HOPS: usize = 16;

struct Span {
    start: f64,
    end: f64,
}

/// Critical arrival that ended a wait: the send op it traces to plus the
/// wire segment's level and duration.
#[derive(Clone, Copy)]
struct CritDep {
    sender: Rank,
    send_op: usize,
    level: Level,
    wire_us: f64,
}

enum PendingReq {
    Done,
    Recv { chan: (Rank, Rank, u32), seq: u64 },
}

/// Compute the static critical-path bound, its attribution, and the top-k
/// critical chains for `source` mapped onto `grid`.
pub fn critical_path(
    source: &dyn ScheduleSource,
    grid: &ProcGrid,
    params: &CritParams,
    top_k: usize,
) -> CritReport {
    let n = source.nranks();
    assert_eq!(
        grid.world_size(),
        n,
        "grid has {} ranks, schedule has {n}",
        grid.world_size()
    );
    let progs: Vec<RankProgram> = (0..n as Rank).map(|r| source.build_rank(r)).collect();

    let mut clock = vec![0.0f64; n];
    let mut pc = vec![0usize; n];
    let mut spans: Vec<Vec<Span>> = progs
        .iter()
        .map(|p| {
            p.ops
                .iter()
                .map(|_| Span {
                    start: 0.0,
                    end: 0.0,
                })
                .collect()
        })
        .collect();
    // crit[r][op] — for WaitAll ops, the arrival that set its end time.
    let mut crit: Vec<Vec<Option<CritDep>>> =
        progs.iter().map(|p| vec![None; p.ops.len()]).collect();
    let mut reqs: Vec<Vec<PendingReq>> = progs
        .iter()
        .map(|p| (0..p.n_reqs).map(|_| PendingReq::Done).collect())
        .collect();
    type Chan = (Rank, Rank, u32);
    let mut sent_seq: HashMap<Chan, u64> = HashMap::new();
    let mut recv_seq: HashMap<Chan, u64> = HashMap::new();
    // arrival time + provenance per (channel, sequence).
    let mut mailbox: HashMap<(Chan, u64), (f64, CritDep)> = HashMap::new();

    loop {
        let mut progressed = false;
        for r in 0..n {
            let rank = r as Rank;
            let prog = &progs[r];
            'ops: while pc[r] < prog.ops.len() {
                let i = pc[r];
                let start = clock[r];
                match prog.ops[i].op {
                    Op::Isend { to, block, tag, .. } => {
                        clock[r] = start + params.o_send;
                        let level = grid.level(rank, to);
                        let wire_us = params.wire(level, block.len);
                        let chan = (rank, to, tag);
                        let seq = sent_seq.entry(chan).or_insert(0);
                        mailbox.insert(
                            (chan, *seq),
                            (
                                clock[r] + wire_us,
                                CritDep {
                                    sender: rank,
                                    send_op: i,
                                    level,
                                    wire_us,
                                },
                            ),
                        );
                        *seq += 1;
                    }
                    Op::Irecv { from, tag, req, .. } => {
                        clock[r] = start + params.o_recv;
                        let chan = (from, rank, tag);
                        let seq = recv_seq.entry(chan).or_insert(0);
                        reqs[r][req as usize] = PendingReq::Recv { chan, seq: *seq };
                        *seq += 1;
                    }
                    Op::Copy { src, .. } => {
                        clock[r] = start + params.copy(src.len);
                    }
                    Op::WaitAll { first_req, count } => {
                        for q in first_req..first_req + count {
                            if let PendingReq::Recv { chan, seq } = reqs[r][q as usize] {
                                if !mailbox.contains_key(&(chan, seq)) {
                                    break 'ops; // sender hasn't run yet
                                }
                            }
                        }
                        let mut end = start;
                        for q in first_req..first_req + count {
                            if let PendingReq::Recv { chan, seq } = reqs[r][q as usize] {
                                let (arrival, dep) = mailbox.remove(&(chan, seq)).expect("checked");
                                if arrival > end {
                                    end = arrival;
                                    crit[r][i] = Some(dep);
                                }
                                reqs[r][q as usize] = PendingReq::Done;
                            }
                        }
                        clock[r] = end;
                    }
                }
                spans[r][i] = Span {
                    start,
                    end: clock[r],
                };
                pc[r] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    let rank_finish = clock.clone();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| clock[b].partial_cmp(&clock[a]).unwrap().then(a.cmp(&b)));
    let bound_us = order.first().map(|&r| clock[r]).unwrap_or(0.0);

    let total_ops: usize = progs.iter().map(|p| p.ops.len()).sum();
    let mut chains = Vec::new();
    for &r in order.iter().take(top_k.max(1).min(n)) {
        chains.push(backtrace(
            r as Rank,
            &progs,
            &spans,
            &crit,
            clock[r],
            total_ops + 1,
        ));
    }
    let attribution = chains.first().map(|c| c.attribution).unwrap_or_default();

    CritReport {
        bound_us,
        attribution,
        rank_finish,
        chains,
    }
}

/// Walk the critical chain backwards from `rank`'s last op, attributing
/// every op duration and wire segment.
fn backtrace(
    rank: Rank,
    progs: &[RankProgram],
    spans: &[Vec<Span>],
    crit: &[Vec<Option<CritDep>>],
    finish_us: f64,
    max_hops: usize,
) -> CritChain {
    let mut attribution = CritAttribution::default();
    let mut hops: Vec<CritHop> = Vec::new();
    let mut total_hops = 0usize;
    let push = |hops: &mut Vec<CritHop>, total: &mut usize, hop: CritHop| {
        if hop.us > 0.0 {
            *total += 1;
            if hops.len() < CHAIN_DISPLAY_HOPS {
                hops.push(hop);
            }
        }
    };

    let mut r = rank as usize;
    let mut idx = match progs[r].ops.len().checked_sub(1) {
        Some(i) => i,
        None => {
            return CritChain {
                rank,
                finish_us,
                attribution,
                hops,
                total_hops,
            }
        }
    };
    for _ in 0..max_hops {
        let op = progs[r].ops[idx].op;
        let span = &spans[r][idx];
        let dur = span.end - span.start;
        match op {
            Op::WaitAll { .. } => {
                if let Some(dep) = crit[r][idx] {
                    // The wait ended on this arrival: attribute the wire
                    // segment and jump to the send that produced it.
                    let kind = if dep.level.is_intra_node() {
                        attribution.intra_us += dep.wire_us;
                        "wire-intra"
                    } else {
                        attribution.inter_us += dep.wire_us;
                        "wire-inter"
                    };
                    push(
                        &mut hops,
                        &mut total_hops,
                        CritHop {
                            rank: r as Rank,
                            op: idx,
                            kind,
                            us: dep.wire_us,
                        },
                    );
                    r = dep.sender as usize;
                    idx = dep.send_op;
                    continue;
                }
                // Ended on the local clock: zero duration, fall through.
            }
            Op::Isend { .. } => {
                attribution.software_us += dur;
                push(
                    &mut hops,
                    &mut total_hops,
                    CritHop {
                        rank: r as Rank,
                        op: idx,
                        kind: "send",
                        us: dur,
                    },
                );
            }
            Op::Irecv { .. } => {
                attribution.software_us += dur;
                push(
                    &mut hops,
                    &mut total_hops,
                    CritHop {
                        rank: r as Rank,
                        op: idx,
                        kind: "recv",
                        us: dur,
                    },
                );
            }
            Op::Copy { .. } => {
                attribution.software_us += dur;
                push(
                    &mut hops,
                    &mut total_hops,
                    CritHop {
                        rank: r as Rank,
                        op: idx,
                        kind: "copy",
                        us: dur,
                    },
                );
            }
        }
        if idx == 0 {
            break;
        }
        idx -= 1;
    }

    CritChain {
        rank,
        finish_us,
        attribution,
        hops,
        total_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgBuilder;
    use crate::ir::{Block, Phase, RBUF, SBUF};
    use a2a_topo::Machine;
    use std::borrow::Cow;

    fn params() -> CritParams {
        CritParams {
            o_send: 1.0,
            o_recv: 0.5,
            copy_base: 0.25,
            copy_per_byte: 0.001,
            levels: [(0.2, 0.01), (0.4, 0.02), (0.8, 0.03), (2.0, 0.05)],
        }
    }

    struct Fixed {
        progs: Vec<RankProgram>,
    }

    impl ScheduleSource for Fixed {
        fn nranks(&self) -> usize {
            self.progs.len()
        }
        fn buffers(&self, _r: Rank) -> Vec<Bytes> {
            vec![1024, 1024]
        }
        fn rank_program(&self, r: Rank) -> Cow<'_, RankProgram> {
            Cow::Borrowed(&self.progs[r as usize])
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["all"]
        }
    }

    /// Rank 0 sends 100 bytes to rank 1 (same NUMA domain): the bound is
    /// o_send + wire, with o_recv hidden under the wire.
    #[test]
    fn single_message_bound_is_exact() {
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.send(1, Block::new(SBUF, 0, 100), 0);
        let mut b1 = ProgBuilder::new(Phase(0));
        b1.recv(0, Block::new(RBUF, 0, 100), 0);
        let f = Fixed {
            progs: vec![b0.finish(), b1.finish()],
        };
        let grid = ProcGrid::new(Machine::custom("t", 1, 1, 1, 2));
        let p = params();
        let rep = critical_path(&f, &grid, &p, 2);
        let wire = 0.2 + 100.0 * 0.01; // IntraNuma
        let want = 1.0 + wire; // o_send + wire > o_recv
        assert!((rep.bound_us - want).abs() < 1e-9, "{}", rep.bound_us);
        assert!((rep.attribution.software_us - 1.0).abs() < 1e-9);
        assert!((rep.attribution.intra_us - wire).abs() < 1e-9);
        assert_eq!(rep.attribution.inter_us, 0.0);
        // Attribution decomposes the bound exactly.
        assert!((rep.attribution.total_us() - rep.bound_us).abs() < 1e-9);
        assert_eq!(rep.chains.len(), 2);
        assert_eq!(rep.chains[0].rank, 1);
        assert_eq!(rep.chains[0].hops[0].kind, "wire-intra");
    }

    /// A two-hop relay across nodes: 0 -> 1 (inter-node) -> copy -> done.
    #[test]
    fn relay_attributes_all_three_buckets() {
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.send(1, Block::new(SBUF, 0, 1000), 0);
        let mut b1 = ProgBuilder::new(Phase(0));
        b1.recv(0, Block::new(RBUF, 0, 1000), 0);
        b1.copy(Block::new(RBUF, 0, 1000), Block::new(SBUF, 0, 1000));
        let f = Fixed {
            progs: vec![b0.finish(), b1.finish()],
        };
        // Two nodes, one rank each: the pair is inter-node.
        let grid = ProcGrid::new(Machine::custom("t", 2, 1, 1, 1));
        let p = params();
        let rep = critical_path(&f, &grid, &p, 1);
        let wire = 2.0 + 1000.0 * 0.05;
        let copy = 0.25 + 1000.0 * 0.001;
        let want = 1.0 + wire + copy;
        assert!((rep.bound_us - want).abs() < 1e-9, "{}", rep.bound_us);
        assert!((rep.attribution.inter_us - wire).abs() < 1e-9);
        assert!((rep.attribution.software_us - (1.0 + copy)).abs() < 1e-9);
        assert!((rep.attribution.total_us() - rep.bound_us).abs() < 1e-9);
    }

    /// When the receiver is the bottleneck (many receives posted), the
    /// bound follows its software time, not the wire.
    #[test]
    fn software_bound_dominates_when_wire_is_cheap() {
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.send(1, Block::new(SBUF, 0, 1), 0);
        let mut b1 = ProgBuilder::new(Phase(0));
        for _ in 0..100 {
            b1.copy(Block::new(SBUF, 0, 1), Block::new(RBUF, 0, 1));
        }
        b1.recv(0, Block::new(RBUF, 0, 1), 0);
        let f = Fixed {
            progs: vec![b0.finish(), b1.finish()],
        };
        let grid = ProcGrid::new(Machine::custom("t", 1, 1, 1, 2));
        let p = params();
        let rep = critical_path(&f, &grid, &p, 1);
        // 100 copies of 1 byte then the recv post dominate the arrival.
        let copies = 100.0 * (0.25 + 0.001);
        let want = copies + 0.5; // wait ends on local clock (arrival earlier)
        assert!((rep.bound_us - want).abs() < 1e-9, "{}", rep.bound_us);
        assert_eq!(rep.attribution.intra_us, 0.0);
        assert!((rep.attribution.total_us() - rep.bound_us).abs() < 1e-9);
    }

    /// Chains are truncated for display but attribution covers everything.
    #[test]
    fn long_chains_truncate_but_attribute_fully() {
        let mut b1 = ProgBuilder::new(Phase(0));
        for _ in 0..CHAIN_DISPLAY_HOPS + 10 {
            b1.copy(Block::new(SBUF, 0, 8), Block::new(RBUF, 0, 8));
        }
        let f = Fixed {
            progs: vec![b1.finish()],
        };
        let grid = ProcGrid::new(Machine::custom("t", 1, 1, 1, 1));
        let p = params();
        let rep = critical_path(&f, &grid, &p, 1);
        let c = &rep.chains[0];
        assert_eq!(c.hops.len(), CHAIN_DISPLAY_HOPS);
        assert_eq!(c.total_hops, CHAIN_DISPLAY_HOPS + 10);
        assert!((c.attribution.total_us() - rep.bound_us).abs() < 1e-9);
    }
}
