//! Semantic dataflow prover: symbolic byte-interval provenance.
//!
//! The validator proves a schedule is well-formed and the lint passes prove
//! it is safe to execute; neither proves it computes the *right thing*. The
//! prover closes that gap statically: it executes the schedule symbolically,
//! propagating for every byte of every buffer *where that byte originally
//! came from* — a `(source rank, source send-buffer offset)` pair — through
//! every copy, send, receive, and wait. The final symbolic state is then
//! checked against the collective's declared semantics ([`SemanticsSpec`]).
//!
//! Provenance is stored as maximal linear segments: a [`Seg`] says "bytes
//! `[start, start+len)` of this buffer hold bytes `[off, off+len)` of rank
//! `src`'s send buffer". Copies and transfers act linearly on segments, so
//! an n-rank schedule stays O(segments) regardless of byte counts — block
//! sizes of 4 B and 4 MiB prove in identical time.
//!
//! Four defect classes come out of one symbolic run:
//!
//! * **wrong-source byte** — a destination interval is written, but with
//!   bytes from the wrong rank or the wrong offset (lint code `A2A007`);
//! * **missing byte** — a destination interval is never written, or ends
//!   up holding symbolically undefined bytes (`A2A008`);
//! * **clobbered byte** — an expected-destination byte that already held
//!   its correct final value is overwritten with different provenance
//!   before the schedule ends (`A2A009`), caught at the clobbering op;
//! * **redundant transfer** — a message or copy moves bytes that no
//!   declared output transitively depends on (`A2A010`), found by a
//!   backward liveness pass over the recorded event sequence.
//!
//! The executor models the same semantics as the data executor and the
//! simulator: eager sends snapshot their source at post time, FIFO matching
//! per `(from, to, tag)` channel, delivery visible at the covering
//! `WaitAll`. Malformed or deadlocking schedules are the validator's and
//! deadlock lint's department — the prover simply stops making progress and
//! reports whatever bytes never arrived as missing.

use std::collections::HashMap;

use a2a_topo::Rank;

use crate::ir::{Block, Bytes, Op, RankProgram};
use crate::ScheduleSource;

// ------------------------------------------------------------ the contract

/// One expected destination interval: bytes `[dst_off, dst_off+len)` of the
/// destination rank's receive buffer must equal bytes
/// `[src_off, src_off+len)` of rank `src`'s send buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpectSeg {
    pub dst_off: Bytes,
    pub len: Bytes,
    pub src: Rank,
    pub src_off: Bytes,
}

/// The declared semantics of a collective: for every rank, which send-buffer
/// bytes of which peers must land where in its receive buffer.
#[derive(Debug, Clone)]
pub struct SemanticsSpec {
    /// Collective name, for report labels (`"alltoall"`, ...).
    pub name: &'static str,
    /// `expected[rank]` — that rank's output contract, sorted by `dst_off`,
    /// non-overlapping, zero-length entries omitted.
    pub expected: Vec<Vec<ExpectSeg>>,
}

impl SemanticsSpec {
    /// Uniform all-to-all: rank `r`'s receive block `i` (at `i*block`) is
    /// rank `i`'s send block `r` (at `r*block`).
    pub fn alltoall(n: usize, block: Bytes) -> Self {
        let expected = (0..n as Rank)
            .map(|r| {
                (0..n as Rank)
                    .filter(|_| block > 0)
                    .map(|i| ExpectSeg {
                        dst_off: i as Bytes * block,
                        len: block,
                        src: i,
                        src_off: r as Bytes * block,
                    })
                    .collect()
            })
            .collect();
        SemanticsSpec {
            name: "alltoall",
            expected,
        }
    }

    /// Variable all-to-all: `counts(src, dst)` bytes from each source, laid
    /// out by destination in send buffers and by source in receive buffers
    /// (the `MPI_Alltoallv` contract). Zero-count pairs expect nothing.
    pub fn alltoallv(n: usize, counts: &dyn Fn(Rank, Rank) -> Bytes) -> Self {
        let n = n as Rank;
        let expected = (0..n)
            .map(|r| {
                let mut dst_off = 0;
                let mut segs = Vec::new();
                for i in 0..n {
                    let len = counts(i, r);
                    if len > 0 {
                        let src_off = (0..r).map(|j| counts(i, j)).sum();
                        segs.push(ExpectSeg {
                            dst_off,
                            len,
                            src: i,
                            src_off,
                        });
                    }
                    dst_off += len;
                }
                segs
            })
            .collect();
        SemanticsSpec {
            name: "alltoallv",
            expected,
        }
    }

    /// Allgather: every rank's receive block `j` (at `j*block`) is rank
    /// `j`'s contribution, i.e. its send buffer `[0, block)`.
    pub fn allgather(n: usize, block: Bytes) -> Self {
        let expected = (0..n as Rank)
            .map(|_| {
                (0..n as Rank)
                    .filter(|_| block > 0)
                    .map(|j| ExpectSeg {
                        dst_off: j as Bytes * block,
                        len: block,
                        src: j,
                        src_off: 0,
                    })
                    .collect()
            })
            .collect();
        SemanticsSpec {
            name: "allgather",
            expected,
        }
    }

    /// Broadcast: every rank's receive buffer `[0, len)` is the root's send
    /// buffer `[0, len)`.
    pub fn bcast(n: usize, root: Rank, len: Bytes) -> Self {
        let expected = (0..n as Rank)
            .map(|_| {
                if len > 0 {
                    vec![ExpectSeg {
                        dst_off: 0,
                        len,
                        src: root,
                        src_off: 0,
                    }]
                } else {
                    Vec::new()
                }
            })
            .collect();
        SemanticsSpec {
            name: "bcast",
            expected,
        }
    }

    /// Total declared output bytes across all ranks.
    pub fn output_bytes(&self) -> Bytes {
        self.expected.iter().flatten().map(|e| e.len).sum()
    }
}

// ---------------------------------------------------------- provenance map

/// Linear provenance: byte `k` of a run holds byte `off + k` of rank
/// `src`'s send buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Prov {
    src: Rank,
    off: Bytes,
}

impl Prov {
    /// The alignment invariant: content at absolute position `at` matches
    /// expectation `(src, src_off)` anchored at `anchor` iff sources agree
    /// and both runs are shifted identically.
    fn aligned(self, at: Bytes, want_src: Rank, want_off: Bytes, anchor: Bytes) -> bool {
        self.src == want_src && self.off as i128 - at as i128 == want_off as i128 - anchor as i128
    }
}

/// Writer of a segment: the rank-local op index that produced it, or
/// [`INITIAL`] for pristine send-buffer content.
const INITIAL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Seg {
    start: Bytes,
    len: Bytes,
    /// `None` — symbolically undefined bytes.
    prov: Option<Prov>,
    writer: usize,
}

impl Seg {
    fn end(&self) -> Bytes {
        self.start + self.len
    }

    /// Provenance of the sub-run starting at absolute `at` (within self).
    fn prov_at(&self, at: Bytes) -> Option<Prov> {
        self.prov.map(|p| Prov {
            src: p.src,
            off: p.off + (at - self.start),
        })
    }
}

/// One buffer's provenance: sorted, non-overlapping segments; gaps are
/// undefined bytes.
#[derive(Debug, Clone, Default)]
struct SegMap {
    segs: Vec<Seg>,
}

/// A run of content relative to some block: bytes `[rel, rel+len)` carry
/// `prov` (or are undefined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RelSeg {
    rel: Bytes,
    len: Bytes,
    prov: Option<Prov>,
}

impl SegMap {
    /// Remove `[start, end)` from the map, splitting boundary segments.
    fn carve(&mut self, start: Bytes, end: Bytes) {
        if start >= end {
            return;
        }
        let mut out = Vec::with_capacity(self.segs.len() + 2);
        for s in self.segs.drain(..) {
            if s.end() <= start || s.start >= end {
                out.push(s);
                continue;
            }
            if s.start < start {
                out.push(Seg {
                    start: s.start,
                    len: start - s.start,
                    prov: s.prov,
                    writer: s.writer,
                });
            }
            if s.end() > end {
                out.push(Seg {
                    start: end,
                    len: s.end() - end,
                    prov: s.prov_at(end),
                    writer: s.writer,
                });
            }
        }
        self.segs = out;
    }

    /// Overwrite `[block.off, block.end())` with `content` (relative runs
    /// covering exactly `[0, block.len)`), attributed to `writer`.
    fn write(&mut self, block: Block, content: &[RelSeg], writer: usize) {
        if block.len == 0 {
            return;
        }
        self.carve(block.off, block.end());
        for c in content {
            if c.len == 0 {
                continue;
            }
            self.segs.push(Seg {
                start: block.off + c.rel,
                len: c.len,
                prov: c.prov,
                writer,
            });
        }
        self.segs.sort_by_key(|s| s.start);
    }

    /// Snapshot `[block.off, block.end())` as relative runs; gaps come back
    /// as undefined runs, so the result always covers `[0, block.len)`.
    fn read(&self, block: Block) -> Vec<RelSeg> {
        let mut out = Vec::new();
        let (start, end) = (block.off, block.end());
        let mut cursor = start;
        for s in &self.segs {
            if s.end() <= start || s.start >= end {
                continue;
            }
            let a = s.start.max(cursor);
            let b = s.end().min(end);
            if a > cursor {
                out.push(RelSeg {
                    rel: cursor - start,
                    len: a - cursor,
                    prov: None,
                });
            }
            if b > a {
                out.push(RelSeg {
                    rel: a - start,
                    len: b - a,
                    prov: s.prov_at(a),
                });
                cursor = b;
            }
        }
        if cursor < end {
            out.push(RelSeg {
                rel: cursor - start,
                len: end - cursor,
                prov: None,
            });
        }
        out
    }

    /// Segments overlapping `[start, end)`, clipped, with their writers.
    fn overlapping(&self, start: Bytes, end: Bytes) -> Vec<Seg> {
        self.segs
            .iter()
            .filter(|s| s.start < end && s.end() > start)
            .map(|s| {
                let a = s.start.max(start);
                let b = s.end().min(end);
                Seg {
                    start: a,
                    len: b - a,
                    prov: s.prov_at(a),
                    writer: s.writer,
                }
            })
            .collect()
    }
}

// ----------------------------------------------------------------- findings

/// Defect class found by the prover, mapped to stable lint codes by
/// `a2a-lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProveIssue {
    /// `A2A007`: destination bytes written from the wrong rank/offset.
    WrongSource,
    /// `A2A008`: destination bytes never written (or written undefined).
    MissingByte,
    /// `A2A009`: correct destination bytes overwritten before the end.
    ClobberedByte,
    /// `A2A010`: bytes moved that no declared output depends on.
    RedundantTransfer,
}

/// One prover finding, anchored on the destination (or sending) rank and,
/// when known, the responsible op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProveFinding {
    pub issue: ProveIssue,
    pub rank: Rank,
    pub op: Option<usize>,
    pub message: String,
    pub note: Option<String>,
}

/// Outcome of one symbolic run.
#[derive(Debug, Clone, Default)]
pub struct ProveReport {
    pub findings: Vec<ProveFinding>,
    /// Declared output bytes checked against the final state.
    pub bytes_checked: Bytes,
    /// Messages symbolically transported.
    pub messages: usize,
    /// The executor stopped before every rank finished (a deadlock or
    /// unmatched message — the validator/deadlock lint's findings); the
    /// final-state check still ran on the partial state.
    pub stuck: bool,
}

impl ProveReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings of one issue class.
    pub fn count(&self, issue: ProveIssue) -> usize {
        self.findings.iter().filter(|f| f.issue == issue).count()
    }
}

// ----------------------------------------------------------- the executor

/// Recorded dataflow event, in symbolic-execution order. Positions are
/// absolute within the named rank's buffer.
#[derive(Debug, Clone, Copy)]
enum Event {
    Copy {
        rank: Rank,
        op: usize,
        src: Block,
        dst: Block,
    },
    /// Message payload snapshot: read of `block` on the sender.
    Post {
        rank: Rank,
        op: usize,
        block: Block,
        msg: usize,
    },
    /// Message payload landing: write of `block` on the receiver.
    Deliver {
        rank: Rank,
        block: Block,
        msg: usize,
    },
}

#[derive(Debug, Clone)]
enum ReqState {
    Unposted,
    SendDone,
    /// Posted receive, waiting for channel sequence `seq` on `chan`.
    RecvPending {
        chan: (Rank, Rank, u32),
        seq: u64,
        block: Block,
        post_op: usize,
    },
    RecvDone,
}

struct Msg {
    payload: Vec<RelSeg>,
    to: Rank,
    bytes: Bytes,
    tag: u32,
}

/// Sorted, disjoint byte intervals (the backward-liveness working set).
#[derive(Debug, Clone, Default)]
struct IntervalSet {
    iv: Vec<(Bytes, Bytes)>,
}

impl IntervalSet {
    fn add(&mut self, start: Bytes, end: Bytes) {
        if start >= end {
            return;
        }
        self.iv.push((start, end));
        self.iv.sort_unstable();
        let mut merged: Vec<(Bytes, Bytes)> = Vec::with_capacity(self.iv.len());
        for &(a, b) in &self.iv {
            match merged.last_mut() {
                Some(last) if a <= last.1 => last.1 = last.1.max(b),
                _ => merged.push((a, b)),
            }
        }
        self.iv = merged;
    }

    /// Intersect with `[start, end)` and *remove* the intersection,
    /// returning it.
    fn take(&mut self, start: Bytes, end: Bytes) -> Vec<(Bytes, Bytes)> {
        let mut taken = Vec::new();
        let mut keep = Vec::with_capacity(self.iv.len());
        for &(a, b) in &self.iv {
            if b <= start || a >= end {
                keep.push((a, b));
                continue;
            }
            let (ia, ib) = (a.max(start), b.min(end));
            taken.push((ia, ib));
            if a < ia {
                keep.push((a, ia));
            }
            if ib < b {
                keep.push((ib, b));
            }
        }
        self.iv = keep;
        taken
    }
}

/// Symbolically execute `source` and check the final state against `spec`.
pub fn prove_schedule(source: &dyn ScheduleSource, spec: &SemanticsSpec) -> ProveReport {
    let n = source.nranks();
    assert_eq!(
        spec.expected.len(),
        n,
        "spec covers {} ranks, schedule has {n}",
        spec.expected.len()
    );
    let progs: Vec<RankProgram> = (0..n as Rank).map(|r| source.build_rank(r)).collect();

    let mut report = ProveReport::default();

    // Per-(rank, buf) provenance. SBUF (buf 0) starts as identity; every
    // other buffer starts undefined.
    let mut maps: Vec<Vec<SegMap>> = (0..n as Rank)
        .map(|r| {
            source
                .buffers(r)
                .iter()
                .enumerate()
                .map(|(b, &size)| {
                    let mut m = SegMap::default();
                    if b == 0 && size > 0 {
                        m.segs.push(Seg {
                            start: 0,
                            len: size,
                            prov: Some(Prov { src: r, off: 0 }),
                            writer: INITIAL,
                        });
                    }
                    m
                })
                .collect()
        })
        .collect();

    let mut pc = vec![0usize; n];
    let mut reqs: Vec<Vec<ReqState>> = progs
        .iter()
        .map(|p| vec![ReqState::Unposted; p.n_reqs as usize])
        .collect();
    // FIFO channels: the k-th send on (from, to, tag) pairs with the k-th
    // receive, exactly as every executor matches.
    let mut sent_seq: HashMap<(Rank, Rank, u32), u64> = HashMap::new();
    let mut recv_seq: HashMap<(Rank, Rank, u32), u64> = HashMap::new();
    let mut mailbox: HashMap<((Rank, Rank, u32), u64), usize> = HashMap::new();
    let mut msgs: Vec<Msg> = Vec::new();
    let mut events: Vec<Event> = Vec::new();

    // Cooperative round-robin: run each rank until it blocks at a WaitAll
    // whose receives have not all been sent yet; stop when a full cycle
    // makes no progress.
    loop {
        let mut progressed = false;
        for r in 0..n {
            let rank = r as Rank;
            let prog = &progs[r];
            'ops: while pc[r] < prog.ops.len() {
                match prog.ops[pc[r]].op {
                    Op::Isend {
                        to,
                        block,
                        tag,
                        req,
                        ..
                    } => {
                        let payload = maps[r][block.buf.0 as usize].read(block);
                        let chan = (rank, to, tag);
                        let seq = sent_seq.entry(chan).or_insert(0);
                        let id = msgs.len();
                        msgs.push(Msg {
                            payload,
                            to,
                            bytes: block.len,
                            tag,
                        });
                        mailbox.insert((chan, *seq), id);
                        *seq += 1;
                        events.push(Event::Post {
                            rank,
                            op: pc[r],
                            block,
                            msg: id,
                        });
                        reqs[r][req as usize] = ReqState::SendDone;
                    }
                    Op::Irecv {
                        from,
                        block,
                        tag,
                        req,
                        ..
                    } => {
                        let chan = (from, rank, tag);
                        let seq = recv_seq.entry(chan).or_insert(0);
                        reqs[r][req as usize] = ReqState::RecvPending {
                            chan,
                            seq: *seq,
                            block,
                            post_op: pc[r],
                        };
                        *seq += 1;
                    }
                    Op::Copy { src, dst } => {
                        let content = maps[r][src.buf.0 as usize].read(src);
                        clobber_check(
                            &maps[r][dst.buf.0 as usize],
                            dst,
                            &content,
                            rank,
                            pc[r],
                            "copy",
                            &spec.expected[r],
                            &mut report.findings,
                        );
                        maps[r][dst.buf.0 as usize].write(dst, &content, pc[r]);
                        events.push(Event::Copy {
                            rank,
                            op: pc[r],
                            src,
                            dst,
                        });
                    }
                    Op::WaitAll { first_req, count } => {
                        // Deliverable only if every covered receive's
                        // message has been posted by its sender.
                        for q in first_req..first_req + count {
                            if let ReqState::RecvPending { chan, seq, .. } = reqs[r][q as usize] {
                                if !mailbox.contains_key(&(chan, seq)) {
                                    break 'ops; // blocked: resume later
                                }
                            }
                        }
                        for q in first_req..first_req + count {
                            if let ReqState::RecvPending {
                                chan,
                                seq,
                                block,
                                post_op,
                            } = reqs[r][q as usize]
                            {
                                let id = mailbox.remove(&(chan, seq)).expect("checked");
                                report.messages += 1;
                                // Clip the payload to the receive block
                                // (mismatched lengths are the validator's
                                // finding, not ours).
                                let payload: Vec<RelSeg> = msgs[id]
                                    .payload
                                    .iter()
                                    .take_while(|p| p.rel < block.len)
                                    .map(|p| RelSeg {
                                        rel: p.rel,
                                        len: p.len.min(block.len - p.rel),
                                        prov: p.prov,
                                    })
                                    .collect();
                                clobber_check(
                                    &maps[r][block.buf.0 as usize],
                                    block,
                                    &payload,
                                    rank,
                                    post_op,
                                    "delivery",
                                    &spec.expected[r],
                                    &mut report.findings,
                                );
                                maps[r][block.buf.0 as usize].write(block, &payload, post_op);
                                events.push(Event::Deliver {
                                    rank,
                                    block,
                                    msg: id,
                                });
                                reqs[r][q as usize] = ReqState::RecvDone;
                            }
                        }
                    }
                }
                pc[r] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    report.stuck = pc.iter().enumerate().any(|(r, &p)| p < progs[r].ops.len());

    // Final-state check: A2A007 (wrong source) and A2A008 (missing).
    for (r, map) in maps.iter().enumerate() {
        let rank = r as Rank;
        let rbuf = map.get(1);
        for e in &spec.expected[r] {
            report.bytes_checked += e.len;
            let want = Block::new(crate::ir::RBUF, e.dst_off, e.len);
            let runs = match rbuf {
                Some(m) => m.read(want),
                None => vec![RelSeg {
                    rel: 0,
                    len: e.len,
                    prov: None,
                }],
            };
            // Writers of each run, for anchoring (parallel lookup).
            for run in runs {
                let at = e.dst_off + run.rel;
                match run.prov {
                    None => report.findings.push(ProveFinding {
                        issue: ProveIssue::MissingByte,
                        rank,
                        op: None,
                        message: format!(
                            "rbuf[{}..{}) expects {} byte(s) from rank {} sbuf[{}..), \
                             but they were never written",
                            at,
                            at + run.len,
                            run.len,
                            e.src,
                            e.src_off + run.rel,
                        ),
                        note: None,
                    }),
                    Some(p) if p.aligned(at, e.src, e.src_off, e.dst_off) => {}
                    Some(p) => {
                        let writer = rbuf
                            .map(|m| m.overlapping(at, at + run.len))
                            .and_then(|segs| segs.first().map(|s| s.writer));
                        report.findings.push(ProveFinding {
                            issue: ProveIssue::WrongSource,
                            rank,
                            op: writer.filter(|&w| w != INITIAL),
                            message: format!(
                                "rbuf[{}..{}) holds rank {} sbuf[{}..{}), \
                                 expected rank {} sbuf[{}..{})",
                                at,
                                at + run.len,
                                p.src,
                                p.off,
                                p.off + run.len,
                                e.src,
                                e.src_off + run.rel,
                                e.src_off + run.rel + run.len,
                            ),
                            note: writer
                                .filter(|&w| w != INITIAL)
                                .map(|w| format!("last written by op {w}")),
                        });
                    }
                }
            }
        }
    }

    // Backward liveness: A2A010 (redundant transfers). Seed the needed set
    // with the declared outputs and walk the event list in reverse; a
    // message or copy none of whose bytes are needed moved dead data.
    let mut needed: HashMap<(Rank, u8), IntervalSet> = HashMap::new();
    for (r, segs) in spec.expected.iter().enumerate() {
        let set = needed.entry((r as Rank, 1)).or_default();
        for e in segs {
            set.add(e.dst_off, e.dst_off + e.len);
        }
    }
    let mut msg_need: HashMap<usize, Vec<(Bytes, Bytes)>> = HashMap::new();
    for ev in events.iter().rev() {
        match *ev {
            Event::Deliver {
                rank, block, msg, ..
            } => {
                let useful = needed
                    .entry((rank, block.buf.0))
                    .or_default()
                    .take(block.off, block.end());
                // Translate to payload-relative intervals for the post.
                let rel: Vec<(Bytes, Bytes)> = useful
                    .iter()
                    .map(|&(a, b)| (a - block.off, b - block.off))
                    .collect();
                msg_need.insert(msg, rel);
            }
            Event::Post {
                rank,
                op,
                block,
                msg,
            } => {
                let rel = msg_need.remove(&msg).unwrap_or_default();
                if rel.is_empty() {
                    let m = &msgs[msg];
                    report.findings.push(ProveFinding {
                        issue: ProveIssue::RedundantTransfer,
                        rank,
                        op: Some(op),
                        message: format!(
                            "message of {} byte(s) to rank {} (tag {}) moves bytes \
                             no declared output depends on",
                            m.bytes, m.to, m.tag,
                        ),
                        note: None,
                    });
                } else {
                    let set = needed.entry((rank, block.buf.0)).or_default();
                    for (a, b) in rel {
                        set.add(block.off + a, block.off + b);
                    }
                }
            }
            Event::Copy { rank, op, src, dst } => {
                let useful = needed
                    .entry((rank, dst.buf.0))
                    .or_default()
                    .take(dst.off, dst.end());
                if useful.is_empty() {
                    report.findings.push(ProveFinding {
                        issue: ProveIssue::RedundantTransfer,
                        rank,
                        op: Some(op),
                        message: format!(
                            "copy of {} byte(s) buf{}[{}..{}) -> buf{}[{}..{}) moves \
                             bytes no declared output depends on",
                            dst.len,
                            src.buf.0,
                            src.off,
                            src.end(),
                            dst.buf.0,
                            dst.off,
                            dst.end(),
                        ),
                        note: None,
                    });
                } else {
                    let set = needed.entry((rank, src.buf.0)).or_default();
                    for (a, b) in useful {
                        set.add(src.off + (a - dst.off), src.off + (b - dst.off));
                    }
                }
            }
        }
    }

    report
}

/// Forward clobber check (`A2A009`): fire when a write into the expected
/// output buffer overwrites bytes that already hold their correct final
/// provenance with something different. Only RBUF (buf 1) carries declared
/// outputs, so other buffers are exempt.
#[allow(clippy::too_many_arguments)]
fn clobber_check(
    map: &SegMap,
    dst: Block,
    content: &[RelSeg],
    rank: Rank,
    op: usize,
    what: &str,
    expected: &[ExpectSeg],
    findings: &mut Vec<ProveFinding>,
) {
    if dst.buf.0 != 1 || dst.len == 0 {
        return;
    }
    for e in expected {
        let (a, b) = (e.dst_off.max(dst.off), (e.dst_off + e.len).min(dst.end()));
        if a >= b {
            continue;
        }
        for old in map.overlapping(a, b) {
            let Some(op_old) = old.prov else { continue };
            if !op_old.aligned(old.start, e.src, e.src_off, e.dst_off) {
                continue; // old bytes were not correct: plain overwrite
            }
            // Old bytes correct: is any covering new content different?
            let mut clobbered: Option<(Bytes, Bytes)> = None;
            for c in content {
                let (ca, cb) = (dst.off + c.rel, dst.off + c.rel + c.len);
                let (ia, ib) = (ca.max(old.start), cb.min(old.end()));
                if ia >= ib {
                    continue;
                }
                let same = c
                    .prov
                    .map(|p| {
                        Prov {
                            src: p.src,
                            off: p.off + (ia - ca),
                        }
                        .aligned(ia, e.src, e.src_off, e.dst_off)
                    })
                    .unwrap_or(false);
                if !same {
                    clobbered = Some(match clobbered {
                        Some((x, y)) => (x.min(ia), y.max(ib)),
                        None => (ia, ib),
                    });
                }
            }
            if let Some((x, y)) = clobbered {
                findings.push(ProveFinding {
                    issue: ProveIssue::ClobberedByte,
                    rank,
                    op: Some(op),
                    message: format!(
                        "{what} overwrites {} correct byte(s) of rbuf[{x}..{y}) \
                         (rank {} sbuf data) with different provenance before \
                         the schedule ends",
                        y - x,
                        e.src,
                    ),
                    note: old
                        .writer
                        .ne(&INITIAL)
                        .then(|| format!("correct bytes were written by op {}", old.writer)),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgBuilder;
    use crate::ir::{Phase, RBUF, SBUF};
    use crate::ScheduleSource;
    use std::borrow::Cow;

    struct Fixed {
        progs: Vec<RankProgram>,
        buffers: Vec<Vec<Bytes>>,
    }

    impl ScheduleSource for Fixed {
        fn nranks(&self) -> usize {
            self.progs.len()
        }
        fn buffers(&self, r: Rank) -> Vec<Bytes> {
            self.buffers[r as usize].clone()
        }
        fn rank_program(&self, r: Rank) -> Cow<'_, RankProgram> {
            Cow::Borrowed(&self.progs[r as usize])
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["all"]
        }
    }

    /// Two ranks, 8-byte blocks: a correct direct all-to-all.
    fn swap_pair() -> Fixed {
        let progs = (0..2u32)
            .map(|me| {
                let peer = 1 - me;
                let mut b = ProgBuilder::new(Phase(0));
                b.copy(
                    Block::new(SBUF, me as Bytes * 8, 8),
                    Block::new(RBUF, me as Bytes * 8, 8),
                );
                b.sendrecv(
                    peer,
                    Block::new(SBUF, peer as Bytes * 8, 8),
                    1,
                    peer,
                    Block::new(RBUF, peer as Bytes * 8, 8),
                    1,
                );
                b.finish()
            })
            .collect();
        Fixed {
            progs,
            buffers: vec![vec![16, 16]; 2],
        }
    }

    #[test]
    fn correct_pair_proves_clean() {
        let spec = SemanticsSpec::alltoall(2, 8);
        let rep = prove_schedule(&swap_pair(), &spec);
        assert!(rep.is_clean(), "{:?}", rep.findings);
        assert_eq!(rep.bytes_checked, 32);
        assert_eq!(rep.messages, 2);
        assert!(!rep.stuck);
    }

    #[test]
    fn wrong_send_offset_is_wrong_source() {
        let mut f = swap_pair();
        // Rank 0 sends its *own* block instead of the peer's.
        for top in &mut f.progs[0].ops {
            if let Op::Isend { block, .. } = &mut top.op {
                block.off = 0;
            }
        }
        let rep = prove_schedule(&f, &SemanticsSpec::alltoall(2, 8));
        assert_eq!(rep.count(ProveIssue::WrongSource), 1, "{:?}", rep.findings);
        let w = &rep.findings[0];
        assert_eq!(w.rank, 1);
        assert!(w.message.contains("rank 0 sbuf[0..8)"), "{}", w.message);
    }

    #[test]
    fn dropped_copy_is_missing_byte() {
        let mut f = swap_pair();
        f.progs[0].ops.remove(0); // rank 0 never fills its self block
        let rep = prove_schedule(&f, &SemanticsSpec::alltoall(2, 8));
        assert_eq!(rep.count(ProveIssue::MissingByte), 1, "{:?}", rep.findings);
        assert_eq!(rep.findings[0].rank, 0);
    }

    #[test]
    fn late_overwrite_is_clobbered_byte() {
        let mut f = swap_pair();
        // After the exchange, rank 1 copies garbage over its correct block.
        let phase = f.progs[1].ops[0].phase;
        f.progs[1].ops.push(crate::ir::TimedOp {
            op: Op::Copy {
                src: Block::new(SBUF, 8, 8),
                dst: Block::new(RBUF, 0, 8),
            },
            phase,
        });
        let rep = prove_schedule(&f, &SemanticsSpec::alltoall(2, 8));
        assert!(
            rep.count(ProveIssue::ClobberedByte) >= 1,
            "{:?}",
            rep.findings
        );
        assert!(
            rep.count(ProveIssue::WrongSource) >= 1,
            "final state wrong too"
        );
    }

    #[test]
    fn dead_message_is_redundant_transfer() {
        let mut f = swap_pair();
        // Extra exchange into a scratch buffer nothing reads.
        f.buffers[1].push(8); // buf 2 on rank 1
        let p0 = &mut f.progs[0];
        let req = p0.n_reqs;
        p0.n_reqs += 1;
        let phase = p0.ops[0].phase;
        p0.ops.push(crate::ir::TimedOp {
            op: Op::Isend {
                to: 1,
                block: Block::new(SBUF, 0, 8),
                tag: 99,
                req,
            },
            phase,
        });
        p0.ops.push(crate::ir::TimedOp {
            op: Op::WaitAll {
                first_req: req,
                count: 1,
            },
            phase,
        });
        let p1 = &mut f.progs[1];
        let req = p1.n_reqs;
        p1.n_reqs += 1;
        p1.ops.push(crate::ir::TimedOp {
            op: Op::Irecv {
                from: 0,
                block: Block::new(crate::ir::TMP0, 0, 8),
                tag: 99,
                req,
            },
            phase,
        });
        p1.ops.push(crate::ir::TimedOp {
            op: Op::WaitAll {
                first_req: req,
                count: 1,
            },
            phase,
        });
        let rep = prove_schedule(&f, &SemanticsSpec::alltoall(2, 8));
        assert_eq!(
            rep.count(ProveIssue::RedundantTransfer),
            1,
            "{:?}",
            rep.findings
        );
        assert_eq!(rep.count(ProveIssue::WrongSource), 0);
        assert_eq!(rep.count(ProveIssue::MissingByte), 0);
    }

    #[test]
    fn forwarding_through_temporaries_preserves_provenance() {
        // Rank 0 -> rank 1 (tmp) -> copy -> rank 1 rbuf: a gather-style hop.
        let mut b0 = ProgBuilder::new(Phase(0));
        b0.copy(Block::new(SBUF, 0, 4), Block::new(RBUF, 0, 4));
        b0.send(1, Block::new(SBUF, 4, 4), 0);
        let mut b1 = ProgBuilder::new(Phase(0));
        b1.recv(0, Block::new(crate::ir::TMP0, 0, 4), 0);
        b1.copy(Block::new(crate::ir::TMP0, 0, 4), Block::new(RBUF, 0, 4));
        b1.copy(Block::new(SBUF, 4, 4), Block::new(RBUF, 4, 4));
        // Rank 0's rbuf block 1 comes from rank 1.
        let mut b0ops = b0.finish();
        let mut b1ops = b1.finish();
        {
            // rank 1 sends its block 0 to rank 0
            let req = b1ops.n_reqs;
            b1ops.n_reqs += 1;
            let phase = Phase(0);
            b1ops.ops.push(crate::ir::TimedOp {
                op: Op::Isend {
                    to: 0,
                    block: Block::new(SBUF, 0, 4),
                    tag: 1,
                    req,
                },
                phase,
            });
            b1ops.ops.push(crate::ir::TimedOp {
                op: Op::WaitAll {
                    first_req: req,
                    count: 1,
                },
                phase,
            });
            let req = b0ops.n_reqs;
            b0ops.n_reqs += 1;
            b0ops.ops.push(crate::ir::TimedOp {
                op: Op::Irecv {
                    from: 1,
                    block: Block::new(RBUF, 4, 4),
                    tag: 1,
                    req,
                },
                phase,
            });
            b0ops.ops.push(crate::ir::TimedOp {
                op: Op::WaitAll {
                    first_req: req,
                    count: 1,
                },
                phase,
            });
        }
        let f = Fixed {
            progs: vec![b0ops, b1ops],
            buffers: vec![vec![8, 8, 4], vec![8, 8, 4]],
        };
        let rep = prove_schedule(&f, &SemanticsSpec::alltoall(2, 4));
        assert!(rep.is_clean(), "{:?}", rep.findings);
    }

    #[test]
    fn empty_spec_rows_are_fine() {
        // A 2-rank alltoallv where rank 1 receives nothing.
        let counts = |s: Rank, d: Rank| -> Bytes {
            if d == 0 {
                4 + s as Bytes * 4
            } else {
                0
            }
        };
        let spec = SemanticsSpec::alltoallv(2, &counts);
        assert!(spec.expected[1].is_empty());
        assert_eq!(spec.expected[0].len(), 2);
        // rank 0: recv_off of src 1 is counts(0,0)=4
        assert_eq!(spec.expected[0][1].dst_off, 4);
        assert_eq!(spec.expected[0][1].len, 8);
    }

    #[test]
    fn allgather_and_bcast_specs() {
        let g = SemanticsSpec::allgather(3, 8);
        assert_eq!(g.expected[2][1].src, 1);
        assert_eq!(g.expected[2][1].src_off, 0);
        assert_eq!(g.expected[2][1].dst_off, 8);
        let b = SemanticsSpec::bcast(3, 1, 16);
        assert_eq!(b.expected[0][0].src, 1);
        assert_eq!(b.output_bytes(), 48);
    }

    #[test]
    fn segmap_carve_and_read_roundtrip() {
        let mut m = SegMap::default();
        m.write(
            Block::new(RBUF, 0, 16),
            &[RelSeg {
                rel: 0,
                len: 16,
                prov: Some(Prov { src: 3, off: 100 }),
            }],
            7,
        );
        // Overwrite the middle with undefined.
        m.write(
            Block::new(RBUF, 4, 8),
            &[RelSeg {
                rel: 0,
                len: 8,
                prov: None,
            }],
            9,
        );
        let runs = m.read(Block::new(RBUF, 0, 16));
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].prov, Some(Prov { src: 3, off: 100 }));
        assert_eq!(runs[1].prov, None);
        assert_eq!(runs[2].prov, Some(Prov { src: 3, off: 112 }));
        assert_eq!(runs[2].rel, 12);
    }
}
