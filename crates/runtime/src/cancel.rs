//! Cooperative cancellation for service-style traffic.
//!
//! A [`CancelToken`] is a cheaply cloneable flag shared between whoever
//! owns a unit of work (a service's deadline wheel, a caller that lost
//! interest) and whoever executes it (a [`crate::WorkerPool`] task, a
//! [`crate::ParallelExecutor`] world). Cancellation is strictly
//! cooperative and one-way: once fired it never un-fires, every clone
//! observes it, and each checkpoint decides what "stop" means there —
//! the pool skips not-yet-started tasks, the fabric aborts an in-flight
//! world with [`crate::RuntimeError::Cancelled`] through the same abort
//! latch a failing rank would use.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, latching cancellation flag. Clones observe the same flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Fire the token. Idempotent; returns whether this call was the
    /// first to fire it.
    pub fn cancel(&self) -> bool {
        !self.fired.swap(true, Ordering::AcqRel)
    }

    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_latches_and_is_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        assert!(t.cancel(), "first fire reports true");
        assert!(!clone.cancel(), "second fire reports false");
        assert!(clone.is_cancelled());
    }
}
