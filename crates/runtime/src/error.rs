//! Typed failures for the threaded runtime.
//!
//! Every blocking primitive in the fabric returns `Result<_, RuntimeError>`
//! instead of panicking or hanging: a lost message surfaces as
//! [`RuntimeError::MessageDropped`] / [`RuntimeError::RetriesExhausted`], a
//! silent hang as [`RuntimeError::WatchdogTimeout`] with per-rank
//! diagnostics mirroring `a2a_sched::ExecError::Deadlock`, and the first
//! error any rank hits is broadcast so one failed rank fails the collective
//! everywhere instead of deadlocking the world.

use std::time::Duration;

/// What a rank was blocked on when the watchdog fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedKind {
    /// Waiting for a matched message.
    Recv { peer: u32, tag: u32 },
    /// Waiting at the world barrier.
    Barrier,
}

/// One rank's blocked state, reported by [`RuntimeError::WatchdogTimeout`].
/// Mirrors the `(rank, program counter)` diagnostics of
/// `a2a_sched::ExecError::Deadlock`, extended with the peer and tag the
/// rank was waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedOp {
    pub rank: u32,
    /// Index of the schedule op being executed, when the block happened
    /// inside a compiled program (`None` for ad-hoc point-to-point).
    pub op_index: Option<usize>,
    pub kind: BlockedKind,
}

impl std::fmt::Display for BlockedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {}", self.rank)?;
        if let Some(i) = self.op_index {
            write!(f, " at op {i}")?;
        }
        match self.kind {
            BlockedKind::Recv { peer, tag } => {
                write!(f, " blocked in recv(from={peer}, tag={tag})")
            }
            BlockedKind::Barrier => write!(f, " blocked at barrier"),
        }
    }
}

/// A failure of the threaded runtime. Cloneable so the first error can be
/// rebroadcast verbatim to every other rank.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// No rank made progress for `deadline`; `blocked` lists every rank
    /// that was parked in the fabric when the watchdog fired.
    WatchdogTimeout {
        deadline: Duration,
        blocked: Vec<BlockedOp>,
    },
    /// A message was lost in flight and retransmission is disabled.
    MessageDropped {
        from: u32,
        to: u32,
        tag: u32,
        seq: u64,
    },
    /// A message stayed lost after the configured retransmit budget.
    RetriesExhausted {
        from: u32,
        to: u32,
        tag: u32,
        seq: u64,
        attempts: u32,
    },
    /// A delivered payload did not match the sender's pristine copy and
    /// retransmission is disabled.
    CorruptPayload {
        from: u32,
        to: u32,
        tag: u32,
        seq: u64,
    },
    /// A received message's length differed from the posted buffer.
    LengthMismatch {
        rank: u32,
        from: u32,
        tag: u32,
        got: usize,
        want: usize,
    },
    /// `bcast` was called on the root without a payload.
    MissingRootPayload { root: u32 },
    /// A rank's body panicked; the world was torn down.
    RankPanicked { rank: u32 },
    /// The fault plan marked this rank dead before the collective started.
    DeadRank { rank: u32 },
    /// Messages were sent but never received (counted after all ranks
    /// returned successfully) — the threaded analogue of
    /// `ExecError::UnconsumedMessages`.
    UnconsumedMessages { count: usize },
    /// A rank-level check failed (e.g. a transpose verification in a test
    /// body); carries the rank and a human-readable detail string.
    VerificationFailed { rank: u32, detail: String },
    /// The run was cancelled from outside (a fired
    /// [`crate::CancelToken`] — e.g. a service deadline): the world was
    /// torn down through the abort latch before completing.
    Cancelled,
}

/// Whether a failure is worth retrying.
///
/// The split follows the fault model: *transient* errors are the
/// environment misbehaving (packets lost or damaged beyond the retransmit
/// budget, a straggler tripping the progress watchdog) — an identical
/// retry may well succeed. *Permanent* errors are properties of the job
/// or the world (a dead rank, a malformed schedule, a failed verification,
/// an explicit cancellation) — retrying reproduces them and only burns
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    Transient,
    Permanent,
}

impl RuntimeError {
    /// Classify this failure for retry policies. See [`ErrorClass`].
    pub fn class(&self) -> ErrorClass {
        match self {
            RuntimeError::WatchdogTimeout { .. }
            | RuntimeError::MessageDropped { .. }
            | RuntimeError::RetriesExhausted { .. }
            | RuntimeError::CorruptPayload { .. } => ErrorClass::Transient,
            RuntimeError::LengthMismatch { .. }
            | RuntimeError::MissingRootPayload { .. }
            | RuntimeError::RankPanicked { .. }
            | RuntimeError::DeadRank { .. }
            | RuntimeError::UnconsumedMessages { .. }
            | RuntimeError::VerificationFailed { .. }
            | RuntimeError::Cancelled => ErrorClass::Permanent,
        }
    }

    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::WatchdogTimeout { deadline, blocked } => {
                write!(
                    f,
                    "watchdog: no progress for {deadline:?}; {} rank(s) blocked:",
                    blocked.len()
                )?;
                for b in blocked {
                    write!(f, "\n  {b}")?;
                }
                Ok(())
            }
            RuntimeError::MessageDropped { from, to, tag, seq } => write!(
                f,
                "message {from}->{to} tag {tag} seq {seq} was dropped (retransmit disabled)"
            ),
            RuntimeError::RetriesExhausted {
                from,
                to,
                tag,
                seq,
                attempts,
            } => write!(
                f,
                "message {from}->{to} tag {tag} seq {seq} still lost after {attempts} retransmit(s)"
            ),
            RuntimeError::CorruptPayload { from, to, tag, seq } => write!(
                f,
                "message {from}->{to} tag {tag} seq {seq} corrupted in flight (retransmit disabled)"
            ),
            RuntimeError::LengthMismatch {
                rank,
                from,
                tag,
                got,
                want,
            } => write!(
                f,
                "rank {rank}: message from {from} tag {tag} has {got} bytes, buffer {want}"
            ),
            RuntimeError::MissingRootPayload { root } => {
                write!(f, "bcast root {root} did not supply a payload")
            }
            RuntimeError::RankPanicked { rank } => write!(f, "rank {rank} panicked"),
            RuntimeError::DeadRank { rank } => {
                write!(f, "rank {rank} is dead (fault plan) and cannot participate")
            }
            RuntimeError::UnconsumedMessages { count } => {
                write!(f, "{count} message(s) sent but never received")
            }
            RuntimeError::VerificationFailed { rank, detail } => {
                write!(f, "rank {rank}: verification failed: {detail}")
            }
            RuntimeError::Cancelled => write!(f, "run cancelled (deadline or external abort)"),
        }
    }
}

impl std::error::Error for RuntimeError {}
