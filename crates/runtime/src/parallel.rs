//! Parallel deterministic schedule execution: many ranks, few threads.
//!
//! [`ParallelExecutor`] runs every rank of a compiled schedule
//! concurrently on a small pool of worker threads (`std::thread::scope`),
//! multiplexing each worker over a static round-robin partition of the
//! ranks. Workers interpret their ranks' programs cooperatively: sends
//! are eager (never block), and a `WaitAll` polls the fabric with
//! [`Fabric::poll_recv_into`] so one stuck rank never wedges its worker —
//! the worker simply moves on to its next rank and parks only when *none*
//! of its ranks can progress.
//!
//! # Determinism
//!
//! The output bytes are independent of thread interleaving, and equal to
//! the sequential `a2a_sched::DataExecutor`'s, because:
//!
//! * each `(from, to, tag)` channel is posted by exactly one sender in
//!   its program order, and sequence numbers are assigned under the
//!   destination mailbox lock, so per-channel payload order is fixed;
//! * the receiver matches a channel strictly in posting order (a stalled
//!   head blocks later receives on the *same* channel, never on others);
//! * injected fault fates are pure hashes of `(from, to, tag, seq,
//!   attempt)`, and the fabric's store-once payloads make every recovered
//!   message byte-identical to its original send;
//! * verified schedules write each receive into its own disjoint block.
//!
//! The full fault-injection machinery applies unchanged: drops and
//! corruption are healed by inline retransmission, a dead rank fails the
//! world before any thread spawns, and a genuinely hung schedule is
//! bounded by the progress watchdog, which names every blocked rank.

use std::borrow::Cow;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use a2a_sched::{Block, Bytes, Op, RankProgram, ScheduleSource};

use crate::comm::split_two;
use crate::error::{BlockedKind, BlockedOp, RuntimeError};
use crate::fabric::{Fabric, ProgressWatch, WorldOptions};

/// Result of a successful parallel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelOutput {
    /// Every rank's final receive buffer (`RBUF`), rank-ordered.
    pub rbufs: Vec<Vec<u8>>,
    /// Messages delivered.
    pub messages: usize,
    /// Total message payload bytes.
    pub message_bytes: Bytes,
    /// Total locally copied (repack) bytes.
    pub copy_bytes: Bytes,
}

/// One rank's interpreter state, owned by a single worker thread.
struct RankCtx<'s> {
    rank: u32,
    prog: Cow<'s, RankProgram>,
    bufs: Vec<Vec<u8>>,
    pc: usize,
    /// Posted-but-unmatched receives: req id -> (from, tag, destination).
    pending: HashMap<u32, (u32, u32, Block)>,
    /// Requests already complete (sends at post time, receives at match).
    done_reqs: Vec<bool>,
    finished: bool,
    /// Whether this rank currently has a `BlockedOp` entry registered
    /// for watchdog diagnostics.
    registered: bool,
    messages: usize,
    message_bytes: Bytes,
    copy_bytes: Bytes,
}

/// Runs all ranks of a schedule on a bounded worker pool.
pub struct ParallelExecutor;

impl ParallelExecutor {
    /// Run `source` with default options; `workers = 0` means one worker
    /// per available CPU (capped at the rank count).
    pub fn run(
        source: &dyn ScheduleSource,
        workers: usize,
        fill: impl FnMut(u32, &mut [u8]),
    ) -> Result<ParallelOutput, RuntimeError> {
        Self::run_with(source, WorldOptions::default(), workers, fill)
    }

    /// Run `source` under `opts` (watchdog, retransmit budget, fault
    /// plan). `fill(rank, sbuf)` seeds each rank's send buffer before any
    /// thread spawns. Returns rank-ordered receive buffers and summed
    /// traffic counters; any rank's failure (or a fault-plan dead rank)
    /// fails the whole collective with the first error.
    pub fn run_with(
        source: &dyn ScheduleSource,
        opts: WorldOptions,
        workers: usize,
        mut fill: impl FnMut(u32, &mut [u8]),
    ) -> Result<ParallelOutput, RuntimeError> {
        let n = source.nranks();
        assert!(n > 0, "schedule must have at least one rank");
        let fabric = Fabric::with_options(n, opts);
        if let Some(plan) = fabric.fault_plan() {
            if let Some(rank) = (0..n as u32).find(|&r| plan.is_dead(r)) {
                return Err(fabric.abort(RuntimeError::DeadRank { rank }));
            }
        }

        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(1)
        } else {
            workers
        }
        .min(n)
        .max(1);

        // Build all interpreter state up front, on this thread: programs
        // stay borrowed from the source (no per-run clones), buffers are
        // zeroed and the send buffers seeded by `fill`.
        let mut chunks: Vec<Vec<RankCtx<'_>>> = (0..workers).map(|_| Vec::new()).collect();
        for r in 0..n as u32 {
            let prog = source.rank_program(r);
            let mut bufs: Vec<Vec<u8>> = source
                .buffers(r)
                .into_iter()
                .map(|s| vec![0u8; s as usize])
                .collect();
            fill(r, &mut bufs[0]);
            chunks[r as usize % workers].push(RankCtx {
                rank: r,
                done_reqs: vec![false; prog.n_reqs as usize],
                prog,
                bufs,
                pc: 0,
                pending: HashMap::new(),
                finished: false,
                registered: false,
                messages: 0,
                message_bytes: 0,
                copy_bytes: 0,
            });
        }

        std::thread::scope(|scope| {
            for chunk in chunks.iter_mut() {
                let fabric = &fabric;
                let first_rank = chunk[0].rank;
                scope.spawn(move || {
                    if let Err(payload) =
                        catch_unwind(AssertUnwindSafe(|| Self::worker(fabric, chunk)))
                    {
                        // Unblock peers before re-raising so the scope's
                        // implicit joins all complete.
                        fabric.abort(RuntimeError::RankPanicked { rank: first_rank });
                        resume_unwind(payload);
                    }
                });
            }
        });

        if let Some(e) = fabric.abort_error() {
            return Err(e);
        }
        let leftover = fabric.undelivered();
        if leftover > 0 {
            return Err(RuntimeError::UnconsumedMessages { count: leftover });
        }

        let mut ctxs: Vec<RankCtx<'_>> = chunks.into_iter().flatten().collect();
        ctxs.sort_by_key(|c| c.rank);
        let mut out = ParallelOutput {
            rbufs: Vec::with_capacity(n),
            messages: 0,
            message_bytes: 0,
            copy_bytes: 0,
        };
        for mut ctx in ctxs {
            out.rbufs.push(ctx.bufs.swap_remove(1));
            out.messages += ctx.messages;
            out.message_bytes += ctx.message_bytes;
            out.copy_bytes += ctx.copy_bytes;
        }
        Ok(out)
    }

    /// One worker's life: round-robin over its owned ranks until all have
    /// finished, the world aborts, or the watchdog fires. Parks for one
    /// wait slice only when a full pass over every rank made no progress.
    fn worker(fabric: &Fabric, ctxs: &mut [RankCtx<'_>]) {
        let mut watch = ProgressWatch::new(fabric);
        loop {
            if fabric.abort_error().is_some() {
                break;
            }
            let mut progressed = false;
            let mut unfinished = false;
            for ctx in ctxs.iter_mut() {
                if ctx.finished {
                    continue;
                }
                match Self::advance(ctx, fabric) {
                    // The fabric already latched and broadcast the error.
                    Err(_) => {
                        Self::deregister_all(fabric, ctxs);
                        return;
                    }
                    Ok(p) => {
                        if ctx.pc >= ctx.prog.ops.len() {
                            assert!(
                                ctx.pending.is_empty(),
                                "rank {}: {} receives never waited on",
                                ctx.rank,
                                ctx.pending.len()
                            );
                            ctx.finished = true;
                            progressed = true;
                        } else {
                            unfinished = true;
                            progressed |= p;
                        }
                        if (p || ctx.finished) && ctx.registered {
                            fabric.unregister_blocked(ctx.rank);
                            ctx.registered = false;
                        }
                    }
                }
            }
            if !unfinished {
                break;
            }
            if progressed {
                continue;
            }
            // Full pass, zero progress: every live rank is stuck on a
            // receive. Publish each blocked state for the watchdog, then
            // park on the first stuck rank's mailbox for one slice (a
            // message for any owned rank is picked up within a slice).
            let mut park_rank = None;
            for ctx in ctxs.iter_mut() {
                if ctx.finished {
                    continue;
                }
                if park_rank.is_none() {
                    park_rank = Some(ctx.rank);
                }
                if !ctx.registered {
                    if let Some(op) = Self::stuck_recv(ctx) {
                        fabric.register_blocked(op);
                        ctx.registered = true;
                    }
                }
            }
            fabric.wait_activity(park_rank.expect("unfinished implies a live rank"));
            if let Some(stalled) = watch.stalled_for(fabric) {
                if stalled >= fabric.options().watchdog {
                    fabric.fire_watchdog();
                    break;
                }
            }
        }
        Self::deregister_all(fabric, ctxs);
    }

    fn deregister_all(fabric: &Fabric, ctxs: &mut [RankCtx<'_>]) {
        for ctx in ctxs.iter_mut() {
            if ctx.registered {
                fabric.unregister_blocked(ctx.rank);
                ctx.registered = false;
            }
        }
    }

    /// What `ctx` is blocked on, for watchdog diagnostics: the first
    /// unmatched receive of the `WaitAll` at its program counter.
    fn stuck_recv(ctx: &RankCtx<'_>) -> Option<BlockedOp> {
        if let Op::WaitAll { first_req, count } = ctx.prog.ops[ctx.pc].op {
            for req in first_req..first_req + count {
                if ctx.done_reqs[req as usize] {
                    continue;
                }
                if let Some(&(from, tag, _)) = ctx.pending.get(&req) {
                    return Some(BlockedOp {
                        rank: ctx.rank,
                        op_index: Some(ctx.pc),
                        kind: BlockedKind::Recv { peer: from, tag },
                    });
                }
            }
        }
        None
    }

    /// Run `ctx` forward until it finishes or blocks at a `WaitAll` with
    /// undelivered receives. Returns whether anything progressed. Errors
    /// have already aborted the world when returned.
    fn advance(ctx: &mut RankCtx<'_>, fabric: &Fabric) -> Result<bool, RuntimeError> {
        let mut progressed = false;
        while ctx.pc < ctx.prog.ops.len() {
            match ctx.prog.ops[ctx.pc].op {
                Op::Isend {
                    to,
                    block,
                    tag,
                    req,
                    ..
                } => {
                    fabric.send(
                        ctx.rank,
                        to,
                        tag,
                        &ctx.bufs[block.buf.0 as usize][block.off as usize..block.end() as usize],
                    )?;
                    ctx.done_reqs[req as usize] = true;
                }
                Op::Irecv {
                    from,
                    block,
                    tag,
                    req,
                } => {
                    ctx.pending.insert(req, (from, tag, block));
                }
                Op::WaitAll { first_req, count } => {
                    // Poll each outstanding receive in request (= posting)
                    // order. A stalled head parks all later receives on
                    // the same channel — FIFO matching must not skip — but
                    // other channels keep draining.
                    let mut all = true;
                    let mut stalled: Vec<(u32, u32)> = Vec::new();
                    for req in first_req..first_req + count {
                        if ctx.done_reqs[req as usize] {
                            continue;
                        }
                        let (from, tag, block) = match ctx.pending.get(&req) {
                            Some(&v) => v,
                            None => {
                                panic!("rank {}: WaitAll names unposted request {req}", ctx.rank)
                            }
                        };
                        if stalled.contains(&(from, tag)) {
                            all = false;
                            continue;
                        }
                        let dst = &mut ctx.bufs[block.buf.0 as usize]
                            [block.off as usize..block.end() as usize];
                        if fabric.poll_recv_into(ctx.rank, from, tag, dst)? {
                            ctx.pending.remove(&req);
                            ctx.done_reqs[req as usize] = true;
                            ctx.messages += 1;
                            ctx.message_bytes += block.len;
                            progressed = true;
                        } else {
                            all = false;
                            stalled.push((from, tag));
                        }
                    }
                    if !all {
                        return Ok(progressed);
                    }
                }
                Op::Copy { src, dst } => {
                    if src.buf == dst.buf {
                        ctx.bufs[src.buf.0 as usize]
                            .copy_within(src.off as usize..src.end() as usize, dst.off as usize);
                    } else {
                        let (s, d) =
                            split_two(&mut ctx.bufs, src.buf.0 as usize, dst.buf.0 as usize);
                        d[dst.off as usize..dst.end() as usize]
                            .copy_from_slice(&s[src.off as usize..src.end() as usize]);
                    }
                    ctx.copy_bytes += src.len;
                }
            }
            ctx.pc += 1;
            progressed = true;
        }
        Ok(progressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_core::{A2AContext, AlgoSchedule, PairwiseAlltoall};
    use a2a_sched::{check_alltoall_rbuf, fill_alltoall_sbuf, DataExecutor};
    use a2a_topo::{Machine, ProcGrid, Rank};
    use std::time::Duration;

    fn pairwise_source(nodes: usize, s: u64) -> AlgoSchedule<'static> {
        let grid = ProcGrid::new(Machine::custom("p", nodes, 2, 1, 2));
        AlgoSchedule::new(&PairwiseAlltoall, A2AContext::new(grid, s))
    }

    #[test]
    fn parallel_matches_sequential_executor() {
        let src = pairwise_source(2, 16);
        let n = src.nranks();
        let seq = DataExecutor::run(&src, |r, buf| fill_alltoall_sbuf(r, n, 16, buf)).unwrap();
        for workers in [1, 2, 3] {
            let par =
                ParallelExecutor::run(&src, workers, |r, buf| fill_alltoall_sbuf(r, n, 16, buf))
                    .unwrap();
            assert_eq!(par.rbufs, seq.rbufs, "workers={workers}");
            assert_eq!(par.messages, seq.messages);
            assert_eq!(par.message_bytes, seq.message_bytes);
            for r in 0..n as u32 {
                check_alltoall_rbuf(r, n, 16, &par.rbufs[r as usize]).unwrap();
            }
        }
    }

    #[test]
    fn parallel_watchdog_names_blocked_ranks() {
        // A schedule that can never complete: rank 0 waits on a message
        // rank 1 never sends.
        use a2a_sched::{Block, Phase, ProgBuilder, RBUF};
        struct Hung;
        impl ScheduleSource for Hung {
            fn nranks(&self) -> usize {
                2
            }
            fn buffers(&self, _r: Rank) -> Vec<a2a_sched::Bytes> {
                vec![8, 8]
            }
            fn build_rank(&self, r: Rank) -> RankProgram {
                if r == 0 {
                    let mut b = ProgBuilder::new(Phase(0));
                    let req = b.irecv(1, Block::new(RBUF, 0, 8), 3);
                    b.waitall(req, 1);
                    b.finish()
                } else {
                    RankProgram::default()
                }
            }
            fn phase_names(&self) -> Vec<&'static str> {
                vec!["all"]
            }
        }
        let opts = WorldOptions::default().with_watchdog(Duration::from_millis(80));
        let err = ParallelExecutor::run_with(&Hung, opts, 2, |_, _| {}).unwrap_err();
        match err {
            RuntimeError::WatchdogTimeout { blocked, .. } => {
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].rank, 0);
                assert_eq!(blocked[0].kind, BlockedKind::Recv { peer: 1, tag: 3 });
            }
            other => panic!("expected WatchdogTimeout, got {other}"),
        }
    }

    #[test]
    fn fired_cancel_token_aborts_a_stuck_world() {
        // The same never-completing schedule the watchdog test uses, but
        // with a generous watchdog and an externally fired token: the
        // world must come down with `Cancelled`, not `WatchdogTimeout`.
        use a2a_sched::{Block, Phase, ProgBuilder, RBUF};
        struct Hung;
        impl ScheduleSource for Hung {
            fn nranks(&self) -> usize {
                2
            }
            fn buffers(&self, _r: a2a_topo::Rank) -> Vec<a2a_sched::Bytes> {
                vec![8, 8]
            }
            fn build_rank(&self, r: a2a_topo::Rank) -> RankProgram {
                if r == 0 {
                    let mut b = ProgBuilder::new(Phase(0));
                    let req = b.irecv(1, Block::new(RBUF, 0, 8), 3);
                    b.waitall(req, 1);
                    b.finish()
                } else {
                    RankProgram::default()
                }
            }
            fn phase_names(&self) -> Vec<&'static str> {
                vec!["all"]
            }
        }
        let token = crate::CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                token.cancel();
            })
        };
        let opts = WorldOptions::default()
            .with_watchdog(Duration::from_secs(30))
            .with_cancel(token);
        let err = ParallelExecutor::run_with(&Hung, opts, 2, |_, _| {}).unwrap_err();
        assert_eq!(err, RuntimeError::Cancelled);
        assert!(err.class() == crate::ErrorClass::Permanent);
        canceller.join().unwrap();
    }

    #[test]
    fn parallel_dead_rank_is_typed() {
        use a2a_faults::{FaultPlan, FaultSpec};
        let spec = FaultSpec::none().with_dead(1.0, 1);
        let plan = std::sync::Arc::new(FaultPlan::new(42, 4, spec));
        let src = pairwise_source(1, 8);
        let opts = WorldOptions::default().with_faults(plan.clone());
        let err = ParallelExecutor::run_with(&src, opts, 2, |_, _| {}).unwrap_err();
        assert_eq!(
            err,
            RuntimeError::DeadRank {
                rank: plan.dead_ranks()[0]
            }
        );
    }
}
