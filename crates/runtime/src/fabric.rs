//! The shared message fabric: per-rank mailboxes with `(source, tag)`
//! matching, FIFO within a key, and a world barrier.

use std::collections::{HashMap, VecDeque};
use std::sync::{Barrier, Condvar, Mutex};

type Key = (u32, u32); // (source rank, tag)

#[derive(Default)]
struct MailState {
    queues: HashMap<Key, VecDeque<Vec<u8>>>,
}

struct Mailbox {
    state: Mutex<MailState>,
    arrived: Condvar,
}

/// The world's communication state: one mailbox per rank plus a barrier.
pub struct Fabric {
    boxes: Vec<Mailbox>,
    barrier: Barrier,
    n: usize,
}

impl Fabric {
    pub fn new(n: usize) -> Self {
        Fabric {
            boxes: (0..n)
                .map(|_| Mailbox {
                    state: Mutex::new(MailState::default()),
                    arrived: Condvar::new(),
                })
                .collect(),
            barrier: Barrier::new(n),
            n,
        }
    }

    pub fn size(&self) -> usize {
        self.n
    }

    /// Buffered send: never blocks.
    pub fn send(&self, from: u32, to: u32, tag: u32, data: Vec<u8>) {
        let mbox = &self.boxes[to as usize];
        let mut st = mbox.state.lock().expect("mailbox poisoned");
        st.queues.entry((from, tag)).or_default().push_back(data);
        mbox.arrived.notify_all();
    }

    /// Blocking matched receive: waits for the next message from `from`
    /// with `tag`, FIFO within that key.
    pub fn recv(&self, me: u32, from: u32, tag: u32) -> Vec<u8> {
        let mbox = &self.boxes[me as usize];
        let mut st = mbox.state.lock().expect("mailbox poisoned");
        loop {
            if let Some(q) = st.queues.get_mut(&(from, tag)) {
                if let Some(msg) = q.pop_front() {
                    return msg;
                }
            }
            st = mbox.arrived.wait(st).expect("mailbox poisoned");
        }
    }

    /// Non-blocking probe-and-receive.
    pub fn try_recv(&self, me: u32, from: u32, tag: u32) -> Option<Vec<u8>> {
        let mbox = &self.boxes[me as usize];
        let mut st = mbox.state.lock().expect("mailbox poisoned");
        st.queues.get_mut(&(from, tag)).and_then(|q| q.pop_front())
    }

    /// World barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_per_key() {
        let f = Fabric::new(2);
        f.send(0, 1, 5, vec![1]);
        f.send(0, 1, 5, vec![2]);
        assert_eq!(f.recv(1, 0, 5), vec![1]);
        assert_eq!(f.recv(1, 0, 5), vec![2]);
    }

    #[test]
    fn tags_do_not_cross_match() {
        let f = Fabric::new(2);
        f.send(0, 1, 7, vec![7]);
        f.send(0, 1, 8, vec![8]);
        assert_eq!(f.recv(1, 0, 8), vec![8]);
        assert_eq!(f.recv(1, 0, 7), vec![7]);
    }

    #[test]
    fn try_recv_nonblocking() {
        let f = Fabric::new(2);
        assert!(f.try_recv(1, 0, 0).is_none());
        f.send(0, 1, 0, vec![9]);
        assert_eq!(f.try_recv(1, 0, 0), Some(vec![9]));
    }

    #[test]
    fn recv_wakes_on_late_send() {
        let f = Arc::new(Fabric::new(2));
        let f2 = Arc::clone(&f);
        let h = std::thread::spawn(move || f2.recv(1, 0, 3));
        std::thread::sleep(std::time::Duration::from_millis(20));
        f.send(0, 1, 3, vec![42]);
        assert_eq!(h.join().unwrap(), vec![42]);
    }
}
