//! The shared message fabric: per-rank mailboxes with `(source, tag)`
//! matching and FIFO delivery within a key, hardened for fault injection.
//!
//! Every packet carries a per-`(source, tag)` sequence number assigned
//! under the destination mailbox lock, so delivery order and fault fate
//! are deterministic regardless of thread interleaving. When a
//! [`FaultPlan`] is attached:
//!
//! * the sender keeps a pristine copy of each packet in a transmit log
//!   until it is delivered (the **ack window**);
//! * injected faults (drop / duplicate / corrupt) perturb only the visible
//!   queue, never the log;
//! * the receiver detects a missing or corrupted head-of-line packet
//!   (expected seq absent from the queue but present in the log) and
//!   **retransmits** it from the log with exponential backoff, re-rolling
//!   the fault dice with an incremented attempt counter, up to
//!   [`WorldOptions::max_retransmits`] times.
//!
//! All blocking waits are `Condvar::wait_timeout` slices feeding a
//! watchdog: if the world-wide progress counter stalls for longer than
//! [`WorldOptions::watchdog`], the waiter snapshots every rank's blocked
//! state and aborts the world with [`RuntimeError::WatchdogTimeout`].
//! Mutex poisoning is recovered via [`PoisonError::into_inner`] — a
//! panicking peer must not cascade into a second panic here.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use a2a_faults::FaultPlan;
use a2a_sched::MessageFault;

use crate::error::{BlockedKind, BlockedOp, RuntimeError};

/// Resilience knobs for a [`Fabric`] / `ThreadWorld`.
#[derive(Clone)]
pub struct WorldOptions {
    /// Abort the world if no rank makes progress for this long.
    pub watchdog: Duration,
    /// Retransmit budget per lost packet (0 disables recovery: a lost
    /// packet becomes an immediate [`RuntimeError::MessageDropped`]).
    pub max_retransmits: u32,
    /// Base delay before the first retransmit; doubles per attempt
    /// (capped) so a flapping link is not hammered.
    pub backoff: Duration,
    /// Optional seeded fault plan perturbing every transfer.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for WorldOptions {
    fn default() -> Self {
        WorldOptions {
            watchdog: Duration::from_secs(2),
            max_retransmits: 16,
            backoff: Duration::from_micros(50),
            faults: None,
        }
    }
}

impl WorldOptions {
    /// Shrink the watchdog deadline (tests probing hangs want it short).
    pub fn with_watchdog(mut self, deadline: Duration) -> Self {
        self.watchdog = deadline;
        self
    }

    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    pub fn with_max_retransmits(mut self, n: u32) -> Self {
        self.max_retransmits = n;
        self
    }
}

type Key = (u32, u32); // (source rank, tag)

struct Packet {
    seq: u64,
    data: Vec<u8>,
}

/// One `(source, tag)` stream into a mailbox.
#[derive(Default)]
struct Channel {
    /// Next sequence number the sender will assign.
    next_seq: u64,
    /// Receiver watermark: all seqs below this were consumed.
    delivered: u64,
    /// Retransmit attempts spent on the current head-of-line seq.
    head_attempts: u32,
    /// Visible, possibly fault-perturbed in-flight packets.
    queue: VecDeque<Packet>,
    /// Pristine copies of sent-but-undelivered packets (ack window);
    /// maintained only when a fault plan is attached.
    log: VecDeque<(u64, Vec<u8>)>,
}

#[derive(Default)]
struct MailState {
    chans: HashMap<Key, Channel>,
}

struct Mailbox {
    state: Mutex<MailState>,
    arrived: Condvar,
}

struct BarrierState {
    count: usize,
    generation: u64,
}

/// Recover a possibly poisoned lock: a peer that panicked while holding a
/// mailbox must not turn every other rank's error into a panic cascade.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Watches the fabric-wide progress counter from one blocked waiter.
struct ProgressWatch {
    last: u64,
    since: Instant,
}

impl ProgressWatch {
    fn new(f: &Fabric) -> Self {
        ProgressWatch {
            last: f.progress.load(Ordering::SeqCst),
            since: Instant::now(),
        }
    }

    /// `None` if the world progressed since the last check (timer resets);
    /// otherwise how long it has been stalled.
    fn stalled_for(&mut self, f: &Fabric) -> Option<Duration> {
        let now = f.progress.load(Ordering::SeqCst);
        if now != self.last {
            self.last = now;
            self.since = Instant::now();
            None
        } else {
            Some(self.since.elapsed())
        }
    }
}

/// The world's communication state: one mailbox per rank, a barrier, the
/// abort latch, and the watchdog bookkeeping.
pub struct Fabric {
    boxes: Vec<Mailbox>,
    n: usize,
    opts: WorldOptions,
    /// Bumped on every send, delivery, retransmit, and barrier release;
    /// the watchdog fires when this stalls.
    progress: AtomicU64,
    aborted: AtomicBool,
    /// First error wins; rebroadcast verbatim to every rank.
    abort: Mutex<Option<RuntimeError>>,
    /// rank -> what it is currently blocked on (watchdog diagnostics).
    blocked: Mutex<HashMap<u32, BlockedOp>>,
    barrier: Mutex<BarrierState>,
    barrier_cv: Condvar,
}

impl Fabric {
    pub fn new(n: usize) -> Self {
        Self::with_options(n, WorldOptions::default())
    }

    pub fn with_options(n: usize, opts: WorldOptions) -> Self {
        Fabric {
            boxes: (0..n)
                .map(|_| Mailbox {
                    state: Mutex::new(MailState::default()),
                    arrived: Condvar::new(),
                })
                .collect(),
            n,
            opts,
            progress: AtomicU64::new(0),
            aborted: AtomicBool::new(false),
            abort: Mutex::new(None),
            blocked: Mutex::new(HashMap::new()),
            barrier: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
            }),
            barrier_cv: Condvar::new(),
        }
    }

    pub fn size(&self) -> usize {
        self.n
    }

    pub fn options(&self) -> &WorldOptions {
        &self.opts
    }

    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.opts.faults.as_ref()
    }

    /// Latch `err` as the world's failure (first error wins), wake every
    /// blocked rank, and return the winning error.
    pub fn abort(&self, err: RuntimeError) -> RuntimeError {
        let winner = {
            let mut slot = lock_recover(&self.abort);
            if slot.is_none() {
                *slot = Some(err);
            }
            slot.clone().unwrap()
        };
        self.aborted.store(true, Ordering::SeqCst);
        // Waiters use bounded wait slices, so a lockless notify cannot
        // strand anyone: a missed wakeup is re-checked within one slice.
        for b in &self.boxes {
            b.arrived.notify_all();
        }
        self.barrier_cv.notify_all();
        winner
    }

    /// The world's failure, if any rank has aborted.
    pub fn abort_error(&self) -> Option<RuntimeError> {
        if self.aborted.load(Ordering::SeqCst) {
            lock_recover(&self.abort).clone()
        } else {
            None
        }
    }

    fn bump_progress(&self) {
        self.progress.fetch_add(1, Ordering::SeqCst);
    }

    fn register_blocked(&self, op: BlockedOp) {
        lock_recover(&self.blocked).insert(op.rank, op);
    }

    fn unregister_blocked(&self, rank: u32) {
        lock_recover(&self.blocked).remove(&rank);
    }

    /// Snapshot every blocked rank and abort with `WatchdogTimeout`.
    fn fire_watchdog(&self) -> RuntimeError {
        let mut blocked: Vec<BlockedOp> = lock_recover(&self.blocked).values().copied().collect();
        blocked.sort_by_key(|b| b.rank);
        self.abort(RuntimeError::WatchdogTimeout {
            deadline: self.opts.watchdog,
            blocked,
        })
    }

    /// The condvar slice between watchdog checks: fine-grained enough to
    /// notice aborts promptly, coarse enough not to spin.
    fn wait_slice(&self) -> Duration {
        (self.opts.watchdog / 8).max(Duration::from_millis(1))
    }

    /// Apply `fault` to a packet and enqueue the surviving copies.
    fn enqueue_faulty(chan: &mut Channel, seq: u64, mut data: Vec<u8>, fault: MessageFault) {
        if fault.drop {
            return;
        }
        if let Some(hint) = fault.corrupt {
            if !data.is_empty() {
                let idx = (hint % data.len() as u64) as usize;
                data[idx] ^= 0xA5;
            }
        }
        if fault.duplicate {
            chan.queue.push_back(Packet {
                seq,
                data: data.clone(),
            });
        }
        chan.queue.push_back(Packet { seq, data });
    }

    /// Buffered send: never blocks. Fails fast if the world has aborted.
    pub fn send(&self, from: u32, to: u32, tag: u32, data: Vec<u8>) -> Result<(), RuntimeError> {
        if let Some(e) = self.abort_error() {
            return Err(e);
        }
        let mbox = &self.boxes[to as usize];
        {
            let mut st = lock_recover(&mbox.state);
            let chan = st.chans.entry((from, tag)).or_default();
            let seq = chan.next_seq;
            chan.next_seq += 1;
            if let Some(plan) = &self.opts.faults {
                chan.log.push_back((seq, data.clone()));
                let fault = plan.message_fault_attempt(from, to, tag, seq, 0);
                Self::enqueue_faulty(chan, seq, data, fault);
            } else {
                chan.queue.push_back(Packet { seq, data });
            }
        }
        self.bump_progress();
        mbox.arrived.notify_all();
        Ok(())
    }

    /// Pop the head-of-line packet for `(from, tag)` if it is deliverable:
    /// stale duplicates are discarded, and under a fault plan the payload
    /// is checked against the sender's pristine log copy. Returns
    /// `Ok(Some(bytes))` on delivery, `Ok(None)` if nothing deliverable
    /// yet, `Err` on a detected-corrupt packet with retransmit disabled.
    fn take_deliverable(
        &self,
        chan: &mut Channel,
        from: u32,
        me: u32,
        tag: u32,
    ) -> Result<Option<Vec<u8>>, RuntimeError> {
        // Drop duplicates of already-delivered packets wherever they sit.
        chan.queue.retain(|p| p.seq >= chan.delivered);
        while let Some(idx) = chan.queue.iter().position(|p| p.seq == chan.delivered) {
            let p = chan.queue.remove(idx).expect("index just found");
            if self.opts.faults.is_some() {
                let pristine = chan
                    .log
                    .iter()
                    .find(|(s, _)| *s == p.seq)
                    .map(|(_, d)| d.clone());
                if let Some(orig) = pristine {
                    if orig != p.data {
                        // Corrupted in flight: discard this copy; a clean
                        // duplicate or a retransmit must supply it.
                        if self.opts.max_retransmits == 0 {
                            return Err(RuntimeError::CorruptPayload {
                                from,
                                to: me,
                                tag,
                                seq: p.seq,
                            });
                        }
                        continue;
                    }
                }
            }
            chan.delivered = p.seq + 1;
            chan.head_attempts = 0;
            while chan.log.front().is_some_and(|(s, _)| *s < chan.delivered) {
                chan.log.pop_front();
            }
            return Ok(Some(p.data));
        }
        Ok(None)
    }

    /// Blocking matched receive with retransmit recovery and watchdog.
    /// `op_index` labels the schedule op for watchdog diagnostics.
    pub fn recv(
        &self,
        me: u32,
        from: u32,
        tag: u32,
        op_index: Option<usize>,
    ) -> Result<Vec<u8>, RuntimeError> {
        let mbox = &self.boxes[me as usize];
        let mut st = lock_recover(&mbox.state);
        let mut watch = ProgressWatch::new(self);
        let mut registered = false;
        let result = loop {
            if let Some(e) = self.abort_error() {
                break Err(e);
            }
            let chan = st.chans.entry((from, tag)).or_default();
            match self.take_deliverable(chan, from, me, tag) {
                Err(e) => break Err(e),
                Ok(Some(data)) => break Ok(data),
                Ok(None) => {}
            }

            // Sent but not in the queue => lost in flight: retransmit from
            // the pristine log with backoff, re-rolling the fault dice.
            let lost = self
                .opts
                .faults
                .as_ref()
                .map(|_| chan.log.iter().any(|(s, _)| *s == chan.delivered))
                .unwrap_or(false);
            if lost {
                let seq = chan.delivered;
                if self.opts.max_retransmits == 0 {
                    break Err(RuntimeError::MessageDropped {
                        from,
                        to: me,
                        tag,
                        seq,
                    });
                }
                if chan.head_attempts >= self.opts.max_retransmits {
                    break Err(RuntimeError::RetriesExhausted {
                        from,
                        to: me,
                        tag,
                        seq,
                        attempts: chan.head_attempts,
                    });
                }
                chan.head_attempts += 1;
                let attempt = chan.head_attempts;
                let pristine = chan
                    .log
                    .iter()
                    .find(|(s, _)| *s == seq)
                    .map(|(_, d)| d.clone())
                    .expect("lost implies logged");
                let plan = Arc::clone(self.opts.faults.as_ref().expect("lost implies faults"));
                // Exponential backoff, lock released while sleeping.
                let delay = backoff_delay(self.opts.backoff, attempt);
                let (g, _) = mbox
                    .arrived
                    .wait_timeout(st, delay)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
                if let Some(e) = self.abort_error() {
                    break Err(e);
                }
                let chan = st.chans.entry((from, tag)).or_default();
                if chan.delivered == seq {
                    let fault = plan.message_fault_attempt(from, me, tag, seq, attempt);
                    Self::enqueue_faulty(chan, seq, pristine, fault);
                    self.bump_progress();
                }
                continue;
            }

            // Genuinely not sent yet: park with the watchdog running.
            if !registered {
                self.register_blocked(BlockedOp {
                    rank: me,
                    op_index,
                    kind: BlockedKind::Recv { peer: from, tag },
                });
                registered = true;
            }
            let slice = self.wait_slice();
            let (g, _) = mbox
                .arrived
                .wait_timeout(st, slice)
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
            if let Some(stalled) = watch.stalled_for(self) {
                if stalled >= self.opts.watchdog {
                    drop(st);
                    if registered {
                        // Leave our entry visible to the snapshot, then
                        // clear it after firing.
                        let err = self.fire_watchdog();
                        self.unregister_blocked(me);
                        return Err(err);
                    }
                    let err = self.fire_watchdog();
                    return Err(err);
                }
            }
        };
        drop(st);
        if registered {
            self.unregister_blocked(me);
        }
        match result {
            Ok(data) => {
                self.bump_progress();
                Ok(data)
            }
            // Local delivery failures are world failures: latch and
            // rebroadcast so peers do not hang waiting for this rank.
            Err(e) => Err(self.abort(e)),
        }
    }

    /// Non-blocking probe-and-receive. Never retransmits; a lost head
    /// simply reads as "nothing available yet".
    pub fn try_recv(&self, me: u32, from: u32, tag: u32) -> Option<Vec<u8>> {
        let mbox = &self.boxes[me as usize];
        let mut st = lock_recover(&mbox.state);
        let chan = st.chans.entry((from, tag)).or_default();
        self.take_deliverable(chan, from, me, tag)
            .unwrap_or_default()
    }

    /// World barrier: abort-aware (a dead or failed rank releases everyone
    /// with the world's error) and watchdog-guarded.
    pub fn barrier(&self, me: u32) -> Result<(), RuntimeError> {
        if let Some(e) = self.abort_error() {
            return Err(e);
        }
        let mut st = lock_recover(&self.barrier);
        let gen = st.generation;
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation += 1;
            drop(st);
            self.bump_progress();
            self.barrier_cv.notify_all();
            return Ok(());
        }
        let mut watch = ProgressWatch::new(self);
        self.register_blocked(BlockedOp {
            rank: me,
            op_index: None,
            kind: BlockedKind::Barrier,
        });
        let result = loop {
            let slice = self.wait_slice();
            let (g, _) = self
                .barrier_cv
                .wait_timeout(st, slice)
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
            if st.generation != gen {
                break Ok(());
            }
            if let Some(e) = self.abort_error() {
                break Err(e);
            }
            if let Some(stalled) = watch.stalled_for(self) {
                if stalled >= self.opts.watchdog {
                    drop(st);
                    let err = self.fire_watchdog();
                    self.unregister_blocked(me);
                    return Err(err);
                }
            }
        };
        drop(st);
        self.unregister_blocked(me);
        result
    }

    /// Packets sent but never received (stale duplicates excluded): the
    /// world-teardown analogue of `ExecError::UnconsumedMessages`.
    pub fn undelivered(&self) -> usize {
        self.boxes
            .iter()
            .map(|b| {
                let st = lock_recover(&b.state);
                st.chans
                    .values()
                    .map(|c| c.queue.iter().filter(|p| p.seq >= c.delivered).count())
                    .sum::<usize>()
            })
            .sum()
    }
}

/// `backoff * 2^(attempt-1)`, capped so a long retry train cannot outlast
/// the watchdog.
fn backoff_delay(base: Duration, attempt: u32) -> Duration {
    let shift = (attempt.saturating_sub(1)).min(8);
    (base.saturating_mul(1u32 << shift)).min(Duration::from_millis(20))
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_faults::{FaultPlan, FaultSpec};

    fn recv_ok(f: &Fabric, me: u32, from: u32, tag: u32) -> Vec<u8> {
        f.recv(me, from, tag, None).unwrap()
    }

    #[test]
    fn fifo_per_key() {
        let f = Fabric::new(2);
        f.send(0, 1, 5, vec![1]).unwrap();
        f.send(0, 1, 5, vec![2]).unwrap();
        assert_eq!(recv_ok(&f, 1, 0, 5), vec![1]);
        assert_eq!(recv_ok(&f, 1, 0, 5), vec![2]);
    }

    #[test]
    fn tags_do_not_cross_match() {
        let f = Fabric::new(2);
        f.send(0, 1, 7, vec![7]).unwrap();
        f.send(0, 1, 8, vec![8]).unwrap();
        assert_eq!(recv_ok(&f, 1, 0, 8), vec![8]);
        assert_eq!(recv_ok(&f, 1, 0, 7), vec![7]);
    }

    #[test]
    fn try_recv_nonblocking() {
        let f = Fabric::new(2);
        assert!(f.try_recv(1, 0, 0).is_none());
        f.send(0, 1, 0, vec![9]).unwrap();
        assert_eq!(f.try_recv(1, 0, 0), Some(vec![9]));
    }

    #[test]
    fn recv_wakes_on_late_send() {
        let f = Arc::new(Fabric::new(2));
        let f2 = Arc::clone(&f);
        let h = std::thread::spawn(move || f2.recv(1, 0, 3, None));
        std::thread::sleep(Duration::from_millis(20));
        f.send(0, 1, 3, vec![42]).unwrap();
        assert_eq!(h.join().unwrap().unwrap(), vec![42]);
    }

    #[test]
    fn watchdog_fires_on_never_sent_message() {
        let opts = WorldOptions::default().with_watchdog(Duration::from_millis(60));
        let f = Fabric::with_options(2, opts);
        let err = f.recv(1, 0, 9, Some(4)).unwrap_err();
        match err {
            RuntimeError::WatchdogTimeout { blocked, .. } => {
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].rank, 1);
                assert_eq!(blocked[0].op_index, Some(4));
                assert_eq!(blocked[0].kind, BlockedKind::Recv { peer: 0, tag: 9 });
            }
            other => panic!("expected WatchdogTimeout, got {other}"),
        }
        // The failure latched: subsequent sends fail fast.
        assert!(f.send(0, 1, 0, vec![1]).is_err());
    }

    #[test]
    fn retransmit_recovers_heavy_drops() {
        let plan = Arc::new(FaultPlan::new(0xD20B, 2, FaultSpec::drops(0.5)));
        let f = Fabric::with_options(2, WorldOptions::default().with_faults(plan));
        for i in 0..100u8 {
            f.send(0, 1, 3, vec![i, i.wrapping_mul(7)]).unwrap();
        }
        for i in 0..100u8 {
            assert_eq!(recv_ok(&f, 1, 0, 3), vec![i, i.wrapping_mul(7)]);
        }
        assert_eq!(f.undelivered(), 0);
    }

    #[test]
    fn drop_without_retransmit_is_a_typed_error() {
        let plan = Arc::new(FaultPlan::new(1, 2, FaultSpec::drops(1.0)));
        let f = Fabric::with_options(
            2,
            WorldOptions::default()
                .with_faults(plan)
                .with_max_retransmits(0),
        );
        f.send(0, 1, 0, vec![1, 2, 3]).unwrap();
        let err = f.recv(1, 0, 0, None).unwrap_err();
        assert_eq!(
            err,
            RuntimeError::MessageDropped {
                from: 0,
                to: 1,
                tag: 0,
                seq: 0
            }
        );
    }

    #[test]
    fn corruption_recovered_by_retransmit() {
        let spec = FaultSpec::none().with_corrupt(0.5);
        let plan = Arc::new(FaultPlan::new(0xC0DE, 2, spec));
        let f = Fabric::with_options(2, WorldOptions::default().with_faults(plan));
        for i in 0..50u8 {
            f.send(0, 1, 1, vec![i; 16]).unwrap();
        }
        for i in 0..50u8 {
            assert_eq!(recv_ok(&f, 1, 0, 1), vec![i; 16]);
        }
    }

    #[test]
    fn duplicates_are_discarded() {
        let spec = FaultSpec::none().with_duplicate(1.0);
        let plan = Arc::new(FaultPlan::new(7, 2, spec));
        let f = Fabric::with_options(2, WorldOptions::default().with_faults(plan));
        f.send(0, 1, 0, vec![1]).unwrap();
        f.send(0, 1, 0, vec![2]).unwrap();
        assert_eq!(recv_ok(&f, 1, 0, 0), vec![1]);
        assert_eq!(recv_ok(&f, 1, 0, 0), vec![2]);
        // The duplicate copies are stale, not undelivered traffic.
        assert_eq!(f.undelivered(), 0);
    }

    #[test]
    fn abort_releases_blocked_barrier() {
        let f = Arc::new(Fabric::new(2));
        let f2 = Arc::clone(&f);
        let h = std::thread::spawn(move || f2.barrier(1));
        std::thread::sleep(Duration::from_millis(20));
        f.abort(RuntimeError::RankPanicked { rank: 0 });
        assert_eq!(
            h.join().unwrap().unwrap_err(),
            RuntimeError::RankPanicked { rank: 0 }
        );
    }

    #[test]
    fn first_abort_wins() {
        let f = Fabric::new(2);
        let a = f.abort(RuntimeError::RankPanicked { rank: 0 });
        let b = f.abort(RuntimeError::DeadRank { rank: 1 });
        assert_eq!(a, RuntimeError::RankPanicked { rank: 0 });
        assert_eq!(b, RuntimeError::RankPanicked { rank: 0 });
    }

    #[test]
    fn poisoned_mailbox_recovers_instead_of_cascading() {
        let f = Arc::new(Fabric::new(2));
        // Poison mailbox 1's mutex by panicking while holding it.
        let f2 = Arc::clone(&f);
        let _ = std::thread::spawn(move || {
            let _guard = f2.boxes[1].state.lock().unwrap();
            panic!("poison");
        })
        .join();
        // Sends and receives still work via PoisonError::into_inner.
        f.send(0, 1, 0, vec![5]).unwrap();
        assert_eq!(recv_ok(&f, 1, 0, 0), vec![5]);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let base = Duration::from_micros(50);
        assert_eq!(backoff_delay(base, 1), base);
        assert_eq!(backoff_delay(base, 3), base * 4);
        assert!(backoff_delay(base, 30) <= Duration::from_millis(20));
    }
}
