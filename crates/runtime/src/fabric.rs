//! The shared message fabric: per-rank mailboxes with `(source, tag)`
//! matching and FIFO delivery within a key, hardened for fault injection.
//!
//! # Store-once payloads and the buffer pool
//!
//! Every payload is written exactly once at send time, into a buffer drawn
//! from a fabric-wide free list (the **pool**). A pooled buffer is cleared
//! and fully rewritten on acquire, so no stale bytes from an earlier
//! message can leak into a later one. The payload lives in the channel's
//! `store` until it is delivered, at which point it is moved out, copied
//! into the receiver's posted block, and released back to the pool.
//!
//! What travels through the visible queue are **views**: `(seq, fault)`
//! descriptors that reference the stored payload. Faults perturb only the
//! views — a drop enqueues nothing, a duplicate enqueues the view twice,
//! corruption marks the view damaged — while the stored payload stays
//! pristine. Retransmission therefore re-enqueues a fresh view (re-rolling
//! the fault dice with an incremented attempt counter) without ever
//! copying payload bytes, and a recovered message is byte-identical to the
//! original send no matter how many faults it survived.
//!
//! Every packet carries a per-`(source, tag)` sequence number assigned
//! under the destination mailbox lock, so delivery order and fault fate
//! are deterministic regardless of thread interleaving.
//!
//! # Blocking, batching, and the watchdog
//!
//! All blocking waits are `Condvar::wait_timeout` slices feeding a
//! watchdog: if the world-wide progress counter stalls for longer than
//! [`WorldOptions::watchdog`], the waiter snapshots every rank's blocked
//! state and aborts the world with [`RuntimeError::WatchdogTimeout`].
//!
//! [`Fabric::recv_many`] drains a whole batch of expected messages (one
//! schedule `WaitAll`) under a single lock/wait cycle: one condvar park
//! covers every outstanding receive instead of one park per message,
//! which cuts wakeups by the WaitAll fan-in. [`Fabric::poll_recv_into`]
//! is the non-blocking variant the parallel executor multiplexes many
//! ranks over.
//!
//! Mutex poisoning is recovered via [`PoisonError::into_inner`] — a
//! panicking peer must not cascade into a second panic here.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use a2a_faults::FaultPlan;
use a2a_sched::MessageFault;

use crate::cancel::CancelToken;
use crate::error::{BlockedKind, BlockedOp, RuntimeError};

/// Resilience knobs for a [`Fabric`] / `ThreadWorld`.
#[derive(Clone)]
pub struct WorldOptions {
    /// Abort the world if no rank makes progress for this long.
    pub watchdog: Duration,
    /// Retransmit budget per lost packet (0 disables recovery: a lost
    /// packet becomes an immediate [`RuntimeError::MessageDropped`]).
    pub max_retransmits: u32,
    /// Base delay before the first retransmit; doubles per attempt
    /// (capped) so a flapping link is not hammered.
    pub backoff: Duration,
    /// Optional seeded fault plan perturbing every transfer.
    pub faults: Option<Arc<FaultPlan>>,
    /// Optional cooperative cancellation: when the token fires, the world
    /// aborts with [`RuntimeError::Cancelled`] through the same latch a
    /// failing rank uses, so every blocked rank unblocks promptly.
    pub cancel: Option<CancelToken>,
}

impl Default for WorldOptions {
    fn default() -> Self {
        WorldOptions {
            watchdog: Duration::from_secs(2),
            max_retransmits: 16,
            backoff: Duration::from_micros(50),
            faults: None,
            cancel: None,
        }
    }
}

impl WorldOptions {
    /// Shrink the watchdog deadline (tests probing hangs want it short).
    pub fn with_watchdog(mut self, deadline: Duration) -> Self {
        self.watchdog = deadline;
        self
    }

    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    pub fn with_max_retransmits(mut self, n: u32) -> Self {
        self.max_retransmits = n;
        self
    }

    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

type Key = (u32, u32); // (source rank, tag)

/// One expected message in a [`Fabric::recv_many`] batch.
#[derive(Debug, Clone, Copy)]
pub struct RecvWant {
    pub from: u32,
    pub tag: u32,
    /// Index of the schedule op being executed (watchdog diagnostics).
    pub op_index: Option<usize>,
    /// Expected payload length; `Some` turns a size disagreement into a
    /// typed [`RuntimeError::LengthMismatch`] before any bytes are copied.
    pub len: Option<usize>,
}

/// A queue entry: references the stored payload by `seq`; carries its
/// in-flight damage (the corruption hint) instead of damaged bytes.
struct View {
    seq: u64,
    corrupt: Option<u64>,
}

/// One `(source, tag)` stream into a mailbox.
#[derive(Default)]
struct Channel {
    /// Next sequence number the sender will assign.
    next_seq: u64,
    /// Receiver watermark: all seqs below this were consumed.
    delivered: u64,
    /// Retransmit attempts spent on the current head-of-line seq.
    head_attempts: u32,
    /// Visible, possibly fault-perturbed in-flight views.
    queue: VecDeque<View>,
    /// The single pristine copy of each sent-but-undelivered payload,
    /// in seq order. Moved out (and pooled) at delivery.
    store: VecDeque<(u64, Vec<u8>)>,
}

#[derive(Default)]
struct MailState {
    chans: HashMap<Key, Channel>,
}

struct Mailbox {
    state: Mutex<MailState>,
    arrived: Condvar,
}

struct BarrierState {
    count: usize,
    generation: u64,
}

/// Recover a possibly poisoned lock: a peer that panicked while holding a
/// mailbox must not turn every other rank's error into a panic cascade.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Watches the fabric-wide progress counter from one blocked waiter.
pub(crate) struct ProgressWatch {
    last: u64,
    since: Instant,
}

impl ProgressWatch {
    pub(crate) fn new(f: &Fabric) -> Self {
        ProgressWatch {
            last: f.progress.load(Ordering::SeqCst),
            since: Instant::now(),
        }
    }

    /// `None` if the world progressed since the last check (timer resets);
    /// otherwise how long it has been stalled.
    pub(crate) fn stalled_for(&mut self, f: &Fabric) -> Option<Duration> {
        let now = f.progress.load(Ordering::SeqCst);
        if now != self.last {
            self.last = now;
            self.since = Instant::now();
            None
        } else {
            Some(self.since.elapsed())
        }
    }
}

/// Keep at most this many recycled buffers; beyond it, freed buffers are
/// simply dropped (the pool is a fast path, not an obligation).
const POOL_CAP: usize = 4096;

/// The world's communication state: one mailbox per rank, the payload
/// buffer pool, a barrier, the abort latch, and watchdog bookkeeping.
pub struct Fabric {
    boxes: Vec<Mailbox>,
    n: usize,
    opts: WorldOptions,
    /// Recycled payload buffers. Acquire = pop + clear + overwrite, so a
    /// reused buffer never exposes bytes from a previous message.
    pool: Mutex<Vec<Vec<u8>>>,
    /// Bumped on every send, delivery, retransmit, and barrier release;
    /// the watchdog fires when this stalls.
    progress: AtomicU64,
    aborted: AtomicBool,
    /// First error wins; rebroadcast verbatim to every rank.
    abort: Mutex<Option<RuntimeError>>,
    /// rank -> what it is currently blocked on (watchdog diagnostics).
    blocked: Mutex<HashMap<u32, BlockedOp>>,
    barrier: Mutex<BarrierState>,
    barrier_cv: Condvar,
}

impl Fabric {
    pub fn new(n: usize) -> Self {
        Self::with_options(n, WorldOptions::default())
    }

    pub fn with_options(n: usize, opts: WorldOptions) -> Self {
        Fabric {
            boxes: (0..n)
                .map(|_| Mailbox {
                    state: Mutex::new(MailState::default()),
                    arrived: Condvar::new(),
                })
                .collect(),
            n,
            opts,
            pool: Mutex::new(Vec::new()),
            progress: AtomicU64::new(0),
            aborted: AtomicBool::new(false),
            abort: Mutex::new(None),
            blocked: Mutex::new(HashMap::new()),
            barrier: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
            }),
            barrier_cv: Condvar::new(),
        }
    }

    pub fn size(&self) -> usize {
        self.n
    }

    pub fn options(&self) -> &WorldOptions {
        &self.opts
    }

    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.opts.faults.as_ref()
    }

    /// Latch `err` as the world's failure (first error wins), wake every
    /// blocked rank, and return the winning error.
    pub fn abort(&self, err: RuntimeError) -> RuntimeError {
        let winner = {
            let mut slot = lock_recover(&self.abort);
            if slot.is_none() {
                *slot = Some(err);
            }
            slot.clone().unwrap()
        };
        self.aborted.store(true, Ordering::SeqCst);
        // Waiters use bounded wait slices, so a lockless notify cannot
        // strand anyone: a missed wakeup is re-checked within one slice.
        for b in &self.boxes {
            b.arrived.notify_all();
        }
        self.barrier_cv.notify_all();
        winner
    }

    /// The world's failure, if any rank has aborted. Also the single
    /// cancellation checkpoint: every blocking loop polls this, so a
    /// fired [`CancelToken`] latches [`RuntimeError::Cancelled`] here and
    /// tears the world down exactly like a failing rank would.
    pub fn abort_error(&self) -> Option<RuntimeError> {
        if self.aborted.load(Ordering::SeqCst) {
            return lock_recover(&self.abort).clone();
        }
        if let Some(token) = &self.opts.cancel {
            if token.is_cancelled() {
                return Some(self.abort(RuntimeError::Cancelled));
            }
        }
        None
    }

    fn bump_progress(&self) {
        self.progress.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn register_blocked(&self, op: BlockedOp) {
        lock_recover(&self.blocked).insert(op.rank, op);
    }

    pub(crate) fn unregister_blocked(&self, rank: u32) {
        lock_recover(&self.blocked).remove(&rank);
    }

    /// Snapshot every blocked rank and abort with `WatchdogTimeout`.
    pub(crate) fn fire_watchdog(&self) -> RuntimeError {
        let mut blocked: Vec<BlockedOp> = lock_recover(&self.blocked).values().copied().collect();
        blocked.sort_by_key(|b| b.rank);
        self.abort(RuntimeError::WatchdogTimeout {
            deadline: self.opts.watchdog,
            blocked,
        })
    }

    /// The condvar slice between watchdog checks: fine-grained enough to
    /// notice aborts promptly, coarse enough not to spin.
    fn wait_slice(&self) -> Duration {
        (self.opts.watchdog / 8).max(Duration::from_millis(1))
    }

    /// Park on `me`'s mailbox for one wait slice (or until a message
    /// arrives / the world aborts). The parallel executor uses this to
    /// sleep between polling passes over its owned ranks.
    pub(crate) fn wait_activity(&self, me: u32) {
        let mbox = &self.boxes[me as usize];
        let st = lock_recover(&mbox.state);
        let _ = mbox
            .arrived
            .wait_timeout(st, self.wait_slice())
            .unwrap_or_else(PoisonError::into_inner);
    }

    /// Pull a recycled buffer (or allocate) and fill it with `data`. The
    /// buffer is cleared first and then fully rewritten, so its previous
    /// contents are unobservable.
    fn acquire_buf(&self, data: &[u8]) -> Vec<u8> {
        let recycled = lock_recover(&self.pool).pop();
        let mut buf = recycled.unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(data);
        buf
    }

    /// Return a delivered payload's buffer to the pool.
    fn release_buf(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut pool = lock_recover(&self.pool);
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    }

    /// Enqueue the views `fault` leaves visible (none for a drop, two for
    /// a duplicate). The stored payload is untouched.
    fn enqueue_views(chan: &mut Channel, seq: u64, fault: MessageFault) {
        if fault.drop {
            return;
        }
        if fault.duplicate {
            chan.queue.push_back(View {
                seq,
                corrupt: fault.corrupt,
            });
        }
        chan.queue.push_back(View {
            seq,
            corrupt: fault.corrupt,
        });
    }

    /// Buffered send: never blocks. Fails fast if the world has aborted.
    /// The payload is copied once, into a pooled buffer.
    pub fn send(&self, from: u32, to: u32, tag: u32, data: &[u8]) -> Result<(), RuntimeError> {
        if let Some(e) = self.abort_error() {
            return Err(e);
        }
        let payload = self.acquire_buf(data);
        let mbox = &self.boxes[to as usize];
        {
            let mut st = lock_recover(&mbox.state);
            let chan = st.chans.entry((from, tag)).or_default();
            let seq = chan.next_seq;
            chan.next_seq += 1;
            chan.store.push_back((seq, payload));
            let fault = match &self.opts.faults {
                Some(plan) => plan.message_fault_attempt(from, to, tag, seq, 0),
                None => MessageFault::clean(),
            };
            Self::enqueue_views(chan, seq, fault);
        }
        self.bump_progress();
        mbox.arrived.notify_all();
        Ok(())
    }

    /// Pop the head-of-line payload for `(from, tag)` if it is deliverable:
    /// stale duplicate views are discarded, and a corrupt-marked view is
    /// detectably damaged (discarded in favour of a clean duplicate or a
    /// retransmit) unless the payload is empty — there is nothing to flip
    /// in a zero-byte message. Returns `Ok(Some(payload))` on delivery
    /// (moved out of the store), `Ok(None)` if nothing deliverable yet,
    /// `Err` on a detected-corrupt view with retransmit disabled.
    fn take_deliverable(
        &self,
        chan: &mut Channel,
        from: u32,
        me: u32,
        tag: u32,
    ) -> Result<Option<Vec<u8>>, RuntimeError> {
        // Drop duplicates of already-delivered packets wherever they sit.
        chan.queue.retain(|v| v.seq >= chan.delivered);
        while let Some(idx) = chan.queue.iter().position(|v| v.seq == chan.delivered) {
            let view = chan.queue.remove(idx).expect("index just found");
            if view.corrupt.is_some() {
                let len = chan
                    .store
                    .iter()
                    .find(|(s, _)| *s == view.seq)
                    .map(|(_, d)| d.len())
                    .unwrap_or(0);
                if len > 0 {
                    if self.opts.max_retransmits == 0 {
                        return Err(RuntimeError::CorruptPayload {
                            from,
                            to: me,
                            tag,
                            seq: view.seq,
                        });
                    }
                    continue;
                }
            }
            let pos = chan
                .store
                .iter()
                .position(|(s, _)| *s == view.seq)
                .expect("undelivered view implies a stored payload");
            let (_, payload) = chan.store.remove(pos).expect("index just found");
            chan.delivered = view.seq + 1;
            chan.head_attempts = 0;
            return Ok(Some(payload));
        }
        Ok(None)
    }

    /// Whether the head-of-line seq was sent but has no surviving view:
    /// lost in flight, recoverable only by retransmitting from the store.
    fn head_lost(&self, chan: &Channel) -> bool {
        self.opts.faults.is_some() && chan.store.iter().any(|(s, _)| *s == chan.delivered)
    }

    /// Blocking batched receive: block until every entry of `wants` has
    /// been delivered, calling `deliver(index, payload)` as each arrives
    /// (in matching order per channel, arbitrary order across channels).
    ///
    /// This is the schedule interpreter's `WaitAll` primitive: the whole
    /// batch shares one lock acquisition per polling pass and one condvar
    /// park per idle interval, instead of a park per message. Lost or
    /// corrupted heads are retransmitted with exponential backoff,
    /// re-rolling the fault dice per attempt; a hung match is bounded by
    /// the watchdog. On any failure the world is aborted and every
    /// remaining want is abandoned.
    pub fn recv_many(
        &self,
        me: u32,
        wants: &[RecvWant],
        mut deliver: impl FnMut(usize, &[u8]),
    ) -> Result<(), RuntimeError> {
        if wants.is_empty() {
            return Ok(());
        }
        let mbox = &self.boxes[me as usize];
        let mut done = vec![false; wants.len()];
        let mut remaining = wants.len();
        let mut st = lock_recover(&mbox.state);
        let mut watch = ProgressWatch::new(self);
        let mut registered = false;
        let result = loop {
            if let Some(e) = self.abort_error() {
                break Err(e);
            }
            let mut delivered_any = false;
            let mut err = None;
            // Wants whose head-of-line seq is lost in flight this pass.
            let mut lost: Vec<(usize, u64)> = Vec::new();
            // Channels that already failed to deliver this pass: FIFO
            // matching means later wants on the same channel cannot
            // deliver either (and must not double-charge the head's
            // retransmit budget).
            let mut stalled: Vec<Key> = Vec::new();
            for (i, w) in wants.iter().enumerate() {
                if done[i] || stalled.contains(&(w.from, w.tag)) {
                    continue;
                }
                let chan = st.chans.entry((w.from, w.tag)).or_default();
                match self.take_deliverable(chan, w.from, me, w.tag) {
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                    Ok(Some(payload)) => {
                        if let Some(want) = w.len {
                            if payload.len() != want {
                                err = Some(RuntimeError::LengthMismatch {
                                    rank: me,
                                    from: w.from,
                                    tag: w.tag,
                                    got: payload.len(),
                                    want,
                                });
                                break;
                            }
                        }
                        deliver(i, &payload);
                        self.release_buf(payload);
                        done[i] = true;
                        remaining -= 1;
                        delivered_any = true;
                        self.bump_progress();
                    }
                    Ok(None) => {
                        stalled.push((w.from, w.tag));
                        if self.head_lost(chan) {
                            let seq = chan.delivered;
                            if self.opts.max_retransmits == 0 {
                                err = Some(RuntimeError::MessageDropped {
                                    from: w.from,
                                    to: me,
                                    tag: w.tag,
                                    seq,
                                });
                                break;
                            }
                            if chan.head_attempts >= self.opts.max_retransmits {
                                err = Some(RuntimeError::RetriesExhausted {
                                    from: w.from,
                                    to: me,
                                    tag: w.tag,
                                    seq,
                                    attempts: chan.head_attempts,
                                });
                                break;
                            }
                            chan.head_attempts += 1;
                            lost.push((i, seq));
                        }
                    }
                }
            }
            if let Some(e) = err {
                break Err(e);
            }
            if remaining == 0 {
                break Ok(());
            }
            if delivered_any {
                continue;
            }

            if !lost.is_empty() {
                // Back off (shortest pending delay wins), then retransmit
                // every head that is still lost, re-rolling its fault.
                let plan = Arc::clone(self.opts.faults.as_ref().expect("lost implies faults"));
                let delay = lost
                    .iter()
                    .map(|&(i, _)| {
                        let w = &wants[i];
                        let attempts = st
                            .chans
                            .get(&(w.from, w.tag))
                            .map(|c| c.head_attempts)
                            .unwrap_or(1);
                        backoff_delay(self.opts.backoff, attempts)
                    })
                    .min()
                    .expect("lost is non-empty");
                let (g, _) = mbox
                    .arrived
                    .wait_timeout(st, delay)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
                if let Some(e) = self.abort_error() {
                    break Err(e);
                }
                for &(i, seq) in &lost {
                    let w = &wants[i];
                    let chan = st.chans.entry((w.from, w.tag)).or_default();
                    if chan.delivered == seq {
                        let fault =
                            plan.message_fault_attempt(w.from, me, w.tag, seq, chan.head_attempts);
                        Self::enqueue_views(chan, seq, fault);
                        self.bump_progress();
                    }
                }
                continue;
            }

            // Genuinely not sent yet: park with the watchdog running. One
            // park covers the whole batch.
            if !registered {
                let w = wants
                    .iter()
                    .zip(&done)
                    .find(|(_, d)| !**d)
                    .map(|(w, _)| w)
                    .expect("remaining > 0");
                self.register_blocked(BlockedOp {
                    rank: me,
                    op_index: w.op_index,
                    kind: BlockedKind::Recv {
                        peer: w.from,
                        tag: w.tag,
                    },
                });
                registered = true;
            }
            let slice = self.wait_slice();
            let (g, _) = mbox
                .arrived
                .wait_timeout(st, slice)
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
            if let Some(stalled) = watch.stalled_for(self) {
                if stalled >= self.opts.watchdog {
                    drop(st);
                    let err = self.fire_watchdog();
                    if registered {
                        self.unregister_blocked(me);
                    }
                    return Err(err);
                }
            }
        };
        drop(st);
        if registered {
            self.unregister_blocked(me);
        }
        match result {
            Ok(()) => Ok(()),
            // Local delivery failures are world failures: latch and
            // rebroadcast so peers do not hang waiting for this rank.
            Err(e) => Err(self.abort(e)),
        }
    }

    /// Blocking matched receive with retransmit recovery and watchdog.
    /// `op_index` labels the schedule op for watchdog diagnostics.
    pub fn recv(
        &self,
        me: u32,
        from: u32,
        tag: u32,
        op_index: Option<usize>,
    ) -> Result<Vec<u8>, RuntimeError> {
        let mut got: Option<Vec<u8>> = None;
        self.recv_many(
            me,
            &[RecvWant {
                from,
                tag,
                op_index,
                len: None,
            }],
            |_, payload| got = Some(payload.to_vec()),
        )?;
        Ok(got.expect("recv_many succeeded without delivering"))
    }

    /// Blocking matched receive straight into `out`. The payload length
    /// must equal `out.len()`; a disagreement is a typed
    /// [`RuntimeError::LengthMismatch`] that aborts the world.
    pub fn recv_into(
        &self,
        me: u32,
        from: u32,
        tag: u32,
        op_index: Option<usize>,
        out: &mut [u8],
    ) -> Result<(), RuntimeError> {
        let want = out.len();
        self.recv_many(
            me,
            &[RecvWant {
                from,
                tag,
                op_index,
                len: Some(want),
            }],
            |_, payload| out.copy_from_slice(payload),
        )
    }

    /// Non-blocking matched receive into `out`: `Ok(true)` on delivery,
    /// `Ok(false)` if nothing is deliverable yet. A lost or corrupted head
    /// is retransmitted immediately (no backoff — the caller's polling
    /// loop provides the pacing), bounded by the retransmit budget. Errors
    /// abort the world, exactly like [`Fabric::recv_many`].
    pub fn poll_recv_into(
        &self,
        me: u32,
        from: u32,
        tag: u32,
        out: &mut [u8],
    ) -> Result<bool, RuntimeError> {
        if let Some(e) = self.abort_error() {
            return Err(e);
        }
        let mbox = &self.boxes[me as usize];
        let mut st = lock_recover(&mbox.state);
        let chan = st.chans.entry((from, tag)).or_default();
        let res = self.poll_chan(chan, from, me, tag, out);
        drop(st);
        match res {
            Ok(delivered) => {
                if delivered {
                    self.bump_progress();
                    mbox.arrived.notify_all();
                }
                Ok(delivered)
            }
            Err(e) => Err(self.abort(e)),
        }
    }

    fn poll_chan(
        &self,
        chan: &mut Channel,
        from: u32,
        me: u32,
        tag: u32,
        out: &mut [u8],
    ) -> Result<bool, RuntimeError> {
        loop {
            if let Some(payload) = self.take_deliverable(chan, from, me, tag)? {
                if payload.len() != out.len() {
                    return Err(RuntimeError::LengthMismatch {
                        rank: me,
                        from,
                        tag,
                        got: payload.len(),
                        want: out.len(),
                    });
                }
                out.copy_from_slice(&payload);
                self.release_buf(payload);
                return Ok(true);
            }
            if !self.head_lost(chan) {
                return Ok(false);
            }
            let seq = chan.delivered;
            if self.opts.max_retransmits == 0 {
                return Err(RuntimeError::MessageDropped {
                    from,
                    to: me,
                    tag,
                    seq,
                });
            }
            if chan.head_attempts >= self.opts.max_retransmits {
                return Err(RuntimeError::RetriesExhausted {
                    from,
                    to: me,
                    tag,
                    seq,
                    attempts: chan.head_attempts,
                });
            }
            chan.head_attempts += 1;
            let plan = self.opts.faults.as_ref().expect("lost implies faults");
            let fault = plan.message_fault_attempt(from, me, tag, seq, chan.head_attempts);
            Self::enqueue_views(chan, seq, fault);
            self.bump_progress();
            // Loop: the retransmitted view may be deliverable right away.
        }
    }

    /// Non-blocking probe-and-receive. Never retransmits; a lost head
    /// simply reads as "nothing available yet".
    pub fn try_recv(&self, me: u32, from: u32, tag: u32) -> Option<Vec<u8>> {
        let mbox = &self.boxes[me as usize];
        let mut st = lock_recover(&mbox.state);
        let chan = st.chans.entry((from, tag)).or_default();
        self.take_deliverable(chan, from, me, tag)
            .unwrap_or_default()
    }

    /// World barrier: abort-aware (a dead or failed rank releases everyone
    /// with the world's error) and watchdog-guarded.
    pub fn barrier(&self, me: u32) -> Result<(), RuntimeError> {
        if let Some(e) = self.abort_error() {
            return Err(e);
        }
        let mut st = lock_recover(&self.barrier);
        let gen = st.generation;
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation += 1;
            drop(st);
            self.bump_progress();
            self.barrier_cv.notify_all();
            return Ok(());
        }
        let mut watch = ProgressWatch::new(self);
        self.register_blocked(BlockedOp {
            rank: me,
            op_index: None,
            kind: BlockedKind::Barrier,
        });
        let result = loop {
            let slice = self.wait_slice();
            let (g, _) = self
                .barrier_cv
                .wait_timeout(st, slice)
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
            if st.generation != gen {
                break Ok(());
            }
            if let Some(e) = self.abort_error() {
                break Err(e);
            }
            if let Some(stalled) = watch.stalled_for(self) {
                if stalled >= self.opts.watchdog {
                    drop(st);
                    let err = self.fire_watchdog();
                    self.unregister_blocked(me);
                    return Err(err);
                }
            }
        };
        drop(st);
        self.unregister_blocked(me);
        result
    }

    /// Packets sent but never received (stale duplicates excluded): the
    /// world-teardown analogue of `ExecError::UnconsumedMessages`.
    pub fn undelivered(&self) -> usize {
        self.boxes
            .iter()
            .map(|b| {
                let st = lock_recover(&b.state);
                st.chans
                    .values()
                    .map(|c| c.queue.iter().filter(|v| v.seq >= c.delivered).count())
                    .sum::<usize>()
            })
            .sum()
    }
}

/// `backoff * 2^(attempt-1)`, capped so a long retry train cannot outlast
/// the watchdog.
fn backoff_delay(base: Duration, attempt: u32) -> Duration {
    let shift = (attempt.saturating_sub(1)).min(8);
    (base.saturating_mul(1u32 << shift)).min(Duration::from_millis(20))
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_faults::{FaultPlan, FaultSpec};

    fn recv_ok(f: &Fabric, me: u32, from: u32, tag: u32) -> Vec<u8> {
        f.recv(me, from, tag, None).unwrap()
    }

    #[test]
    fn fifo_per_key() {
        let f = Fabric::new(2);
        f.send(0, 1, 5, &[1]).unwrap();
        f.send(0, 1, 5, &[2]).unwrap();
        assert_eq!(recv_ok(&f, 1, 0, 5), vec![1]);
        assert_eq!(recv_ok(&f, 1, 0, 5), vec![2]);
    }

    #[test]
    fn tags_do_not_cross_match() {
        let f = Fabric::new(2);
        f.send(0, 1, 7, &[7]).unwrap();
        f.send(0, 1, 8, &[8]).unwrap();
        assert_eq!(recv_ok(&f, 1, 0, 8), vec![8]);
        assert_eq!(recv_ok(&f, 1, 0, 7), vec![7]);
    }

    #[test]
    fn try_recv_nonblocking() {
        let f = Fabric::new(2);
        assert!(f.try_recv(1, 0, 0).is_none());
        f.send(0, 1, 0, &[9]).unwrap();
        assert_eq!(f.try_recv(1, 0, 0), Some(vec![9]));
    }

    #[test]
    fn recv_wakes_on_late_send() {
        let f = Arc::new(Fabric::new(2));
        let f2 = Arc::clone(&f);
        let h = std::thread::spawn(move || f2.recv(1, 0, 3, None));
        std::thread::sleep(Duration::from_millis(20));
        f.send(0, 1, 3, &[42]).unwrap();
        assert_eq!(h.join().unwrap().unwrap(), vec![42]);
    }

    #[test]
    fn watchdog_fires_on_never_sent_message() {
        let opts = WorldOptions::default().with_watchdog(Duration::from_millis(60));
        let f = Fabric::with_options(2, opts);
        let err = f.recv(1, 0, 9, Some(4)).unwrap_err();
        match err {
            RuntimeError::WatchdogTimeout { blocked, .. } => {
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].rank, 1);
                assert_eq!(blocked[0].op_index, Some(4));
                assert_eq!(blocked[0].kind, BlockedKind::Recv { peer: 0, tag: 9 });
            }
            other => panic!("expected WatchdogTimeout, got {other}"),
        }
        // The failure latched: subsequent sends fail fast.
        assert!(f.send(0, 1, 0, &[1]).is_err());
    }

    #[test]
    fn retransmit_recovers_heavy_drops() {
        let plan = Arc::new(FaultPlan::new(0xD20B, 2, FaultSpec::drops(0.5)));
        let f = Fabric::with_options(2, WorldOptions::default().with_faults(plan));
        for i in 0..100u8 {
            f.send(0, 1, 3, &[i, i.wrapping_mul(7)]).unwrap();
        }
        for i in 0..100u8 {
            assert_eq!(recv_ok(&f, 1, 0, 3), vec![i, i.wrapping_mul(7)]);
        }
        assert_eq!(f.undelivered(), 0);
    }

    #[test]
    fn drop_without_retransmit_is_a_typed_error() {
        let plan = Arc::new(FaultPlan::new(1, 2, FaultSpec::drops(1.0)));
        let f = Fabric::with_options(
            2,
            WorldOptions::default()
                .with_faults(plan)
                .with_max_retransmits(0),
        );
        f.send(0, 1, 0, &[1, 2, 3]).unwrap();
        let err = f.recv(1, 0, 0, None).unwrap_err();
        assert_eq!(
            err,
            RuntimeError::MessageDropped {
                from: 0,
                to: 1,
                tag: 0,
                seq: 0
            }
        );
    }

    #[test]
    fn corruption_recovered_by_retransmit() {
        let spec = FaultSpec::none().with_corrupt(0.5);
        let plan = Arc::new(FaultPlan::new(0xC0DE, 2, spec));
        let f = Fabric::with_options(2, WorldOptions::default().with_faults(plan));
        for i in 0..50u8 {
            f.send(0, 1, 1, &[i; 16]).unwrap();
        }
        for i in 0..50u8 {
            assert_eq!(recv_ok(&f, 1, 0, 1), vec![i; 16]);
        }
    }

    #[test]
    fn duplicates_are_discarded() {
        let spec = FaultSpec::none().with_duplicate(1.0);
        let plan = Arc::new(FaultPlan::new(7, 2, spec));
        let f = Fabric::with_options(2, WorldOptions::default().with_faults(plan));
        f.send(0, 1, 0, &[1]).unwrap();
        f.send(0, 1, 0, &[2]).unwrap();
        assert_eq!(recv_ok(&f, 1, 0, 0), vec![1]);
        assert_eq!(recv_ok(&f, 1, 0, 0), vec![2]);
        // The duplicate views are stale, not undelivered traffic.
        assert_eq!(f.undelivered(), 0);
    }

    #[test]
    fn abort_releases_blocked_barrier() {
        let f = Arc::new(Fabric::new(2));
        let f2 = Arc::clone(&f);
        let h = std::thread::spawn(move || f2.barrier(1));
        std::thread::sleep(Duration::from_millis(20));
        f.abort(RuntimeError::RankPanicked { rank: 0 });
        assert_eq!(
            h.join().unwrap().unwrap_err(),
            RuntimeError::RankPanicked { rank: 0 }
        );
    }

    #[test]
    fn first_abort_wins() {
        let f = Fabric::new(2);
        let a = f.abort(RuntimeError::RankPanicked { rank: 0 });
        let b = f.abort(RuntimeError::DeadRank { rank: 1 });
        assert_eq!(a, RuntimeError::RankPanicked { rank: 0 });
        assert_eq!(b, RuntimeError::RankPanicked { rank: 0 });
    }

    #[test]
    fn poisoned_mailbox_recovers_instead_of_cascading() {
        let f = Arc::new(Fabric::new(2));
        // Poison mailbox 1's mutex by panicking while holding it.
        let f2 = Arc::clone(&f);
        let _ = std::thread::spawn(move || {
            let _guard = f2.boxes[1].state.lock().unwrap();
            panic!("poison");
        })
        .join();
        // Sends and receives still work via PoisonError::into_inner.
        f.send(0, 1, 0, &[5]).unwrap();
        assert_eq!(recv_ok(&f, 1, 0, 0), vec![5]);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let base = Duration::from_micros(50);
        assert_eq!(backoff_delay(base, 1), base);
        assert_eq!(backoff_delay(base, 3), base * 4);
        assert!(backoff_delay(base, 30) <= Duration::from_millis(20));
    }

    #[test]
    fn pooled_buffer_is_reused_and_fully_overwritten() {
        let f = Fabric::new(2);
        // First message fills a fresh buffer with 16 bytes of 0xAA...
        f.send(0, 1, 0, &[0xAA; 16]).unwrap();
        let mut out = [0u8; 16];
        f.recv_into(1, 0, 0, None, &mut out).unwrap();
        assert_eq!(out, [0xAA; 16]);
        assert_eq!(lock_recover(&f.pool).len(), 1, "delivery pools the buffer");
        // ...and the second, shorter message recycles that exact buffer.
        // Its stale 0xAA suffix must be unobservable: the stored payload
        // is 4 bytes of 0xBB, nothing more.
        f.send(0, 1, 0, &[0xBB; 4]).unwrap();
        assert_eq!(lock_recover(&f.pool).len(), 0, "send drains the pool");
        {
            let st = lock_recover(&f.boxes[1].state);
            let chan = &st.chans[&(0, 0)];
            assert_eq!(chan.store.len(), 1);
            assert_eq!(chan.store[0].1, vec![0xBB; 4]);
            assert!(chan.store[0].1.capacity() >= 16, "recycled, not realloc'd");
        }
        let mut out = [0u8; 4];
        f.recv_into(1, 0, 0, None, &mut out).unwrap();
        assert_eq!(out, [0xBB; 4]);
    }

    #[test]
    fn recv_into_length_mismatch_is_typed() {
        let f = Fabric::new(2);
        f.send(0, 1, 2, &[1, 2, 3]).unwrap();
        let mut out = [0u8; 5];
        let err = f.recv_into(1, 0, 2, None, &mut out).unwrap_err();
        assert_eq!(
            err,
            RuntimeError::LengthMismatch {
                rank: 1,
                from: 0,
                tag: 2,
                got: 3,
                want: 5
            }
        );
    }

    #[test]
    fn recv_many_drains_a_batch_across_channels() {
        let f = Arc::new(Fabric::new(3));
        // Rank 2 expects one message from each peer plus a second from
        // rank 0, posted before anything was sent.
        let f2 = Arc::clone(&f);
        let h = std::thread::spawn(move || {
            let wants = [
                RecvWant {
                    from: 0,
                    tag: 1,
                    op_index: Some(7),
                    len: Some(2),
                },
                RecvWant {
                    from: 1,
                    tag: 1,
                    op_index: Some(7),
                    len: Some(3),
                },
                RecvWant {
                    from: 0,
                    tag: 1,
                    op_index: Some(7),
                    len: Some(2),
                },
            ];
            let mut got: Vec<Vec<u8>> = vec![Vec::new(); wants.len()];
            f2.recv_many(2, &wants, |i, payload| got[i] = payload.to_vec())
                .map(|()| got)
        });
        std::thread::sleep(Duration::from_millis(10));
        f.send(1, 2, 1, &[9, 9, 9]).unwrap();
        f.send(0, 2, 1, &[1, 2]).unwrap();
        f.send(0, 2, 1, &[3, 4]).unwrap();
        let got = h.join().unwrap().unwrap();
        // Same-channel wants match in posting order; channels commute.
        assert_eq!(got, vec![vec![1, 2], vec![9, 9, 9], vec![3, 4]]);
        assert_eq!(f.undelivered(), 0);
    }

    #[test]
    fn recv_many_recovers_drops_across_the_batch() {
        let plan = Arc::new(FaultPlan::new(0xFEED, 4, FaultSpec::drops(0.4)));
        let f = Fabric::with_options(4, WorldOptions::default().with_faults(plan));
        for from in 0..3u32 {
            for i in 0..20u8 {
                f.send(from, 3, 0, &[from as u8, i]).unwrap();
            }
        }
        let mut wants = Vec::new();
        for from in 0..3u32 {
            for _ in 0..20 {
                wants.push(RecvWant {
                    from,
                    tag: 0,
                    op_index: None,
                    len: Some(2),
                });
            }
        }
        let mut got = vec![Vec::new(); wants.len()];
        f.recv_many(3, &wants, |i, payload| got[i] = payload.to_vec())
            .unwrap();
        for (i, w) in wants.iter().enumerate() {
            assert_eq!(got[i], vec![w.from as u8, (i % 20) as u8]);
        }
        assert_eq!(f.undelivered(), 0);
    }

    #[test]
    fn poll_recv_into_delivers_and_retransmits() {
        // No faults: poll sees nothing, then the payload.
        let f = Fabric::new(2);
        let mut out = [0u8; 2];
        assert!(!f.poll_recv_into(1, 0, 0, &mut out).unwrap());
        f.send(0, 1, 0, &[6, 7]).unwrap();
        assert!(f.poll_recv_into(1, 0, 0, &mut out).unwrap());
        assert_eq!(out, [6, 7]);

        // Heavy drops: a single poll must recover each payload by
        // retransmitting inline (no backoff), within the retry budget.
        let plan = Arc::new(FaultPlan::new(3, 2, FaultSpec::drops(0.5)));
        let f = Fabric::with_options(
            2,
            WorldOptions::default()
                .with_faults(plan)
                .with_max_retransmits(64),
        );
        for i in 0..30u8 {
            f.send(0, 1, 0, &[i]).unwrap();
            let mut out = [0u8; 1];
            assert!(
                f.poll_recv_into(1, 0, 0, &mut out).unwrap(),
                "poll retransmits a lost head inline"
            );
            assert_eq!(out, [i]);
        }
    }
}
