//! A persistent worker pool for service-style traffic.
//!
//! [`crate::ThreadWorld`] spins up one scoped OS thread per rank per job —
//! right for a single collective that owns the machine, wrong for a
//! long-running service admitting thousands of jobs: thread spawn/join
//! would dominate every small collective. [`WorkerPool`] keeps a fixed set
//! of named worker threads alive for the life of the service and feeds
//! them closures through a mutex-guarded queue.
//!
//! Properties the service layer relies on:
//!
//! * **Panic containment** — a panicking job is caught, counted, and the
//!   worker keeps serving; one tenant's bug never takes a worker down.
//! * **Drain on drop** — dropping the pool lets workers finish every job
//!   already queued before joining, so no submitted job is silently lost.
//! * **Completion tracking** — [`WorkerPool::drain`] blocks until every
//!   submitted job has finished, which is how `Service::join` quiesces.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::cancel::CancelToken;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueuedJob {
    job: Job,
    /// Checked when a worker pops the job: a fired token skips execution
    /// entirely (counted in [`PoolStats::cancelled`]).
    token: Option<CancelToken>,
}

#[derive(Default)]
struct PoolQueue {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
    submitted: u64,
    finished: u64,
    panicked: u64,
    cancelled: u64,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Signaled when a job is queued (or shutdown begins): wakes workers.
    available: Condvar,
    /// Signaled when a job finishes: wakes [`WorkerPool::drain`].
    done: Condvar,
}

/// Lifetime counters of one pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub submitted: u64,
    pub finished: u64,
    /// Jobs that panicked (included in `finished`).
    pub panicked: u64,
    /// Jobs whose [`CancelToken`] fired before a worker picked them up;
    /// skipped without running (included in `finished`).
    pub cancelled: u64,
    /// Jobs queued but not yet finished.
    pub pending: u64,
}

/// A fixed set of persistent worker threads executing queued closures.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

/// Mutex poisoning cannot corrupt the queue (jobs are popped before they
/// run, counters are plain integers), so a poisoned lock is recovered the
/// same way the fabric recovers its mailbox locks.
fn lock_queue(shared: &PoolShared) -> MutexGuard<'_, PoolQueue> {
    shared
        .queue
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

impl WorkerPool {
    /// Start `workers` (at least 1) persistent threads.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue::default()),
            available: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..=workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("svc-worker-{}", i - 1))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Queue a job for execution on some worker.
    ///
    /// # Panics
    /// Panics if called after the pool started shutting down (only
    /// possible from a job racing `Drop`, which the service layer never
    /// does: it owns the pool and submits only while alive).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.enqueue(Box::new(job), None);
    }

    /// Queue a job that is skipped (never run, counted in
    /// [`PoolStats::cancelled`]) if `token` fires before a worker picks
    /// it up. A token firing mid-run does not interrupt the closure —
    /// in-flight cancellation is the closure's own business (e.g. a
    /// world checking the same token through its fabric).
    pub fn spawn_cancellable(&self, token: CancelToken, job: impl FnOnce() + Send + 'static) {
        self.enqueue(Box::new(job), Some(token));
    }

    fn enqueue(&self, job: Job, token: Option<CancelToken>) {
        let mut q = lock_queue(&self.shared);
        assert!(!q.shutdown, "spawn on a shut-down pool");
        q.jobs.push_back(QueuedJob { job, token });
        q.submitted += 1;
        drop(q);
        self.shared.available.notify_one();
    }

    /// Block until every job submitted so far has finished.
    pub fn drain(&self) {
        let mut q = lock_queue(&self.shared);
        while q.finished < q.submitted {
            q = self
                .shared
                .done
                .wait(q)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }

    pub fn stats(&self) -> PoolStats {
        let q = lock_queue(&self.shared);
        PoolStats {
            submitted: q.submitted,
            finished: q.finished,
            panicked: q.panicked,
            cancelled: q.cancelled,
            pending: q.submitted - q.finished,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = lock_queue(&self.shared);
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            // A worker that panicked outside a job (impossible today) still
            // must not abort the drop of the others.
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let queued = {
            let mut q = lock_queue(shared);
            loop {
                if let Some(queued) = q.jobs.pop_front() {
                    if queued.token.as_ref().is_some_and(CancelToken::is_cancelled) {
                        q.finished += 1;
                        q.cancelled += 1;
                        shared.done.notify_all();
                        continue;
                    }
                    break queued;
                }
                if q.shutdown {
                    return;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        };
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(queued.job)).is_err();
        let mut q = lock_queue(shared);
        q.finished += 1;
        if panicked {
            q.panicked += 1;
        }
        drop(q);
        shared.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn executes_all_jobs_across_workers() {
        let pool = WorkerPool::new(4);
        let sum = Arc::new(AtomicU64::new(0));
        for i in 0..100u64 {
            let sum = Arc::clone(&sum);
            pool.spawn(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        }
        pool.drain();
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
        let stats = pool.stats();
        assert_eq!(stats.submitted, 100);
        assert_eq!(stats.finished, 100);
        assert_eq!(stats.panicked, 0);
        assert_eq!(stats.pending, 0);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = WorkerPool::new(1);
        let ran = Arc::new(AtomicU64::new(0));
        pool.spawn(|| panic!("job bug"));
        let r = Arc::clone(&ran);
        pool.spawn(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        pool.drain();
        assert_eq!(ran.load(Ordering::Relaxed), 1, "worker survived the panic");
        assert_eq!(pool.stats().panicked, 1);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let ran = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..50 {
                let r = Arc::clone(&ran);
                pool.spawn(move || {
                    r.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(ran.load(Ordering::Relaxed), 50, "drop ran every queued job");
    }

    #[test]
    fn cancelled_jobs_are_skipped_but_counted_finished() {
        let pool = WorkerPool::new(1);
        // Wedge the single worker so later spawns stay queued.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.spawn(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        let ran = Arc::new(AtomicU64::new(0));
        let token = CancelToken::new();
        let r = Arc::clone(&ran);
        pool.spawn_cancellable(token.clone(), move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        let r = Arc::clone(&ran);
        pool.spawn_cancellable(CancelToken::new(), move || {
            r.fetch_add(10, Ordering::Relaxed);
        });
        token.cancel();
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        pool.drain();
        assert_eq!(ran.load(Ordering::Relaxed), 10, "cancelled job never ran");
        let stats = pool.stats();
        assert_eq!(stats.finished, 3, "skip still counts as finished");
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.pending, 0);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        pool.spawn(|| {});
        pool.drain();
    }
}
