//! The per-rank communicator handle and the schedule interpreter.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use a2a_core::{A2AContext, AlltoallAlgorithm};
use a2a_sched::{Block, Op};
use a2a_topo::ProcGrid;

use crate::error::RuntimeError;
use crate::fabric::{Fabric, RecvWant};

/// Two distinct mutable elements of `v`. Used for cross-buffer copies
/// without an intermediate allocation.
pub(crate) fn split_two<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// One rank's view of the world: MPI-shaped point-to-point plus the
/// all-to-all schedule interpreter. Every blocking primitive returns
/// `Result<_, RuntimeError>`; the first error any rank hits is broadcast
/// so the whole collective fails together instead of hanging.
pub struct ThreadComm {
    rank: u32,
    fabric: Arc<Fabric>,
}

/// Result of a timed all-to-all execution.
#[derive(Debug, Clone, Copy)]
pub struct AlltoallRun {
    /// Wall-clock time this rank spent inside the collective.
    pub elapsed: Duration,
}

impl ThreadComm {
    pub(crate) fn new(rank: u32, fabric: Arc<Fabric>) -> Self {
        ThreadComm { rank, fabric }
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn size(&self) -> u32 {
        self.fabric.size() as u32
    }

    /// Latch `err` as the world's failure (first error wins, waking every
    /// blocked rank) and return the winning error. Use this to fail a
    /// collective from a rank-local check so peers do not hang.
    pub fn fail(&self, err: RuntimeError) -> RuntimeError {
        self.fabric.abort(err)
    }

    /// Buffered (eager) send: never blocks. The payload is copied once,
    /// into a pooled fabric buffer. Fails fast once the world has aborted.
    pub fn send(&self, to: u32, tag: u32, data: &[u8]) -> Result<(), RuntimeError> {
        assert!(to < self.size(), "send to rank {to} out of range");
        self.fabric.send(self.rank, to, tag, data)
    }

    /// Blocking matched receive into `buf` (length must match the
    /// message, else a typed [`RuntimeError::LengthMismatch`] fails the
    /// world). Recovers injected drops via retransmit; a hung match is
    /// bounded by the watchdog.
    pub fn recv(&self, from: u32, tag: u32, buf: &mut [u8]) -> Result<(), RuntimeError> {
        self.fabric.recv_into(self.rank, from, tag, None, buf)
    }

    /// `MPI_Sendrecv`: safe under buffered sends (send first, then recv).
    pub fn sendrecv(
        &self,
        to: u32,
        stag: u32,
        sdata: &[u8],
        from: u32,
        rtag: u32,
        rbuf: &mut [u8],
    ) -> Result<(), RuntimeError> {
        self.send(to, stag, sdata)?;
        self.recv(from, rtag, rbuf)
    }

    /// World barrier: abort-aware and watchdog-guarded.
    pub fn barrier(&self) -> Result<(), RuntimeError> {
        self.fabric.barrier(self.rank)
    }

    /// Execute an all-to-all using `algo`'s compiled schedule: `sbuf` holds
    /// `n` blocks of `block_bytes` ordered by destination; on return `rbuf`
    /// holds `n` blocks ordered by source.
    ///
    /// # Panics
    /// Panics if `grid` does not match the world size or the buffers are
    /// not `n * block_bytes` long (caller bugs, not runtime faults).
    pub fn alltoall(
        &self,
        algo: &dyn AlltoallAlgorithm,
        grid: &ProcGrid,
        block_bytes: u64,
        sbuf: &[u8],
        rbuf: &mut [u8],
    ) -> Result<(), RuntimeError> {
        let n = grid.world_size();
        assert_eq!(n as u32, self.size(), "grid/world size mismatch");
        let total = n as u64 * block_bytes;
        assert_eq!(sbuf.len() as u64, total, "send buffer size");
        assert_eq!(rbuf.len() as u64, total, "recv buffer size");

        let ctx = A2AContext::new(grid.clone(), block_bytes);
        let sizes = algo.buffers(&ctx, self.rank);
        let prog = algo.build_rank(&ctx, self.rank);
        let out = self.run_program(&sizes, &prog, sbuf)?;
        rbuf.copy_from_slice(&out);
        Ok(())
    }

    /// Execute an allgather: `contribution` is this rank's `block_bytes`
    /// payload; on return `rbuf` (`n * block_bytes`) holds every rank's
    /// contribution in rank order.
    pub fn allgather(
        &self,
        algo: &dyn a2a_core::collectives::AllgatherAlgorithm,
        grid: &ProcGrid,
        block_bytes: u64,
        contribution: &[u8],
        rbuf: &mut [u8],
    ) -> Result<(), RuntimeError> {
        let n = grid.world_size();
        assert_eq!(n as u32, self.size(), "grid/world size mismatch");
        assert_eq!(contribution.len() as u64, block_bytes, "contribution size");
        assert_eq!(
            rbuf.len() as u64,
            n as u64 * block_bytes,
            "recv buffer size"
        );
        let ctx = A2AContext::new(grid.clone(), block_bytes);
        let sizes = algo.buffers(&ctx, self.rank);
        let prog = algo.build_rank(&ctx, self.rank);
        let out = self.run_program(&sizes, &prog, contribution)?;
        rbuf.copy_from_slice(&out);
        Ok(())
    }

    /// Execute a broadcast: on the root, `payload` must be `Some(bytes)`
    /// (a missing payload is [`RuntimeError::MissingRootPayload`], failing
    /// the collective on every rank); on return `rbuf` holds the payload
    /// on every rank.
    pub fn bcast(
        &self,
        algo: &dyn a2a_core::collectives::BcastAlgorithm,
        grid: &ProcGrid,
        root: u32,
        payload: Option<&[u8]>,
        rbuf: &mut [u8],
    ) -> Result<(), RuntimeError> {
        assert_eq!(grid.world_size() as u32, self.size(), "grid/world size");
        let len = rbuf.len() as u64;
        let ctx = A2AContext::new(grid.clone(), len);
        let sizes = algo.buffers(&ctx, self.rank, root);
        let prog = algo.build_rank(&ctx, self.rank, root);
        let sbuf: &[u8] = if self.rank == root {
            match payload {
                Some(p) => p,
                None => return Err(self.fail(RuntimeError::MissingRootPayload { root })),
            }
        } else {
            &[]
        };
        let out = self.run_program(&sizes, &prog, sbuf)?;
        rbuf.copy_from_slice(&out);
        Ok(())
    }

    /// Interpret one rank's compiled program with real buffers: `sbuf_init`
    /// seeds buffer 0; buffer 1 (`RBUF`) is returned. The op index of each
    /// blocking receive is threaded into the fabric so watchdog dumps can
    /// name the exact schedule position a rank is stuck at.
    fn run_program(
        &self,
        sizes: &[u64],
        prog: &a2a_sched::RankProgram,
        sbuf_init: &[u8],
    ) -> Result<Vec<u8>, RuntimeError> {
        let mut bufs: Vec<Vec<u8>> = sizes.iter().map(|&s| vec![0u8; s as usize]).collect();
        assert!(
            bufs[0].len() >= sbuf_init.len(),
            "rank {}: send buffer smaller than init data",
            self.rank
        );
        bufs[0][..sbuf_init.len()].copy_from_slice(sbuf_init);

        // Pending receive requests: req id -> (from, tag, destination).
        let mut pending: HashMap<u32, (u32, u32, Block)> = HashMap::new();
        let mut wants: Vec<RecvWant> = Vec::new();
        let mut blocks: Vec<Block> = Vec::new();
        for (op_index, top) in prog.ops.iter().enumerate() {
            match top.op {
                Op::Isend { to, block, tag, .. } => {
                    // The fabric copies straight out of the live buffer
                    // into a pooled payload: one copy, no temporary.
                    self.fabric.send(
                        self.rank,
                        to,
                        tag,
                        &bufs[block.buf.0 as usize][block.off as usize..block.end() as usize],
                    )?;
                }
                Op::Irecv {
                    from,
                    block,
                    tag,
                    req,
                } => {
                    pending.insert(req, (from, tag, block));
                }
                Op::WaitAll { first_req, count } => {
                    // Sends complete eagerly; receives are drained as one
                    // batch (matched in posting order per channel, since
                    // request ids are allocated in program order) so the
                    // whole WaitAll shares a single park/wake cycle.
                    wants.clear();
                    blocks.clear();
                    for req in first_req..first_req + count {
                        if let Some((from, tag, block)) = pending.remove(&req) {
                            wants.push(RecvWant {
                                from,
                                tag,
                                op_index: Some(op_index),
                                len: Some(block.len as usize),
                            });
                            blocks.push(block);
                        }
                    }
                    if !wants.is_empty() {
                        let bufs = &mut bufs;
                        let blocks = &blocks;
                        self.fabric.recv_many(self.rank, &wants, |i, payload| {
                            let b = blocks[i];
                            bufs[b.buf.0 as usize][b.off as usize..b.end() as usize]
                                .copy_from_slice(payload);
                        })?;
                    }
                }
                Op::Copy { src, dst } => {
                    if src.buf == dst.buf {
                        bufs[src.buf.0 as usize]
                            .copy_within(src.off as usize..src.end() as usize, dst.off as usize);
                    } else {
                        let (s, d) = split_two(&mut bufs, src.buf.0 as usize, dst.buf.0 as usize);
                        d[dst.off as usize..dst.end() as usize]
                            .copy_from_slice(&s[src.off as usize..src.end() as usize]);
                    }
                }
            }
        }
        assert!(
            pending.is_empty(),
            "rank {}: {} receives never waited on",
            self.rank,
            pending.len()
        );
        Ok(bufs.swap_remove(1))
    }

    /// Barrier-synchronized, timed all-to-all (for benchmarking).
    pub fn timed_alltoall(
        &self,
        algo: &dyn AlltoallAlgorithm,
        grid: &ProcGrid,
        block_bytes: u64,
        sbuf: &[u8],
        rbuf: &mut [u8],
    ) -> Result<AlltoallRun, RuntimeError> {
        self.barrier()?;
        let start = Instant::now();
        self.alltoall(algo, grid, block_bytes, sbuf, rbuf)?;
        let elapsed = start.elapsed();
        self.barrier()?;
        Ok(AlltoallRun { elapsed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThreadWorld, WorldOptions};
    use a2a_core::{
        BruckAlltoall, ExchangeKind, HierarchicalAlltoall, MpichShmAlltoall,
        MultileaderNodeAwareAlltoall, NodeAwareAlltoall, NonblockingAlltoall, PairwiseAlltoall,
    };
    use a2a_sched::{check_alltoall_rbuf, fill_alltoall_sbuf};
    use a2a_topo::{Machine, ProcGrid};

    fn run_algo(algo: &dyn AlltoallAlgorithm, grid: ProcGrid, s: u64) {
        let n = grid.world_size();
        let total = (n as u64 * s) as usize;
        let grid = &grid;
        ThreadWorld::run_with(n, WorldOptions::default(), move |comm| {
            let mut sbuf = vec![0u8; total];
            let mut rbuf = vec![0u8; total];
            fill_alltoall_sbuf(comm.rank(), n, s, &mut sbuf);
            comm.alltoall(algo, grid, s, &sbuf, &mut rbuf)?;
            check_alltoall_rbuf(comm.rank(), n, s, &rbuf).map_err(|e| {
                comm.fail(RuntimeError::VerificationFailed {
                    rank: comm.rank(),
                    detail: e.to_string(),
                })
            })
        })
        .unwrap();
    }

    fn grid(nodes: usize) -> ProcGrid {
        ProcGrid::new(Machine::custom("t", nodes, 2, 1, 3)) // 6 ppn
    }

    #[test]
    fn point_to_point_roundtrip() {
        ThreadWorld::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, b"hello").unwrap();
                let mut buf = [0u8; 5];
                comm.recv(1, 2, &mut buf).unwrap();
                assert_eq!(&buf, b"world");
            } else {
                let mut buf = [0u8; 5];
                comm.recv(0, 1, &mut buf).unwrap();
                assert_eq!(&buf, b"hello");
                comm.send(0, 2, b"world").unwrap();
            }
        });
    }

    #[test]
    fn sendrecv_ring_rotation() {
        let vals = ThreadWorld::run(5, |comm| {
            let n = comm.size();
            let right = (comm.rank() + 1) % n;
            let left = (comm.rank() + n - 1) % n;
            let mut got = [0u8; 1];
            comm.sendrecv(right, 0, &[comm.rank() as u8], left, 0, &mut got)
                .unwrap();
            got[0]
        });
        assert_eq!(vals, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn length_mismatch_is_typed_not_a_panic() {
        let res: Result<Vec<()>, RuntimeError> =
            ThreadWorld::run_with(2, WorldOptions::default(), |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 0, &[1, 2, 3])?;
                    Ok(())
                } else {
                    let mut buf = [0u8; 5]; // wrong size
                    comm.recv(0, 0, &mut buf)?;
                    Ok(())
                }
            });
        assert_eq!(
            res.unwrap_err(),
            RuntimeError::LengthMismatch {
                rank: 1,
                from: 0,
                tag: 0,
                got: 3,
                want: 5
            }
        );
    }

    #[test]
    fn bcast_missing_root_payload_is_typed() {
        let res: Result<Vec<()>, RuntimeError> =
            ThreadWorld::run_with(4, WorldOptions::default(), |comm| {
                let g = ProcGrid::new(Machine::custom("t", 1, 2, 1, 2));
                let mut rbuf = vec![0u8; 8];
                // Nobody supplies the payload, including the root.
                comm.bcast(
                    &a2a_core::collectives::BinomialBcast,
                    &g,
                    1,
                    None,
                    &mut rbuf,
                )?;
                Ok(())
            });
        assert_eq!(
            res.unwrap_err(),
            RuntimeError::MissingRootPayload { root: 1 }
        );
    }

    #[test]
    fn threaded_pairwise_alltoall() {
        run_algo(&PairwiseAlltoall, grid(2), 8);
    }

    #[test]
    fn threaded_nonblocking_alltoall() {
        run_algo(&NonblockingAlltoall, grid(2), 8);
    }

    #[test]
    fn threaded_bruck_alltoall() {
        run_algo(&BruckAlltoall, grid(2), 8);
    }

    #[test]
    fn threaded_hierarchical_and_multileader() {
        run_algo(
            &HierarchicalAlltoall::new(6, ExchangeKind::Pairwise),
            grid(2),
            4,
        );
        run_algo(
            &HierarchicalAlltoall::new(3, ExchangeKind::Nonblocking),
            grid(2),
            4,
        );
    }

    #[test]
    fn threaded_node_and_locality_aware() {
        run_algo(
            &NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise),
            grid(3),
            4,
        );
        run_algo(
            &NodeAwareAlltoall::locality_aware(3, ExchangeKind::Pairwise),
            grid(3),
            4,
        );
    }

    #[test]
    fn threaded_mlna_and_mpich_shm() {
        run_algo(
            &MultileaderNodeAwareAlltoall::new(2, ExchangeKind::Pairwise),
            grid(2),
            4,
        );
        run_algo(&MpichShmAlltoall::default(), grid(2), 4);
    }

    #[test]
    fn timed_alltoall_reports_duration() {
        let g = grid(1);
        let n = g.world_size();
        let s = 16u64;
        let total = (n as u64 * s) as usize;
        let gref = &g;
        let runs = ThreadWorld::run(n, move |comm| {
            let mut sbuf = vec![0u8; total];
            let mut rbuf = vec![0u8; total];
            fill_alltoall_sbuf(comm.rank(), n, s, &mut sbuf);
            let run = comm
                .timed_alltoall(&PairwiseAlltoall, gref, s, &sbuf, &mut rbuf)
                .unwrap();
            check_alltoall_rbuf(comm.rank(), n, s, &rbuf).unwrap();
            run.elapsed
        });
        assert!(runs.iter().all(|d| d.as_nanos() > 0));
    }
}
