//! A threaded mini-MPI runtime: real data movement for the all-to-all
//! algorithms.
//!
//! [`ThreadWorld::run`] spawns one OS thread per rank; each thread receives
//! a [`ThreadComm`] exposing MPI-shaped point-to-point primitives (tagged,
//! source-matched, FIFO per `(source, tag)`), a barrier, and collectives —
//! including [`ThreadComm::alltoall`], which executes any
//! `a2a_core::AlltoallAlgorithm` by interpreting its compiled schedule with
//! real buffers.
//!
//! Sends are buffered (eager): a send never blocks, so any schedule that
//! passes `a2a_sched::validate` executes without deadlock. This matches
//! the standard-mode MPI semantics the algorithms assume.
//!
//! # Example
//!
//! ```
//! use a2a_runtime::ThreadWorld;
//!
//! let outputs = ThreadWorld::run(4, |comm| {
//!     // Ring: send my rank to the right, receive from the left.
//!     let right = (comm.rank() + 1) % comm.size();
//!     let left = (comm.rank() + comm.size() - 1) % comm.size();
//!     comm.send(right, 0, &[comm.rank() as u8]);
//!     let mut got = [0u8; 1];
//!     comm.recv(left, 0, &mut got);
//!     got[0]
//! });
//! assert_eq!(outputs, vec![3, 0, 1, 2]);
//! ```

mod comm;
mod fabric;

pub use comm::{AlltoallRun, ThreadComm};
pub use fabric::Fabric;

use std::sync::Arc;

/// Spawns one thread per rank and runs `body` on each.
pub struct ThreadWorld;

impl ThreadWorld {
    /// Run an `n`-rank program; returns each rank's result, rank-ordered.
    ///
    /// Panics in any rank propagate (with the world torn down).
    pub fn run<T, F>(n: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&ThreadComm) -> T + Send + Sync,
    {
        assert!(n > 0, "world must have at least one rank");
        let fabric = Arc::new(Fabric::new(n));
        let body = &body;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|rank| {
                    let fabric = Arc::clone(&fabric);
                    std::thread::Builder::new()
                        .name(format!("rank-{rank}"))
                        .stack_size(512 * 1024)
                        .spawn_scoped(scope, move || {
                            let comm = ThreadComm::new(rank as u32, fabric);
                            body(&comm)
                        })
                        .expect("spawn rank thread")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = ThreadWorld::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            42
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn results_are_rank_ordered() {
        let out = ThreadWorld::run(8, |comm| comm.rank() * 10);
        assert_eq!(out, (0..8).map(|r| r * 10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        // Non-panicking ranks must not block (no barrier here), so joins
        // complete and the panic surfaces.
        ThreadWorld::run(2, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
        });
    }
}
