//! A threaded mini-MPI runtime: real data movement for the all-to-all
//! algorithms.
//!
//! [`ThreadWorld::run`] spawns one OS thread per rank; each thread receives
//! a [`ThreadComm`] exposing MPI-shaped point-to-point primitives (tagged,
//! source-matched, FIFO per `(source, tag)`), a barrier, and collectives —
//! including [`ThreadComm::alltoall`], which executes any
//! `a2a_core::AlltoallAlgorithm` by interpreting its compiled schedule with
//! real buffers.
//!
//! Sends are buffered (eager): a send never blocks, so any schedule that
//! passes `a2a_sched::validate` executes without deadlock. This matches
//! the standard-mode MPI semantics the algorithms assume.
//!
//! # Resilience
//!
//! Every blocking primitive returns `Result<_, RuntimeError>` instead of
//! hanging or panicking. [`ThreadWorld::run_with`] takes [`WorldOptions`]
//! configuring a watchdog (a stalled world aborts with
//! [`RuntimeError::WatchdogTimeout`] naming each blocked rank), bounded
//! retransmit with exponential backoff (injected message drops are
//! recovered transparently), and an optional seeded
//! [`a2a_faults::FaultPlan`]. The first error any rank hits is broadcast
//! to all: one failed rank fails the collective everywhere.
//!
//! # Example
//!
//! ```
//! use a2a_runtime::ThreadWorld;
//!
//! let outputs = ThreadWorld::run(4, |comm| {
//!     // Ring: send my rank to the right, receive from the left.
//!     let right = (comm.rank() + 1) % comm.size();
//!     let left = (comm.rank() + comm.size() - 1) % comm.size();
//!     comm.send(right, 0, &[comm.rank() as u8]).unwrap();
//!     let mut got = [0u8; 1];
//!     comm.recv(left, 0, &mut got).unwrap();
//!     got[0]
//! });
//! assert_eq!(outputs, vec![3, 0, 1, 2]);
//! ```

mod cancel;
mod comm;
mod error;
mod fabric;
mod parallel;
mod pool;

pub use cancel::CancelToken;
pub use comm::{AlltoallRun, ThreadComm};
pub use error::{BlockedKind, BlockedOp, ErrorClass, RuntimeError};
pub use fabric::{Fabric, RecvWant, WorldOptions};
pub use parallel::{ParallelExecutor, ParallelOutput};
pub use pool::{PoolStats, WorkerPool};

use std::sync::Arc;

/// Spawns one thread per rank and runs `body` on each.
pub struct ThreadWorld;

impl ThreadWorld {
    /// Run an `n`-rank program; returns each rank's result, rank-ordered.
    ///
    /// Convenience wrapper over [`ThreadWorld::run_with`] with default
    /// options and an infallible body: any [`RuntimeError`] (including a
    /// watchdog timeout) panics with its diagnostics, and panics in any
    /// rank propagate (with the world torn down).
    pub fn run<T, F>(n: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&ThreadComm) -> T + Send + Sync,
    {
        match Self::run_with(n, WorldOptions::default(), |comm| Ok(body(comm))) {
            Ok(outs) => outs,
            Err(e) => panic!("world failed: {e}"),
        }
    }

    /// Run an `n`-rank fallible program under `opts`.
    ///
    /// Each rank's body returns `Result<T, RuntimeError>`; the world
    /// returns rank-ordered results only if every rank succeeded.
    /// Otherwise the first error (in abort order, which every rank
    /// observes identically) is returned. If the options carry a
    /// [`a2a_faults::FaultPlan`] with dead ranks, a dead rank aborts the
    /// world with [`RuntimeError::DeadRank`] before running its body.
    ///
    /// After an all-success run the fabric is audited: payloads sent but
    /// never received fail the world with
    /// [`RuntimeError::UnconsumedMessages`], mirroring the sequential
    /// executor's leftover check.
    pub fn run_with<T, F>(n: usize, opts: WorldOptions, body: F) -> Result<Vec<T>, RuntimeError>
    where
        T: Send,
        F: Fn(&ThreadComm) -> Result<T, RuntimeError> + Send + Sync,
    {
        assert!(n > 0, "world must have at least one rank");
        let fabric = Arc::new(Fabric::with_options(n, opts));
        let body = &body;
        let results: Vec<std::thread::Result<Result<T, RuntimeError>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .map(|rank| {
                        let fabric = Arc::clone(&fabric);
                        std::thread::Builder::new()
                            .name(format!("rank-{rank}"))
                            .stack_size(512 * 1024)
                            .spawn_scoped(scope, move || {
                                let rank = rank as u32;
                                if let Some(plan) = fabric.fault_plan() {
                                    if plan.is_dead(rank) {
                                        return Err(fabric.abort(RuntimeError::DeadRank { rank }));
                                    }
                                }
                                let comm = ThreadComm::new(rank, Arc::clone(&fabric));
                                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    body(&comm)
                                })) {
                                    Ok(res) => res,
                                    Err(payload) => {
                                        // Unblock peers before re-raising so
                                        // every join completes.
                                        fabric.abort(RuntimeError::RankPanicked { rank });
                                        std::panic::resume_unwind(payload);
                                    }
                                }
                            })
                            .expect("spawn rank thread")
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });

        let mut outs = Vec::with_capacity(n);
        let mut first_err = None;
        for res in results {
            match res {
                // A panicking rank stays a panic for the caller
                // (`#[should_panic]` tests and debuggers rely on it).
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(Ok(v)) => outs.push(v),
                Ok(Err(e)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let leftover = fabric.undelivered();
        if leftover > 0 {
            return Err(RuntimeError::UnconsumedMessages { count: leftover });
        }
        Ok(outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn single_rank_world() {
        let out = ThreadWorld::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            42
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn results_are_rank_ordered() {
        let out = ThreadWorld::run(8, |comm| comm.rank() * 10);
        assert_eq!(out, (0..8).map(|r| r * 10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        // Non-panicking ranks must not block (no barrier here), so joins
        // complete and the panic surfaces.
        ThreadWorld::run(2, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn rank_panic_unblocks_peers_at_barrier() {
        // Rank 1 panics while rank 0 waits at the barrier: the abort
        // releases rank 0 with a typed error instead of hanging the join,
        // and the panic re-raises in the parent (caught here). A long
        // watchdog proves it is the abort, not the watchdog, unblocking.
        let result = std::panic::catch_unwind(|| {
            ThreadWorld::run_with(
                2,
                WorldOptions::default().with_watchdog(Duration::from_secs(30)),
                |comm| {
                    if comm.rank() == 1 {
                        panic!("boom");
                    }
                    comm.barrier()?;
                    Ok(())
                },
            )
        });
        assert!(result.is_err(), "panic must propagate");
    }

    #[test]
    fn error_in_one_rank_fails_the_world() {
        let res: Result<Vec<()>, RuntimeError> =
            ThreadWorld::run_with(2, WorldOptions::default(), |comm| {
                if comm.rank() == 0 {
                    return Err(comm.fail(RuntimeError::VerificationFailed {
                        rank: 0,
                        detail: "synthetic".into(),
                    }));
                }
                comm.barrier()?;
                Ok(())
            });
        match res.unwrap_err() {
            RuntimeError::VerificationFailed { rank: 0, .. } => {}
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn unconsumed_messages_detected() {
        let res: Result<Vec<()>, RuntimeError> =
            ThreadWorld::run_with(2, WorldOptions::default(), |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 0, &[1, 2, 3])?;
                }
                Ok(())
            });
        assert_eq!(
            res.unwrap_err(),
            RuntimeError::UnconsumedMessages { count: 1 }
        );
    }
}
