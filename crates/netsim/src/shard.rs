//! The event-driven simulation core, shared by the sequential and sharded
//! engines.
//!
//! A [`Shard`] owns a contiguous range of nodes: their ranks' state, their
//! NIC injection/ejection timelines, and their intra-node buses. All
//! intra-node interactions touch only state owned by one shard and are
//! executed directly, exactly as the historical sequential engine did.
//! Every **inter-node** interaction is an explicit timestamped [`Event`]
//! addressed to the destination node, so a message between nodes owned by
//! different shards simply crosses a shard boundary.
//!
//! # Determinism discipline
//!
//! Events are processed in [`EvKey`] order: `(time, class, actor, seq)`.
//! Link events (class 0) sort before rank steps (class 1) at equal time;
//! `actor` is the emitting node for link events and the rank for steps;
//! `seq` is a per-node monotonic emission counter. Every component is a
//! pure function of the emitting node's own event history, so the key
//! order — and therefore the entire simulation — is byte-identical for
//! *any* partition of nodes into shards, including the trivial one-shard
//! (sequential) partition. The sharded engine's byte-identity oracle in
//! `tests/sharded_netsim.rs` enforces this.
//!
//! # Inter-node protocol
//!
//! * **Eager**: the sender reserves its NIC injection slot immediately and
//!   completes locally (the library buffers the payload); an [`Payload::Eager`]
//!   event arrives at the destination after the wire time, reserves the
//!   destination NIC in *arrival order*, and matches or queues as
//!   unexpected.
//! * **Rendezvous**: a full request-to-send / clear-to-send handshake.
//!   [`Payload::Rts`] carries one wire latency to the receiver; the grant
//!   ([`Payload::Cts`]) carries one latency back once the receive is
//!   posted; only then does the payload ([`Payload::Data`]) occupy the
//!   NICs and the wire. Every leg pays at least the inter-node LogGP
//!   `alpha` (scaled by any per-link degradation), which is exactly the
//!   lookahead floor the conservative scheduler in `horizon.rs` relies on.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use a2a_sched::{Op, TimedOp};
use a2a_topo::{Level, ProcGrid, Rank};

use crate::engine::Perturb;
use crate::fastmap::FastMap;
use crate::model::CostModel;

/// Link events (message legs) sort before rank steps at equal time.
pub(crate) const CLASS_MSG: u8 = 0;
pub(crate) const CLASS_STEP: u8 = 1;

/// Global event ordering key. See the module docs for why each component
/// is interleaving-independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct EvKey {
    pub time: f64,
    pub class: u8,
    /// Emitting node for link events; the rank itself for step events.
    pub actor: u32,
    /// Emitting node's monotonic emission counter (0 for step events — a
    /// rank has at most one step event pending at a time).
    pub seq: u64,
}

impl Eq for EvKey {}

impl PartialOrd for EvKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EvKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.class.cmp(&other.class))
            .then_with(|| self.actor.cmp(&other.actor))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Payload {
    /// Rank `rank` is runnable at the key time: execute its next op.
    Step { rank: Rank },
    /// Eager payload has finished its wire flight; eject at `to`'s NIC.
    Eager {
        from: Rank,
        to: Rank,
        tag: u32,
        len: u64,
    },
    /// Rendezvous request-to-send control message reaching the receiver.
    Rts {
        from: Rank,
        to: Rank,
        tag: u32,
        len: u64,
        send_req: u32,
    },
    /// Clear-to-send grant reaching the sender (`to` is the sender).
    Cts {
        from: Rank,
        to: Rank,
        len: u64,
        send_req: u32,
        recv_req: u32,
    },
    /// Rendezvous payload has finished its wire flight; eject at `to`.
    Data {
        from: Rank,
        to: Rank,
        len: u64,
        recv_req: u32,
    },
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub key: EvKey,
    pub payload: Payload,
}

impl Event {
    /// The rank whose node must process this event.
    pub fn dest_rank(&self) -> Rank {
        match self.payload {
            Payload::Step { rank } => rank,
            Payload::Eager { to, .. }
            | Payload::Rts { to, .. }
            | Payload::Cts { to, .. }
            | Payload::Data { to, .. } => to,
        }
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

struct PostedRecv {
    len: u64,
    post_time: f64,
    req: u32,
}

struct UnexpectedMsg {
    len: u64,
    arrival: f64,
}

struct RdvSend {
    len: u64,
    /// Intra-node: the sender's readiness time. Inter-node: the RTS
    /// arrival time (always at or before the receive posts — the RTS event
    /// sorted before the receiver's step).
    ready: f64,
    send_req: u32,
}

const PENDING: f64 = f64::NAN;

pub(crate) struct RankSim {
    ops: Vec<TimedOp>,
    pc: usize,
    pub clock: f64,
    req_time: Vec<f64>,
    /// Parked `WaitAll` range, if blocked.
    parked: Option<(u32, u32)>,
    posted: FastMap<(Rank, u32), VecDeque<PostedRecv>>,
    unexpected: FastMap<(Rank, u32), VecDeque<UnexpectedMsg>>,
    rdv: FastMap<(Rank, u32), VecDeque<RdvSend>>,
    posted_len: usize,
    unexpected_len: usize,
    pub phase_time: Vec<f64>,
    rng: u64,
}

impl RankSim {
    pub fn new(ops: Vec<TimedOp>, n_reqs: usize, nphases: usize, rank: Rank, seed: u64) -> Self {
        RankSim {
            ops,
            pc: 0,
            clock: 0.0,
            req_time: vec![PENDING; n_reqs],
            parked: None,
            posted: FastMap::default(),
            unexpected: FastMap::default(),
            rdv: FastMap::default(),
            posted_len: 0,
            unexpected_len: 0,
            phase_time: vec![0.0; nphases],
            rng: seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((rank as u64 + 1).wrapping_mul(0xD134_2543_DE82_EF95))
                | 1,
        }
    }

    pub fn has_work(&self) -> bool {
        !self.ops.is_empty()
    }

    pub fn done(&self) -> bool {
        self.pc >= self.ops.len() && self.parked.is_none()
    }
}

/// Per-node shared resources, owned by exactly one shard.
pub(crate) struct NodeRes {
    nic_tx: f64,
    nic_rx: f64,
    /// Busy-until per NUMA domain of this node (socket-major).
    numa_bus: Vec<f64>,
    /// Busy-until per socket of this node.
    socket_bus: Vec<f64>,
    /// Busy-until for this node's cross-socket (UPI) link.
    upi_bus: f64,
    /// Monotonic counter stamped on every link event this node emits.
    emit_seq: u64,
}

impl NodeRes {
    fn new(sockets: usize, numa_per_socket: usize) -> Self {
        NodeRes {
            nic_tx: 0.0,
            nic_rx: 0.0,
            numa_bus: vec![0.0; sockets * numa_per_socket],
            socket_bus: vec![0.0; sockets],
            upi_bus: 0.0,
            emit_seq: 0,
        }
    }
}

/// Read-only simulation context shared by all shards.
pub(crate) struct Ctx<'a> {
    pub grid: &'a ProcGrid,
    pub model: &'a CostModel,
    pub perturb: &'a Perturb,
    pub jitter: f64,
    pub nphases: usize,
}

/// One shard: a contiguous node range, its ranks, and its event heap.
pub(crate) struct Shard<'a> {
    pub ctx: &'a Ctx<'a>,
    pub id: usize,
    pub node_lo: usize,
    pub node_hi: usize,
    /// First world rank owned (`node_lo * ppn`).
    pub rank_lo: usize,
    pub ranks: Vec<RankSim>,
    nodes: Vec<NodeRes>,
    pub heap: BinaryHeap<Reverse<Event>>,
    pub msgs_per_level: [usize; 4],
    pub bytes_per_level: [u64; 4],
    /// Key of the most recently processed event (causality monitor).
    pub last_key: Option<EvKey>,
    /// Events processed by this shard.
    pub events: u64,
    /// Cross-shard arrivals that sorted before an already-processed event
    /// — always zero when the lookahead horizon is sound.
    pub violations: u64,
}

impl<'a> Shard<'a> {
    /// Build the shard for nodes `[node_lo, node_hi)`, constructing its
    /// ranks' programs and seeding their step events at t=0.
    pub fn build(
        ctx: &'a Ctx<'a>,
        id: usize,
        node_lo: usize,
        node_hi: usize,
        source: &dyn a2a_sched::ScheduleSource,
        seed: u64,
    ) -> Self {
        let m = ctx.grid.machine();
        let ppn = m.ppn();
        let rank_lo = node_lo * ppn;
        let rank_hi = node_hi * ppn;
        let mut ranks = Vec::with_capacity(rank_hi - rank_lo);
        for r in rank_lo..rank_hi {
            let prog = source.build_rank(r as Rank);
            let n_reqs = prog.n_reqs as usize;
            ranks.push(RankSim::new(prog.ops, n_reqs, ctx.nphases, r as Rank, seed));
        }
        let nodes = (node_lo..node_hi)
            .map(|_| NodeRes::new(m.sockets_per_node, m.numa_per_socket))
            .collect();
        let mut shard = Shard {
            ctx,
            id,
            node_lo,
            node_hi,
            rank_lo,
            ranks,
            nodes,
            heap: BinaryHeap::with_capacity(rank_hi - rank_lo),
            msgs_per_level: [0; 4],
            bytes_per_level: [0; 4],
            last_key: None,
            events: 0,
            violations: 0,
        };
        for i in 0..shard.ranks.len() {
            if shard.ranks[i].has_work() {
                shard.push_step((rank_lo + i) as Rank, 0.0);
            }
        }
        shard
    }

    /// Number of initial step events seeded at build time.
    pub fn seeded_events(&self) -> usize {
        self.heap.len()
    }

    pub fn owns_node(&self, node: usize) -> bool {
        node >= self.node_lo && node < self.node_hi
    }

    #[inline]
    fn ri(&self, rank: Rank) -> usize {
        rank as usize - self.rank_lo
    }

    fn push_step(&mut self, rank: Rank, time: f64) {
        self.heap.push(Reverse(Event {
            key: EvKey {
                time,
                class: CLASS_STEP,
                actor: rank,
                seq: 0,
            },
            payload: Payload::Step { rank },
        }));
    }

    /// Emit a link event from `from_node` at `time`; local destinations go
    /// straight onto the heap, cross-shard ones into `out`.
    fn emit_msg(&mut self, from_node: usize, time: f64, payload: Payload, out: &mut Vec<Event>) {
        let nr = &mut self.nodes[from_node - self.node_lo];
        let key = EvKey {
            time,
            class: CLASS_MSG,
            actor: from_node as u32,
            seq: nr.emit_seq,
        };
        nr.emit_seq += 1;
        let ev = Event { key, payload };
        let dn = self.ctx.grid.node_of(ev.dest_rank());
        if self.owns_node(dn) {
            self.heap.push(Reverse(ev));
        } else {
            out.push(ev);
        }
    }

    /// Deterministic per-rank noise factor in `[1-j, 1+j]` (xorshift64*),
    /// scaled by the rank's perturbation slowdown (straggler model).
    fn noise(&mut self, rank: Rank) -> f64 {
        let slow = self.ctx.perturb.slowdown(rank);
        if self.ctx.jitter == 0.0 {
            return slow;
        }
        let st = &mut self.ranks[rank as usize - self.rank_lo];
        let mut x = st.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        st.rng = x;
        let u = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        (1.0 + self.ctx.jitter * (2.0 * u - 1.0)) * slow
    }

    /// Reserve the intra-node path for a transfer and return its arrival
    /// time. Charges the tightest shared resource the transfer crosses —
    /// its NUMA domain, its socket, or the node's cross-socket link.
    fn transport_intra(&mut self, from: Rank, to: Rank, bytes: u64, t0: f64) -> f64 {
        let level = self.ctx.grid.level(from, to);
        let li = match level {
            Level::IntraNuma => 0,
            Level::IntraSocket => 1,
            Level::InterSocket => 2,
            _ => 3,
        };
        self.msgs_per_level[li] += 1;
        self.bytes_per_level[li] += bytes;
        let lc = self.ctx.model.level(level);
        let loc = self.ctx.grid.location(from);
        let m = self.ctx.grid.machine();
        let nr = &mut self.nodes[loc.node - self.node_lo];
        let (bus, rate) = match level {
            Level::IntraNuma => (
                &mut nr.numa_bus[loc.socket * m.numa_per_socket + loc.numa],
                self.ctx.model.mem_per_byte,
            ),
            Level::IntraSocket => (&mut nr.socket_bus[loc.socket], self.ctx.model.mem_per_byte),
            _ => (&mut nr.upi_bus, self.ctx.model.upi_per_byte),
        };
        let bus_start = t0.max(*bus);
        *bus = bus_start + bytes as f64 * rate;
        bus_start + lc.wire(bytes)
    }

    /// Record request `req` of `rank` completing at `time`; wake the rank
    /// if that satisfies its parked wait.
    fn complete_req(&mut self, rank: Rank, req: u32, time: f64) {
        let ridx = self.ri(rank);
        let wake = {
            let st = &mut self.ranks[ridx];
            debug_assert!(
                st.req_time[req as usize].is_nan(),
                "request completed twice"
            );
            st.req_time[req as usize] = time;
            match st.parked {
                Some((first, count)) => {
                    let mut latest = st.clock;
                    let mut ready = true;
                    for r in first..first + count {
                        let t = st.req_time[r as usize];
                        if t.is_nan() {
                            ready = false;
                            break;
                        }
                        latest = latest.max(t);
                    }
                    if ready {
                        // Consume the WaitAll; idle time accrues to its phase.
                        let phase = st.ops[st.pc].phase.0 as usize;
                        st.phase_time[phase] += latest - st.clock;
                        st.clock = latest;
                        st.pc += 1;
                        st.parked = None;
                        if st.pc < st.ops.len() {
                            Some(st.clock)
                        } else {
                            None
                        }
                    } else {
                        None
                    }
                }
                None => None,
            }
        };
        if let Some(clock) = wake {
            self.push_step(rank, clock);
        }
    }

    /// Deliver an (eager) message arriving at `to`: match a posted receive
    /// or enqueue as unexpected.
    fn deliver(&mut self, from: Rank, to: Rank, tag: u32, len: u64, arrival: f64) {
        let tidx = self.ri(to);
        let matched = {
            let st = &mut self.ranks[tidx];
            match st.posted.get_mut(&(from, tag)).and_then(|q| q.pop_front()) {
                Some(pr) => {
                    debug_assert_eq!(pr.len, len, "message/receive length mismatch");
                    st.posted_len -= 1;
                    let cost = self.ctx.model.match_base
                        + self.ctx.model.queue_search * st.posted_len as f64;
                    Some((pr.req, arrival.max(pr.post_time) + cost))
                }
                None => {
                    st.unexpected
                        .entry((from, tag))
                        .or_default()
                        .push_back(UnexpectedMsg { len, arrival });
                    st.unexpected_len += 1;
                    None
                }
            }
        };
        if let Some((req, done)) = matched {
            self.complete_req(to, req, done);
        }
    }

    /// Process one event. Cross-shard emissions are appended to `out`.
    pub fn handle(&mut self, ev: Event, out: &mut Vec<Event>) {
        self.events += 1;
        match ev.payload {
            Payload::Step { rank } => self.step(rank, out),
            Payload::Eager { from, to, tag, len } => {
                // Payload reached the destination NIC: eject in arrival
                // order, then match.
                let sn = self.ctx.grid.node_of(from);
                let dn = self.ctx.grid.node_of(to);
                let occ = self.ctx.model.nic_occupancy(len) * self.ctx.perturb.link(sn, dn);
                let nr = &mut self.nodes[dn - self.node_lo];
                let rx_start = ev.key.time.max(nr.nic_rx);
                let rx_end = rx_start + occ;
                nr.nic_rx = rx_end;
                self.deliver(from, to, tag, len, rx_end);
            }
            Payload::Rts {
                from,
                to,
                tag,
                len,
                send_req,
            } => {
                // Request-to-send at the receiver: grant immediately if the
                // receive is already posted, otherwise wait for it.
                let tidx = self.ri(to);
                let popped = {
                    let st = &mut self.ranks[tidx];
                    st.posted.get_mut(&(from, tag)).and_then(|q| q.pop_front())
                };
                match popped {
                    Some(pr) => {
                        self.ranks[tidx].posted_len -= 1;
                        self.send_cts(to, from, len, send_req, pr.req, ev.key.time, out);
                    }
                    None => {
                        self.ranks[tidx]
                            .rdv
                            .entry((from, tag))
                            .or_default()
                            .push_back(RdvSend {
                                len,
                                ready: ev.key.time,
                                send_req,
                            });
                    }
                }
            }
            Payload::Cts {
                from,
                to,
                len,
                send_req,
                recv_req,
            } => {
                // Grant back at the sender: inject the payload. The send
                // request completes when the payload has left the NIC.
                let sn = self.ctx.grid.node_of(to);
                let dn = self.ctx.grid.node_of(from);
                let lm = self.ctx.perturb.link(sn, dn);
                let lc = self.ctx.model.level(Level::InterNode);
                let occ = self.ctx.model.nic_occupancy(len) * lm;
                let nr = &mut self.nodes[sn - self.node_lo];
                let tx_start = ev.key.time.max(nr.nic_tx);
                let tx_end = tx_start + occ;
                nr.nic_tx = tx_end;
                self.msgs_per_level[3] += 1;
                self.bytes_per_level[3] += len;
                let wire_arrive = tx_end + lc.wire(len) * lm;
                self.complete_req(to, send_req, tx_end);
                self.emit_msg(
                    sn,
                    wire_arrive,
                    Payload::Data {
                        from: to,
                        to: from,
                        len,
                        recv_req,
                    },
                    out,
                );
            }
            Payload::Data {
                from,
                to,
                len,
                recv_req,
            } => {
                let sn = self.ctx.grid.node_of(from);
                let dn = self.ctx.grid.node_of(to);
                let occ = self.ctx.model.nic_occupancy(len) * self.ctx.perturb.link(sn, dn);
                let nr = &mut self.nodes[dn - self.node_lo];
                let rx_start = ev.key.time.max(nr.nic_rx);
                let rx_end = rx_start + occ;
                nr.nic_rx = rx_end;
                self.complete_req(to, recv_req, rx_end + self.ctx.model.match_base);
            }
        }
    }

    /// Emit the clear-to-send grant from receiver `recv` back to sender
    /// `send`, one reverse-link latency after `t`.
    #[allow(clippy::too_many_arguments)]
    fn send_cts(
        &mut self,
        recv: Rank,
        send: Rank,
        len: u64,
        send_req: u32,
        recv_req: u32,
        t: f64,
        out: &mut Vec<Event>,
    ) {
        let dn = self.ctx.grid.node_of(recv);
        let sn = self.ctx.grid.node_of(send);
        let alpha = self.ctx.model.level(Level::InterNode).alpha;
        let arrive = t + alpha * self.ctx.perturb.link(dn, sn);
        self.emit_msg(
            dn,
            arrive,
            Payload::Cts {
                from: recv,
                to: send,
                len,
                send_req,
                recv_req,
            },
            out,
        );
    }

    /// Inter-node send: eager injects now; rendezvous opens the handshake.
    #[allow(clippy::too_many_arguments)]
    fn isend_internode(
        &mut self,
        rank: Rank,
        to: Rank,
        tag: u32,
        len: u64,
        req: u32,
        ready: f64,
        out: &mut Vec<Event>,
    ) {
        let sn = self.ctx.grid.node_of(rank);
        let dn = self.ctx.grid.node_of(to);
        let lm = self.ctx.perturb.link(sn, dn);
        let lc = self.ctx.model.level(Level::InterNode);
        if self.ctx.model.is_rendezvous(len, Level::InterNode) {
            let arrive = ready + lc.alpha * lm;
            self.emit_msg(
                sn,
                arrive,
                Payload::Rts {
                    from: rank,
                    to,
                    tag,
                    len,
                    send_req: req,
                },
                out,
            );
        } else {
            // Eager: the library buffers the payload, so the send request
            // completes at posting time; injection still serializes on the
            // sender's NIC.
            let occ = self.ctx.model.nic_occupancy(len) * lm;
            let nr = &mut self.nodes[sn - self.node_lo];
            let tx_start = ready.max(nr.nic_tx);
            let tx_end = tx_start + occ;
            nr.nic_tx = tx_end;
            self.msgs_per_level[3] += 1;
            self.bytes_per_level[3] += len;
            let wire_arrive = tx_end + lc.wire(len) * lm;
            self.complete_req(rank, req, ready);
            self.emit_msg(
                sn,
                wire_arrive,
                Payload::Eager {
                    from: rank,
                    to,
                    tag,
                    len,
                },
                out,
            );
        }
    }

    /// Advance `rank` by one op, then reschedule it if still runnable.
    fn step(&mut self, rank: Rank, out: &mut Vec<Event>) {
        let ridx = self.ri(rank);
        let (top, old_clock) = {
            let st = &self.ranks[ridx];
            (st.ops[st.pc], st.clock)
        };
        let phase = top.phase.0 as usize;
        match top.op {
            Op::Copy { src, .. } => {
                let jf = self.noise(rank);
                let cost = self.ctx.model.copy_cost(src.len) * jf;
                let st = &mut self.ranks[ridx];
                st.clock += cost;
                st.pc += 1;
            }
            Op::Isend {
                to,
                block,
                tag,
                req,
            } => {
                let jf = self.noise(rank);
                let ready = {
                    let st = &mut self.ranks[ridx];
                    st.clock += self.ctx.model.o_send * jf;
                    st.pc += 1;
                    st.clock
                };
                let len = block.len;
                let level = self.ctx.grid.level(rank, to);
                if level == Level::InterNode {
                    self.isend_internode(rank, to, tag, len, req, ready, out);
                } else if self.ctx.model.is_rendezvous(len, level) {
                    // Intra-node rendezvous: the receiver lives on the same
                    // node (same shard), so peek its posted queue directly.
                    let alpha = self.ctx.model.level(level).alpha;
                    let tidx = self.ri(to);
                    let recv = self.ranks[tidx]
                        .posted
                        .get_mut(&(rank, tag))
                        .and_then(|q| q.pop_front());
                    if let Some(pr) = recv {
                        self.ranks[tidx].posted_len -= 1;
                        let t0 = ready.max(pr.post_time + alpha);
                        let arrival = self.transport_intra(rank, to, len, t0);
                        self.complete_req(rank, req, arrival);
                        self.complete_req(to, pr.req, arrival + self.ctx.model.match_base);
                    } else {
                        self.ranks[tidx]
                            .rdv
                            .entry((rank, tag))
                            .or_default()
                            .push_back(RdvSend {
                                len,
                                ready,
                                send_req: req,
                            });
                    }
                } else {
                    // Intra-node eager: payload crosses the bus now.
                    let arrival = self.transport_intra(rank, to, len, ready);
                    self.complete_req(rank, req, ready);
                    self.deliver(rank, to, tag, len, arrival);
                }
            }
            Op::Irecv {
                from,
                block,
                tag,
                req,
            } => {
                let jf = self.noise(rank);
                let len = block.len;
                enum Matched {
                    Unexpected(f64),
                    Rdv(RdvSend),
                    Posted,
                }
                let (post_time, matched) = {
                    let st = &mut self.ranks[ridx];
                    st.clock += (self.ctx.model.o_recv
                        + self.ctx.model.queue_search * st.unexpected_len as f64)
                        * jf;
                    st.pc += 1;
                    let post_time = st.clock;
                    let m = if let Some(msg) = st
                        .unexpected
                        .get_mut(&(from, tag))
                        .and_then(|q| q.pop_front())
                    {
                        debug_assert_eq!(msg.len, len);
                        st.unexpected_len -= 1;
                        Matched::Unexpected(msg.arrival)
                    } else if let Some(rs) =
                        st.rdv.get_mut(&(from, tag)).and_then(|q| q.pop_front())
                    {
                        debug_assert_eq!(rs.len, len);
                        Matched::Rdv(rs)
                    } else {
                        st.posted
                            .entry((from, tag))
                            .or_default()
                            .push_back(PostedRecv {
                                len,
                                post_time,
                                req,
                            });
                        st.posted_len += 1;
                        Matched::Posted
                    };
                    (post_time, m)
                };
                match matched {
                    Matched::Unexpected(arrival) => {
                        let done = post_time.max(arrival) + self.ctx.model.match_base;
                        self.complete_req(rank, req, done);
                    }
                    Matched::Rdv(rs) => {
                        let level = self.ctx.grid.level(from, rank);
                        if level == Level::InterNode {
                            // The RTS is waiting: grant it now.
                            self.send_cts(rank, from, len, rs.send_req, req, post_time, out);
                        } else {
                            let alpha = self.ctx.model.level(level).alpha;
                            let t0 = rs.ready.max(post_time + alpha);
                            let arrival = self.transport_intra(from, rank, len, t0);
                            self.complete_req(from, rs.send_req, arrival);
                            self.complete_req(rank, req, arrival + self.ctx.model.match_base);
                        }
                    }
                    Matched::Posted => {}
                }
            }
            Op::WaitAll { first_req, count } => {
                let st = &mut self.ranks[ridx];
                let mut latest = st.clock;
                let mut ready = true;
                for r in first_req..first_req + count {
                    let t = st.req_time[r as usize];
                    if t.is_nan() {
                        ready = false;
                        break;
                    }
                    latest = latest.max(t);
                }
                if ready {
                    st.clock = latest;
                    st.pc += 1;
                } else {
                    st.parked = Some((first_req, count));
                }
            }
        }
        // Attribute elapsed time to the op's phase and reschedule.
        let push = {
            let st = &mut self.ranks[ridx];
            st.phase_time[phase] += st.clock - old_clock;
            if st.parked.is_none() && st.pc < st.ops.len() {
                Some(st.clock)
            } else {
                None
            }
        };
        if let Some(clock) = push {
            self.push_step(rank, clock);
        }
    }
}
