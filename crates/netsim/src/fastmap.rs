//! A fast non-cryptographic hash map for the simulator's hot queues.
//!
//! The per-rank matching queues (`posted` / `unexpected` / `rdv`) are keyed
//! by small `(Rank, tag)` pairs and hit on every send and receive, so the
//! default SipHash is pure overhead: there is no untrusted input to defend
//! against. This multiplicative hasher (golden-ratio multiply over 8-byte
//! words, rotate to mix across words) is a few cycles per key.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier: 2^64 / phi, the usual Fibonacci-hashing constant.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

#[derive(Default)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

pub type FastState = BuildHasherDefault<FastHasher>;

/// Drop-in `HashMap` with the fast hasher. Iteration order is still
/// unspecified — the engine only ever does point lookups on these maps, so
/// determinism is unaffected.
pub type FastMap<K, V> = HashMap<K, V, FastState>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<(u32, u32), i32> = FastMap::default();
        for i in 0..1000u32 {
            m.insert((i, i % 7), i as i32);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i % 7)), Some(&(i as i32)));
        }
        assert_eq!(m.get(&(1000, 0)), None);
    }

    #[test]
    fn hashes_differ_for_nearby_keys() {
        use std::hash::{BuildHasher, Hash};
        let s = FastState::default();
        let h = |k: (u32, u32)| {
            let mut hasher = s.build_hasher();
            k.hash(&mut hasher);
            hasher.finish()
        };
        assert_ne!(h((0, 0)), h((0, 1)));
        assert_ne!(h((0, 0)), h((1, 0)));
        assert_ne!(h((1, 2)), h((2, 1)));
    }
}
