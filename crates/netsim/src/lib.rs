//! Deterministic discrete-event network simulator for collective schedules.
//!
//! This crate substitutes for the paper's hardware testbeds (Dane, Amber,
//! Tuolumne): it executes a communication schedule (`a2a_sched`) over a
//! machine shape (`a2a_topo`) under a [`CostModel`] capturing the effects
//! the paper reasons about —
//!
//! * locality-tiered latency/bandwidth (NUMA / socket / cross-socket / network);
//! * **per-node NIC injection & ejection serialization**: all `ppn` ranks
//!   share one NIC, the many-core bottleneck motivating the paper;
//! * per-message NIC processing cost (message-rate limits);
//! * eager vs. rendezvous point-to-point protocols;
//! * matching/queue-search costs proportional to queue depth (the
//!   "non-blocking at scale" overhead);
//! * per-node memory-bus serialization of intra-node transfers;
//! * CPU posting overheads and repack (memcpy) costs.
//!
//! The engine is an event simulation: the runnable rank with the smallest
//! event key executes its next operation; ranks park at `WaitAll` and wake
//! when requests complete. [`simulate`] runs it sequentially;
//! [`simulate_sharded`] partitions the nodes into shards and runs one
//! worker thread per shard behind a conservative lookahead horizon derived
//! from the minimum inter-node LogGP latency — **byte-identical** output
//! for any worker count, so the full paper-scale sweeps run at multi-core
//! speed. Everything is deterministic for a fixed seed; the optional
//! jitter models system noise so "minimum of 3 runs" (the paper's
//! measurement rule) is meaningful.
//!
//! # Example
//!
//! ```
//! use a2a_topo::{ProcGrid, presets};
//! use a2a_core::{AlgoSchedule, A2AContext, NodeAwareAlltoall, ExchangeKind};
//! use a2a_netsim::{simulate, models, SimOptions};
//!
//! let grid = ProcGrid::new(presets::scaled_many_core(2, 1)); // 2 nodes x 8 ppn
//! let algo = NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise);
//! let sched = AlgoSchedule::new(&algo, A2AContext::new(grid.clone(), 64));
//! let report = simulate(&sched, &grid, &models::dane(), &SimOptions::default()).unwrap();
//! assert!(report.total_us > 0.0);
//! ```

pub mod analytic;
pub mod engine;
mod fastmap;
mod horizon;
pub mod model;
pub mod models;
pub mod report;
mod shard;

pub use analytic::crit_params;
pub use engine::{
    simulate, simulate_perturbed, simulate_sharded, simulate_sharded_perturbed,
    simulate_sharded_stats, Perturb, ShardOptions, ShardStats, SimError, SimOptions,
};
pub use model::{CostModel, LevelCost};
pub use report::SimReport;

/// Run `runs` jittered simulations and keep the minimum total time, as the
/// paper does ("All figures display the minimum of 3 runs"). Returns the
/// minimum-total report.
pub fn simulate_min_of(
    source: &dyn a2a_sched::ScheduleSource,
    grid: &a2a_topo::ProcGrid,
    model: &CostModel,
    runs: usize,
    base_seed: u64,
) -> Result<SimReport, SimError> {
    assert!(runs > 0);
    let mut best: Option<SimReport> = None;
    for i in 0..runs {
        let opts = SimOptions {
            jitter: if runs == 1 { 0.0 } else { 0.05 },
            seed: base_seed.wrapping_add(i as u64),
        };
        let rep = simulate(source, grid, model, &opts)?;
        best = match best {
            Some(b) if b.total_us <= rep.total_us => Some(b),
            _ => Some(rep),
        };
    }
    Ok(best.expect("runs > 0"))
}

/// [`simulate_min_of`] on the sharded parallel engine. Byte-identical to
/// the sequential variant for any worker count.
pub fn simulate_min_of_sharded(
    source: &(dyn a2a_sched::ScheduleSource + Sync),
    grid: &a2a_topo::ProcGrid,
    model: &CostModel,
    runs: usize,
    base_seed: u64,
    sopts: &ShardOptions,
) -> Result<SimReport, SimError> {
    assert!(runs > 0);
    let mut best: Option<SimReport> = None;
    for i in 0..runs {
        let opts = SimOptions {
            jitter: if runs == 1 { 0.0 } else { 0.05 },
            seed: base_seed.wrapping_add(i as u64),
        };
        let rep = simulate_sharded(source, grid, model, &opts, sopts)?;
        best = match best {
            Some(b) if b.total_us <= rep.total_us => Some(b),
            _ => Some(rep),
        };
    }
    Ok(best.expect("runs > 0"))
}
