//! Calibrated cost-model presets for the paper's three systems (Table 1).
//!
//! Absolute constants are order-of-magnitude estimates for the respective
//! fabrics (Omni-Path 100 Gb/s on Dane/Amber, Slingshot-11 200 Gb/s on
//! Tuolumne) and Sapphire Rapids / MI300A memory systems; what matters for
//! reproducing the paper's *figures* is the relative structure — see
//! EXPERIMENTS.md for the calibration notes and the shape comparisons.

use crate::model::{CostModel, LevelCost};

/// LLNL Dane: Sapphire Rapids + Cornelis Omni-Path, Open MPI/libfabric.
pub fn dane() -> CostModel {
    CostModel {
        name: "dane".into(),
        levels: [
            LevelCost::new(0.25, 22.0), // intra-NUMA
            LevelCost::new(0.35, 16.0), // intra-socket
            LevelCost::new(0.55, 11.0), // inter-socket (UPI)
            LevelCost::new(1.80, 12.5), // inter-node (Omni-Path 100 Gb/s)
        ],
        o_send: 0.15,
        o_recv: 0.15,
        match_base: 0.10,
        queue_search: 0.004,
        copy_base: 0.004,             // per-block loop iteration, not a memcpy call
        copy_per_byte: 1.0 / 8_000.0, // ~8 GB/s single-core memcpy
        eager_threshold: 8 * 1024,
        eager_threshold_intra: 64 * 1024,
        nic_per_byte: 1.0 / 12_500.0, // 12.5 GB/s injection, shared per node
        nic_per_msg: 0.30,            // ~3.3 M msg/s
        mem_per_byte: 1.0 / 25_000.0, // ~25 GB/s per NUMA domain
        upi_per_byte: 1.0 / 20_000.0, // ~20 GB/s cross-socket (UPI)
    }
}

/// SNL Amber: same node architecture as Dane; slightly older libfabric and
/// a marginally slower Omni-Path software path in the paper's runs.
pub fn amber() -> CostModel {
    CostModel {
        name: "amber".into(),
        nic_per_msg: 0.38,
        levels: [
            LevelCost::new(0.25, 22.0),
            LevelCost::new(0.35, 16.0),
            LevelCost::new(0.55, 11.0),
            LevelCost::new(2.10, 12.5),
        ],
        ..dane()
    }
}

/// LLNL Tuolumne: MI300A + Slingshot-11 (200 Gb/s), Cray MPICH. Higher
/// network bandwidth and message rate; the MI300A's unified HBM gives
/// strong intra-node bandwidth but the many-core chiplet interconnect keeps
/// local redistribution from being free.
pub fn tuolumne() -> CostModel {
    CostModel {
        name: "tuolumne".into(),
        levels: [
            LevelCost::new(0.20, 30.0), // intra-APU
            LevelCost::new(0.30, 24.0), // (unused tier: 1 NUMA per APU)
            LevelCost::new(0.45, 18.0), // inter-APU (Infinity Fabric)
            LevelCost::new(1.10, 25.0), // inter-node (Slingshot-11)
        ],
        o_send: 0.12,
        o_recv: 0.12,
        match_base: 0.08,
        queue_search: 0.003,
        copy_base: 0.003,
        copy_per_byte: 1.0 / 12_000.0,
        eager_threshold: 16 * 1024,
        eager_threshold_intra: 64 * 1024,
        nic_per_byte: 1.0 / 25_000.0,
        nic_per_msg: 0.10,            // Slingshot's much higher message rate
        mem_per_byte: 1.0 / 60_000.0, // HBM-backed APU-local bandwidth
        upi_per_byte: 1.0 / 40_000.0, // Infinity Fabric between APUs
    }
}

/// Look up a preset by machine name ("dane" | "amber" | "tuolumne");
/// the scaled test machine uses Dane's model.
pub fn for_machine(name: &str) -> CostModel {
    match name {
        "amber" => amber(),
        "tuolumne" => tuolumne(),
        _ => dane(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_named() {
        assert_eq!(dane().name, "dane");
        assert_eq!(amber().name, "amber");
        assert_eq!(tuolumne().name, "tuolumne");
        assert!(amber().nic_per_msg > dane().nic_per_msg);
        assert!(tuolumne().nic_per_msg < dane().nic_per_msg);
        assert!(tuolumne().nic_per_byte < dane().nic_per_byte);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(for_machine("tuolumne").name, "tuolumne");
        assert_eq!(for_machine("scaled").name, "dane");
    }
}
