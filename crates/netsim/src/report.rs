//! Simulation results.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Outcome of one simulated collective.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SimReport {
    /// Completion time of the slowest rank (µs) — the collective's latency.
    pub total_us: f64,
    /// Per-rank completion times (µs).
    pub rank_finish: Vec<f64>,
    /// Phase labels from the schedule.
    pub phase_names: Vec<String>,
    /// Per-phase time of the slowest rank in that phase (µs) — the paper's
    /// breakdown bars (Figures 13–16).
    pub phase_max_us: Vec<f64>,
    /// Per-phase mean across ranks (µs).
    pub phase_mean_us: Vec<f64>,
    /// Rank 0's per-phase times (µs). Rank 0 is a leader in every
    /// algorithm here, so this is the "leader's stopwatch" view the
    /// paper's per-phase timers correspond to (a member's blocking scatter
    /// receive would otherwise absorb the whole pipeline as wait time).
    pub phase_rank0_us: Vec<f64>,
    /// Messages transported, by locality level (IntraNuma, IntraSocket,
    /// InterSocket, InterNode) — must agree with the static validator.
    pub msgs_per_level: [usize; 4],
    /// Payload bytes transported, by locality level.
    pub bytes_per_level: [u64; 4],
}

impl SimReport {
    /// Max-phase time by label, if present.
    pub fn phase(&self, name: &str) -> Option<f64> {
        self.phase_names
            .iter()
            .position(|p| p == name)
            .map(|i| self.phase_max_us[i])
    }

    /// Rank 0's (leader's) phase time by label — the paper's per-phase
    /// stopwatch view.
    pub fn phase_leader(&self, name: &str) -> Option<f64> {
        self.phase_names
            .iter()
            .position(|p| p == name)
            .map(|i| self.phase_rank0_us[i])
    }

    /// Earliest rank finish (µs).
    pub fn min_finish(&self) -> f64 {
        self.rank_finish
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean rank finish (µs).
    pub fn mean_finish(&self) -> f64 {
        self.rank_finish.iter().sum::<f64>() / self.rank_finish.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep() -> SimReport {
        SimReport {
            total_us: 10.0,
            rank_finish: vec![4.0, 10.0, 7.0],
            phase_names: vec!["a".into(), "b".into()],
            phase_max_us: vec![6.0, 5.0],
            phase_mean_us: vec![3.0, 4.0],
            phase_rank0_us: vec![2.0, 2.0],
            msgs_per_level: [1, 0, 0, 2],
            bytes_per_level: [64, 0, 0, 128],
        }
    }

    #[test]
    fn lookups() {
        let r = rep();
        assert_eq!(r.phase("a"), Some(6.0));
        assert_eq!(r.phase("zz"), None);
        assert_eq!(r.min_finish(), 4.0);
        assert!((r.mean_finish() - 7.0).abs() < 1e-12);
    }
}
