//! Conservative lookahead and cross-shard synchronization.
//!
//! Every inter-node event leg in `shard.rs` pays at least one inter-node
//! LogGP `alpha`, scaled by any per-link degradation multiplier. That is
//! the **lookahead floor** `L(a→b) = alpha · lm(a,b)` of the directed link
//! `a→b`: a shard processing events at simulated time `t` can never emit
//! an event onto that link with a timestamp below `t + L(a→b)`. The
//! classic conservative-PDES (null-message) consequence: a shard may
//! safely process every event strictly below
//!
//! ```text
//! H(s) = min over shards u != s of  bound(u) + L(u→s)
//! ```
//!
//! where `bound(u)` is shard `u`'s published guarantee that it will never
//! again process (and hence emit from) anything earlier.
//!
//! Bounds are published as `f64` bit patterns in an `AtomicU64` with
//! `fetch_max` — non-negative IEEE-754 doubles order identically to their
//! bit patterns, so the published bound is monotone even under races, and
//! a stale read is merely smaller, i.e. conservative. A worker reads peer
//! bounds **before** draining its inbox: every event emitted under an
//! older bound was flushed to the inbox before that bound was published,
//! so processing strictly below `H(s)` can never miss an in-flight event.
//!
//! Termination uses a single global counter of live events. Each worker
//! applies one atomic delta per batch — emissions and consumptions
//! together — so the counter can only read zero when no events exist
//! anywhere and none are in flight.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use a2a_topo::{LinkTable, ProcGrid};

use crate::engine::Perturb;
use crate::model::CostModel;
use crate::shard::Event;

/// Per-directed-node-link latency floors: inter-node `alpha` stretched by
/// the link's perturbation multiplier.
pub(crate) fn link_floors(grid: &ProcGrid, model: &CostModel, perturb: &Perturb) -> LinkTable<f64> {
    let alpha = model.level(a2a_topo::Level::InterNode).alpha;
    LinkTable::from_fn(grid.machine().nodes, |a, b| alpha * perturb.link(a, b))
}

/// Statistics from a sharded run, surfaced through
/// [`crate::simulate_sharded_stats`] and the `repro bench6` harness.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Shards the node range was partitioned into (= worker threads used).
    pub shards: usize,
    /// Worker threads that ran the shards.
    pub workers: usize,
    /// Total events processed across all shards.
    pub events: u64,
    /// Events that crossed a shard boundary.
    pub cross_events: u64,
    /// Cross-shard arrivals that sorted before an already-processed event.
    /// Nonzero means the lookahead horizon was unsound; enforced zero by
    /// the lookahead-safety tests.
    pub causality_violations: u64,
}

/// Shared state for one sharded run.
pub(crate) struct ShardSync {
    inboxes: Vec<Mutex<Vec<Event>>>,
    /// Published per-shard bounds as f64 bit patterns (monotone max).
    bounds: Vec<AtomicU64>,
    /// Live events across all shards (heaps + inboxes + in-processing).
    pub pending: AtomicI64,
    pub cross_events: AtomicU64,
    /// Shards that have seeded their initial events into `pending`. Until
    /// every shard has, a zero pending count means "not started", not
    /// "finished".
    ready: AtomicUsize,
    /// `la[u * nshards + s]` = safe lookahead from shard `u` into shard `s`.
    la: Vec<f64>,
    nshards: usize,
    /// Owning shard per node, for routing cross-shard events.
    shard_of_node: Vec<usize>,
}

impl ShardSync {
    /// Build the sync state for contiguous node ranges. Returns `None` if
    /// any shard-pair lookahead is not strictly positive and finite — the
    /// caller must then fall back to a single shard.
    pub fn new(
        ranges: &[(usize, usize)],
        floors: &LinkTable<f64>,
        lookahead_scale: f64,
    ) -> Option<Self> {
        let nshards = ranges.len();
        let mut la = vec![f64::INFINITY; nshards * nshards];
        for (u, &(ulo, uhi)) in ranges.iter().enumerate() {
            for (s, &(slo, shi)) in ranges.iter().enumerate() {
                if u == s {
                    continue;
                }
                let l = floors.min_between(ulo..uhi, slo..shi)? * lookahead_scale;
                if !(l > 0.0 && l.is_finite()) {
                    return None;
                }
                la[u * nshards + s] = l;
            }
        }
        let nodes = floors.nodes();
        let mut shard_of_node = vec![0usize; nodes];
        for (s, &(lo, hi)) in ranges.iter().enumerate() {
            shard_of_node[lo..hi].fill(s);
        }
        Some(ShardSync {
            inboxes: (0..nshards).map(|_| Mutex::new(Vec::new())).collect(),
            bounds: (0..nshards).map(|_| AtomicU64::new(0)).collect(),
            pending: AtomicI64::new(0),
            cross_events: AtomicU64::new(0),
            ready: AtomicUsize::new(0),
            la,
            nshards,
            shard_of_node,
        })
    }

    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// Mark shard `s`'s initial events as counted in `pending`.
    pub fn ready(&self, _s: usize) {
        self.ready.fetch_add(1, Ordering::SeqCst);
    }

    /// Whether every shard has seeded its initial events.
    pub fn all_ready(&self) -> bool {
        self.ready.load(Ordering::SeqCst) == self.nshards
    }

    #[inline]
    pub fn lookahead(&self, from: usize, to: usize) -> f64 {
        self.la[from * self.nshards + to]
    }

    /// Shard `s`'s published bound (Acquire: pairs with the Release in
    /// [`publish`] so inbox pushes flushed before publication are visible).
    #[inline]
    pub fn bound(&self, s: usize) -> f64 {
        f64::from_bits(self.bounds[s].load(Ordering::Acquire))
    }

    /// Raise shard `s`'s bound to `v` (never lowers it).
    pub fn publish(&self, s: usize, v: f64) {
        debug_assert!(v >= 0.0 || v.is_infinite());
        self.bounds[s].fetch_max(v.to_bits(), Ordering::AcqRel);
    }

    /// Route a cross-shard event to its destination shard's inbox.
    pub fn push_cross(&self, dest_node: usize, ev: Event) {
        let d = self.shard_of_node[dest_node];
        self.inboxes[d].lock().unwrap().push(ev);
    }

    /// Take everything currently in shard `s`'s inbox.
    pub fn take_inbox(&self, s: usize) -> Vec<Event> {
        let mut g = self.inboxes[s].lock().unwrap();
        if g.is_empty() {
            Vec::new()
        } else {
            std::mem::take(&mut *g)
        }
    }
}

/// Split `nodes` into `nshards` contiguous, balanced ranges.
pub(crate) fn node_ranges(nodes: usize, nshards: usize) -> Vec<(usize, usize)> {
    let base = nodes / nshards;
    let rem = nodes % nshards;
    let mut ranges = Vec::with_capacity(nshards);
    let mut lo = 0;
    for s in 0..nshards {
        let len = base + usize::from(s < rem);
        ranges.push((lo, lo + len));
        lo += len;
    }
    debug_assert_eq!(lo, nodes);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ranges_cover_and_balance() {
        let r = node_ranges(10, 4);
        assert_eq!(r, vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        assert_eq!(node_ranges(4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(node_ranges(3, 1), vec![(0, 3)]);
    }

    #[test]
    fn sync_rejects_zero_lookahead() {
        let floors = LinkTable::from_fn(2, |a, b| if a != b { 0.0 } else { f64::INFINITY });
        assert!(ShardSync::new(&[(0, 1), (1, 2)], &floors, 1.0).is_none());
    }

    #[test]
    fn sync_builds_pairwise_lookahead() {
        let floors = LinkTable::from_fn(4, |a, b| if a == b { 0.0 } else { 2.0 + (a + b) as f64 });
        let sync = ShardSync::new(&[(0, 2), (2, 4)], &floors, 0.5).unwrap();
        // min over links {0,1}x{2,3} = 2 + 0 + 2 = 4.0, scaled by 0.5.
        assert_eq!(sync.lookahead(0, 1), 2.0);
        assert_eq!(sync.nshards(), 2);
    }

    #[test]
    fn bounds_are_monotone() {
        let floors = LinkTable::from_fn(2, |a, b| if a == b { 0.0 } else { 1.0 });
        let sync = ShardSync::new(&[(0, 1), (1, 2)], &floors, 1.0).unwrap();
        sync.publish(0, 5.0);
        sync.publish(0, 3.0); // lower: ignored
        assert_eq!(sync.bound(0), 5.0);
        sync.publish(0, f64::INFINITY);
        assert_eq!(sync.bound(0), f64::INFINITY);
    }
}
