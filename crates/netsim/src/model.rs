//! The cost model: a LogGP-style parameterization extended with the shared
//! per-node resources that dominate many-core nodes.
//!
//! All times are microseconds; all sizes are bytes. Bandwidths are
//! expressed as reciprocal throughput (µs per byte) so costs compose by
//! addition.

use a2a_topo::Level;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Per-locality-level point-to-point cost: `alpha + bytes * beta`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct LevelCost {
    /// One-way latency (µs).
    pub alpha: f64,
    /// Reciprocal pair bandwidth (µs/byte).
    pub beta: f64,
}

impl LevelCost {
    pub fn new(alpha: f64, gb_per_s: f64) -> Self {
        LevelCost {
            alpha,
            beta: 1.0 / (gb_per_s * 1000.0),
        }
    }

    /// Wire time for a message of `bytes`.
    pub fn wire(&self, bytes: u64) -> f64 {
        self.alpha + bytes as f64 * self.beta
    }
}

/// Full machine cost model. See module docs for semantics; `engine.rs` is
/// the authoritative interpretation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct CostModel {
    /// Human-readable name (matches the machine preset it calibrates).
    pub name: String,
    /// Pair cost per locality level, indexed IntraNuma, IntraSocket,
    /// InterSocket, InterNode.
    pub levels: [LevelCost; 4],
    /// CPU time to post a send (µs).
    pub o_send: f64,
    /// CPU time to post a receive (µs).
    pub o_recv: f64,
    /// Base matching cost charged when a message meets its receive (µs).
    pub match_base: f64,
    /// Additional matching cost per queue entry scanned (µs/entry) — the
    /// queue-search overhead that penalizes massive non-blocking windows.
    pub queue_search: f64,
    /// Fixed cost of a local copy op (µs).
    pub copy_base: f64,
    /// Reciprocal single-core memcpy bandwidth (µs/byte).
    pub copy_per_byte: f64,
    /// Inter-node messages at or below this size use the eager protocol;
    /// larger ones pay a rendezvous handshake and start only after the
    /// receive posts.
    pub eager_threshold: u64,
    /// Intra-node (shared-memory path) eager threshold — production MPIs
    /// use a much larger cutoff for shm than for the fabric.
    pub eager_threshold_intra: u64,
    /// Per-node NIC serialization: reciprocal injection bandwidth
    /// (µs/byte). All of a node's inter-node traffic funnels through this.
    pub nic_per_byte: f64,
    /// Per-message NIC processing time (µs), serialized at the NIC —
    /// reciprocal message rate.
    pub nic_per_msg: f64,
    /// Per-NUMA-domain (and per-socket) serialization for intra-node
    /// transfers that stay within a socket (µs/byte). Each NUMA domain and
    /// each socket is its own resource, so NUMA-aligned traffic from
    /// different domains proceeds in parallel.
    pub mem_per_byte: f64,
    /// Per-node cross-socket (UPI / Infinity Fabric) serialization
    /// (µs/byte): all of a node's socket-crossing traffic funnels through
    /// this — the "complexity of intra-node communication" the paper's
    /// §4.3 identifies as the reason locality-aware grouping wins at large
    /// sizes.
    pub upi_per_byte: f64,
}

impl CostModel {
    /// Level cost for a pair at `level`.
    pub fn level(&self, level: Level) -> LevelCost {
        match level {
            Level::SelfRank => LevelCost {
                alpha: 0.0,
                beta: 0.0,
            },
            Level::IntraNuma => self.levels[0],
            Level::IntraSocket => self.levels[1],
            Level::InterSocket => self.levels[2],
            Level::InterNode => self.levels[3],
        }
    }

    /// Cost of one local copy of `bytes`.
    pub fn copy_cost(&self, bytes: u64) -> f64 {
        self.copy_base + bytes as f64 * self.copy_per_byte
    }

    /// Whether a message of `bytes` at `level` uses the rendezvous
    /// protocol (separate shm and fabric cutoffs).
    pub fn is_rendezvous(&self, bytes: u64, level: Level) -> bool {
        if level == Level::InterNode {
            bytes > self.eager_threshold
        } else {
            bytes > self.eager_threshold_intra
        }
    }

    /// Time the NIC is occupied injecting (or ejecting) one message.
    pub fn nic_occupancy(&self, bytes: u64) -> f64 {
        self.nic_per_msg + bytes as f64 * self.nic_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn levelcost_wire_math() {
        let c = LevelCost::new(1.0, 10.0); // 10 GB/s
        assert!((c.wire(10_000) - 2.0).abs() < 1e-9); // 1µs + 1µs
    }

    #[test]
    fn level_lookup_ordering() {
        let m = models::dane();
        // Latency must grow with distance.
        assert!(m.level(Level::IntraNuma).alpha < m.level(Level::IntraSocket).alpha);
        assert!(m.level(Level::IntraSocket).alpha < m.level(Level::InterSocket).alpha);
        assert!(m.level(Level::InterSocket).alpha < m.level(Level::InterNode).alpha);
        // Self transfers are free at the wire level.
        assert_eq!(m.level(Level::SelfRank).alpha, 0.0);
    }

    #[test]
    fn rendezvous_switch() {
        let m = models::dane();
        assert!(!m.is_rendezvous(m.eager_threshold, Level::InterNode));
        assert!(m.is_rendezvous(m.eager_threshold + 1, Level::InterNode));
        // The shm path stays eager far longer.
        assert!(!m.is_rendezvous(m.eager_threshold + 1, Level::IntraNuma));
        assert!(m.is_rendezvous(m.eager_threshold_intra + 1, Level::InterSocket));
    }

    #[test]
    fn nic_occupancy_monotone() {
        let m = models::dane();
        assert!(m.nic_occupancy(0) > 0.0);
        assert!(m.nic_occupancy(4096) > m.nic_occupancy(64));
    }
}
