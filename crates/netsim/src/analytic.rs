//! Closed-form cost estimates (the paper's §5 "develop a model to evaluate
//! these impacts at capability-scale" future work).
//!
//! [`lower_bound_from_stats`] turns a schedule's static traffic statistics
//! into a machine-model lower bound: the collective can finish no earlier
//! than its most-loaded bottleneck resource — per-rank CPU posting, per-node
//! NIC injection, per-node memory bus, or per-rank copy work. The simulator
//! must always report at least this value (a property test enforces it),
//! and for bandwidth-bound direct exchanges it lands within a small factor.

use a2a_sched::analysis::critpath::CritParams;
use a2a_sched::ScheduleStats;
use a2a_topo::{Level, ProcGrid};

use crate::model::CostModel;

/// Critical-path cost parameters derived from a full cost model: exactly
/// the charges the simulator always pays (posting overheads, copy cost,
/// per-level wire time) and none of its additive extras (matching, queue
/// search, NIC/memory-bus serialization, rendezvous handshakes). At zero
/// jitter, `a2a_sched::analysis::critical_path` run with these parameters
/// is therefore a guaranteed lower bound on [`crate::simulate`]'s
/// makespan — the invariant `repro verify` cross-checks on every roster
/// cell.
pub fn crit_params(model: &CostModel) -> CritParams {
    CritParams {
        o_send: model.o_send,
        o_recv: model.o_recv,
        copy_base: model.copy_base,
        copy_per_byte: model.copy_per_byte,
        levels: [
            (model.levels[0].alpha, model.levels[0].beta),
            (model.levels[1].alpha, model.levels[1].beta),
            (model.levels[2].alpha, model.levels[2].beta),
            (model.levels[3].alpha, model.levels[3].beta),
        ],
    }
}

/// Machine-model lower bound on a schedule's completion time (µs).
pub fn lower_bound_from_stats(stats: &ScheduleStats, grid: &ProcGrid, model: &CostModel) -> f64 {
    let nodes = grid.machine().nodes as f64;
    let n = grid.world_size() as f64;

    // CPU: the busiest rank must post all its sends (and symmetric recvs).
    let cpu = stats.max_sends_per_rank as f64 * (model.o_send + model.o_recv + model.match_base);

    // NIC: a node's inter-node traffic is serialized through its NIC. Both
    // message and byte counts are symmetric for all-to-all patterns, so the
    // average per node is also the per-node load.
    let nic = (stats.inter_node_msgs() as f64 / nodes) * model.nic_per_msg
        + (stats.inter_node_bytes() as f64 / nodes) * model.nic_per_byte;

    // Intra-node shared paths: NUMA-local bytes spread across all NUMA
    // domains, socket-local across sockets, socket-crossing through one
    // UPI per node. The binding one lower-bounds the intra phase.
    let m = grid.machine();
    let numas = (nodes as usize * m.sockets_per_node * m.numa_per_socket) as f64;
    let sockets = (nodes as usize * m.sockets_per_node) as f64;
    let bus = (stats.bytes[0] as f64 / numas * model.mem_per_byte)
        .max(stats.bytes[1] as f64 / sockets * model.mem_per_byte)
        .max(stats.bytes[2] as f64 / nodes * model.upi_per_byte);

    // Copies: repack work per rank (average; packing is evenly spread in
    // the node/locality-aware algorithms, concentrated on leaders in the
    // hierarchical ones, where CPU/NIC dominate anyway).
    let copies = (stats.copy_bytes as f64 / n) * model.copy_per_byte;

    // One network traversal of latency is unavoidable if anything crosses.
    let alpha = if stats.inter_node_msgs() > 0 {
        model.level(Level::InterNode).alpha
    } else {
        0.0
    };

    cpu.max(nic).max(bus).max(copies) + alpha
}

/// Closed-form estimate for the flat direct exchange (pairwise or
/// non-blocking): per-rank posting plus per-node NIC serialization plus one
/// wire traversal.
pub fn predict_direct(grid: &ProcGrid, model: &CostModel, s: u64) -> f64 {
    let n = grid.world_size() as f64;
    let ppn = grid.machine().ppn() as f64;
    let sf = s as f64;
    let cpu = (n - 1.0) * (model.o_send + model.o_recv + model.match_base);
    let inter_msgs = ppn * (n - ppn);
    let nic = inter_msgs * (model.nic_per_msg + sf * model.nic_per_byte);
    let net = model.level(Level::InterNode);
    cpu.max(nic) + net.alpha + sf * net.beta
}

/// Closed-form estimate for Bruck: `ceil(log2 n)` rounds, each moving
/// `n*s/2` bytes per rank (packing both ways) with every node's ranks
/// sharing the NIC.
pub fn predict_bruck(grid: &ProcGrid, model: &CostModel, s: u64) -> f64 {
    let n = grid.world_size() as f64;
    let ppn = grid.machine().ppn() as f64;
    let rounds = (grid.world_size() as f64).log2().ceil();
    let per_round_bytes = n * s as f64 / 2.0;
    let net = model.level(Level::InterNode);
    let per_round = model.o_send
        + model.o_recv
        + net.alpha
        + per_round_bytes * net.beta
        + ppn * per_round_bytes * model.nic_per_byte // node NIC share
        + 2.0 * per_round_bytes * model.copy_per_byte; // pack + unpack
    rounds * per_round
}

/// Closed-form estimate for hierarchical / multi-leader (Algorithm 3) with
/// `ppl` processes per leader: gather to leaders, leader exchange, scatter.
pub fn predict_hierarchical(grid: &ProcGrid, model: &CostModel, s: u64, ppl: usize) -> f64 {
    let n = grid.world_size() as f64;
    let nodes = grid.machine().nodes as f64;
    let ppn = grid.machine().ppn() as f64;
    let g = ppl as f64;
    let leaders_per_node = ppn / g;
    let m = nodes * leaders_per_node; // leader count
    let total = n * s as f64; // one rank's full buffer
    let local = model.level(Level::IntraSocket);

    // Gather: the leader serializes g-1 member images of n*s bytes.
    let gather = (g - 1.0) * (model.o_recv + local.alpha + total * local.beta);
    // Packing on the leader: everything is copied twice per direction.
    let pack = 4.0 * g * total * model.copy_per_byte;
    // Leader exchange: each leader sends m-1 segments of g^2*s bytes; per
    // node, `leaders_per_node` leaders share the NIC.
    let seg = g * g * s as f64;
    let nic = leaders_per_node * (m - 1.0) * (model.nic_per_msg + seg * model.nic_per_byte);
    let cpu = (m - 1.0) * (model.o_send + model.o_recv + model.match_base);
    let net = model.level(Level::InterNode);
    let inter = nic.max(cpu) + net.alpha + seg * net.beta;
    gather + pack + inter + gather // scatter mirrors the gather
}

/// Closed-form estimate for node-/locality-aware (Algorithm 4) with `ppg`
/// processes per group.
pub fn predict_node_aware(grid: &ProcGrid, model: &CostModel, s: u64, ppg: usize) -> f64 {
    let nodes = grid.machine().nodes as f64;
    let ppn = grid.machine().ppn() as f64;
    let g = ppg as f64;
    let regions = nodes * (ppn / g);
    let n = grid.world_size() as f64;
    let net = model.level(Level::InterNode);

    // Inter phase: every rank sends g*s to one counterpart per region.
    // Off-node peers per rank: all regions except the ppn/g on my node;
    // the node's ppn ranks share the NIC for that traffic.
    let off_node_regions = regions - ppn / g;
    let inter_msgs_per_node = ppn * off_node_regions;
    let seg = g * s as f64;
    let nic = inter_msgs_per_node * (model.nic_per_msg + seg * model.nic_per_byte);
    let cpu = (regions - 1.0) * (model.o_send + model.o_recv + model.match_base);
    let inter = nic.max(cpu) + net.alpha + seg * net.beta;

    // Intra phase: each rank exchanges (g-1) segments of regions*s bytes;
    // aligned groups ride per-NUMA bandwidth, so use the socket tier as a
    // middle estimate.
    let local = model.level(Level::IntraSocket);
    let intra_bytes = (g - 1.0) * regions * s as f64;
    let intra = (g - 1.0) * (model.o_send + model.o_recv + local.alpha) + intra_bytes * local.beta;

    // Packing: two transposes of the full n*s image.
    let pack = 2.0 * n * s as f64 * model.copy_per_byte;
    inter + intra + pack
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimOptions};
    use crate::models;
    use a2a_core::{A2AContext, AlgoSchedule, AlltoallAlgorithm};
    use a2a_sched::validate;
    use a2a_topo::{presets, ProcGrid};

    fn grid() -> ProcGrid {
        ProcGrid::new(presets::scaled_many_core(4, 1)) // 4 nodes x 8 ppn
    }

    fn check_bound(algo: &dyn AlltoallAlgorithm, s: u64) {
        let grid = grid();
        let ctx = A2AContext::new(grid.clone(), s);
        let sched = AlgoSchedule::new(algo, ctx);
        let stats = validate(&sched, &grid).unwrap();
        let model = models::dane();
        let bound = lower_bound_from_stats(&stats, &grid, &model);
        let rep = simulate(&sched, &grid, &model, &SimOptions::default()).unwrap();
        assert!(
            rep.total_us >= bound * 0.999,
            "{}: simulated {} below analytic bound {}",
            algo.name(),
            rep.total_us,
            bound
        );
    }

    #[test]
    fn simulation_respects_lower_bound_for_all_algorithms() {
        use a2a_core::*;
        let algos: Vec<Box<dyn AlltoallAlgorithm>> = vec![
            Box::new(PairwiseAlltoall),
            Box::new(NonblockingAlltoall),
            Box::new(BruckAlltoall),
            Box::new(HierarchicalAlltoall::new(8, ExchangeKind::Pairwise)),
            Box::new(HierarchicalAlltoall::new(4, ExchangeKind::Pairwise)),
            Box::new(NodeAwareAlltoall::node_aware(ExchangeKind::Pairwise)),
            Box::new(NodeAwareAlltoall::locality_aware(
                4,
                ExchangeKind::Nonblocking,
            )),
            Box::new(MultileaderNodeAwareAlltoall::new(4, ExchangeKind::Pairwise)),
            Box::new(MpichShmAlltoall::default()),
        ];
        for algo in &algos {
            for s in [16u64, 1024] {
                check_bound(algo.as_ref(), s);
            }
        }
    }

    #[test]
    fn direct_prediction_within_factor_of_simulation() {
        let grid = grid();
        let model = models::dane();
        for s in [64u64, 4096] {
            let ctx = A2AContext::new(grid.clone(), s);
            let algo = a2a_core::NonblockingAlltoall;
            let sched = AlgoSchedule::new(&algo, ctx);
            let sim = simulate(&sched, &grid, &model, &SimOptions::default())
                .unwrap()
                .total_us;
            let pred = predict_direct(&grid, &model, s);
            let ratio = sim / pred;
            assert!(
                (0.2..8.0).contains(&ratio),
                "s={s}: sim {sim} vs predicted {pred} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn bruck_prediction_scales_with_size() {
        let grid = grid();
        let model = models::dane();
        assert!(predict_bruck(&grid, &model, 4096) > predict_bruck(&grid, &model, 4));
    }

    #[test]
    fn hierarchical_prediction_tracks_simulation_trends() {
        let grid = grid();
        let model = models::dane();
        // Single-leader hierarchical gets worse than multi-leader at large
        // sizes — in both the closed form and the simulator.
        let ph_1 = predict_hierarchical(&grid, &model, 4096, grid.machine().ppn());
        let ph_4 = predict_hierarchical(&grid, &model, 4096, 4);
        assert!(ph_1 > ph_4, "closed form: {ph_1} vs {ph_4}");
        for (ppl, pred) in [(grid.machine().ppn(), ph_1), (4, ph_4)] {
            let algo = a2a_core::HierarchicalAlltoall::new(ppl, a2a_core::ExchangeKind::Pairwise);
            let sched = AlgoSchedule::new(&algo, A2AContext::new(grid.clone(), 4096));
            let sim = simulate(&sched, &grid, &model, &SimOptions::default())
                .unwrap()
                .total_us;
            let ratio = sim / pred;
            assert!(
                (0.1..10.0).contains(&ratio),
                "ppl={ppl}: sim {sim} vs pred {pred}"
            );
        }
    }

    #[test]
    fn static_critical_path_lower_bounds_the_simulator() {
        use a2a_sched::analysis::critical_path;
        let grid = grid();
        let model = models::dane();
        let params = crit_params(&model);
        for s in [16u64, 1024, 65536] {
            let algo = a2a_core::PairwiseAlltoall;
            let sched = AlgoSchedule::new(&algo, A2AContext::new(grid.clone(), s));
            let stat = critical_path(&sched, &grid, &params, 1);
            let sim = simulate(&sched, &grid, &model, &SimOptions::default())
                .unwrap()
                .total_us;
            assert!(
                stat.bound_us <= sim + 1e-9,
                "s={s}: static {} exceeds DES {sim}",
                stat.bound_us
            );
            assert!(stat.bound_us > 0.0);
            let attr = stat.attribution;
            assert!((attr.total_us() - stat.bound_us).abs() < 1e-6 * stat.bound_us.max(1.0));
        }
    }

    #[test]
    fn node_aware_prediction_within_band_of_simulation() {
        let grid = grid();
        let model = models::dane();
        for (ppg, s) in [(8usize, 64u64), (8, 4096), (4, 4096)] {
            let pred = predict_node_aware(&grid, &model, s, ppg);
            let algo = if ppg == grid.machine().ppn() {
                a2a_core::NodeAwareAlltoall::node_aware(a2a_core::ExchangeKind::Pairwise)
            } else {
                a2a_core::NodeAwareAlltoall::locality_aware(ppg, a2a_core::ExchangeKind::Pairwise)
            };
            let sched = AlgoSchedule::new(&algo, A2AContext::new(grid.clone(), s));
            let sim = simulate(&sched, &grid, &model, &SimOptions::default())
                .unwrap()
                .total_us;
            let ratio = sim / pred;
            assert!(
                (0.1..10.0).contains(&ratio),
                "ppg={ppg} s={s}: sim {sim} vs pred {pred} (ratio {ratio})"
            );
        }
    }
}
