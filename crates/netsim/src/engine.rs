//! The discrete-event engine.
//!
//! Execution model: every rank owns a virtual clock and a program cursor.
//! The scheduler repeatedly advances the runnable rank with the smallest
//! clock by one operation. Ranks park at an unsatisfied `WaitAll` and wake
//! when the last awaited request completes. Message transport reserves the
//! shared resources (per-node NIC injection/ejection, per-node memory bus)
//! in event order, which keeps the simulation deterministic for a fixed
//! seed.
//!
//! Protocol semantics:
//! * **Eager** (`bytes <= eager_threshold`): the send request completes as
//!   soon as it is posted (the library buffers the payload); the payload
//!   travels immediately and waits in the receiver's unexpected queue if no
//!   receive is posted.
//! * **Rendezvous**: the payload may not travel until the matching receive
//!   is posted (plus a handshake latency); the send request completes only
//!   when the payload has left the sender (NIC injection end).
//! * Receives pay a queue-search cost proportional to the unexpected-queue
//!   depth when posted, and arrivals pay one proportional to the
//!   posted-queue depth — the costs that penalize huge non-blocking
//!   windows at scale.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use a2a_sched::{Op, ScheduleSource, TimedOp};
use a2a_topo::{Level, ProcGrid, Rank};

use crate::model::CostModel;
use crate::report::SimReport;

/// Simulation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOptions {
    /// Multiplicative noise amplitude on CPU-side costs (0.0 = exact).
    pub jitter: f64,
    /// Noise seed.
    pub seed: u64,
}

/// Deterministic perturbations applied on top of the cost model: straggler
/// CPU slowdowns and degraded inter-node links. Plain data so any fault
/// layer (e.g. `a2a_faults::FaultPlan`) can be lowered onto the simulator
/// without the engine depending on it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Perturb {
    /// Per-rank CPU slowdown multipliers (index = rank; missing ranks and
    /// an empty vec mean 1.0). Scales copy costs and send/recv overheads —
    /// the straggler model.
    pub rank_slowdown: Vec<f64>,
    /// Directed degraded links: `(from_node, to_node, multiplier)` scales
    /// NIC occupancy and wire time for traffic on that link.
    pub link_multiplier: Vec<(usize, usize, f64)>,
}

impl Perturb {
    pub fn is_empty(&self) -> bool {
        self.rank_slowdown.iter().all(|&s| s == 1.0)
            && self.link_multiplier.iter().all(|&(_, _, m)| m == 1.0)
    }

    /// CPU slowdown for `rank` (1.0 if unspecified).
    pub fn slowdown(&self, rank: Rank) -> f64 {
        self.rank_slowdown
            .get(rank as usize)
            .copied()
            .unwrap_or(1.0)
    }

    /// Cost multiplier for the directed link `from_node -> to_node`.
    pub fn link(&self, from_node: usize, to_node: usize) -> f64 {
        self.link_multiplier
            .iter()
            .find(|&&(f, t, _)| f == from_node && t == to_node)
            .map(|&(_, _, m)| m)
            .unwrap_or(1.0)
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Ranks remained blocked with no pending events (schedule bug).
    Deadlock { unfinished: usize },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { unfinished } => {
                write!(f, "simulation deadlock: {unfinished} ranks unfinished")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Heap key: earliest clock first, rank id tiebreak (determinism).
#[derive(PartialEq)]
struct Key(f64, Rank);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

struct PostedRecv {
    len: u64,
    post_time: f64,
    req: u32,
}

struct UnexpectedMsg {
    len: u64,
    arrival: f64,
}

struct RdvSend {
    len: u64,
    ready: f64,
    send_req: u32,
}

const PENDING: f64 = f64::NAN;

struct RankSim {
    ops: Vec<TimedOp>,
    pc: usize,
    clock: f64,
    req_time: Vec<f64>,
    /// Parked `WaitAll` range, if blocked.
    parked: Option<(u32, u32)>,
    posted: HashMap<(Rank, u32), VecDeque<PostedRecv>>,
    unexpected: HashMap<(Rank, u32), VecDeque<UnexpectedMsg>>,
    rdv: HashMap<(Rank, u32), VecDeque<RdvSend>>,
    posted_len: usize,
    unexpected_len: usize,
    phase_time: Vec<f64>,
    rng: u64,
}

impl RankSim {
    fn done(&self) -> bool {
        self.pc >= self.ops.len() && self.parked.is_none()
    }
}

struct Engine<'a> {
    grid: &'a ProcGrid,
    model: &'a CostModel,
    jitter: f64,
    perturb: &'a Perturb,
    ranks: Vec<RankSim>,
    heap: BinaryHeap<Reverse<Key>>,
    nic_tx: Vec<f64>,
    nic_rx: Vec<f64>,
    msgs_per_level: [usize; 4],
    bytes_per_level: [u64; 4],
    /// Busy-until per NUMA domain (intra-NUMA transfers).
    numa_bus: Vec<f64>,
    /// Busy-until per socket (cross-NUMA, same-socket transfers).
    socket_bus: Vec<f64>,
    /// Busy-until per node for socket-crossing (UPI) transfers.
    upi_bus: Vec<f64>,
}

impl Engine<'_> {
    /// Deterministic per-rank noise factor in `[1-j, 1+j]` (xorshift64*),
    /// scaled by the rank's perturbation slowdown (straggler model).
    fn noise(&mut self, rank: Rank) -> f64 {
        let slow = self.perturb.slowdown(rank);
        if self.jitter == 0.0 {
            return slow;
        }
        let st = &mut self.ranks[rank as usize];
        let mut x = st.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        st.rng = x;
        let u = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        (1.0 + self.jitter * (2.0 * u - 1.0)) * slow
    }

    /// Reserve resources for a message and return `(arrival, tx_end)`.
    /// `tx_end` is when the sender's buffer is free (rendezvous send
    /// completion); for intra-node transfers it equals arrival.
    fn transport(&mut self, from: Rank, to: Rank, bytes: u64, t0: f64) -> (f64, f64) {
        let level = self.grid.level(from, to);
        let li = match level {
            Level::IntraNuma => 0,
            Level::IntraSocket => 1,
            Level::InterSocket => 2,
            _ => 3,
        };
        self.msgs_per_level[li] += 1;
        self.bytes_per_level[li] += bytes;
        let lc = self.model.level(level);
        if level == Level::InterNode {
            let sn = self.grid.node_of(from);
            let dn = self.grid.node_of(to);
            // A degraded link stretches both NIC occupancy and wire time.
            let lm = self.perturb.link(sn, dn);
            let occ = self.model.nic_occupancy(bytes) * lm;
            let tx_start = t0.max(self.nic_tx[sn]);
            let tx_end = tx_start + occ;
            self.nic_tx[sn] = tx_end;
            let wire_arrive = tx_end + lc.wire(bytes) * lm;
            let rx_start = wire_arrive.max(self.nic_rx[dn]);
            let rx_end = rx_start + occ;
            self.nic_rx[dn] = rx_end;
            (rx_end, tx_end)
        } else {
            // Intra-node: charge the tightest shared path the transfer
            // crosses — its NUMA domain, its socket, or the cross-socket
            // link — so NUMA-aligned traffic from different domains
            // proceeds in parallel while socket-crossing traffic funnels.
            let loc = self.grid.location(from);
            let m = self.grid.machine();
            let (bus, rate) = match level {
                Level::IntraNuma => {
                    let idx =
                        (loc.node * m.sockets_per_node + loc.socket) * m.numa_per_socket + loc.numa;
                    (&mut self.numa_bus[idx], self.model.mem_per_byte)
                }
                Level::IntraSocket => {
                    let idx = loc.node * m.sockets_per_node + loc.socket;
                    (&mut self.socket_bus[idx], self.model.mem_per_byte)
                }
                _ => (&mut self.upi_bus[loc.node], self.model.upi_per_byte),
            };
            let bus_start = t0.max(*bus);
            *bus = bus_start + bytes as f64 * rate;
            let arrival = bus_start + lc.wire(bytes);
            (arrival, arrival)
        }
    }

    /// Record request `req` of `rank` completing at `time`; wake the rank
    /// if that satisfies its parked wait.
    fn complete_req(&mut self, rank: Rank, req: u32, time: f64) {
        let wake = {
            let st = &mut self.ranks[rank as usize];
            debug_assert!(
                st.req_time[req as usize].is_nan(),
                "request completed twice"
            );
            st.req_time[req as usize] = time;
            match st.parked {
                Some((first, count)) => {
                    let mut latest = st.clock;
                    let mut ready = true;
                    for r in first..first + count {
                        let t = st.req_time[r as usize];
                        if t.is_nan() {
                            ready = false;
                            break;
                        }
                        latest = latest.max(t);
                    }
                    if ready {
                        // Consume the WaitAll; idle time accrues to its phase.
                        let phase = st.ops[st.pc].phase.0 as usize;
                        st.phase_time[phase] += latest - st.clock;
                        st.clock = latest;
                        st.pc += 1;
                        st.parked = None;
                        if st.pc < st.ops.len() {
                            Some(st.clock)
                        } else {
                            None
                        }
                    } else {
                        None
                    }
                }
                None => None,
            }
        };
        if let Some(clock) = wake {
            self.heap.push(Reverse(Key(clock, rank)));
        }
    }

    /// Deliver an (eager) message arriving at `to`: match a posted receive
    /// or enqueue as unexpected.
    fn deliver(&mut self, from: Rank, to: Rank, tag: u32, len: u64, arrival: f64) {
        let matched = {
            let st = &mut self.ranks[to as usize];
            match st.posted.get_mut(&(from, tag)).and_then(|q| q.pop_front()) {
                Some(pr) => {
                    debug_assert_eq!(pr.len, len, "message/receive length mismatch");
                    st.posted_len -= 1;
                    let cost =
                        self.model.match_base + self.model.queue_search * st.posted_len as f64;
                    Some((pr.req, arrival.max(pr.post_time) + cost))
                }
                None => {
                    st.unexpected
                        .entry((from, tag))
                        .or_default()
                        .push_back(UnexpectedMsg { len, arrival });
                    st.unexpected_len += 1;
                    None
                }
            }
        };
        if let Some((req, done)) = matched {
            self.complete_req(to, req, done);
        }
    }

    /// Advance `rank` by one op, then reschedule it if still runnable.
    fn step(&mut self, rank: Rank) {
        let (top, old_clock) = {
            let st = &self.ranks[rank as usize];
            (st.ops[st.pc], st.clock)
        };
        let phase = top.phase.0 as usize;
        match top.op {
            Op::Copy { src, .. } => {
                let jf = self.noise(rank);
                let cost = self.model.copy_cost(src.len) * jf;
                let st = &mut self.ranks[rank as usize];
                st.clock += cost;
                st.pc += 1;
            }
            Op::Isend {
                to,
                block,
                tag,
                req,
            } => {
                let jf = self.noise(rank);
                let ready = {
                    let st = &mut self.ranks[rank as usize];
                    st.clock += self.model.o_send * jf;
                    st.pc += 1;
                    st.clock
                };
                let len = block.len;
                let level = self.grid.level(rank, to);
                if self.model.is_rendezvous(len, level) {
                    // Data can't move before the matching receive posts.
                    let alpha = self.model.level(level).alpha;
                    let recv = self.ranks[to as usize]
                        .posted
                        .get_mut(&(rank, tag))
                        .and_then(|q| q.pop_front());
                    if let Some(pr) = recv {
                        self.ranks[to as usize].posted_len -= 1;
                        let t0 = ready.max(pr.post_time + alpha);
                        let (arrival, tx_end) = self.transport(rank, to, len, t0);
                        self.complete_req(rank, req, tx_end);
                        self.complete_req(to, pr.req, arrival + self.model.match_base);
                    } else {
                        self.ranks[to as usize]
                            .rdv
                            .entry((rank, tag))
                            .or_default()
                            .push_back(RdvSend {
                                len,
                                ready,
                                send_req: req,
                            });
                    }
                } else {
                    // Eager: send completes locally; payload travels now.
                    let (arrival, _) = self.transport(rank, to, len, ready);
                    self.complete_req(rank, req, ready);
                    self.deliver(rank, to, tag, len, arrival);
                }
            }
            Op::Irecv {
                from,
                block,
                tag,
                req,
            } => {
                let jf = self.noise(rank);
                let len = block.len;
                enum Matched {
                    Unexpected(f64),
                    Rdv(RdvSend),
                    Posted,
                }
                let (post_time, matched) = {
                    let st = &mut self.ranks[rank as usize];
                    st.clock += (self.model.o_recv
                        + self.model.queue_search * st.unexpected_len as f64)
                        * jf;
                    st.pc += 1;
                    let post_time = st.clock;
                    let m = if let Some(msg) = st
                        .unexpected
                        .get_mut(&(from, tag))
                        .and_then(|q| q.pop_front())
                    {
                        debug_assert_eq!(msg.len, len);
                        st.unexpected_len -= 1;
                        Matched::Unexpected(msg.arrival)
                    } else if let Some(rs) =
                        st.rdv.get_mut(&(from, tag)).and_then(|q| q.pop_front())
                    {
                        debug_assert_eq!(rs.len, len);
                        Matched::Rdv(rs)
                    } else {
                        st.posted
                            .entry((from, tag))
                            .or_default()
                            .push_back(PostedRecv {
                                len,
                                post_time,
                                req,
                            });
                        st.posted_len += 1;
                        Matched::Posted
                    };
                    (post_time, m)
                };
                match matched {
                    Matched::Unexpected(arrival) => {
                        let done = post_time.max(arrival) + self.model.match_base;
                        self.complete_req(rank, req, done);
                    }
                    Matched::Rdv(rs) => {
                        let alpha = self.model.level(self.grid.level(from, rank)).alpha;
                        let t0 = rs.ready.max(post_time + alpha);
                        let (arrival, tx_end) = self.transport(from, rank, len, t0);
                        self.complete_req(from, rs.send_req, tx_end);
                        self.complete_req(rank, req, arrival + self.model.match_base);
                    }
                    Matched::Posted => {}
                }
            }
            Op::WaitAll { first_req, count } => {
                let st = &mut self.ranks[rank as usize];
                let mut latest = st.clock;
                let mut ready = true;
                for r in first_req..first_req + count {
                    let t = st.req_time[r as usize];
                    if t.is_nan() {
                        ready = false;
                        break;
                    }
                    latest = latest.max(t);
                }
                if ready {
                    st.clock = latest;
                    st.pc += 1;
                } else {
                    st.parked = Some((first_req, count));
                }
            }
        }
        // Attribute elapsed time to the op's phase and reschedule.
        let push = {
            let st = &mut self.ranks[rank as usize];
            st.phase_time[phase] += st.clock - old_clock;
            if st.parked.is_none() && st.pc < st.ops.len() {
                Some(st.clock)
            } else {
                None
            }
        };
        if let Some(clock) = push {
            self.heap.push(Reverse(Key(clock, rank)));
        }
    }
}

/// Simulate `source` on `grid` under `model`. Returns per-rank completion
/// times and per-phase breakdowns in a [`SimReport`].
pub fn simulate(
    source: &dyn ScheduleSource,
    grid: &ProcGrid,
    model: &CostModel,
    opts: &SimOptions,
) -> Result<SimReport, SimError> {
    simulate_perturbed(source, grid, model, opts, &Perturb::default())
}

/// [`simulate`] with straggler/degraded-link perturbations applied — the
/// substrate for chaos sweeps measuring slowdown-under-faults.
pub fn simulate_perturbed(
    source: &dyn ScheduleSource,
    grid: &ProcGrid,
    model: &CostModel,
    opts: &SimOptions,
    perturb: &Perturb,
) -> Result<SimReport, SimError> {
    let n = source.nranks();
    assert_eq!(n, grid.world_size(), "schedule/grid world size mismatch");
    let phase_names: Vec<String> = source.phase_names().iter().map(|s| s.to_string()).collect();
    let nphases = phase_names.len().max(1);

    let mut ranks = Vec::with_capacity(n);
    for r in 0..n as Rank {
        let prog = source.build_rank(r);
        let n_reqs = prog.n_reqs as usize;
        ranks.push(RankSim {
            ops: prog.ops,
            pc: 0,
            clock: 0.0,
            req_time: vec![PENDING; n_reqs],
            parked: None,
            posted: HashMap::new(),
            unexpected: HashMap::new(),
            rdv: HashMap::new(),
            posted_len: 0,
            unexpected_len: 0,
            phase_time: vec![0.0; nphases],
            rng: opts
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((r as u64 + 1).wrapping_mul(0xD134_2543_DE82_EF95))
                | 1,
        });
    }

    let m = grid.machine();
    let nodes = m.nodes;
    let sockets = nodes * m.sockets_per_node;
    let numas = sockets * m.numa_per_socket;
    let mut engine = Engine {
        grid,
        model,
        jitter: opts.jitter,
        perturb,
        ranks,
        heap: BinaryHeap::with_capacity(n),
        nic_tx: vec![0.0; nodes],
        nic_rx: vec![0.0; nodes],
        msgs_per_level: [0; 4],
        bytes_per_level: [0; 4],
        numa_bus: vec![0.0; numas],
        socket_bus: vec![0.0; sockets],
        upi_bus: vec![0.0; nodes],
    };
    for r in 0..n as Rank {
        if !engine.ranks[r as usize].ops.is_empty() {
            engine.heap.push(Reverse(Key(0.0, r)));
        }
    }

    while let Some(Reverse(Key(_, rank))) = engine.heap.pop() {
        engine.step(rank);
    }

    let unfinished = engine.ranks.iter().filter(|s| !s.done()).count();
    if unfinished > 0 {
        return Err(SimError::Deadlock { unfinished });
    }

    let rank_finish: Vec<f64> = engine.ranks.iter().map(|s| s.clock).collect();
    let total_us = rank_finish.iter().cloned().fold(0.0, f64::max);
    let mut phase_max = vec![0.0f64; nphases];
    let mut phase_sum = vec![0.0f64; nphases];
    for st in &engine.ranks {
        for (p, &t) in st.phase_time.iter().enumerate() {
            phase_max[p] = phase_max[p].max(t);
            phase_sum[p] += t;
        }
    }
    let phase_mean: Vec<f64> = phase_sum.iter().map(|s| s / n as f64).collect();
    let phase_rank0 = engine.ranks[0].phase_time.clone();
    Ok(SimReport {
        total_us,
        rank_finish,
        phase_names,
        phase_max_us: phase_max,
        phase_mean_us: phase_mean,
        phase_rank0_us: phase_rank0,
        msgs_per_level: engine.msgs_per_level,
        bytes_per_level: engine.bytes_per_level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_sched::{Block, Bytes, Phase, ProgBuilder, RankProgram, RBUF, SBUF};
    use a2a_topo::Machine;

    /// Two ranks exchanging one message each; configurable size and shape.
    struct Swap {
        s: Bytes,
        grid: ProcGrid,
    }

    impl Swap {
        fn internode(s: Bytes) -> Self {
            Swap {
                s,
                grid: ProcGrid::new(Machine::custom("t", 2, 1, 1, 1)),
            }
        }
        fn intranode(s: Bytes) -> Self {
            Swap {
                s,
                grid: ProcGrid::new(Machine::custom("t", 1, 1, 1, 2)),
            }
        }
    }

    impl ScheduleSource for Swap {
        fn nranks(&self) -> usize {
            2
        }
        fn buffers(&self, _r: Rank) -> Vec<Bytes> {
            vec![self.s, self.s]
        }
        fn build_rank(&self, r: Rank) -> RankProgram {
            let peer = 1 - r;
            let mut b = ProgBuilder::new(Phase(0));
            b.sendrecv(
                peer,
                Block::new(SBUF, 0, self.s),
                0,
                peer,
                Block::new(RBUF, 0, self.s),
                0,
            );
            b.finish()
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["exchange"]
        }
    }

    fn sim(src: &Swap) -> SimReport {
        simulate(
            src,
            &src.grid.clone(),
            &crate::models::dane(),
            &SimOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn internode_swap_has_sane_time() {
        let src = Swap::internode(1024);
        let rep = sim(&src);
        let m = crate::models::dane();
        // Must at least pay posting + NIC + wire + match.
        let lower = m.o_send + m.nic_occupancy(1024) + m.level(Level::InterNode).wire(1024);
        assert!(rep.total_us > lower, "{} <= {lower}", rep.total_us);
        assert!(rep.total_us < 100.0, "unreasonably slow: {}", rep.total_us);
    }

    #[test]
    fn intranode_cheaper_than_internode() {
        let a = sim(&Swap::intranode(4096)).total_us;
        let b = sim(&Swap::internode(4096)).total_us;
        assert!(a < b, "intra {a} >= inter {b}");
    }

    #[test]
    fn bigger_messages_take_longer() {
        let a = sim(&Swap::internode(64)).total_us;
        let b = sim(&Swap::internode(65536)).total_us;
        assert!(a < b);
    }

    #[test]
    fn rendezvous_kicks_in_above_threshold() {
        let m = crate::models::dane();
        let small = sim(&Swap::internode(m.eager_threshold)).total_us;
        let big = sim(&Swap::internode(m.eager_threshold + 1)).total_us;
        assert!(big > small);
    }

    #[test]
    fn deterministic_without_jitter() {
        let src = Swap::internode(512);
        let a = sim(&src);
        let b = sim(&src);
        assert_eq!(a.total_us, b.total_us);
        assert_eq!(a.rank_finish, b.rank_finish);
    }

    #[test]
    fn jitter_changes_times_but_same_seed_reproduces() {
        let src = Swap::internode(512);
        let opts1 = SimOptions {
            jitter: 0.05,
            seed: 7,
        };
        let opts2 = SimOptions {
            jitter: 0.05,
            seed: 8,
        };
        let m = crate::models::dane();
        let a = simulate(&src, &src.grid, &m, &opts1).unwrap().total_us;
        let a2 = simulate(&src, &src.grid, &m, &opts1).unwrap().total_us;
        let b = simulate(&src, &src.grid, &m, &opts2).unwrap().total_us;
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn phase_times_cover_rank_finish() {
        let src = Swap::internode(512);
        let rep = sim(&src);
        let finish = rep.rank_finish.iter().cloned().fold(0.0, f64::max);
        assert!((rep.phase_max_us[0] - finish).abs() < 1e-9);
    }

    /// A deadlocking schedule must be reported, not hang.
    struct DeadSwap;

    impl ScheduleSource for DeadSwap {
        fn nranks(&self) -> usize {
            2
        }
        fn buffers(&self, _r: Rank) -> Vec<Bytes> {
            vec![8, 8]
        }
        fn build_rank(&self, r: Rank) -> RankProgram {
            let mut b = ProgBuilder::new(Phase(0));
            // Recv that nobody sends.
            b.recv(1 - r, Block::new(RBUF, 0, 8), 9);
            b.finish()
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["x"]
        }
    }

    #[test]
    fn deadlock_detected() {
        let grid = ProcGrid::new(Machine::custom("t", 1, 1, 1, 2));
        let err = simulate(
            &DeadSwap,
            &grid,
            &crate::models::dane(),
            &SimOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::Deadlock { unfinished: 2 });
    }

    #[test]
    fn nic_serializes_node_traffic() {
        // 2 ranks on node 0 each sending to their counterpart on node 1:
        // with a shared NIC the second message arrives later than a single
        // message would.
        struct TwoSenders;
        impl ScheduleSource for TwoSenders {
            fn nranks(&self) -> usize {
                4
            }
            fn buffers(&self, _r: Rank) -> Vec<Bytes> {
                vec![4096, 4096]
            }
            fn build_rank(&self, r: Rank) -> RankProgram {
                let mut b = ProgBuilder::new(Phase(0));
                match r {
                    0 | 1 => b.send(r + 2, Block::new(SBUF, 0, 4096), 0),
                    _ => b.recv(r - 2, Block::new(RBUF, 0, 4096), 0),
                }
                b.finish()
            }
            fn phase_names(&self) -> Vec<&'static str> {
                vec!["x"]
            }
        }
        let grid = ProcGrid::new(Machine::custom("t", 2, 1, 1, 2));
        let m = crate::models::dane();
        let rep = simulate(&TwoSenders, &grid, &m, &SimOptions::default()).unwrap();
        let d = (rep.rank_finish[2] - rep.rank_finish[3]).abs();
        assert!(
            d >= m.nic_occupancy(4096) * 0.9,
            "NIC serialization not visible: delta {d}"
        );
    }

    #[test]
    fn rendezvous_sender_blocks_until_receiver_posts() {
        // Sender posts a big send immediately; receiver dawdles with local
        // copies first. The sender's finish time must track the receiver.
        struct LateRecv {
            s: Bytes,
            delay_copies: usize,
        }
        impl ScheduleSource for LateRecv {
            fn nranks(&self) -> usize {
                2
            }
            fn buffers(&self, _r: Rank) -> Vec<Bytes> {
                vec![self.s, self.s]
            }
            fn build_rank(&self, r: Rank) -> RankProgram {
                let mut b = ProgBuilder::new(Phase(0));
                if r == 0 {
                    b.send(1, Block::new(SBUF, 0, self.s), 0);
                } else {
                    for _ in 0..self.delay_copies {
                        b.copy(Block::new(SBUF, 0, self.s), Block::new(RBUF, 0, self.s));
                    }
                    b.recv(0, Block::new(RBUF, 0, self.s), 0);
                }
                b.finish()
            }
            fn phase_names(&self) -> Vec<&'static str> {
                vec!["x"]
            }
        }
        let grid = ProcGrid::new(Machine::custom("t", 2, 1, 1, 1));
        let m = crate::models::dane();
        let big = m.eager_threshold * 4;
        let fast = simulate(
            &LateRecv {
                s: big,
                delay_copies: 0,
            },
            &grid,
            &m,
            &SimOptions::default(),
        )
        .unwrap();
        let slow = simulate(
            &LateRecv {
                s: big,
                delay_copies: 50,
            },
            &grid,
            &m,
            &SimOptions::default(),
        )
        .unwrap();
        assert!(
            slow.rank_finish[0] > fast.rank_finish[0] + 1.0,
            "sender did not block on rendezvous: {} vs {}",
            slow.rank_finish[0],
            fast.rank_finish[0]
        );
    }

    #[test]
    fn numa_domains_are_parallel_but_upi_serializes() {
        // Two big transfer pairs: staying in their own NUMA domains they
        // proceed in parallel; both crossing sockets they share the node's
        // UPI and serialize.
        struct Pairs {
            cross_socket: bool,
        }
        impl ScheduleSource for Pairs {
            fn nranks(&self) -> usize {
                8 // 2 sockets x 2 NUMA x 2 cores
            }
            fn buffers(&self, _r: Rank) -> Vec<Bytes> {
                vec![1 << 20, 1 << 20]
            }
            fn build_rank(&self, r: Rank) -> RankProgram {
                // Aligned: 0->1 (NUMA 0), 2->3 (NUMA 1).
                // Crossing: 0->4, 2->6 (both socket 0 -> socket 1).
                let mut b = ProgBuilder::new(Phase(0));
                let big = 1u64 << 20;
                let peer_off: Rank = if self.cross_socket { 4 } else { 1 };
                if r == 0 || r == 2 {
                    b.send(r + peer_off, Block::new(SBUF, 0, big), 0);
                } else if r >= peer_off && (r - peer_off == 0 || r - peer_off == 2) {
                    b.recv(r - peer_off, Block::new(RBUF, 0, big), 0);
                }
                b.finish()
            }
            fn phase_names(&self) -> Vec<&'static str> {
                vec!["x"]
            }
        }
        let grid = ProcGrid::new(Machine::custom("t", 1, 2, 2, 2));
        let mut m = crate::models::dane();
        m.eager_threshold_intra = 4 << 20; // keep the transfers eager
        let par = simulate(
            &Pairs {
                cross_socket: false,
            },
            &grid,
            &m,
            &SimOptions::default(),
        )
        .unwrap()
        .total_us;
        let ser = simulate(
            &Pairs { cross_socket: true },
            &grid,
            &m,
            &SimOptions::default(),
        )
        .unwrap()
        .total_us;
        let occupancy = (1u64 << 20) as f64 * m.upi_per_byte;
        assert!(
            ser > par + 0.5 * occupancy,
            "UPI serialization invisible: parallel {par}, crossing {ser}"
        );
    }

    #[test]
    fn empty_perturb_matches_plain_simulate() {
        let src = Swap::internode(1024);
        let m = crate::models::dane();
        let a = simulate(&src, &src.grid, &m, &SimOptions::default()).unwrap();
        let b = simulate_perturbed(
            &src,
            &src.grid,
            &m,
            &SimOptions::default(),
            &Perturb::default(),
        )
        .unwrap();
        assert_eq!(a.total_us, b.total_us);
        assert_eq!(a.rank_finish, b.rank_finish);
    }

    #[test]
    fn straggler_slowdown_stretches_completion() {
        let src = Swap::intranode(4096);
        let m = crate::models::dane();
        let clean = simulate(&src, &src.grid, &m, &SimOptions::default()).unwrap();
        let p = Perturb {
            rank_slowdown: vec![8.0, 1.0],
            link_multiplier: vec![],
        };
        let slow = simulate_perturbed(&src, &src.grid, &m, &SimOptions::default(), &p).unwrap();
        assert!(
            slow.total_us > clean.total_us,
            "straggler invisible: {} vs {}",
            slow.total_us,
            clean.total_us
        );
    }

    #[test]
    fn degraded_link_stretches_internode_traffic_only() {
        let m = crate::models::dane();
        let inter = Swap::internode(65536);
        let clean = simulate(&inter, &inter.grid, &m, &SimOptions::default()).unwrap();
        let p = Perturb {
            rank_slowdown: vec![],
            link_multiplier: vec![(0, 1, 10.0), (1, 0, 10.0)],
        };
        let degraded =
            simulate_perturbed(&inter, &inter.grid, &m, &SimOptions::default(), &p).unwrap();
        assert!(degraded.total_us > clean.total_us * 2.0);

        // Intra-node traffic never touches the degraded link.
        let intra = Swap::intranode(65536);
        let a = simulate(&intra, &intra.grid, &m, &SimOptions::default()).unwrap();
        let b = simulate_perturbed(&intra, &intra.grid, &m, &SimOptions::default(), &p).unwrap();
        assert_eq!(a.total_us, b.total_us);
    }

    #[test]
    fn perturbed_sim_is_deterministic() {
        let src = Swap::internode(2048);
        let m = crate::models::dane();
        let p = Perturb {
            rank_slowdown: vec![3.0, 1.0],
            link_multiplier: vec![(0, 1, 5.0)],
        };
        let a = simulate_perturbed(&src, &src.grid, &m, &SimOptions::default(), &p).unwrap();
        let b = simulate_perturbed(&src, &src.grid, &m, &SimOptions::default(), &p).unwrap();
        assert_eq!(a.total_us, b.total_us);
        assert_eq!(a.rank_finish, b.rank_finish);
    }

    #[test]
    fn traffic_counters_track_levels() {
        let src = Swap::internode(512);
        let rep = sim(&src);
        assert_eq!(rep.msgs_per_level, [0, 0, 0, 2]);
        assert_eq!(rep.bytes_per_level, [0, 0, 0, 1024]);
        let src = Swap::intranode(512);
        let rep = sim(&src);
        assert_eq!(rep.msgs_per_level, [2, 0, 0, 0]);
    }

    #[test]
    fn leader_phase_view_excludes_member_wait() {
        // Rank 0 works; rank 1 waits for it. Rank 1's wait inflates the
        // max view of the handoff phase but not rank 0's leader view.
        struct Lopsided;
        impl ScheduleSource for Lopsided {
            fn nranks(&self) -> usize {
                2
            }
            fn buffers(&self, _r: Rank) -> Vec<Bytes> {
                vec![4096, 4096]
            }
            fn build_rank(&self, r: Rank) -> RankProgram {
                let mut b = ProgBuilder::new(Phase(0));
                if r == 0 {
                    for _ in 0..50 {
                        b.copy(Block::new(SBUF, 0, 4096), Block::new(RBUF, 0, 4096));
                    }
                    b.set_phase(Phase(1));
                    b.send(1, Block::new(SBUF, 0, 64), 0);
                } else {
                    b.set_phase(Phase(1));
                    b.recv(0, Block::new(RBUF, 0, 64), 0);
                }
                b.finish()
            }
            fn phase_names(&self) -> Vec<&'static str> {
                vec!["work", "handoff"]
            }
        }
        let grid = ProcGrid::new(Machine::custom("t", 1, 1, 1, 2));
        let rep = simulate(
            &Lopsided,
            &grid,
            &crate::models::dane(),
            &SimOptions::default(),
        )
        .unwrap();
        assert!(rep.phase("handoff").unwrap() > rep.phase_leader("handoff").unwrap() * 5.0);
        assert!(rep.phase_rank0_us[0] > rep.phase_rank0_us[1] * 10.0);
    }

    #[test]
    fn queue_search_penalizes_deep_queues() {
        // One receiver; many senders with eager messages arriving before
        // any receive posts. The receiver's posting cost grows with the
        // unexpected-queue depth; total must exceed the single-sender case
        // by more than the extra wire time alone.
        struct Fan {
            k: usize,
        }
        impl ScheduleSource for Fan {
            fn nranks(&self) -> usize {
                self.k + 1
            }
            fn buffers(&self, _r: Rank) -> Vec<Bytes> {
                vec![64 * self.k as Bytes, 64 * self.k as Bytes]
            }
            fn build_rank(&self, r: Rank) -> RankProgram {
                let mut b = ProgBuilder::new(Phase(0));
                if r == 0 {
                    // Delay, then post all receives.
                    for _ in 0..20 {
                        b.copy(Block::new(SBUF, 0, 64), Block::new(RBUF, 0, 64));
                    }
                    let first = b.req_mark();
                    for i in 0..self.k {
                        b.irecv(i as Rank + 1, Block::new(RBUF, i as Bytes * 64, 64), 0);
                    }
                    b.waitall(first, self.k as u32);
                } else {
                    b.send(0, Block::new(SBUF, 0, 64), 0);
                }
                b.finish()
            }
            fn phase_names(&self) -> Vec<&'static str> {
                vec!["x"]
            }
        }
        let m = crate::models::dane();
        let g1 = ProcGrid::new(Machine::custom("t", 1, 1, 1, 33));
        let rep = simulate(&Fan { k: 32 }, &g1, &m, &SimOptions::default()).unwrap();
        // Receiver posting cost alone: sum over posts of qs * depth where
        // depth starts at 32.
        let min_queue_cost: f64 = (0..32).map(|i| m.queue_search * (32 - i) as f64).sum();
        assert!(
            rep.rank_finish[0] > min_queue_cost,
            "queue search not charged"
        );
    }
}
