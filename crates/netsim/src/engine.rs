//! The discrete-event engine: public API and drivers.
//!
//! Execution model: every rank owns a virtual clock and a program cursor;
//! the event core in `shard.rs` advances the runnable rank with the
//! smallest event key by one operation, with all inter-node message legs
//! as explicit timestamped events. Ranks park at an unsatisfied `WaitAll`
//! and wake when the last awaited request completes. Per-node shared
//! resources (NIC injection/ejection, memory buses) are reserved in event
//! order, which keeps the simulation deterministic for a fixed seed.
//!
//! Two drivers execute that core:
//!
//! * [`simulate`] / [`simulate_perturbed`] — one shard spanning every
//!   node, a plain heap loop (the sequential engine).
//! * [`simulate_sharded`] and friends — nodes partitioned into contiguous
//!   shards, one worker thread each under `std::thread::scope`, advancing
//!   barrier-free behind the conservative lookahead horizon of
//!   `horizon.rs`. Output is **byte-identical** to the sequential engine
//!   for any worker count; see `shard.rs` for the determinism discipline.
//!
//! Protocol semantics:
//! * **Eager** (`bytes <= eager_threshold`): the send request completes as
//!   soon as it is posted (the library buffers the payload); the payload
//!   travels immediately and waits in the receiver's unexpected queue if no
//!   receive is posted.
//! * **Rendezvous**: inter-node payloads pay a full RTS/CTS handshake (one
//!   wire latency each way) and may not travel until the matching receive
//!   is posted; the send request completes only when the payload has left
//!   the sender (NIC injection end). Intra-node rendezvous matches through
//!   shared memory without the wire handshake.
//! * Receives pay a queue-search cost proportional to the unexpected-queue
//!   depth when posted, and arrivals pay one proportional to the
//!   posted-queue depth — the costs that penalize huge non-blocking
//!   windows at scale.

use std::cmp::Reverse;
use std::sync::atomic::Ordering;

use a2a_sched::ScheduleSource;
use a2a_topo::{ProcGrid, Rank};

use crate::horizon::{link_floors, node_ranges, ShardSync};
use crate::model::CostModel;
use crate::report::SimReport;
use crate::shard::{Ctx, Event, Shard};

pub use crate::horizon::ShardStats;

/// Simulation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOptions {
    /// Multiplicative noise amplitude on CPU-side costs (0.0 = exact).
    pub jitter: f64,
    /// Noise seed.
    pub seed: u64,
}

/// Options for the sharded parallel engine.
#[derive(Debug, Clone, Copy)]
pub struct ShardOptions {
    /// Worker threads (= shards; capped at the node count). 0 means "use
    /// the host's available parallelism".
    pub workers: usize,
    /// Multiplier in `(0, 1]` on the conservative lookahead horizon.
    /// 1.0 uses the full safe horizon; smaller values synchronize more
    /// often but must never change the result (lookahead-safety tests).
    /// Values outside the interval are treated as 1.0.
    pub lookahead_scale: f64,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            workers: 1,
            lookahead_scale: 1.0,
        }
    }
}

impl ShardOptions {
    /// `workers` threads with the full lookahead horizon.
    pub fn with_workers(workers: usize) -> Self {
        ShardOptions {
            workers,
            ..Default::default()
        }
    }
}

/// Deterministic perturbations applied on top of the cost model: straggler
/// CPU slowdowns and degraded inter-node links. Plain data so any fault
/// layer (e.g. `a2a_faults::FaultPlan`) can be lowered onto the simulator
/// without the engine depending on it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Perturb {
    /// Per-rank CPU slowdown multipliers (index = rank; missing ranks and
    /// an empty vec mean 1.0). Scales copy costs and send/recv overheads —
    /// the straggler model.
    pub rank_slowdown: Vec<f64>,
    /// Directed degraded links: `(from_node, to_node, multiplier)` scales
    /// NIC occupancy and wire time for traffic on that link.
    pub link_multiplier: Vec<(usize, usize, f64)>,
}

impl Perturb {
    pub fn is_empty(&self) -> bool {
        self.rank_slowdown.iter().all(|&s| s == 1.0)
            && self.link_multiplier.iter().all(|&(_, _, m)| m == 1.0)
    }

    /// CPU slowdown for `rank` (1.0 if unspecified).
    pub fn slowdown(&self, rank: Rank) -> f64 {
        self.rank_slowdown
            .get(rank as usize)
            .copied()
            .unwrap_or(1.0)
    }

    /// Cost multiplier for the directed link `from_node -> to_node`.
    pub fn link(&self, from_node: usize, to_node: usize) -> f64 {
        self.link_multiplier
            .iter()
            .find(|&&(f, t, _)| f == from_node && t == to_node)
            .map(|&(_, _, m)| m)
            .unwrap_or(1.0)
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Ranks remained blocked with no pending events (schedule bug).
    Deadlock { unfinished: usize },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { unfinished } => {
                write!(f, "simulation deadlock: {unfinished} ranks unfinished")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Simulate `source` on `grid` under `model`. Returns per-rank completion
/// times and per-phase breakdowns in a [`SimReport`].
pub fn simulate(
    source: &dyn ScheduleSource,
    grid: &ProcGrid,
    model: &CostModel,
    opts: &SimOptions,
) -> Result<SimReport, SimError> {
    simulate_perturbed(source, grid, model, opts, &Perturb::default())
}

/// [`simulate`] with straggler/degraded-link perturbations applied — the
/// substrate for chaos sweeps measuring slowdown-under-faults.
pub fn simulate_perturbed(
    source: &dyn ScheduleSource,
    grid: &ProcGrid,
    model: &CostModel,
    opts: &SimOptions,
    perturb: &Perturb,
) -> Result<SimReport, SimError> {
    let (phase_names, nphases) = phase_meta(source, grid);
    let ctx = Ctx {
        grid,
        model,
        perturb,
        jitter: opts.jitter,
        nphases,
    };
    let mut shard = Shard::build(&ctx, 0, 0, grid.machine().nodes, source, opts.seed);
    run_single(&mut shard);
    assemble(&[shard], phase_names, nphases)
}

/// [`simulate_sharded_perturbed`] without perturbations.
pub fn simulate_sharded(
    source: &(dyn ScheduleSource + Sync),
    grid: &ProcGrid,
    model: &CostModel,
    opts: &SimOptions,
    sopts: &ShardOptions,
) -> Result<SimReport, SimError> {
    simulate_sharded_perturbed(source, grid, model, opts, &Perturb::default(), sopts)
}

/// Run the conservative parallel engine: nodes partitioned into contiguous
/// shards, one worker thread each. Byte-identical to [`simulate_perturbed`]
/// for any worker count.
pub fn simulate_sharded_perturbed(
    source: &(dyn ScheduleSource + Sync),
    grid: &ProcGrid,
    model: &CostModel,
    opts: &SimOptions,
    perturb: &Perturb,
    sopts: &ShardOptions,
) -> Result<SimReport, SimError> {
    simulate_sharded_stats(source, grid, model, opts, perturb, sopts).map(|(rep, _)| rep)
}

/// [`simulate_sharded_perturbed`], also returning engine statistics
/// (events processed, cross-shard traffic, causality-violation count).
pub fn simulate_sharded_stats(
    source: &(dyn ScheduleSource + Sync),
    grid: &ProcGrid,
    model: &CostModel,
    opts: &SimOptions,
    perturb: &Perturb,
    sopts: &ShardOptions,
) -> Result<(SimReport, ShardStats), SimError> {
    let (phase_names, nphases) = phase_meta(source, grid);
    let ctx = Ctx {
        grid,
        model,
        perturb,
        jitter: opts.jitter,
        nphases,
    };
    let nodes = grid.machine().nodes;
    let requested = if sopts.workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        sopts.workers
    };
    let scale = if sopts.lookahead_scale > 0.0 && sopts.lookahead_scale <= 1.0 {
        sopts.lookahead_scale
    } else {
        1.0
    };

    let mut nshards = requested.clamp(1, nodes);
    let mut sync = None;
    if nshards > 1 {
        let floors = link_floors(grid, model, perturb);
        // A zero/degenerate link floor leaves no safe horizon: fall back
        // to the sequential single-shard path.
        match ShardSync::new(&node_ranges(nodes, nshards), &floors, scale) {
            Some(s) => sync = Some(s),
            None => nshards = 1,
        }
    }

    if nshards == 1 {
        let mut shard = Shard::build(&ctx, 0, 0, nodes, source, opts.seed);
        run_single(&mut shard);
        let stats = ShardStats {
            shards: 1,
            workers: 1,
            events: shard.events,
            cross_events: 0,
            causality_violations: 0,
        };
        return assemble(&[shard], phase_names, nphases).map(|rep| (rep, stats));
    }

    let sync = sync.expect("sync built for nshards > 1");
    let ranges = node_ranges(nodes, nshards);
    let ctx_ref = &ctx;
    let sync_ref = &sync;
    let shards: Vec<Shard> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(id, &(lo, hi))| {
                scope.spawn(move || {
                    // Build inside the worker so schedule construction
                    // parallelizes too, then announce the seeded events
                    // before anyone can observe a zero pending count.
                    let mut shard = Shard::build(ctx_ref, id, lo, hi, source, opts.seed);
                    sync_ref
                        .pending
                        .fetch_add(shard.seeded_events() as i64, Ordering::SeqCst);
                    sync_ref.ready(id);
                    run_worker(&mut shard, sync_ref);
                    shard
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let stats = ShardStats {
        shards: nshards,
        workers: nshards,
        events: shards.iter().map(|s| s.events).sum(),
        cross_events: sync.cross_events.load(Ordering::Relaxed),
        causality_violations: shards.iter().map(|s| s.violations).sum(),
    };
    assemble(&shards, phase_names, nphases).map(|rep| (rep, stats))
}

fn phase_meta(source: &dyn ScheduleSource, grid: &ProcGrid) -> (Vec<String>, usize) {
    let n = source.nranks();
    assert_eq!(n, grid.world_size(), "schedule/grid world size mismatch");
    let phase_names: Vec<String> = source.phase_names().iter().map(|s| s.to_string()).collect();
    let nphases = phase_names.len().max(1);
    (phase_names, nphases)
}

/// Sequential driver: one shard owns everything, no synchronization.
fn run_single(shard: &mut Shard) {
    let mut out = Vec::new();
    while let Some(Reverse(ev)) = shard.heap.pop() {
        shard.handle(ev, &mut out);
        debug_assert!(out.is_empty(), "single shard emitted cross-shard event");
    }
}

/// Conservative parallel worker: advance barrier-free behind the lookahead
/// horizon, publish monotone bounds, stop when no events remain anywhere.
fn run_worker(shard: &mut Shard, sync: &ShardSync) {
    let s = shard.id;
    let mut out: Vec<Event> = Vec::new();
    loop {
        // Horizon first, inbox second: anything a peer emitted under a
        // bound we are about to read was flushed to our inbox before that
        // bound was published, so it cannot be missed below.
        let mut h = f64::INFINITY;
        for u in 0..sync.nshards() {
            if u != s {
                h = h.min(sync.bound(u) + sync.lookahead(u, s));
            }
        }

        let mut drained = false;
        for ev in sync.take_inbox(s) {
            drained = true;
            if shard.last_key.is_some_and(|last| ev.key < last) {
                shard.violations += 1;
            }
            shard.heap.push(Reverse(ev));
        }

        let mut processed: i64 = 0;
        let mut emitted: i64 = 0;
        while shard.heap.peek().is_some_and(|Reverse(ev)| ev.key.time < h) {
            let Reverse(ev) = shard.heap.pop().unwrap();
            shard.last_key = Some(ev.key);
            let local_before = shard.heap.len();
            shard.handle(ev, &mut out);
            emitted += (shard.heap.len() - local_before) as i64 + out.len() as i64;
            processed += 1;
            if !out.is_empty() {
                sync.cross_events
                    .fetch_add(out.len() as u64, Ordering::Relaxed);
                for e in out.drain(..) {
                    let dn = shard.ctx.grid.node_of(e.dest_rank());
                    sync.push_cross(dn, e);
                }
            }
        }

        // Publish the guarantee *after* flushing every emission above:
        // nothing this shard ever processes — current heap, or future
        // arrivals (all >= h by the lookahead argument) — sits below it.
        let local_min = shard
            .heap
            .peek()
            .map_or(f64::INFINITY, |Reverse(ev)| ev.key.time);
        sync.publish(s, local_min.min(h));

        // One atomic delta per batch keeps the live-event counter exact:
        // it cannot read zero while any batch still has unapplied work.
        if processed != 0 || emitted != 0 {
            sync.pending
                .fetch_add(emitted - processed, Ordering::SeqCst);
        }
        if sync.all_ready() && sync.pending.load(Ordering::SeqCst) == 0 {
            break;
        }
        if processed == 0 && !drained {
            std::thread::yield_now();
        }
    }
}

/// Stitch shard results into one report, iterating shards (ordered by
/// node range) and ranks (ordered within each shard) so every reduction
/// runs in global rank order — bit-identical for any shard count.
fn assemble(
    shards: &[Shard],
    phase_names: Vec<String>,
    nphases: usize,
) -> Result<SimReport, SimError> {
    let world: usize = shards.iter().map(|s| s.ranks.len()).sum();
    let mut unfinished = 0;
    let mut rank_finish = Vec::with_capacity(world);
    let mut phase_max = vec![0.0f64; nphases];
    let mut phase_sum = vec![0.0f64; nphases];
    let mut phase_rank0 = vec![0.0f64; nphases];
    let mut msgs_per_level = [0usize; 4];
    let mut bytes_per_level = [0u64; 4];
    for shard in shards {
        for st in &shard.ranks {
            if !st.done() {
                unfinished += 1;
            }
            rank_finish.push(st.clock);
            for (p, &t) in st.phase_time.iter().enumerate() {
                phase_max[p] = phase_max[p].max(t);
                phase_sum[p] += t;
            }
        }
        for i in 0..4 {
            msgs_per_level[i] += shard.msgs_per_level[i];
            bytes_per_level[i] += shard.bytes_per_level[i];
        }
    }
    if unfinished > 0 {
        return Err(SimError::Deadlock { unfinished });
    }
    if let Some(first) = shards.first() {
        if let Some(r0) = first.ranks.first() {
            phase_rank0.copy_from_slice(&r0.phase_time);
        }
    }
    let total_us = rank_finish.iter().cloned().fold(0.0, f64::max);
    let phase_mean: Vec<f64> = phase_sum.iter().map(|s| s / world as f64).collect();
    Ok(SimReport {
        total_us,
        rank_finish,
        phase_names,
        phase_max_us: phase_max,
        phase_mean_us: phase_mean,
        phase_rank0_us: phase_rank0,
        msgs_per_level,
        bytes_per_level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_sched::{Block, Bytes, Phase, ProgBuilder, RankProgram, RBUF, SBUF};
    use a2a_topo::{Level, Machine};

    /// Two ranks exchanging one message each; configurable size and shape.
    struct Swap {
        s: Bytes,
        grid: ProcGrid,
    }

    impl Swap {
        fn internode(s: Bytes) -> Self {
            Swap {
                s,
                grid: ProcGrid::new(Machine::custom("t", 2, 1, 1, 1)),
            }
        }
        fn intranode(s: Bytes) -> Self {
            Swap {
                s,
                grid: ProcGrid::new(Machine::custom("t", 1, 1, 1, 2)),
            }
        }
    }

    impl ScheduleSource for Swap {
        fn nranks(&self) -> usize {
            2
        }
        fn buffers(&self, _r: Rank) -> Vec<Bytes> {
            vec![self.s, self.s]
        }
        fn build_rank(&self, r: Rank) -> RankProgram {
            let peer = 1 - r;
            let mut b = ProgBuilder::new(Phase(0));
            b.sendrecv(
                peer,
                Block::new(SBUF, 0, self.s),
                0,
                peer,
                Block::new(RBUF, 0, self.s),
                0,
            );
            b.finish()
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["exchange"]
        }
    }

    fn sim(src: &Swap) -> SimReport {
        simulate(
            src,
            &src.grid.clone(),
            &crate::models::dane(),
            &SimOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn internode_swap_has_sane_time() {
        let src = Swap::internode(1024);
        let rep = sim(&src);
        let m = crate::models::dane();
        // Must at least pay posting + NIC + wire + match.
        let lower = m.o_send + m.nic_occupancy(1024) + m.level(Level::InterNode).wire(1024);
        assert!(rep.total_us > lower, "{} <= {lower}", rep.total_us);
        assert!(rep.total_us < 100.0, "unreasonably slow: {}", rep.total_us);
    }

    #[test]
    fn intranode_cheaper_than_internode() {
        let a = sim(&Swap::intranode(4096)).total_us;
        let b = sim(&Swap::internode(4096)).total_us;
        assert!(a < b, "intra {a} >= inter {b}");
    }

    #[test]
    fn bigger_messages_take_longer() {
        let a = sim(&Swap::internode(64)).total_us;
        let b = sim(&Swap::internode(65536)).total_us;
        assert!(a < b);
    }

    #[test]
    fn rendezvous_kicks_in_above_threshold() {
        let m = crate::models::dane();
        let small = sim(&Swap::internode(m.eager_threshold)).total_us;
        let big = sim(&Swap::internode(m.eager_threshold + 1)).total_us;
        assert!(big > small);
    }

    #[test]
    fn rendezvous_pays_the_handshake_round_trip() {
        // The RTS/CTS handshake costs at least two extra one-way latencies
        // over a hypothetical eager transfer of the same size.
        let m = crate::models::dane();
        let mut eager_model = m.clone();
        eager_model.eager_threshold = u64::MAX; // force eager at any size
        let s = m.eager_threshold * 2;
        let src = Swap::internode(s);
        let rdv = simulate(&src, &src.grid, &m, &SimOptions::default())
            .unwrap()
            .total_us;
        let eager = simulate(&src, &src.grid, &eager_model, &SimOptions::default())
            .unwrap()
            .total_us;
        let alpha = m.level(Level::InterNode).alpha;
        assert!(
            rdv >= eager + 2.0 * alpha - 1e-9,
            "rdv {rdv} vs eager {eager} + 2*alpha {alpha}"
        );
    }

    #[test]
    fn deterministic_without_jitter() {
        let src = Swap::internode(512);
        let a = sim(&src);
        let b = sim(&src);
        assert_eq!(a.total_us, b.total_us);
        assert_eq!(a.rank_finish, b.rank_finish);
    }

    #[test]
    fn jitter_changes_times_but_same_seed_reproduces() {
        let src = Swap::internode(512);
        let opts1 = SimOptions {
            jitter: 0.05,
            seed: 7,
        };
        let opts2 = SimOptions {
            jitter: 0.05,
            seed: 8,
        };
        let m = crate::models::dane();
        let a = simulate(&src, &src.grid, &m, &opts1).unwrap().total_us;
        let a2 = simulate(&src, &src.grid, &m, &opts1).unwrap().total_us;
        let b = simulate(&src, &src.grid, &m, &opts2).unwrap().total_us;
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn phase_times_cover_rank_finish() {
        let src = Swap::internode(512);
        let rep = sim(&src);
        let finish = rep.rank_finish.iter().cloned().fold(0.0, f64::max);
        assert!((rep.phase_max_us[0] - finish).abs() < 1e-9);
    }

    /// A deadlocking schedule must be reported, not hang.
    struct DeadSwap;

    impl ScheduleSource for DeadSwap {
        fn nranks(&self) -> usize {
            2
        }
        fn buffers(&self, _r: Rank) -> Vec<Bytes> {
            vec![8, 8]
        }
        fn build_rank(&self, r: Rank) -> RankProgram {
            let mut b = ProgBuilder::new(Phase(0));
            // Recv that nobody sends.
            b.recv(1 - r, Block::new(RBUF, 0, 8), 9);
            b.finish()
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["x"]
        }
    }

    #[test]
    fn deadlock_detected() {
        let grid = ProcGrid::new(Machine::custom("t", 1, 1, 1, 2));
        let err = simulate(
            &DeadSwap,
            &grid,
            &crate::models::dane(),
            &SimOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::Deadlock { unfinished: 2 });
    }

    #[test]
    fn sharded_deadlock_detected_too() {
        let grid = ProcGrid::new(Machine::custom("t", 2, 1, 1, 1));
        let err = simulate_sharded(
            &DeadSwap,
            &grid,
            &crate::models::dane(),
            &SimOptions::default(),
            &ShardOptions::with_workers(2),
        )
        .unwrap_err();
        assert_eq!(err, SimError::Deadlock { unfinished: 2 });
    }

    #[test]
    fn nic_serializes_node_traffic() {
        // 2 ranks on node 0 each sending to their counterpart on node 1:
        // with a shared NIC the second message arrives later than a single
        // message would.
        struct TwoSenders;
        impl ScheduleSource for TwoSenders {
            fn nranks(&self) -> usize {
                4
            }
            fn buffers(&self, _r: Rank) -> Vec<Bytes> {
                vec![4096, 4096]
            }
            fn build_rank(&self, r: Rank) -> RankProgram {
                let mut b = ProgBuilder::new(Phase(0));
                match r {
                    0 | 1 => b.send(r + 2, Block::new(SBUF, 0, 4096), 0),
                    _ => b.recv(r - 2, Block::new(RBUF, 0, 4096), 0),
                }
                b.finish()
            }
            fn phase_names(&self) -> Vec<&'static str> {
                vec!["x"]
            }
        }
        let grid = ProcGrid::new(Machine::custom("t", 2, 1, 1, 2));
        let m = crate::models::dane();
        let rep = simulate(&TwoSenders, &grid, &m, &SimOptions::default()).unwrap();
        let d = (rep.rank_finish[2] - rep.rank_finish[3]).abs();
        assert!(
            d >= m.nic_occupancy(4096) * 0.9,
            "NIC serialization not visible: delta {d}"
        );
    }

    #[test]
    fn rendezvous_sender_blocks_until_receiver_posts() {
        // Sender posts a big send immediately; receiver dawdles with local
        // copies first. The sender's finish time must track the receiver.
        struct LateRecv {
            s: Bytes,
            delay_copies: usize,
        }
        impl ScheduleSource for LateRecv {
            fn nranks(&self) -> usize {
                2
            }
            fn buffers(&self, _r: Rank) -> Vec<Bytes> {
                vec![self.s, self.s]
            }
            fn build_rank(&self, r: Rank) -> RankProgram {
                let mut b = ProgBuilder::new(Phase(0));
                if r == 0 {
                    b.send(1, Block::new(SBUF, 0, self.s), 0);
                } else {
                    for _ in 0..self.delay_copies {
                        b.copy(Block::new(SBUF, 0, self.s), Block::new(RBUF, 0, self.s));
                    }
                    b.recv(0, Block::new(RBUF, 0, self.s), 0);
                }
                b.finish()
            }
            fn phase_names(&self) -> Vec<&'static str> {
                vec!["x"]
            }
        }
        let grid = ProcGrid::new(Machine::custom("t", 2, 1, 1, 1));
        let m = crate::models::dane();
        let big = m.eager_threshold * 4;
        let fast = simulate(
            &LateRecv {
                s: big,
                delay_copies: 0,
            },
            &grid,
            &m,
            &SimOptions::default(),
        )
        .unwrap();
        let slow = simulate(
            &LateRecv {
                s: big,
                delay_copies: 50,
            },
            &grid,
            &m,
            &SimOptions::default(),
        )
        .unwrap();
        assert!(
            slow.rank_finish[0] > fast.rank_finish[0] + 1.0,
            "sender did not block on rendezvous: {} vs {}",
            slow.rank_finish[0],
            fast.rank_finish[0]
        );
    }

    #[test]
    fn numa_domains_are_parallel_but_upi_serializes() {
        // Two big transfer pairs: staying in their own NUMA domains they
        // proceed in parallel; both crossing sockets they share the node's
        // UPI and serialize.
        struct Pairs {
            cross_socket: bool,
        }
        impl ScheduleSource for Pairs {
            fn nranks(&self) -> usize {
                8 // 2 sockets x 2 NUMA x 2 cores
            }
            fn buffers(&self, _r: Rank) -> Vec<Bytes> {
                vec![1 << 20, 1 << 20]
            }
            fn build_rank(&self, r: Rank) -> RankProgram {
                // Aligned: 0->1 (NUMA 0), 2->3 (NUMA 1).
                // Crossing: 0->4, 2->6 (both socket 0 -> socket 1).
                let mut b = ProgBuilder::new(Phase(0));
                let big = 1u64 << 20;
                let peer_off: Rank = if self.cross_socket { 4 } else { 1 };
                if r == 0 || r == 2 {
                    b.send(r + peer_off, Block::new(SBUF, 0, big), 0);
                } else if r >= peer_off && (r - peer_off == 0 || r - peer_off == 2) {
                    b.recv(r - peer_off, Block::new(RBUF, 0, big), 0);
                }
                b.finish()
            }
            fn phase_names(&self) -> Vec<&'static str> {
                vec!["x"]
            }
        }
        let grid = ProcGrid::new(Machine::custom("t", 1, 2, 2, 2));
        let mut m = crate::models::dane();
        m.eager_threshold_intra = 4 << 20; // keep the transfers eager
        let par = simulate(
            &Pairs {
                cross_socket: false,
            },
            &grid,
            &m,
            &SimOptions::default(),
        )
        .unwrap()
        .total_us;
        let ser = simulate(
            &Pairs { cross_socket: true },
            &grid,
            &m,
            &SimOptions::default(),
        )
        .unwrap()
        .total_us;
        let occupancy = (1u64 << 20) as f64 * m.upi_per_byte;
        assert!(
            ser > par + 0.5 * occupancy,
            "UPI serialization invisible: parallel {par}, crossing {ser}"
        );
    }

    #[test]
    fn empty_perturb_matches_plain_simulate() {
        let src = Swap::internode(1024);
        let m = crate::models::dane();
        let a = simulate(&src, &src.grid, &m, &SimOptions::default()).unwrap();
        let b = simulate_perturbed(
            &src,
            &src.grid,
            &m,
            &SimOptions::default(),
            &Perturb::default(),
        )
        .unwrap();
        assert_eq!(a.total_us, b.total_us);
        assert_eq!(a.rank_finish, b.rank_finish);
    }

    #[test]
    fn straggler_slowdown_stretches_completion() {
        let src = Swap::intranode(4096);
        let m = crate::models::dane();
        let clean = simulate(&src, &src.grid, &m, &SimOptions::default()).unwrap();
        let p = Perturb {
            rank_slowdown: vec![8.0, 1.0],
            link_multiplier: vec![],
        };
        let slow = simulate_perturbed(&src, &src.grid, &m, &SimOptions::default(), &p).unwrap();
        assert!(
            slow.total_us > clean.total_us,
            "straggler invisible: {} vs {}",
            slow.total_us,
            clean.total_us
        );
    }

    #[test]
    fn degraded_link_stretches_internode_traffic_only() {
        let m = crate::models::dane();
        let inter = Swap::internode(65536);
        let clean = simulate(&inter, &inter.grid, &m, &SimOptions::default()).unwrap();
        let p = Perturb {
            rank_slowdown: vec![],
            link_multiplier: vec![(0, 1, 10.0), (1, 0, 10.0)],
        };
        let degraded =
            simulate_perturbed(&inter, &inter.grid, &m, &SimOptions::default(), &p).unwrap();
        assert!(degraded.total_us > clean.total_us * 2.0);

        // Intra-node traffic never touches the degraded link.
        let intra = Swap::intranode(65536);
        let a = simulate(&intra, &intra.grid, &m, &SimOptions::default()).unwrap();
        let b = simulate_perturbed(&intra, &intra.grid, &m, &SimOptions::default(), &p).unwrap();
        assert_eq!(a.total_us, b.total_us);
    }

    #[test]
    fn perturbed_sim_is_deterministic() {
        let src = Swap::internode(2048);
        let m = crate::models::dane();
        let p = Perturb {
            rank_slowdown: vec![3.0, 1.0],
            link_multiplier: vec![(0, 1, 5.0)],
        };
        let a = simulate_perturbed(&src, &src.grid, &m, &SimOptions::default(), &p).unwrap();
        let b = simulate_perturbed(&src, &src.grid, &m, &SimOptions::default(), &p).unwrap();
        assert_eq!(a.total_us, b.total_us);
        assert_eq!(a.rank_finish, b.rank_finish);
    }

    #[test]
    fn traffic_counters_track_levels() {
        let src = Swap::internode(512);
        let rep = sim(&src);
        assert_eq!(rep.msgs_per_level, [0, 0, 0, 2]);
        assert_eq!(rep.bytes_per_level, [0, 0, 0, 1024]);
        let src = Swap::intranode(512);
        let rep = sim(&src);
        assert_eq!(rep.msgs_per_level, [2, 0, 0, 0]);
    }

    #[test]
    fn leader_phase_view_excludes_member_wait() {
        // Rank 0 works; rank 1 waits for it. Rank 1's wait inflates the
        // max view of the handoff phase but not rank 0's leader view.
        struct Lopsided;
        impl ScheduleSource for Lopsided {
            fn nranks(&self) -> usize {
                2
            }
            fn buffers(&self, _r: Rank) -> Vec<Bytes> {
                vec![4096, 4096]
            }
            fn build_rank(&self, r: Rank) -> RankProgram {
                let mut b = ProgBuilder::new(Phase(0));
                if r == 0 {
                    for _ in 0..50 {
                        b.copy(Block::new(SBUF, 0, 4096), Block::new(RBUF, 0, 4096));
                    }
                    b.set_phase(Phase(1));
                    b.send(1, Block::new(SBUF, 0, 64), 0);
                } else {
                    b.set_phase(Phase(1));
                    b.recv(0, Block::new(RBUF, 0, 64), 0);
                }
                b.finish()
            }
            fn phase_names(&self) -> Vec<&'static str> {
                vec!["work", "handoff"]
            }
        }
        let grid = ProcGrid::new(Machine::custom("t", 1, 1, 1, 2));
        let rep = simulate(
            &Lopsided,
            &grid,
            &crate::models::dane(),
            &SimOptions::default(),
        )
        .unwrap();
        assert!(rep.phase("handoff").unwrap() > rep.phase_leader("handoff").unwrap() * 5.0);
        assert!(rep.phase_rank0_us[0] > rep.phase_rank0_us[1] * 10.0);
    }

    #[test]
    fn queue_search_penalizes_deep_queues() {
        // One receiver; many senders with eager messages arriving before
        // any receive posts. The receiver's posting cost grows with the
        // unexpected-queue depth; total must exceed the single-sender case
        // by more than the extra wire time alone.
        struct Fan {
            k: usize,
        }
        impl ScheduleSource for Fan {
            fn nranks(&self) -> usize {
                self.k + 1
            }
            fn buffers(&self, _r: Rank) -> Vec<Bytes> {
                vec![64 * self.k as Bytes, 64 * self.k as Bytes]
            }
            fn build_rank(&self, r: Rank) -> RankProgram {
                let mut b = ProgBuilder::new(Phase(0));
                if r == 0 {
                    // Delay, then post all receives.
                    for _ in 0..20 {
                        b.copy(Block::new(SBUF, 0, 64), Block::new(RBUF, 0, 64));
                    }
                    let first = b.req_mark();
                    for i in 0..self.k {
                        b.irecv(i as Rank + 1, Block::new(RBUF, i as Bytes * 64, 64), 0);
                    }
                    b.waitall(first, self.k as u32);
                } else {
                    b.send(0, Block::new(SBUF, 0, 64), 0);
                }
                b.finish()
            }
            fn phase_names(&self) -> Vec<&'static str> {
                vec!["x"]
            }
        }
        let m = crate::models::dane();
        let g1 = ProcGrid::new(Machine::custom("t", 1, 1, 1, 33));
        let rep = simulate(&Fan { k: 32 }, &g1, &m, &SimOptions::default()).unwrap();
        // Receiver posting cost alone: sum over posts of qs * depth where
        // depth starts at 32.
        let min_queue_cost: f64 = (0..32).map(|i| m.queue_search * (32 - i) as f64).sum();
        assert!(
            rep.rank_finish[0] > min_queue_cost,
            "queue search not charged"
        );
    }

    /// All-to-all-ish exchange over several nodes: every rank sends one
    /// message to every other rank. Exercises eager + rendezvous, intra +
    /// inter node paths at once.
    struct FullExchange {
        s: Bytes,
        grid: ProcGrid,
    }

    impl ScheduleSource for FullExchange {
        fn nranks(&self) -> usize {
            self.grid.world_size()
        }
        fn buffers(&self, _r: Rank) -> Vec<Bytes> {
            let n = self.grid.world_size() as Bytes;
            vec![self.s * n, self.s * n]
        }
        fn build_rank(&self, r: Rank) -> RankProgram {
            let n = self.grid.world_size() as Rank;
            let mut b = ProgBuilder::new(Phase(0));
            let first = b.req_mark();
            for i in 1..n {
                let peer = (r + i) % n;
                b.irecv(peer, Block::new(RBUF, peer as Bytes * self.s, self.s), 0);
            }
            for i in 1..n {
                let peer = (r + n - i) % n;
                b.isend(peer, Block::new(SBUF, peer as Bytes * self.s, self.s), 0);
            }
            b.waitall(first, 2 * (n - 1));
            b.finish()
        }
        fn phase_names(&self) -> Vec<&'static str> {
            vec!["a2a"]
        }
    }

    fn identical(a: &SimReport, b: &SimReport) {
        assert_eq!(a.total_us.to_bits(), b.total_us.to_bits());
        assert_eq!(a.rank_finish.len(), b.rank_finish.len());
        for (x, y) in a.rank_finish.iter().zip(&b.rank_finish) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.phase_mean_us.iter().zip(&b.phase_mean_us) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.msgs_per_level, b.msgs_per_level);
        assert_eq!(a.bytes_per_level, b.bytes_per_level);
    }

    #[test]
    fn sharded_matches_sequential_bit_for_bit() {
        let m = crate::models::dane();
        for s in [64u64, 65536] {
            let src = FullExchange {
                s,
                grid: ProcGrid::new(Machine::custom("t", 4, 1, 1, 4)),
            };
            let opts = SimOptions::default();
            let seq = simulate(&src, &src.grid, &m, &opts).unwrap();
            for workers in [1usize, 2, 3, 4, 8] {
                let sh = simulate_sharded(
                    &src,
                    &src.grid,
                    &m,
                    &opts,
                    &ShardOptions::with_workers(workers),
                )
                .unwrap();
                identical(&seq, &sh);
            }
        }
    }

    #[test]
    fn sharded_matches_sequential_with_jitter_and_perturb() {
        let m = crate::models::dane();
        let src = FullExchange {
            s: 2048,
            grid: ProcGrid::new(Machine::custom("t", 4, 1, 1, 2)),
        };
        let opts = SimOptions {
            jitter: 0.05,
            seed: 42,
        };
        let p = Perturb {
            rank_slowdown: vec![1.0, 4.0],
            link_multiplier: vec![(0, 2, 3.0)],
        };
        let seq = simulate_perturbed(&src, &src.grid, &m, &opts, &p).unwrap();
        for workers in [2usize, 4] {
            let sh = simulate_sharded_perturbed(
                &src,
                &src.grid,
                &m,
                &opts,
                &p,
                &ShardOptions::with_workers(workers),
            )
            .unwrap();
            identical(&seq, &sh);
        }
    }

    #[test]
    fn sharded_stats_report_no_violations() {
        let m = crate::models::dane();
        let src = FullExchange {
            s: 1024,
            grid: ProcGrid::new(Machine::custom("t", 4, 1, 1, 2)),
        };
        let (rep, stats) = simulate_sharded_stats(
            &src,
            &src.grid,
            &m,
            &SimOptions::default(),
            &Perturb::default(),
            &ShardOptions::with_workers(4),
        )
        .unwrap();
        assert!(rep.total_us > 0.0);
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.causality_violations, 0);
        assert!(stats.events > 0);
        assert!(stats.cross_events > 0, "no cross-shard traffic observed");
    }

    #[test]
    fn zero_lookahead_falls_back_to_single_shard() {
        // A zero link multiplier kills the safe horizon; the engine must
        // fall back to one shard rather than misorder events.
        let m = crate::models::dane();
        let src = FullExchange {
            s: 256,
            grid: ProcGrid::new(Machine::custom("t", 2, 1, 1, 2)),
        };
        let p = Perturb {
            rank_slowdown: vec![],
            link_multiplier: vec![(0, 1, 0.0)],
        };
        let opts = SimOptions::default();
        let (rep, stats) = simulate_sharded_stats(
            &src,
            &src.grid,
            &m,
            &opts,
            &p,
            &ShardOptions::with_workers(2),
        )
        .unwrap();
        assert_eq!(stats.shards, 1);
        let seq = simulate_perturbed(&src, &src.grid, &m, &opts, &p).unwrap();
        identical(&seq, &rep);
    }

    #[test]
    fn workers_capped_at_node_count() {
        let m = crate::models::dane();
        let src = FullExchange {
            s: 128,
            grid: ProcGrid::new(Machine::custom("t", 2, 1, 1, 2)),
        };
        let (_, stats) = simulate_sharded_stats(
            &src,
            &src.grid,
            &m,
            &SimOptions::default(),
            &Perturb::default(),
            &ShardOptions::with_workers(16),
        )
        .unwrap();
        assert_eq!(stats.shards, 2);
    }

    #[test]
    fn tight_lookahead_is_safe_and_identical() {
        let m = crate::models::dane();
        let src = FullExchange {
            s: 4096,
            grid: ProcGrid::new(Machine::custom("t", 4, 1, 1, 2)),
        };
        let opts = SimOptions::default();
        let seq = simulate(&src, &src.grid, &m, &opts).unwrap();
        let (rep, stats) = simulate_sharded_stats(
            &src,
            &src.grid,
            &m,
            &opts,
            &Perturb::default(),
            &ShardOptions {
                workers: 4,
                lookahead_scale: 0.05,
            },
        )
        .unwrap();
        assert_eq!(stats.causality_violations, 0);
        identical(&seq, &rep);
    }
}
