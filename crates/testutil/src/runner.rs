//! Seeded randomized case runner: the proptest replacement.
//!
//! Each suite calls [`run_cases`] with a generator (params from an [`Rng`])
//! and a checker. Every case gets its own derived seed, so a failure message
//! contains everything needed to replay exactly that case:
//!
//! ```text
//! hierarchical_always_transposes: case 17/64 FAILED (case seed 0x8c5…)
//!   params: (ProcGrid { … }, Pairwise, 12)
//!   error: mlna(4,pairwise) wrong: rbuf mismatch at rank 3 …
//!   replay: A2A_TEST_SEED=0xa2a05eed A2A_TEST_CASES=18 cargo test <name>
//! ```

use std::fmt::Debug;

use crate::rng::Rng;

/// Default base seed (overridable with `A2A_TEST_SEED`).
pub const DEFAULT_SEED: u64 = 0xA2A0_5EED;

/// The base seed for this process: `A2A_TEST_SEED` (decimal or `0x…` hex) or
/// [`DEFAULT_SEED`].
pub fn base_seed() -> u64 {
    match std::env::var("A2A_TEST_SEED") {
        Ok(s) => parse_u64(&s)
            .unwrap_or_else(|| panic!("A2A_TEST_SEED must be a u64 (decimal or 0x-hex): {s:?}")),
        Err(_) => DEFAULT_SEED,
    }
}

/// The number of cases to run: `A2A_TEST_CASES` or the suite's default.
pub fn case_count(default_cases: usize) -> usize {
    match std::env::var("A2A_TEST_CASES") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("A2A_TEST_CASES must be a usize: {s:?}")),
        Err(_) => default_cases,
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// FNV-1a, so each named suite draws an independent stream from the same
/// base seed.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Generate and check `default_cases` randomized cases (override with
/// `A2A_TEST_CASES`); panic with a replayable message on the first failure.
///
/// `generate` draws a case's parameters from a per-case [`Rng`]; `check` returns
/// `Err(description)` for a failing case. The panic message prints the case
/// seed, the `Debug` form of the generated parameters, and the environment
/// settings that replay the failure.
pub fn run_cases<P: Debug>(
    name: &str,
    default_cases: usize,
    mut generate: impl FnMut(&mut Rng) -> P,
    mut check: impl FnMut(&P) -> Result<(), String>,
) {
    let base = base_seed();
    let cases = case_count(default_cases);
    let mut seeder = Rng::new(base ^ hash_name(name));
    for case in 0..cases {
        let case_seed = seeder.next_u64();
        let mut rng = Rng::new(case_seed);
        let params = generate(&mut rng);
        if let Err(err) = check(&params) {
            panic!(
                "{name}: case {case}/{cases} FAILED (case seed {case_seed:#x})\n  \
                 params: {params:?}\n  \
                 error: {err}\n  \
                 replay: A2A_TEST_SEED={base:#x} A2A_TEST_CASES={} cargo test {name}",
                case + 1,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_when_all_cases_pass() {
        let mut seen = Vec::new();
        run_cases(
            "all_pass",
            10,
            |rng| rng.range_u64(0, 100),
            |&x| {
                seen.push(x);
                Ok(())
            },
        );
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let collect = || {
            let mut v = Vec::new();
            run_cases(
                "det",
                5,
                |rng| rng.next_u64(),
                |&x| {
                    v.push(x);
                    Ok(())
                },
            );
            v
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn distinct_names_draw_distinct_streams() {
        let stream = |name: &str| {
            let mut v = Vec::new();
            run_cases(
                name,
                5,
                |rng| rng.next_u64(),
                |&x| {
                    v.push(x);
                    Ok(())
                },
            );
            v
        };
        assert_ne!(stream("a"), stream("b"));
    }

    #[test]
    fn failure_message_contains_seed_and_params() {
        let result = std::panic::catch_unwind(|| {
            run_cases(
                "boom",
                10,
                |rng| rng.range_u64(0, 5),
                |&x| {
                    if x < 10 {
                        Err("too small".to_string())
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("boom: case 0/10 FAILED"), "{msg}");
        assert!(msg.contains("case seed 0x"), "{msg}");
        assert!(msg.contains("params:"), "{msg}");
        assert!(msg.contains("error: too small"), "{msg}");
        assert!(msg.contains("A2A_TEST_SEED="), "{msg}");
    }
}
