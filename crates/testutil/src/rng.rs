//! SplitMix64: tiny, fast, and statistically solid for test-case generation
//! (it is the seeding generator recommended for xoshiro). Deterministic
//! across platforms — no floating point in the core step.

/// A 64-bit SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping is biased for huge spans, but
        // test ranges are tiny; simple modulo with a wide draw is fine.
        lo + self.next_u64() % span
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// True with probability `num/denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.range_u64(0, denom) < num
    }

    /// A uniformly chosen element of `items`. Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }

    /// A uniformly chosen divisor of `n` (always succeeds: 1 divides n).
    pub fn divisor_of(&mut self, n: usize) -> usize {
        let divs: Vec<usize> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
        *self.pick(&divs)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// An independent generator derived from this one's stream (for
    /// spawning per-case RNGs that don't overlap).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a: Vec<u64> = (0..8).map(|_| Rng::new(42).next_u64()).collect();
        let mut r = Rng::new(42);
        assert!(a.iter().all(|&x| x == a[0]));
        let b: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_eq!(b.len(), 8);
        assert_ne!(b[0], b[1], "stream must advance");
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 (from the canonical C code).
        let mut r = Rng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let x = r.range_u64(3, 17);
            assert!((3..17).contains(&x));
            let y = r.range_usize(0, 1);
            assert_eq!(y, 0);
        }
    }

    #[test]
    fn divisors_divide() {
        let mut r = Rng::new(9);
        for n in 1..=64usize {
            for _ in 0..8 {
                assert_eq!(n % r.divisor_of(n), 0);
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(11);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(13);
        assert!(!(0..100).any(|_| r.chance(0, 8)));
        assert!((0..100).all(|_| r.chance(8, 8)));
    }
}
