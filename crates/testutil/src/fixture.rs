//! A materialized schedule: owned programs + buffer sizes.
//!
//! The mutation harness needs to edit op lists in place, which the lazy
//! [`ScheduleSource`] sources (algorithm generators) don't allow. `capture`
//! snapshots any source into plain vectors; the result is itself a
//! `ScheduleSource`, so the validator and linter consume it unchanged.

use a2a_sched::{Bytes, RankProgram, ScheduleSource};
use a2a_topo::Rank;

/// An owned, editable snapshot of a schedule.
#[derive(Debug, Clone)]
pub struct FixedSchedule {
    pub progs: Vec<RankProgram>,
    /// Per-rank buffer sizes, indexed `[rank][buf]`.
    pub buffers: Vec<Vec<Bytes>>,
    pub phase_names: Vec<&'static str>,
}

impl FixedSchedule {
    /// Snapshot every rank of `source`.
    pub fn capture(source: &dyn ScheduleSource) -> Self {
        let n = source.nranks();
        FixedSchedule {
            progs: (0..n as Rank).map(|r| source.build_rank(r)).collect(),
            buffers: (0..n as Rank).map(|r| source.buffers(r)).collect(),
            phase_names: source.phase_names(),
        }
    }
}

impl ScheduleSource for FixedSchedule {
    fn nranks(&self) -> usize {
        self.progs.len()
    }

    fn buffers(&self, rank: Rank) -> Vec<Bytes> {
        self.buffers[rank as usize].clone()
    }

    fn rank_program(&self, rank: Rank) -> std::borrow::Cow<'_, RankProgram> {
        std::borrow::Cow::Borrowed(&self.progs[rank as usize])
    }

    fn phase_names(&self) -> Vec<&'static str> {
        self.phase_names.clone()
    }
}
