//! Deterministic, dependency-free test support.
//!
//! The workspace's randomized suites originally used `proptest`; in a
//! hermetic (registry-less) build that dependency is unavailable, so this
//! crate supplies the two pieces those suites actually need:
//!
//! * [`Rng`] — a SplitMix64 generator with the small sampling surface the
//!   tests use (ranges, choices, divisors, shuffles);
//! * [`run_cases`] — a seeded case runner that generates and checks a fixed
//!   number of cases and, on failure, prints the exact seed and generated
//!   parameters needed to replay the single failing case.
//!
//! It also hosts the static analyzer's adversarial fixtures:
//!
//! * [`FixedSchedule`] — an owned, editable snapshot of any schedule source;
//! * [`Mutation`] — seeded defect injection (dropped receives, aliased
//!   copies, sequentialized exchanges, ...), each tied to the lint code the
//!   analyzer must report.
//!
//! Reproduction knobs (environment variables):
//!
//! * `A2A_TEST_SEED`  — base seed for every suite (decimal or `0x…` hex);
//! * `A2A_TEST_CASES` — overrides each suite's case count (e.g. `1000` for a
//!   soak run, `10` for a smoke run).

mod rng;
mod runner;

pub mod fixture;
pub mod mutate;

pub use fixture::FixedSchedule;
pub use mutate::Mutation;
pub use rng::Rng;
pub use runner::{base_seed, case_count, run_cases};
