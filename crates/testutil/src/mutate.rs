//! Seeded schedule mutations: known-bad variants of known-good schedules.
//!
//! Each [`Mutation`] takes a valid schedule and injects one specific class
//! of defect, chosen deterministically from a seed. The static analyzer
//! must flag the result with the mutation's [`expected_code`] — the lint
//! suite applies every mutation across the algorithm roster and fails if
//! any mutant slips through clean. `expected_code` returns the code as a
//! string (`"A2A001"`, ...) so this crate does not depend on `a2a-lint`;
//! the lint tests translate it.
//!
//! Mutations that target race/ordering lints (A2A002+) are careful to keep
//! the schedule *valid* — a malformed mutant would short-circuit at A2A000
//! and prove nothing about the deeper passes.
//!
//! [`expected_code`]: Mutation::expected_code

use a2a_sched::{Block, Bytes, Op, Phase, RankProgram, TimedOp, RBUF, SBUF};
use a2a_topo::Rank;

use crate::fixture::FixedSchedule;
use crate::Rng;

/// One defect class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Delete an `Irecv`: its request is never posted, its send unmatched.
    DropRecv,
    /// Rewrite one send's tag to a value no receive uses.
    RetagSend,
    /// Shrink a `WaitAll` range by one: the last request is never waited.
    ShrinkWaitAll,
    /// Grow a block past its declared buffer.
    OversizeBlock,
    /// Make a `Copy` fully self-overlapping (`dst = src`).
    OverlapCopy,
    /// Split every `sendrecv` triple into blocking send-then-recv: the
    /// classic head-to-head rendezvous deadlock wherever the original
    /// exchange was mutual.
    SequentializeSendrecv,
    /// Insert a `Copy` that writes into the source of a posted-but-unwaited
    /// send (zero-copy stable-send violation).
    AliasCopyIntoPendingSend,
    /// Re-aim a pending receive at a region another pending receive is
    /// already filling.
    OverlapPendingRecvs,
    /// Split one message into two concurrent same-tag halves on both ends:
    /// correct only because transport is FIFO.
    SplitMessageSameTag,
    /// Insert a `Copy` that reads from a pending receive's destination.
    ReadPendingRecv,
    /// Swap the source blocks of two same-length sends: every byte still
    /// arrives somewhere, but from the wrong offset. Invisible to every
    /// safety pass; only the semantics prover (A2A007) sees it.
    SwapSendSource,
    /// Delete a `Copy`: the destination interval it fed is never written
    /// (or forwards undefined bytes). Valid and safety-clean (A2A008).
    DropBlock,
    /// Append a second, misdirected delivery into an interval that already
    /// holds its correct final bytes, overwriting them (A2A009).
    DoubleDeliveryClobber,
    /// Append a matched send/receive pair into a fresh scratch buffer that
    /// nothing ever reads: pure wasted bandwidth (A2A010).
    DeadCodeTransfer,
}

impl Mutation {
    pub const ALL: [Mutation; 14] = [
        Mutation::DropRecv,
        Mutation::RetagSend,
        Mutation::ShrinkWaitAll,
        Mutation::OversizeBlock,
        Mutation::OverlapCopy,
        Mutation::SequentializeSendrecv,
        Mutation::AliasCopyIntoPendingSend,
        Mutation::OverlapPendingRecvs,
        Mutation::SplitMessageSameTag,
        Mutation::ReadPendingRecv,
        Mutation::SwapSendSource,
        Mutation::DropBlock,
        Mutation::DoubleDeliveryClobber,
        Mutation::DeadCodeTransfer,
    ];

    /// The structural/safety mutants (caught by A2A000–A2A006).
    pub const SAFETY: [Mutation; 10] = [
        Mutation::DropRecv,
        Mutation::RetagSend,
        Mutation::ShrinkWaitAll,
        Mutation::OversizeBlock,
        Mutation::OverlapCopy,
        Mutation::SequentializeSendrecv,
        Mutation::AliasCopyIntoPendingSend,
        Mutation::OverlapPendingRecvs,
        Mutation::SplitMessageSameTag,
        Mutation::ReadPendingRecv,
    ];

    /// The semantic mutants: valid, safety-clean schedules that compute
    /// the wrong collective — only the dataflow prover (A2A007–A2A010)
    /// can catch them.
    pub const SEMANTIC: [Mutation; 4] = [
        Mutation::SwapSendSource,
        Mutation::DropBlock,
        Mutation::DoubleDeliveryClobber,
        Mutation::DeadCodeTransfer,
    ];

    /// Lint code the analyzer must report for this mutation.
    pub fn expected_code(self) -> &'static str {
        match self {
            Mutation::DropRecv
            | Mutation::RetagSend
            | Mutation::ShrinkWaitAll
            | Mutation::OversizeBlock
            | Mutation::OverlapCopy => "A2A000",
            Mutation::SequentializeSendrecv => "A2A001",
            Mutation::AliasCopyIntoPendingSend => "A2A002",
            Mutation::OverlapPendingRecvs => "A2A003",
            Mutation::SplitMessageSameTag => "A2A004",
            Mutation::ReadPendingRecv => "A2A006",
            Mutation::SwapSendSource => "A2A007",
            Mutation::DropBlock => "A2A008",
            Mutation::DoubleDeliveryClobber => "A2A009",
            Mutation::DeadCodeTransfer => "A2A010",
        }
    }

    /// Apply to `base`, choosing the site with `rng`. `None` when the
    /// schedule offers no applicable site (e.g. no `sendrecv` triple to
    /// sequentialize) — never a silently unmutated clone.
    pub fn apply(self, base: &FixedSchedule, rng: &mut Rng) -> Option<FixedSchedule> {
        let mut s = base.clone();
        let applied = match self {
            Mutation::DropRecv => drop_recv(&mut s, rng),
            Mutation::RetagSend => retag_send(&mut s, rng),
            Mutation::ShrinkWaitAll => shrink_waitall(&mut s, rng),
            Mutation::OversizeBlock => oversize_block(&mut s, rng),
            Mutation::OverlapCopy => overlap_copy(&mut s, rng),
            Mutation::SequentializeSendrecv => sequentialize_sendrecv(&mut s),
            Mutation::AliasCopyIntoPendingSend => alias_copy_into_pending_send(&mut s, rng),
            Mutation::OverlapPendingRecvs => overlap_pending_recvs(&mut s, rng),
            Mutation::SplitMessageSameTag => split_message_same_tag(&mut s, rng),
            Mutation::ReadPendingRecv => read_pending_recv(&mut s, rng),
            Mutation::SwapSendSource => swap_send_source(&mut s, rng),
            Mutation::DropBlock => drop_block(&mut s, rng),
            Mutation::DoubleDeliveryClobber => double_delivery_clobber(&mut s, rng),
            Mutation::DeadCodeTransfer => dead_code_transfer(&mut s, rng),
        };
        applied.then_some(s)
    }
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Mutation::DropRecv => "drop-recv",
            Mutation::RetagSend => "retag-send",
            Mutation::ShrinkWaitAll => "shrink-waitall",
            Mutation::OversizeBlock => "oversize-block",
            Mutation::OverlapCopy => "overlap-copy",
            Mutation::SequentializeSendrecv => "sequentialize-sendrecv",
            Mutation::AliasCopyIntoPendingSend => "alias-copy-into-pending-send",
            Mutation::OverlapPendingRecvs => "overlap-pending-recvs",
            Mutation::SplitMessageSameTag => "split-message-same-tag",
            Mutation::ReadPendingRecv => "read-pending-recv",
            Mutation::SwapSendSource => "swap-send-source",
            Mutation::DropBlock => "drop-block",
            Mutation::DoubleDeliveryClobber => "double-delivery-clobber",
            Mutation::DeadCodeTransfer => "dead-code-transfer",
        };
        f.write_str(name)
    }
}

/// Tag value no algorithm uses (the `tags` module stays well below this).
const UNUSED_TAG: u32 = 0x00DE_AD00;

/// All `(rank, op index)` sites satisfying `pred`.
fn sites(s: &FixedSchedule, pred: impl Fn(&Op) -> bool) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (r, prog) in s.progs.iter().enumerate() {
        for (i, top) in prog.ops.iter().enumerate() {
            if pred(&top.op) {
                out.push((r, i));
            }
        }
    }
    out
}

fn drop_recv(s: &mut FixedSchedule, rng: &mut Rng) -> bool {
    let cand = sites(s, |op| matches!(op, Op::Irecv { .. }));
    if cand.is_empty() {
        return false;
    }
    let &(r, i) = rng.pick(&cand);
    s.progs[r].ops.remove(i);
    true
}

fn retag_send(s: &mut FixedSchedule, rng: &mut Rng) -> bool {
    let cand = sites(s, |op| matches!(op, Op::Isend { .. }));
    if cand.is_empty() {
        return false;
    }
    let &(r, i) = rng.pick(&cand);
    if let Op::Isend { tag, .. } = &mut s.progs[r].ops[i].op {
        *tag = UNUSED_TAG;
    }
    true
}

fn shrink_waitall(s: &mut FixedSchedule, rng: &mut Rng) -> bool {
    let cand = sites(
        s,
        |op| matches!(op, Op::WaitAll { count, .. } if *count >= 1),
    );
    if cand.is_empty() {
        return false;
    }
    let &(r, i) = rng.pick(&cand);
    if let Op::WaitAll { count, .. } = &mut s.progs[r].ops[i].op {
        *count -= 1;
    }
    true
}

fn oversize_block(s: &mut FixedSchedule, rng: &mut Rng) -> bool {
    let cand = sites(s, |op| {
        matches!(op, Op::Isend { .. } | Op::Irecv { .. } | Op::Copy { .. })
    });
    if cand.is_empty() {
        return false;
    }
    let &(r, i) = rng.pick(&cand);
    let grow = |b: &mut Block, sizes: &[Bytes]| {
        b.len = sizes[b.buf.0 as usize] + 8;
    };
    let sizes = s.buffers[r].clone();
    match &mut s.progs[r].ops[i].op {
        Op::Isend { block, .. } | Op::Irecv { block, .. } => grow(block, &sizes),
        Op::Copy { src, .. } => grow(src, &sizes),
        _ => unreachable!(),
    }
    true
}

fn overlap_copy(s: &mut FixedSchedule, rng: &mut Rng) -> bool {
    let cand = sites(s, |op| matches!(op, Op::Copy { .. }));
    if cand.is_empty() {
        return false;
    }
    let &(r, i) = rng.pick(&cand);
    if let Op::Copy { src, dst } = &mut s.progs[r].ops[i].op {
        *dst = *src;
    }
    true
}

/// Split every `[Isend req=s, Irecv req=s+1, WaitAll{s,2}]` triple into
/// `[Isend, WaitAll{s,1}, Irecv, WaitAll{s+1,1}]` on every rank. Where the
/// original exchange was mutual (pairwise, Bruck rings) the resulting
/// blocking sends deadlock under rendezvous.
fn sequentialize_sendrecv(s: &mut FixedSchedule) -> bool {
    let mut any = false;
    for prog in &mut s.progs {
        let mut i = 0;
        while i + 2 < prog.ops.len() {
            let triple = match (&prog.ops[i].op, &prog.ops[i + 1].op, &prog.ops[i + 2].op) {
                (
                    Op::Isend { req: sr, .. },
                    Op::Irecv { req: rr, .. },
                    Op::WaitAll { first_req, count },
                ) if *rr == sr + 1 && *first_req == *sr && *count == 2 => Some(*sr),
                _ => None,
            };
            if let Some(sr) = triple {
                let phase = prog.ops[i].phase;
                prog.ops[i + 2].op = Op::WaitAll {
                    first_req: sr + 1,
                    count: 1,
                };
                prog.ops.insert(
                    i + 1,
                    TimedOp {
                        op: Op::WaitAll {
                            first_req: sr,
                            count: 1,
                        },
                        phase,
                    },
                );
                any = true;
                i += 4;
            } else {
                i += 1;
            }
        }
    }
    any
}

/// A scratch block in a buffer other than `avoid`, sized `len`, if any
/// declared buffer has room.
fn other_buffer_block(sizes: &[Bytes], avoid: Block) -> Option<Block> {
    for cand in [SBUF, RBUF] {
        if cand != avoid.buf
            && sizes
                .get(cand.0 as usize)
                .is_some_and(|&sz| sz >= avoid.len)
        {
            return Some(Block::new(cand, 0, avoid.len));
        }
    }
    None
}

fn alias_copy_into_pending_send(s: &mut FixedSchedule, rng: &mut Rng) -> bool {
    // Any Isend works: its covering WaitAll is strictly later, so a copy
    // inserted right after it writes into an in-flight source.
    let mut cand = Vec::new();
    for (r, i) in sites(s, |op| matches!(op, Op::Isend { .. })) {
        if let Op::Isend { block, .. } = s.progs[r].ops[i].op {
            if other_buffer_block(&s.buffers[r], block).is_some() {
                cand.push((r, i));
            }
        }
    }
    if cand.is_empty() {
        return false;
    }
    let &(r, i) = rng.pick(&cand);
    let (block, phase) = match &s.progs[r].ops[i] {
        TimedOp {
            op: Op::Isend { block, .. },
            phase,
        } => (*block, *phase),
        _ => unreachable!(),
    };
    let src = other_buffer_block(&s.buffers[r], block).expect("checked");
    s.progs[r].ops.insert(
        i + 1,
        TimedOp {
            op: Op::Copy { src, dst: block },
            phase,
        },
    );
    true
}

fn overlap_pending_recvs(s: &mut FixedSchedule, rng: &mut Rng) -> bool {
    // Sites where an Irecv is posted while an earlier one is still pending,
    // and re-aiming the later at the earlier's region stays in bounds.
    let mut cand: Vec<(usize, usize, Block)> = Vec::new();
    for (r, prog) in s.progs.iter().enumerate() {
        let mut pending: Vec<(u32, Block)> = Vec::new();
        for (i, top) in prog.ops.iter().enumerate() {
            match top.op {
                Op::Irecv { block, req, .. } => {
                    for &(_, pb) in &pending {
                        let end = pb.off + block.len;
                        if s.buffers[r][pb.buf.0 as usize] >= end {
                            cand.push((r, i, Block::new(pb.buf, pb.off, block.len)));
                            break;
                        }
                    }
                    pending.push((req, block));
                }
                Op::WaitAll { first_req, count } => {
                    pending.retain(|(q, _)| *q < first_req || *q >= first_req + count);
                }
                _ => {}
            }
        }
    }
    if cand.is_empty() {
        return false;
    }
    let &(r, i, aim) = rng.pick(&cand);
    if let Op::Irecv { block, .. } = &mut s.progs[r].ops[i].op {
        *block = aim;
    }
    true
}

/// First `WaitAll` at or after `from` covering `req`.
fn covering_wait(prog: &RankProgram, from: usize, req: u32) -> Option<usize> {
    prog.ops[from..]
        .iter()
        .position(|t| {
            matches!(t.op, Op::WaitAll { first_req, count }
            if req >= first_req && req < first_req + count)
        })
        .map(|p| from + p)
}

/// Split one end of a message: op `i` of rank `r` (an `Isend` or `Irecv` of
/// length `len >= 2`) becomes two back-to-back halves; the second half gets
/// a fresh request id waited right after the original's covering wait.
fn split_op(prog: &mut RankProgram, i: usize, make: impl Fn(Block, u32) -> Op) -> bool {
    let (block, phase) = match &prog.ops[i] {
        TimedOp {
            op: Op::Isend { block, req, .. } | Op::Irecv { block, req, .. },
            phase,
        } => {
            let req = *req;
            let w = match covering_wait(prog, i + 1, req) {
                Some(w) => w,
                None => return false,
            };
            let _ = w;
            (*block, *phase)
        }
        _ => return false,
    };
    if block.len < 2 {
        return false;
    }
    let half = block.len / 2;
    let first = Block::new(block.buf, block.off, half);
    let second = Block::new(block.buf, block.off + half, block.len - half);
    let new_req = prog.n_reqs;
    prog.n_reqs += 1;
    // Shrink the original to the first half, insert the second half after.
    match &mut prog.ops[i].op {
        Op::Isend { block, .. } | Op::Irecv { block, .. } => *block = first,
        _ => unreachable!(),
    }
    let orig_req = match prog.ops[i].op {
        Op::Isend { req, .. } | Op::Irecv { req, .. } => req,
        _ => unreachable!(),
    };
    prog.ops.insert(
        i + 1,
        TimedOp {
            op: make(second, new_req),
            phase,
        },
    );
    let w = covering_wait(prog, i + 2, orig_req).expect("validated schedule");
    prog.ops.insert(
        w + 1,
        TimedOp {
            op: Op::WaitAll {
                first_req: new_req,
                count: 1,
            },
            phase,
        },
    );
    true
}

fn split_message_same_tag(s: &mut FixedSchedule, rng: &mut Rng) -> bool {
    // Sends of >= 2 bytes whose covering wait exists (always, if valid).
    let mut cand = Vec::new();
    for (r, i) in sites(
        s,
        |op| matches!(op, Op::Isend { block, .. } if block.len >= 2),
    ) {
        cand.push((r, i));
    }
    if cand.is_empty() {
        return false;
    }
    let &(r, i) = rng.pick(&cand);
    let (to, tag, from) = match s.progs[r].ops[i].op {
        Op::Isend { to, tag, .. } => (to, tag, r as Rank),
        _ => unreachable!(),
    };
    // FIFO position of this send on its channel.
    let k = s.progs[r].ops[..i]
        .iter()
        .filter(|t| matches!(t.op, Op::Isend { to: t2, tag: g, .. } if t2 == to && g == tag))
        .count();
    // The k-th receive on the same channel, on the peer.
    let peer = &s.progs[to as usize];
    let recv_i = peer
        .ops
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t.op, Op::Irecv { from: f, tag: g, .. } if f == from && g == tag))
        .nth(k)
        .map(|(j, _)| j);
    let Some(recv_i) = recv_i else {
        return false;
    };
    if !split_op(&mut s.progs[r], i, |block, req| Op::Isend {
        to,
        block,
        tag,
        req,
    }) {
        return false;
    }
    split_op(&mut s.progs[to as usize], recv_i, |block, req| Op::Irecv {
        from,
        block,
        tag,
        req,
    })
}

fn read_pending_recv(s: &mut FixedSchedule, rng: &mut Rng) -> bool {
    let mut cand = Vec::new();
    for (r, i) in sites(s, |op| matches!(op, Op::Irecv { .. })) {
        if let Op::Irecv { block, .. } = s.progs[r].ops[i].op {
            if other_buffer_block(&s.buffers[r], block).is_some() {
                cand.push((r, i));
            }
        }
    }
    if cand.is_empty() {
        return false;
    }
    let &(r, i) = rng.pick(&cand);
    let (block, phase) = match &s.progs[r].ops[i] {
        TimedOp {
            op: Op::Irecv { block, .. },
            phase,
        } => (*block, *phase),
        _ => unreachable!(),
    };
    let dst = other_buffer_block(&s.buffers[r], block).expect("checked");
    s.progs[r].ops.insert(
        i + 1,
        TimedOp {
            op: Op::Copy { src: block, dst },
            phase,
        },
    );
    true
}

/// Swap the source blocks of two same-length, different-offset sends from
/// the user send buffer on one rank. Both destinations still receive
/// plausible bytes — just each other's — so the schedule stays valid and
/// safety-clean while computing the wrong collective (A2A007).
fn swap_send_source(s: &mut FixedSchedule, rng: &mut Rng) -> bool {
    let mut cand: Vec<(usize, usize, usize)> = Vec::new();
    for (r, prog) in s.progs.iter().enumerate() {
        let sends: Vec<(usize, Block)> = prog
            .ops
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t.op {
                Op::Isend { block, .. } if block.buf == SBUF => Some((i, block)),
                _ => None,
            })
            .collect();
        for a in 0..sends.len() {
            for b in a + 1..sends.len() {
                let (ba, bb) = (sends[a].1, sends[b].1);
                if ba.len == bb.len && ba.off != bb.off {
                    cand.push((r, sends[a].0, sends[b].0));
                }
            }
        }
    }
    if cand.is_empty() {
        return false;
    }
    let &(r, i, j) = rng.pick(&cand);
    let block_i = match s.progs[r].ops[i].op {
        Op::Isend { block, .. } => block,
        _ => unreachable!(),
    };
    let block_j = match s.progs[r].ops[j].op {
        Op::Isend { block, .. } => block,
        _ => unreachable!(),
    };
    if let Op::Isend { block, .. } = &mut s.progs[r].ops[i].op {
        *block = block_j;
    }
    if let Op::Isend { block, .. } = &mut s.progs[r].ops[j].op {
        *block = block_i;
    }
    true
}

/// Delete a `Copy`: no request accounting changes, so the mutant stays
/// valid and safety-clean, but the interval the copy fed ends the schedule
/// unwritten (A2A008). Only copies that are the *sole* writer of their
/// destination interval qualify — if another copy or receive also writes
/// into it, or the destination is the provenance-carrying send buffer,
/// dropping the copy leaves stale-but-defined bytes (A2A007 territory, a
/// different mutation's job).
fn drop_block(s: &mut FixedSchedule, rng: &mut Rng) -> bool {
    let overlaps = |a: &Block, b: &Block| a.buf == b.buf && a.off < b.end() && b.off < a.end();
    let mut cand = Vec::new();
    for (r, prog) in s.progs.iter().enumerate() {
        for (i, t) in prog.ops.iter().enumerate() {
            let Op::Copy { dst, .. } = &t.op else {
                continue;
            };
            if dst.buf == SBUF {
                continue;
            }
            let sole_writer = prog.ops.iter().enumerate().all(|(j, u)| {
                j == i
                    || match &u.op {
                        Op::Copy { dst: d, .. } => !overlaps(d, dst),
                        Op::Irecv { block, .. } => !overlaps(block, dst),
                        _ => true,
                    }
            });
            if sole_writer {
                cand.push((r, i));
            }
        }
    }
    if cand.is_empty() {
        return false;
    }
    let &(r, i) = rng.pick(&cand);
    s.progs[r].ops.remove(i);
    true
}

/// The FIFO partner of the receive at `(rank, i)`: the op index on the
/// sending rank of the k-th send on the receive's channel, where the
/// receive is the k-th receive on that channel.
fn fifo_partner_send(s: &FixedSchedule, rank: usize, i: usize) -> Option<(usize, usize)> {
    let (from, tag) = match s.progs[rank].ops[i].op {
        Op::Irecv { from, tag, .. } => (from, tag),
        _ => return None,
    };
    let k = s.progs[rank].ops[..i]
        .iter()
        .filter(|t| matches!(t.op, Op::Irecv { from: f, tag: g, .. } if f == from && g == tag))
        .count();
    s.progs[from as usize]
        .ops
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            matches!(t.op, Op::Isend { to, tag: g, .. } if to as usize == rank && g == tag)
        })
        .nth(k)
        .map(|(j, _)| (from as usize, j))
}

/// Append a second delivery into a receive destination in the user receive
/// buffer, after the whole schedule has run: the sender re-sends a
/// *different* send-buffer block over bytes that were already correct.
/// Valid and safety-clean — every request is posted, waited, and matched,
/// and nothing races — but the prover sees correct bytes overwritten with
/// wrong provenance (A2A009).
fn double_delivery_clobber(s: &mut FixedSchedule, rng: &mut Rng) -> bool {
    // Receives into RBUF whose FIFO-paired send reads SBUF (so the clobber
    // payload's provenance is statically forced to differ).
    let mut cand: Vec<(usize, usize, usize, Block, Bytes)> = Vec::new();
    for (r, i) in sites(s, |op| matches!(op, Op::Irecv { .. })) {
        let block = match s.progs[r].ops[i].op {
            Op::Irecv { block, .. } => block,
            _ => unreachable!(),
        };
        if block.buf != RBUF || block.len == 0 {
            continue;
        }
        let Some((sender, j)) = fifo_partner_send(s, r, i) else {
            continue;
        };
        let sblock = match s.progs[sender].ops[j].op {
            Op::Isend { block, .. } => block,
            _ => continue,
        };
        if sblock.buf != SBUF {
            continue;
        }
        // A different same-length SBUF offset on the sender.
        let sbuf = s.buffers[sender][SBUF.0 as usize];
        let alt = if sblock.off != 0 {
            0
        } else if sbuf >= 2 * block.len {
            block.len
        } else {
            continue;
        };
        cand.push((r, i, sender, block, alt));
    }
    if cand.is_empty() {
        return false;
    }
    let &(r, i, sender, block, alt) = rng.pick(&cand);
    let _ = i;
    let phase = s.progs[r].ops.last().map(|t| t.phase).unwrap_or(Phase(0));
    let sreq = s.progs[sender].n_reqs;
    s.progs[sender].n_reqs += 1;
    s.progs[sender].ops.push(TimedOp {
        op: Op::Isend {
            to: r as Rank,
            block: Block::new(SBUF, alt, block.len),
            tag: UNUSED_TAG,
            req: sreq,
        },
        phase,
    });
    s.progs[sender].ops.push(TimedOp {
        op: Op::WaitAll {
            first_req: sreq,
            count: 1,
        },
        phase,
    });
    let rreq = s.progs[r].n_reqs;
    s.progs[r].n_reqs += 1;
    s.progs[r].ops.push(TimedOp {
        op: Op::Irecv {
            from: sender as Rank,
            block,
            tag: UNUSED_TAG,
            req: rreq,
        },
        phase,
    });
    s.progs[r].ops.push(TimedOp {
        op: Op::WaitAll {
            first_req: rreq,
            count: 1,
        },
        phase,
    });
    true
}

/// Append a matched send/receive pair into a freshly declared scratch
/// buffer on the receiver. Everything is posted, waited, and matched —
/// valid and safety-clean — but the moved bytes feed no declared output
/// (A2A010).
fn dead_code_transfer(s: &mut FixedSchedule, rng: &mut Rng) -> bool {
    let n = s.progs.len();
    if n < 2 {
        return false;
    }
    let ranks: Vec<usize> = (0..n).collect();
    let &recv = rng.pick(&ranks);
    let sender = (recv + 1) % n;
    let len = s.buffers[sender][SBUF.0 as usize].min(8);
    if len == 0 {
        return false;
    }
    // Declare the scratch destination as a brand-new temporary buffer.
    let scratch = Block::new(a2a_sched::BufId(s.buffers[recv].len() as u8), 0, len);
    s.buffers[recv].push(len);
    let phase = s.progs[recv]
        .ops
        .last()
        .map(|t| t.phase)
        .unwrap_or(Phase(0));
    let sreq = s.progs[sender].n_reqs;
    s.progs[sender].n_reqs += 1;
    s.progs[sender].ops.push(TimedOp {
        op: Op::Isend {
            to: recv as Rank,
            block: Block::new(SBUF, 0, len),
            tag: UNUSED_TAG + 1,
            req: sreq,
        },
        phase,
    });
    s.progs[sender].ops.push(TimedOp {
        op: Op::WaitAll {
            first_req: sreq,
            count: 1,
        },
        phase,
    });
    let rreq = s.progs[recv].n_reqs;
    s.progs[recv].n_reqs += 1;
    s.progs[recv].ops.push(TimedOp {
        op: Op::Irecv {
            from: sender as Rank,
            block: scratch,
            tag: UNUSED_TAG + 1,
            req: rreq,
        },
        phase,
    });
    s.progs[recv].ops.push(TimedOp {
        op: Op::WaitAll {
            first_req: rreq,
            count: 1,
        },
        phase,
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_sched::{Phase, ProgBuilder};

    /// Two ranks exchanging via sendrecv, with a local repack copy.
    fn base() -> FixedSchedule {
        let progs = (0..2u32)
            .map(|me| {
                let peer = 1 - me;
                let mut b = ProgBuilder::new(Phase(0));
                b.copy(Block::new(SBUF, 0, 8), Block::new(RBUF, 8, 8));
                b.sendrecv(
                    peer,
                    Block::new(SBUF, 8, 8),
                    1,
                    peer,
                    Block::new(RBUF, 0, 8),
                    1,
                );
                b.finish()
            })
            .collect();
        FixedSchedule {
            progs,
            buffers: vec![vec![16, 16]; 2],
            phase_names: vec!["all"],
        }
    }

    #[test]
    fn every_mutation_applies_to_a_rich_base_or_declines() {
        // The sendrecv base supports all mutations except the pending-recv
        // overlap (it never has two receives in flight) and the send-source
        // swap (each rank posts only one send, so there is no pair).
        let mut rng = Rng::new(7);
        for m in Mutation::ALL {
            let got = m.apply(&base(), &mut rng);
            match m {
                Mutation::OverlapPendingRecvs | Mutation::SwapSendSource => {
                    assert!(got.is_none(), "{m}")
                }
                _ => assert!(got.is_some(), "{m} should apply"),
            }
        }
    }

    #[test]
    fn partitions_cover_all_mutations() {
        let mut both: Vec<Mutation> = Mutation::SAFETY
            .into_iter()
            .chain(Mutation::SEMANTIC)
            .collect();
        assert_eq!(both.len(), Mutation::ALL.len());
        both.dedup();
        assert_eq!(both, Mutation::ALL.to_vec());
        for m in Mutation::SEMANTIC {
            assert!(
                m.expected_code() >= "A2A007",
                "{m} must map to a prover code"
            );
        }
    }

    #[test]
    fn semantic_mutants_keep_request_accounting_valid() {
        // The appended exchanges must leave a well-formed program: dense
        // request ids, every request waited exactly once.
        let mut rng = Rng::new(21);
        for m in [Mutation::DoubleDeliveryClobber, Mutation::DeadCodeTransfer] {
            let s = m.apply(&base(), &mut rng).expect("applies to base");
            for prog in &s.progs {
                let posted: Vec<u32> = prog
                    .ops
                    .iter()
                    .filter_map(|t| match t.op {
                        Op::Isend { req, .. } | Op::Irecv { req, .. } => Some(req),
                        _ => None,
                    })
                    .collect();
                assert_eq!(posted.len(), prog.n_reqs as usize, "{m}: dense ids");
                let waited: u32 = prog
                    .ops
                    .iter()
                    .map(|t| match t.op {
                        Op::WaitAll { count, .. } => count,
                        _ => 0,
                    })
                    .sum();
                assert_eq!(waited, prog.n_reqs, "{m}: every request waited");
            }
        }
    }

    #[test]
    fn mutations_change_the_schedule() {
        let b = base();
        let mut rng = Rng::new(3);
        for m in Mutation::ALL {
            if let Some(mutant) = m.apply(&b, &mut rng) {
                assert_ne!(
                    format!("{:?}", mutant.progs),
                    format!("{:?}", b.progs),
                    "{m} returned an unchanged schedule"
                );
            }
        }
    }

    #[test]
    fn sequentialize_rewrites_every_triple() {
        let mut s = base();
        assert!(sequentialize_sendrecv(&mut s));
        for prog in &s.progs {
            // copy, isend, wait, irecv, wait
            assert_eq!(prog.ops.len(), 5);
            assert!(matches!(prog.ops[2].op, Op::WaitAll { count: 1, .. }));
        }
    }

    #[test]
    fn split_message_keeps_fifo_alignment() {
        let mut s = base();
        let mut rng = Rng::new(11);
        assert!(split_message_same_tag(&mut s, &mut rng));
        // One rank gained a send half + wait, its peer a recv half + wait.
        let total: usize = s.progs.iter().map(|p| p.ops.len()).sum();
        assert_eq!(total, 2 * 4 + 4);
        assert_eq!(s.progs.iter().map(|p| p.n_reqs).max(), Some(3));
    }
}
