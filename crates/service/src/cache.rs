//! The prepared-schedule cache: compile + validate + lint once per
//! distinct `(algorithm, topology, counts, window)` key, then serve every
//! repeat submission from an `Arc`-shared owned [`PreparedSchedule`].
//!
//! Keying relies on compilation being deterministic: every algorithm
//! builds its rank programs from nothing but its own parameters, the
//! machine shape, and the byte counts, so two submissions with equal keys
//! would compile bit-identical schedules — serving the cached one changes
//! nothing but the work done (a property the service test suite pins with
//! [`PreparedSchedule`]'s content equality).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use a2a_core::{A2AContext, AlgoSchedule, AlltoallAlgorithm};
use a2a_lint::{lint_schedule, prove_pass, LintConfig};
use a2a_sched::analysis::provenance::SemanticsSpec;
use a2a_sched::{validate, PreparedSchedule, ScheduleStats};
use a2a_topo::ProcGrid;

/// What makes two collective submissions share a compiled schedule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Algorithm display name (unique per roster entry, parameters
    /// included — e.g. `hierarchical(g=4,nonblocking)`).
    pub algo: String,
    /// Machine signature: name plus the full node/socket/NUMA/core shape.
    pub topology: String,
    /// Count signature. Uniform all-to-alls use `uniform:<block bytes>`;
    /// a v-variant front end would hash its count matrix here.
    pub counts: String,
    /// The lint send-window the schedule was admitted under (A2A005
    /// findings depend on it, so reports must not be shared across
    /// windows).
    pub window: usize,
}

impl CacheKey {
    /// The key for a uniform all-to-all of `block_bytes` per pair.
    pub fn alltoall(
        algo: &dyn AlltoallAlgorithm,
        grid: &ProcGrid,
        block_bytes: u64,
        window: usize,
    ) -> Self {
        let m = grid.machine();
        CacheKey {
            algo: algo.name(),
            topology: format!(
                "{}:{}x{}x{}x{}",
                m.name, m.nodes, m.sockets_per_node, m.numa_per_socket, m.cores_per_numa
            ),
            counts: format!("uniform:{block_bytes}"),
            window,
        }
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} @ {} [{}] w{}",
            self.algo, self.topology, self.counts, self.window
        )
    }
}

/// Why admission rejected a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// `a2a_sched::validate` failed: structurally broken schedule.
    Validation(String),
    /// The static analyzer found errors (warnings are recorded on the
    /// cached entry, not rejected).
    Lint { errors: usize, rendered: String },
    /// The semantics prover found errors (`A2A007`–`A2A009`): the schedule
    /// is safe to run but computes the wrong collective. Never cached.
    Prove { errors: usize, rendered: String },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Validation(e) => write!(f, "validation failed: {e}"),
            CompileError::Lint { errors, rendered } => {
                write!(f, "lint found {errors} error(s):\n{rendered}")
            }
            CompileError::Prove { errors, rendered } => {
                write!(f, "semantics prover found {errors} error(s):\n{rendered}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// One admitted schedule: the owned prepared form plus everything the
/// cold-miss admission pipeline learned about it.
pub struct CachedSchedule {
    pub key: CacheKey,
    pub prep: PreparedSchedule<'static>,
    pub stats: ScheduleStats,
    /// Lint warnings found at admission (errors reject the schedule).
    pub lint_warnings: usize,
    /// Semantics-prover warnings (`A2A010`) found at admission.
    pub prove_warnings: usize,
    /// Wall time the semantics prover spent on this schedule (ns).
    pub prove_ns: u64,
}

/// Compile + validate + lint + prove one uniform all-to-all — the full
/// cold-miss admission pipeline, run exactly once per cache key. A
/// schedule the prover rejects (wrong-source, missing, or clobbered bytes)
/// returns `Err` and is therefore never cached: a poisoned entry cannot be
/// served to later submissions.
pub fn compile_alltoall(
    algo: &dyn AlltoallAlgorithm,
    grid: &ProcGrid,
    block_bytes: u64,
    lint: &LintConfig,
) -> Result<CachedSchedule, CompileError> {
    let key = CacheKey::alltoall(algo, grid, block_bytes, lint.send_window);
    let sched = AlgoSchedule::new(algo, A2AContext::new(grid.clone(), block_bytes));
    let stats = validate(&sched, grid).map_err(|e| CompileError::Validation(e.to_string()))?;
    let report = lint_schedule(key.to_string(), &sched, grid, lint);
    if report.errors() > 0 {
        return Err(CompileError::Lint {
            errors: report.errors(),
            rendered: report.render_text(),
        });
    }
    let lint_warnings = report.warnings();
    let spec = SemanticsSpec::alltoall(grid.world_size(), block_bytes);
    let t0 = Instant::now();
    let proof = prove_pass(key.to_string(), &sched, &spec);
    let prove_ns = t0.elapsed().as_nanos() as u64;
    if proof.errors() > 0 {
        return Err(CompileError::Prove {
            errors: proof.errors(),
            rendered: proof.render_text(),
        });
    }
    let prove_warnings = proof.warnings();
    // Programs were generator-built (owned Cows), so this moves them:
    // the prepare path performs no clone.
    let prep = PreparedSchedule::new_owned(&sched);
    Ok(CachedSchedule {
        key,
        prep,
        stats,
        lint_warnings,
        prove_warnings,
        prove_ns,
    })
}

/// Hit/miss/eviction accounting, all lifetime totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Cold-miss compiles actually performed (equals `misses` except when
    /// concurrent misses race on one key, or capacity is 0).
    pub compiled: u64,
    /// Total wall time the semantics prover spent across all compiles (ns).
    pub prove_ns: u64,
}

struct Entry {
    sched: Arc<CachedSchedule>,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    stats: CacheStats,
}

/// An LRU cache of admitted schedules. `capacity == 0` disables storage
/// (every lookup misses and compiles) — the bench's cold path.
pub struct ScheduleCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ScheduleCache {
    pub fn new(capacity: usize) -> Self {
        ScheduleCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Serve `key` from the cache, or admit it through `compile`.
    ///
    /// Compilation runs outside the lock, so a large cold miss never
    /// stalls concurrent hits; if two submissions race the same cold key,
    /// both compile (deterministically identical schedules) and the first
    /// insertion wins.
    pub fn get_or_compile(
        &self,
        key: &CacheKey,
        compile: impl FnOnce() -> Result<CachedSchedule, CompileError>,
    ) -> Result<Arc<CachedSchedule>, CompileError> {
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(key) {
                entry.last_used = tick;
                let sched = Arc::clone(&entry.sched);
                inner.stats.hits += 1;
                return Ok(sched);
            }
            inner.stats.misses += 1;
        }
        let compiled = Arc::new(compile()?);
        let mut inner = self.lock();
        inner.stats.compiled += 1;
        inner.stats.prove_ns += compiled.prove_ns;
        if self.capacity == 0 {
            return Ok(compiled);
        }
        inner.tick += 1;
        let tick = inner.tick;
        let sched = match inner.map.get_mut(key) {
            // Lost a compile race: serve the incumbent so every consumer
            // of this key shares one allocation.
            Some(entry) => {
                entry.last_used = tick;
                Arc::clone(&entry.sched)
            }
            None => {
                inner.map.insert(
                    key.clone(),
                    Entry {
                        sched: Arc::clone(&compiled),
                        last_used: tick,
                    },
                );
                compiled
            }
        };
        while inner.map.len() > self.capacity {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity map");
            inner.map.remove(&lru);
            inner.stats.evictions += 1;
        }
        Ok(sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_core::PairwiseAlltoall;
    use a2a_topo::Machine;

    fn grid() -> ProcGrid {
        ProcGrid::new(Machine::custom("bench", 2, 2, 1, 2))
    }

    fn compile(bytes: u64) -> CachedSchedule {
        compile_alltoall(&PairwiseAlltoall, &grid(), bytes, &LintConfig::default()).unwrap()
    }

    #[test]
    fn cold_miss_then_hits() {
        let cache = ScheduleCache::new(4);
        let key = CacheKey::alltoall(&PairwiseAlltoall, &grid(), 64, 32);
        for _ in 0..5 {
            let s = cache.get_or_compile(&key, || Ok(compile(64))).unwrap();
            assert_eq!(s.key, key);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.compiled, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn cached_schedule_is_bit_identical_to_fresh_compile() {
        let cache = ScheduleCache::new(4);
        let key = CacheKey::alltoall(&PairwiseAlltoall, &grid(), 64, 32);
        cache.get_or_compile(&key, || Ok(compile(64))).unwrap();
        let cached = cache.get_or_compile(&key, || Ok(compile(64))).unwrap();
        assert_eq!(cache.stats().compiled, 1, "second call was a hit");
        let fresh = compile(64);
        assert_eq!(cached.prep, fresh.prep);
    }

    #[test]
    fn lru_eviction_counts() {
        let cache = ScheduleCache::new(2);
        for bytes in [4u64, 16, 64] {
            let key = CacheKey::alltoall(&PairwiseAlltoall, &grid(), bytes, 32);
            cache.get_or_compile(&key, || Ok(compile(bytes))).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // The oldest key (4 B) was evicted: re-asking for it misses...
        let key4 = CacheKey::alltoall(&PairwiseAlltoall, &grid(), 4, 32);
        cache.get_or_compile(&key4, || Ok(compile(4))).unwrap();
        // ...while the most recently used (64 B) still hits.
        let key64 = CacheKey::alltoall(&PairwiseAlltoall, &grid(), 64, 32);
        cache.get_or_compile(&key64, || Ok(compile(64))).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn eviction_racing_concurrent_compiles_stays_consistent() {
        // Robustness satellite: hammer a capacity-1 cache from many
        // threads over several keys, so insertions, LRU evictions, and
        // outside-the-lock compiles constantly race. Invariants:
        //
        // * every returned schedule matches the key asked for and stays
        //   usable after its entry is evicted (Arc keeps it alive);
        // * a miss compiles at most once per miss — `compiled <= misses`
        //   even when racing compilers both run (each raced compile
        //   counted its own miss first);
        // * the losing compiler of a same-key race is handed the
        //   incumbent, never a freed or mismatched entry.
        let cache = std::sync::Arc::new(ScheduleCache::new(1));
        let keys: Vec<(u64, CacheKey)> = [4u64, 16, 64]
            .into_iter()
            .map(|b| (b, CacheKey::alltoall(&PairwiseAlltoall, &grid(), b, 32)))
            .collect();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = std::sync::Arc::clone(&cache);
                let keys = keys.clone();
                scope.spawn(move || {
                    for i in 0..30 {
                        let (bytes, key) = &keys[(t + i) % keys.len()];
                        let s = cache.get_or_compile(key, || Ok(compile(*bytes))).unwrap();
                        assert_eq!(&s.key, key, "served schedule matches its key");
                        // The entry may be evicted by a sibling thread
                        // right now; the Arc must still be fully usable.
                        assert_eq!(s.prep.nranks(), grid().world_size());
                        assert_eq!(s.prep, compile(*bytes).prep, "bit-identical to fresh");
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 30, "every call accounted");
        assert!(
            stats.compiled <= stats.misses,
            "never more than one compile per miss: compiled {} misses {}",
            stats.compiled,
            stats.misses
        );
        assert!(stats.evictions > 0, "capacity 1 over 3 keys must evict");
        assert_eq!(cache.len(), 1);
    }

    /// Pairwise's schedule with rank 0's send offsets zeroed: every peer
    /// receives rank 0's block 0 instead of its own block. Passes
    /// validation and every safety lint — only the prover can reject it.
    struct PoisonedPairwise;

    impl AlltoallAlgorithm for PoisonedPairwise {
        fn name(&self) -> String {
            "poisoned-pairwise".into()
        }
        fn phase_names(&self) -> Vec<&'static str> {
            PairwiseAlltoall.phase_names()
        }
        fn buffers(&self, ctx: &A2AContext, rank: u32) -> Vec<u64> {
            PairwiseAlltoall.buffers(ctx, rank)
        }
        fn build_rank(&self, ctx: &A2AContext, rank: u32) -> a2a_sched::RankProgram {
            let mut p = PairwiseAlltoall.build_rank(ctx, rank);
            if rank == 0 {
                for t in &mut p.ops {
                    if let a2a_sched::Op::Isend { block, .. } = &mut t.op {
                        block.off = 0;
                    }
                }
            }
            p
        }
    }

    #[test]
    fn poisoned_schedule_is_rejected_and_never_cached() {
        let cache = ScheduleCache::new(4);
        let key = CacheKey::alltoall(&PoisonedPairwise, &grid(), 64, 32);
        for _ in 0..2 {
            let res = cache.get_or_compile(&key, || {
                compile_alltoall(&PoisonedPairwise, &grid(), 64, &LintConfig::default())
            });
            match res {
                Err(CompileError::Prove { errors, rendered }) => {
                    assert!(errors > 0);
                    assert!(rendered.contains("A2A007"), "{rendered}");
                }
                Err(other) => panic!("expected prover rejection, got {other}"),
                Ok(_) => panic!("poisoned schedule was admitted"),
            }
        }
        assert!(cache.is_empty(), "poisoned entries are never cached");
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "every retry re-misses: nothing admitted");
        assert_eq!(stats.compiled, 0);
        assert_eq!(stats.prove_ns, 0);
    }

    #[test]
    fn prove_time_is_accounted_in_stats() {
        let cache = ScheduleCache::new(4);
        let key = CacheKey::alltoall(&PairwiseAlltoall, &grid(), 64, 32);
        let s = cache.get_or_compile(&key, || Ok(compile(64))).unwrap();
        assert!(s.prove_ns > 0, "prover wall time recorded on the entry");
        assert_eq!(s.prove_warnings, 0);
        assert_eq!(cache.stats().prove_ns, s.prove_ns);
        // A hit serves the cached proof: no new prove time accrues.
        cache.get_or_compile(&key, || Ok(compile(64))).unwrap();
        assert_eq!(cache.stats().prove_ns, s.prove_ns);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ScheduleCache::new(0);
        let key = CacheKey::alltoall(&PairwiseAlltoall, &grid(), 64, 32);
        for _ in 0..3 {
            cache.get_or_compile(&key, || Ok(compile(64))).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.compiled, 3);
        assert_eq!(stats.hits, 0);
        assert!(cache.is_empty());
    }
}
