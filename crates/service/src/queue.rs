//! Bounded admission queue with selectable backpressure.
//!
//! The old service queue was an unbounded `VecDeque`: a submission burst
//! 100x over capacity would be absorbed silently and served minutes
//! later. [`BoundedQueue`] caps the number of queued-but-unstarted jobs
//! and makes the overflow behavior an explicit [`OverloadPolicy`]:
//!
//! * [`OverloadPolicy::Block`] — lossless backpressure: `push` parks the
//!   submitting thread until a drainer frees a slot (the default — a
//!   caller that can tolerate latency never loses work);
//! * [`OverloadPolicy::Reject`] — fail fast: the *new* job resolves with
//!   `JobError::ServiceOverloaded`;
//! * [`OverloadPolicy::ShedOldest`] — favor fresh work: the *oldest*
//!   queued jobs are evicted (and resolved as overloaded) to make room.
//!
//! Queue depth also drives the [`Pressure`] level the service uses for
//! graceful degradation (shedding opportunistic batching, demoting
//! parallel jobs) before any work is refused outright.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// What the service does with a new job when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Park the submitter until a slot frees (lossless backpressure).
    #[default]
    Block,
    /// Resolve the new job immediately with `ServiceOverloaded`.
    Reject,
    /// Evict the oldest queued job(s) to admit the new one; evicted jobs
    /// resolve with `ServiceOverloaded`.
    ShedOldest,
}

/// Coarse queue-pressure level, derived from depth vs. capacity.
///
/// `Nominal` below half, `Elevated` from half, `Saturated` from
/// three-quarters. Ordered so callers can write `pressure >= Elevated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pressure {
    Nominal,
    Elevated,
    Saturated,
}

impl Pressure {
    pub fn from_depth(depth: usize, capacity: usize) -> Pressure {
        if 4 * depth >= 3 * capacity {
            Pressure::Saturated
        } else if 2 * depth >= capacity {
            Pressure::Elevated
        } else {
            Pressure::Nominal
        }
    }
}

impl std::fmt::Display for Pressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Pressure::Nominal => write!(f, "nominal"),
            Pressure::Elevated => write!(f, "elevated"),
            Pressure::Saturated => write!(f, "saturated"),
        }
    }
}

/// Outcome of [`BoundedQueue::push`].
pub(crate) enum Admitted<T> {
    /// The item is queued.
    Queued,
    /// The item is queued; these older entries were evicted to make room
    /// and must be resolved by the caller.
    Shed(Vec<T>),
    /// The queue was full under [`OverloadPolicy::Reject`]; the item is
    /// returned to the caller to fail.
    Rejected(T),
}

pub(crate) struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    /// Signaled whenever entries are removed: wakes blocked pushers.
    space: Condvar,
    capacity: usize,
    policy: OverloadPolicy,
}

fn lock<'a, T>(m: &'a Mutex<VecDeque<T>>) -> MutexGuard<'a, VecDeque<T>> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize, policy: OverloadPolicy) -> Self {
        BoundedQueue {
            inner: Mutex::new(VecDeque::new()),
            space: Condvar::new(),
            capacity: capacity.max(1),
            policy,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn depth(&self) -> usize {
        lock(&self.inner).len()
    }

    pub fn pressure(&self) -> Pressure {
        Pressure::from_depth(self.depth(), self.capacity)
    }

    /// Admit one item under the configured policy. Only
    /// [`OverloadPolicy::Block`] can make this call wait.
    pub fn push(&self, item: T) -> Admitted<T> {
        let mut q = lock(&self.inner);
        match self.policy {
            OverloadPolicy::Block => {
                while q.len() >= self.capacity {
                    q = self
                        .space
                        .wait(q)
                        .unwrap_or_else(|poison| poison.into_inner());
                }
                q.push_back(item);
                Admitted::Queued
            }
            OverloadPolicy::Reject => {
                if q.len() >= self.capacity {
                    return Admitted::Rejected(item);
                }
                q.push_back(item);
                Admitted::Queued
            }
            OverloadPolicy::ShedOldest => {
                let mut shed = Vec::new();
                while q.len() >= self.capacity {
                    match q.pop_front() {
                        Some(old) => shed.push(old),
                        None => break,
                    }
                }
                q.push_back(item);
                if shed.is_empty() {
                    Admitted::Queued
                } else {
                    Admitted::Shed(shed)
                }
            }
        }
    }

    /// Run `f` with the locked deque (drainers scanning for batches,
    /// tenant resets removing entries, tests staging exact queue states).
    /// Blocked pushers are woken afterwards in case `f` freed slots.
    pub fn with<R>(&self, f: impl FnOnce(&mut VecDeque<T>) -> R) -> R {
        let mut q = lock(&self.inner);
        let out = f(&mut q);
        drop(q);
        self.space.notify_all();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn pressure_thresholds() {
        assert_eq!(Pressure::from_depth(0, 8), Pressure::Nominal);
        assert_eq!(Pressure::from_depth(3, 8), Pressure::Nominal);
        assert_eq!(Pressure::from_depth(4, 8), Pressure::Elevated);
        assert_eq!(Pressure::from_depth(5, 8), Pressure::Elevated);
        assert_eq!(Pressure::from_depth(6, 8), Pressure::Saturated);
        assert_eq!(Pressure::from_depth(8, 8), Pressure::Saturated);
        assert!(Pressure::Saturated > Pressure::Elevated);
        assert!(Pressure::Elevated > Pressure::Nominal);
    }

    #[test]
    fn reject_policy_returns_the_new_item() {
        let q = BoundedQueue::new(2, OverloadPolicy::Reject);
        assert!(matches!(q.push(1), Admitted::Queued));
        assert!(matches!(q.push(2), Admitted::Queued));
        match q.push(3) {
            Admitted::Rejected(3) => {}
            _ => panic!("full queue must reject the newcomer"),
        }
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn shed_policy_evicts_the_oldest() {
        let q = BoundedQueue::new(2, OverloadPolicy::ShedOldest);
        q.push(1);
        q.push(2);
        match q.push(3) {
            Admitted::Shed(old) => assert_eq!(old, vec![1]),
            _ => panic!("expected shed"),
        }
        let contents: Vec<i32> = q.with(|d| d.iter().copied().collect());
        assert_eq!(contents, vec![2, 3], "newest survives, oldest shed");
    }

    #[test]
    fn block_policy_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1, OverloadPolicy::Block));
        q.push(1);
        let pushed = Arc::new(AtomicBool::new(false));
        let t = {
            let q = Arc::clone(&q);
            let pushed = Arc::clone(&pushed);
            std::thread::spawn(move || {
                q.push(2);
                pushed.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(!pushed.load(Ordering::SeqCst), "pusher parked while full");
        let popped = q.with(|d| d.pop_front());
        assert_eq!(popped, Some(1));
        t.join().unwrap();
        assert!(pushed.load(Ordering::SeqCst));
        assert_eq!(q.depth(), 1);
    }
}
