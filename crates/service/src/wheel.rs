//! A service-level timer wheel: one thread, a min-heap of deadlines.
//!
//! Two robustness features need "run this closure at time T":
//!
//! * **job deadlines** — at admission the service schedules a watcher
//!   that, if the job is still unresolved at its deadline, fires its
//!   [`a2a_runtime::CancelToken`] (tearing down a running parallel world
//!   through the fabric's abort latch) and resolves the handle with
//!   `JobError::DeadlineExceeded`;
//! * **retry backoff** — a transiently-failed job parks here for its
//!   jittered backoff delay before re-entering the execution queue.
//!
//! One dedicated `svc-timer` thread owns a [`std::collections::BinaryHeap`]
//! keyed by `(Instant, seq)` (seq breaks ties FIFO) and sleeps exactly
//! until the earliest entry is due. Closures run on the timer thread, so
//! they must stay short — the service's closures only flip latches, move
//! queue entries, and spawn pool tasks.
//!
//! Dropping the wheel joins the thread; entries still pending are
//! discarded unfired. The service guarantees that is safe by quiescing
//! (every job resolved) before the wheel is dropped, at which point the
//! only pending entries are deadline watchers for already-resolved jobs —
//! no-ops by construction.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Action = Box<dyn FnOnce() + Send + 'static>;

struct Entry {
    at: Instant,
    seq: u64,
    action: Action,
}

// Min-heap on (at, seq): BinaryHeap is a max-heap, so compare reversed.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct WheelState {
    entries: BinaryHeap<Entry>,
    next_seq: u64,
    fired: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<WheelState>,
    changed: Condvar,
}

fn lock(shared: &Shared) -> MutexGuard<'_, WheelState> {
    shared
        .state
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

/// Cloneable scheduling handle; see [`TimerWheel`].
#[derive(Clone)]
pub(crate) struct WheelHandle {
    shared: Arc<Shared>,
}

impl WheelHandle {
    /// Run `action` on the timer thread after `delay`.
    pub fn schedule(&self, delay: Duration, action: impl FnOnce() + Send + 'static) {
        let mut s = lock(&self.shared);
        let seq = s.next_seq;
        s.next_seq += 1;
        s.entries.push(Entry {
            at: Instant::now() + delay,
            seq,
            action: Box::new(action),
        });
        drop(s);
        self.shared.changed.notify_all();
    }

    /// Entries scheduled but not yet fired.
    pub fn pending(&self) -> usize {
        lock(&self.shared).entries.len()
    }

    /// Entries fired so far.
    #[cfg(test)]
    pub fn fired(&self) -> u64 {
        lock(&self.shared).fired
    }
}

/// Owns the timer thread; dropped last by the service (after quiescing).
pub(crate) struct TimerWheel {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl TimerWheel {
    pub fn new() -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(WheelState::default()),
            changed: Condvar::new(),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("svc-timer".into())
                .spawn(move || timer_loop(&shared))
                .expect("spawn timer thread")
        };
        TimerWheel {
            shared,
            thread: Some(thread),
        }
    }

    pub fn handle(&self) -> WheelHandle {
        WheelHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for TimerWheel {
    fn drop(&mut self) {
        lock(&self.shared).shutdown = true;
        self.shared.changed.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn timer_loop(shared: &Shared) {
    loop {
        let action = {
            let mut s = lock(shared);
            loop {
                if s.shutdown {
                    return;
                }
                let now = Instant::now();
                match s.entries.peek() {
                    None => {
                        s = shared
                            .changed
                            .wait(s)
                            .unwrap_or_else(|poison| poison.into_inner());
                    }
                    Some(e) if e.at <= now => {
                        let e = s.entries.pop().expect("peeked entry");
                        s.fired += 1;
                        break e.action;
                    }
                    Some(e) => {
                        let wait = e.at - now;
                        s = shared
                            .changed
                            .wait_timeout(s, wait)
                            .unwrap_or_else(|poison| poison.into_inner())
                            .0;
                    }
                }
            }
        };
        // Run outside the lock: actions may schedule further entries.
        action();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fires_in_deadline_order() {
        let wheel = TimerWheel::new();
        let h = wheel.handle();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (delay_ms, tag) in [(30u64, 3), (10, 1), (20, 2)] {
            let log = Arc::clone(&log);
            h.schedule(Duration::from_millis(delay_ms), move || {
                log.lock().unwrap().push(tag);
            });
        }
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(*log.lock().unwrap(), vec![1, 2, 3]);
        assert_eq!(h.pending(), 0);
        assert_eq!(h.fired(), 3);
    }

    #[test]
    fn equal_deadlines_fire_fifo() {
        let wheel = TimerWheel::new();
        let h = wheel.handle();
        let log = Arc::new(Mutex::new(Vec::new()));
        let at = Duration::from_millis(10);
        for tag in 0..8 {
            let log = Arc::clone(&log);
            h.schedule(at, move || log.lock().unwrap().push(tag));
        }
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(*log.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn actions_can_rearm() {
        let wheel = TimerWheel::new();
        let h = wheel.handle();
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let h2 = h.clone();
        h.schedule(Duration::from_millis(5), move || {
            c.fetch_add(1, Ordering::SeqCst);
            let c2 = Arc::clone(&c);
            h2.schedule(Duration::from_millis(5), move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
        });
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn drop_discards_unfired_entries() {
        let fired = Arc::new(AtomicU64::new(0));
        {
            let wheel = TimerWheel::new();
            let f = Arc::clone(&fired);
            wheel.handle().schedule(Duration::from_secs(60), move || {
                f.fetch_add(1, Ordering::SeqCst);
            });
            // Drop immediately: the far-future entry must not block the
            // join or fire.
        }
        assert_eq!(fired.load(Ordering::SeqCst), 0);
    }
}
